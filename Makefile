# Convenience targets (everything works with plain pytest too).

PY ?= python

.PHONY: install test lint typecheck sanitize-smoke bench bench-smoke tables \
	report fuzz examples all

install:
	pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/
	$(MAKE) bench-smoke
	$(MAKE) sanitize-smoke

lint:
	@$(PY) -m ruff --version >/dev/null 2>&1 || \
		{ echo "ruff is not installed (pip install ruff)"; exit 1; }
	$(PY) -m ruff check src/ tests/ benchmarks/ examples/
	$(MAKE) typecheck

typecheck:
	@$(PY) -m mypy --version >/dev/null 2>&1 || \
		{ echo "mypy is not installed (pip install mypy)"; exit 1; }
	$(PY) -m mypy src/repro/gpusim src/repro/analysis

# Race/protocol sanitizer + static kernel lint over all 7 algorithms under
# relaxed consistency with the adversarial scheduler (also a CI job).
sanitize-smoke:
	PYTHONPATH=src $(PY) -m repro sanitize -n 64 --consistency relaxed \
		--policy lifo

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_host_engine.py --smoke

tables:
	$(PY) -m repro table1 --measure
	$(PY) -m repro table3

report:
	$(PY) -m repro report

fuzz:
	$(PY) -m repro fuzz --runs 200

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done

all: install test bench examples
