# Convenience targets (everything works with plain pytest too).

PY ?= python

.PHONY: install test test-slow lint typecheck sanitize-smoke \
	modelcheck-smoke modelcheck-sweep costcheck-smoke numcheck-smoke \
	bench bench-smoke \
	bench-incremental-smoke bench-compiled-smoke distsat-smoke \
	distsat-gigapixel tables report fuzz examples all

install:
	pip install -e . --no-build-isolation

# Tier-1: the fast suite (slow-marked tests excluded via pyproject addopts)
# plus the benchmark and sanitizer smoke gates.
test:
	$(PY) -m pytest tests/
	$(MAKE) bench-smoke
	$(MAKE) bench-incremental-smoke
	$(MAKE) bench-compiled-smoke
	$(MAKE) distsat-smoke
	$(MAKE) sanitize-smoke
	$(MAKE) modelcheck-smoke
	$(MAKE) costcheck-smoke
	$(MAKE) numcheck-smoke

# Tier-2: the @pytest.mark.slow suites (long fuzz sessions, report
# generation, heavy examples, exhaustive differential sweeps).
test-slow:
	$(PY) -m pytest tests/ -m slow --override-ini addopts=-q

lint:
	@$(PY) -m ruff --version >/dev/null 2>&1 || \
		{ echo "ruff is not installed (pip install ruff)"; exit 1; }
	$(PY) -m ruff check src/ tests/ benchmarks/ examples/
	$(MAKE) typecheck

typecheck:
	@$(PY) -m mypy --version >/dev/null 2>&1 || \
		{ echo "mypy is not installed (pip install mypy)"; exit 1; }
	$(PY) -m mypy src/repro/gpusim src/repro/analysis src/repro/backend

# Race/protocol sanitizer + static kernel lint over all 7 algorithms under
# relaxed consistency with the adversarial scheduler (also a CI job).
sanitize-smoke:
	PYTHONPATH=src $(PY) -m repro sanitize -n 64 --consistency relaxed \
		--policy lifo

# Exhaustive protocol model checking: all 7 algorithms on a 2x2 tile grid
# plus the planted-bug corpus, POR on (also a CI job; JSON is the artifact).
modelcheck-smoke:
	PYTHONPATH=src $(PY) -m repro modelcheck -t 2 --corpus \
		--json modelcheck.json

# Static memory-traffic verification: prove every Table I row from the
# kernel ASTs, cross-validate transaction predictions on the simulator,
# prove exact-int accumulators overflow-free, and reject the planted cost
# regressions (also a CI job; JSON is the artifact).
costcheck-smoke:
	PYTHONPATH=src $(PY) -m repro costcheck --json costcheck.json

# Static numerical-accuracy verification: prove closed-form rounding-error
# bounds for every algorithm x dtype from the kernel ASTs, validate them
# against measured errors on adversarial inputs up to n=4096, and reject
# the planted rounding-bug corpus (also a CI job; JSON is the artifact).
numcheck-smoke:
	PYTHONPATH=src $(PY) -m repro numcheck --json numcheck.json

# Larger grids for the slow tier: t=3 for every algorithm, and the two
# soft-sync algorithms at t=4 (SKSS-LB's 16-program pool-4 graph explodes,
# so its sweep stops at pool 3).
modelcheck-sweep:
	PYTHONPATH=src $(PY) -m repro modelcheck -t 3
	PYTHONPATH=src $(PY) -m repro modelcheck -t 4 -a 1R1W-SKSS
	PYTHONPATH=src $(PY) -m repro modelcheck -t 4 -a 1R1W-SKSS-LB \
		--pool 1 --pool 2 --pool 3

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_host_engine.py --smoke

bench-incremental-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_incremental.py --smoke

# Compiled-engine gate: fallback + pure-Python bit-identity everywhere;
# the jitted perf check only runs where numba is installed.
bench-compiled-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_compiled.py --smoke

# Distributed-executor gate: sharded runs bit-identical to the reference,
# an injected kill + a corrupted payload recovered with an exact attempt
# ledger (also a CI job; distsat_smoke.json is the artifact).
distsat-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_distsat.py --smoke

# The 4-gigapixel demo (65536^2 uint8 on a memory-capped worker): slow tier.
distsat-gigapixel:
	PYTHONPATH=src $(PY) benchmarks/bench_distsat.py --gigapixel

tables:
	$(PY) -m repro table1 --measure
	$(PY) -m repro table3

report:
	$(PY) -m repro report

fuzz:
	$(PY) -m repro fuzz --runs 200

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done

all: install test bench examples
