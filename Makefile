# Convenience targets (everything works with plain pytest too).

PY ?= python

.PHONY: install test test-slow lint typecheck sanitize-smoke bench \
	bench-smoke bench-incremental-smoke tables report fuzz examples all

install:
	pip install -e . --no-build-isolation

# Tier-1: the fast suite (slow-marked tests excluded via pyproject addopts)
# plus the benchmark and sanitizer smoke gates.
test:
	$(PY) -m pytest tests/
	$(MAKE) bench-smoke
	$(MAKE) bench-incremental-smoke
	$(MAKE) sanitize-smoke

# Tier-2: the @pytest.mark.slow suites (long fuzz sessions, report
# generation, heavy examples, exhaustive differential sweeps).
test-slow:
	$(PY) -m pytest tests/ -m slow --override-ini addopts=-q

lint:
	@$(PY) -m ruff --version >/dev/null 2>&1 || \
		{ echo "ruff is not installed (pip install ruff)"; exit 1; }
	$(PY) -m ruff check src/ tests/ benchmarks/ examples/
	$(MAKE) typecheck

typecheck:
	@$(PY) -m mypy --version >/dev/null 2>&1 || \
		{ echo "mypy is not installed (pip install mypy)"; exit 1; }
	$(PY) -m mypy src/repro/gpusim src/repro/analysis

# Race/protocol sanitizer + static kernel lint over all 7 algorithms under
# relaxed consistency with the adversarial scheduler (also a CI job).
sanitize-smoke:
	PYTHONPATH=src $(PY) -m repro sanitize -n 64 --consistency relaxed \
		--policy lifo

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_host_engine.py --smoke

bench-incremental-smoke:
	PYTHONPATH=src $(PY) benchmarks/bench_incremental.py --smoke

tables:
	$(PY) -m repro table1 --measure
	$(PY) -m repro table3

report:
	$(PY) -m repro report

fuzz:
	$(PY) -m repro fuzz --runs 200

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f > /dev/null || exit 1; done

all: install test bench examples
