"""Ablation: tile acquisition order (diagonal-major vs row-major).

The paper assigns serials in diagonal-major order (Figure 9).  Row-major is
equally deadlock-free, so why prefer the diagonal?  Because it releases the
dependency frontier fastest: under the emergent simulator clock, row-major
acquisition makes right-hand tiles of early rows wait on rows that have not
been produced yet, lengthening spin chains.  This bench measures both.
"""

import numpy as np
import pytest

from repro.gpusim import GPU, TITAN_V
from repro.sat import sat_reference
from repro.sat.skss_lb import SKSSLB1R1W


@pytest.mark.parametrize("order", ["diagonal", "rowmajor"])
def test_acquisition_order_metrics(benchmark, order, bench_matrix):
    # A modest residency bound makes the acquisition order matter (on the
    # real device the paper's grids also exceed residency at large n).
    gpu = GPU(device=TITAN_V, seed=6, scheduler_policy="random",
              max_resident_blocks=8)
    res = benchmark.pedantic(
        lambda: SKSSLB1R1W(acquisition=order).run(bench_matrix, gpu),
        rounds=1, iterations=1)
    assert np.array_equal(res.sat, sat_reference(bench_matrix))
    t = res.report.traffic
    print(f"\nacquisition={order}: spins={t.spin_iterations} "
          f"cycles={res.report.kernels[0].sim_cycles:.0f}")


def test_diagonal_spins_not_worse(benchmark, bench_matrix):
    def run(order):
        gpu = GPU(seed=6, scheduler_policy="random", max_resident_blocks=8)
        res = SKSSLB1R1W(acquisition=order).run(bench_matrix, gpu)
        return res.report.traffic.spin_iterations

    diag, rowm = benchmark.pedantic(
        lambda: (run("diagonal"), run("rowmajor")), rounds=1, iterations=1)
    print(f"\nspin iterations: diagonal={diag} rowmajor={rowm}")
    # The diagonal order should not spin more than row-major (it usually
    # spins strictly less; equality can occur on tiny grids).
    assert diag <= rowm * 1.1
