"""Ablation: the diagonal shared-memory arrangement (Section II, Figure 3).

Runs the paper's algorithm with the diagonal layout and the naive row-major
layout and reports the measured bank-conflict replay cycles: correctness is
identical, the conflicts are not.
"""

import numpy as np
import pytest

from repro.gpusim import GPU
from repro.sat import SKSSLB1R1W


@pytest.mark.parametrize("layout", ["diagonal", "rowmajor"])
def test_layout_conflicts(benchmark, layout, small_bench_matrix):
    res = benchmark.pedantic(
        lambda: SKSSLB1R1W(layout=layout).run(small_bench_matrix, GPU(seed=2)),
        rounds=1, iterations=1)
    conflicts = res.report.traffic.shared_bank_conflict_cycles
    print(f"\nlayout={layout}: bank-conflict replay cycles = {conflicts}")
    if layout == "diagonal":
        assert conflicts == 0
    else:
        # Row-major: every column-wise warp access replays ~31 times.
        tiles = (small_bench_matrix.shape[0] // 32) ** 2
        assert conflicts > tiles * 31 * 30


def test_layouts_agree_bitwise(benchmark, small_bench_matrix):
    def run_both():
        a = SKSSLB1R1W(layout="diagonal").run(small_bench_matrix, GPU(seed=4))
        b = SKSSLB1R1W(layout="rowmajor").run(small_bench_matrix, GPU(seed=4))
        return a.sat, b.sat

    sat_a, sat_b = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert np.array_equal(sat_a, sat_b)
