"""Ablation: what the look-back buys over plain column soft-sync.

Compares 1R1W-SKSS and 1R1W-SKSS-LB on identical simulated runs:
parallelism (blocks), spin traffic, emergent simulator cycles, and the model's
predicted gap across sizes.  This is the paper's core design argument
("1R1W-SKSS-LB ... uses much more threads than 1R1W-SKSS. Thus, it runs
faster") made measurable.
"""

import pytest

from repro.gpusim import GPU
from repro.perfmodel import SIZES, TitanVModel
from repro.sat import SKSS1R1W, SKSSLB1R1W


def test_parallelism_gap(benchmark, bench_matrix):
    def run_both():
        skss = SKSS1R1W().run(bench_matrix, GPU(seed=3))
        lb = SKSSLB1R1W().run(bench_matrix, GPU(seed=3))
        return skss, lb

    skss, lb = benchmark.pedantic(run_both, rounds=1, iterations=1)
    t = bench_matrix.shape[0] // 32
    print(f"\nblocks: SKSS={skss.report.kernels[0].grid_blocks} "
          f"LB={lb.report.kernels[0].grid_blocks}")
    print(f"max threads: SKSS={skss.max_threads} LB={lb.max_threads}")
    assert lb.report.kernels[0].grid_blocks == t * skss.report.kernels[0].grid_blocks
    assert lb.max_threads == t * skss.max_threads


def test_emergent_cycles_favor_lookback(benchmark, bench_matrix):
    """The simulator's emergent clock (independent of the analytic model)
    must also rank LB ahead of SKSS at a simulatable size."""
    def run_both():
        skss = SKSS1R1W().run(bench_matrix, GPU(seed=5))
        lb = SKSSLB1R1W().run(bench_matrix, GPU(seed=5))
        return (skss.report.kernels[0].sim_cycles,
                lb.report.kernels[0].sim_cycles)

    skss_cycles, lb_cycles = benchmark.pedantic(run_both, rounds=1,
                                                iterations=1)
    print(f"\nemergent cycles: SKSS={skss_cycles:.0f} LB={lb_cycles:.0f} "
          f"(ratio {skss_cycles / lb_cycles:.2f})")
    assert lb_cycles < skss_cycles


def test_model_gap_across_sizes(benchmark):
    model = TitanVModel()

    def gaps():
        return {n: (model.best_estimate("1R1W-SKSS", n).total_ms
                    / model.best_estimate("1R1W-SKSS-LB", n).total_ms)
                for n in SIZES}

    ratio = benchmark.pedantic(gaps, rounds=1, iterations=1)
    print("\nSKSS/LB model ratio per size: "
          + ", ".join(f"{n}:{r:.2f}" for n, r in ratio.items()))
    # LB never loses, and the advantage peaks at small/medium sizes.
    assert all(r >= 1.0 for r in ratio.values())
    assert max(ratio, key=ratio.get) <= 4096


def test_lookback_bounds_wait_chains(benchmark, bench_matrix):
    """Spin iterations per tile stay bounded for LB even under an adversarial
    scheduler: consumers sum locals instead of waiting for neighbours'
    completed prefixes."""
    def run():
        return SKSSLB1R1W().run(bench_matrix,
                                GPU(seed=9, scheduler_policy="lifo"))

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    tiles = (bench_matrix.shape[0] // 32) ** 2
    spins_per_tile = res.report.traffic.spin_iterations / tiles
    print(f"\nLB spin iterations per tile (lifo): {spins_per_tile:.2f}")
    assert spins_per_tile < 50
