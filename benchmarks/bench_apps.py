"""Application benchmarks: the O(1)-per-query payoff that motivates the SAT.

Wall-clock comparison of SAT-based box filtering against direct convolution
(the crossover the paper's introduction appeals to), plus dense Haar-feature
evaluation throughput."""

import numpy as np
import pytest

from repro.apps import (box_filter, box_filter_direct, evaluate_feature_dense,
                        gaussian_blobs)
from repro.sat import sat_reference


@pytest.mark.parametrize("radius", [2, 8])
def test_sat_box_filter(benchmark, radius):
    img = gaussian_blobs(256, seed=1)
    out = benchmark(box_filter, img, radius)
    assert out.shape == img.shape


def test_direct_box_filter_small_radius(benchmark):
    """The direct O(r²)-per-pixel baseline at a tiny size (it is slow by
    design; the SAT version above is radius-independent)."""
    img = gaussian_blobs(64, seed=1)
    out = benchmark.pedantic(box_filter_direct, args=(img, 4), rounds=1,
                             iterations=1)
    assert out.shape == img.shape


def test_sat_filter_radius_independent(benchmark):
    """The SAT filter's cost must not grow with the radius (O(1)/pixel)."""
    import time
    img = gaussian_blobs(512, seed=2)

    def timed(radius):
        t0 = time.perf_counter()
        box_filter(img, radius)
        return time.perf_counter() - t0

    benchmark.pedantic(lambda: (timed(1), timed(32)), rounds=1, iterations=1)
    small = min(timed(1) for _ in range(3))
    large = min(timed(32) for _ in range(3))
    print(f"\nradius 1: {small * 1e3:.2f} ms, radius 32: {large * 1e3:.2f} ms")
    assert large < 3.0 * small


def test_dense_haar_features(benchmark):
    img = gaussian_blobs(256, seed=3)
    sat = sat_reference(img)
    out = benchmark(evaluate_feature_dense, sat, "two_h", 8, 8)
    assert out.size > 0
