#!/usr/bin/env python3
"""Benchmark the compiled (Numba flat-kernel) engine against the others.

Times the compiled engine's single-worker flat kernels against the serial
per-algorithm tile loop and the warm wavefront engine across a size sweep,
plus the fused flat double scan against the plain NumPy reference.  Emits
``BENCH_compiled.json``.

Run modes:

    python benchmarks/bench_compiled.py            # full sweep, writes
                                                   # BENCH_compiled.json
    python benchmarks/bench_compiled.py --smoke    # fast correctness +
                                                   # sanity gate (CI)

The acceptance gate — compiled >= 5x over the warm single-worker wavefront
engine at n=4096 — is asserted only where Numba is importable.  On
Numba-free hosts both modes still verify the degradation contract (the
``engine="compiled"`` string falls back to wavefront bit-identically, and
the pure-Python ``jit=False`` kernels match the serial loops) and exit 0,
recording ``numba_available: false`` in the JSON so the artefact says which
machine produced which numbers.  Like ``bench_host_engine.py`` this is a
plain script, not a pytest-benchmark module, so it can emit committed JSON.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import warnings
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # allow running without install
    sys.path.insert(0, str(REPO / "src"))

from repro.hostexec import WavefrontEngine  # noqa: E402
from repro.hostexec.compiled import (CompiledEngine,  # noqa: E402
                                     numba_available)
from repro.sat.registry import get_algorithm, host_sat  # noqa: E402

ALGORITHM = "1R1W-SKSS-LB"
TILE_WIDTH = 32


def _matrix(n: int, seed: int = 2018) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=(n, n)).astype(np.float64)


def _best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time (seconds) of ``fn()``."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_size(n: int, repeats: int, engine: CompiledEngine,
               serial_cutoff: int) -> dict:
    """Compiled vs warm wavefront (both single-worker) at one matrix size.

    The serial per-tile loop is only timed up to ``serial_cutoff`` (it is
    minutes at n=4096); above that the row records ``serial_s: null``.
    """
    a = _matrix(n)
    alg = get_algorithm(ALGORITHM, tile_width=TILE_WIDTH)
    row = {"n": n, "tile_width": TILE_WIDTH, "algorithm": ALGORITHM,
           "serial_s": None, "wavefront_s": None, "compiled_s": None,
           "compiled_scan_s": None, "reference_scan_s": None,
           "speedup_vs_wavefront": None, "speedup_vs_serial": None}

    with WavefrontEngine(workers=1) as wf:
        wf_sat = wf.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        row["wavefront_s"] = _best(
            lambda: wf.compute(a, algorithm=ALGORITHM,
                               tile_width=TILE_WIDTH), repeats)

    got = engine.compute(a, algorithm=ALGORITHM,
                         tile_width=TILE_WIDTH)  # warms the jit cache
    if not np.array_equal(got, wf_sat):
        raise AssertionError(f"compiled not bit-identical at n={n}")
    row["compiled_s"] = _best(
        lambda: engine.compute(a, algorithm=ALGORITHM,
                               tile_width=TILE_WIDTH), repeats)
    row["speedup_vs_wavefront"] = row["wavefront_s"] / row["compiled_s"]

    if n <= serial_cutoff:
        row["serial_s"] = _best(lambda: alg.run_host(a), repeats)
        row["speedup_vs_serial"] = row["serial_s"] / row["compiled_s"]

    # The fused flat double scan vs NumPy's two cumsum passes.
    ref = a.cumsum(axis=0).cumsum(axis=1)
    scan = engine.compute(a, algorithm="2R2W")
    if not np.array_equal(scan, ref):
        raise AssertionError(f"flat double scan diverged at n={n}")
    row["compiled_scan_s"] = _best(
        lambda: engine.compute(a, algorithm="2R2W"), repeats)
    row["reference_scan_s"] = _best(
        lambda: a.cumsum(axis=0).cumsum(axis=1), repeats)
    return row


def _check_fallback(n: int = 256) -> bool:
    """``engine="compiled"`` must equal the serial host path, with or
    without Numba (without, it degrades to the wavefront engine)."""
    a = _matrix(n)
    want = get_algorithm(ALGORITHM, tile_width=TILE_WIDTH).run_host(a)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        got = host_sat(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH,
                       engine="compiled")
    return bool(np.array_equal(got, want))


def _check_pure_python(n: int = 96, tile_width: int = 16) -> bool:
    """The jit=False kernels (same source Numba compiles) vs serial."""
    a = _matrix(n)
    want = get_algorithm(ALGORITHM, tile_width=tile_width).run_host(a)
    with CompiledEngine(jit=False) as engine:
        got = engine.compute(a, algorithm=ALGORITHM, tile_width=tile_width)
    return bool(np.array_equal(got, want))


def run_full(args) -> int:
    results = {
        "benchmark": "compiled",
        "algorithm": ALGORITHM,
        "tile_width": TILE_WIDTH,
        "cpu_count": os.cpu_count(),
        "numba_available": numba_available(),
        "repeats": args.repeats,
        "sizes": [],
        "fallback_bit_identical": None,
        "pure_python_bit_identical": None,
        "acceptance": None,
    }
    results["fallback_bit_identical"] = _check_fallback()
    results["pure_python_bit_identical"] = _check_pure_python()

    gate = None
    if numba_available():
        with CompiledEngine(workers=1) as engine:
            for n in args.sizes:
                print(f"n={n} ...", flush=True)
                row = bench_size(n, args.repeats, engine, args.serial_cutoff)
                results["sizes"].append(row)
                print(f"  wavefront {row['wavefront_s']:.3f}s | compiled "
                      f"{row['compiled_s']:.3f}s "
                      f"({row['speedup_vs_wavefront']:.2f}x)")
                if n == args.gate_n:
                    gate = row["speedup_vs_wavefront"]
    else:
        print("numba is not importable: skipping the timing sweep "
              "(fallback + pure-Python bit-identity checked instead)")

    results["acceptance"] = {
        "compiled_5x_vs_wavefront_at_4096":
            None if gate is None else gate >= 5.0,
        "speedup_at_gate_size": gate,
        "gate_n": args.gate_n,
        "fallback_bit_identical": results["fallback_bit_identical"],
        "pure_python_bit_identical": results["pure_python_bit_identical"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    if not results["fallback_bit_identical"]:
        print("ACCEPTANCE FAIL: engine='compiled' fallback diverged",
              file=sys.stderr)
        return 1
    if not results["pure_python_bit_identical"]:
        print("ACCEPTANCE FAIL: jit=False kernels diverged", file=sys.stderr)
        return 1
    if gate is not None and gate < 5.0:
        print(f"ACCEPTANCE FAIL: compiled speedup over wavefront at "
              f"n={args.gate_n} is {gate:.2f}x (< 5x)", file=sys.stderr)
        return 1
    return 0


def run_smoke(args) -> int:
    """Fast gate for ``make test``: correctness everywhere, perf sanity
    only where Numba exists."""
    ok_fallback = _check_fallback()
    ok_pure = _check_pure_python()
    print(f"smoke: fallback-bit-identical={ok_fallback}, "
          f"pure-python-bit-identical={ok_pure}, "
          f"numba={numba_available()}")
    if not ok_fallback:
        print("SMOKE FAIL: engine='compiled' fallback diverged",
              file=sys.stderr)
        return 1
    if not ok_pure:
        print("SMOKE FAIL: jit=False kernels diverged from serial",
              file=sys.stderr)
        return 1
    if not numba_available():
        print("smoke ok (numba absent: perf gate skipped)")
        return 0

    n = 512
    a = _matrix(n)
    with CompiledEngine(workers=1) as engine:
        got = engine.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        warm = _best(lambda: engine.compute(a, algorithm=ALGORITHM,
                                            tile_width=TILE_WIDTH), 3)
    with WavefrontEngine(workers=1) as wf:
        want = wf.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        wf_warm = _best(lambda: wf.compute(a, algorithm=ALGORITHM,
                                           tile_width=TILE_WIDTH), 3)
    if not np.array_equal(got, want):
        print("SMOKE FAIL: jitted compiled result differs", file=sys.stderr)
        return 1
    print(f"smoke n={n}: wavefront {wf_warm * 1e3:.1f}ms, compiled "
          f"{warm * 1e3:.1f}ms ({wf_warm / warm:.2f}x)")
    if warm > wf_warm:
        print(f"SMOKE FAIL: warm compiled {warm:.3f}s slower than "
              f"wavefront {wf_warm:.3f}s", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast correctness/sanity gate; writes no JSON")
    ap.add_argument("--sizes", type=int, nargs="+",
                    default=[512, 1024, 2048, 4096])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--gate-n", type=int, default=4096,
                    help="matrix size the >=5x acceptance gate applies at")
    ap.add_argument("--serial-cutoff", type=int, default=1024,
                    help="largest n at which the serial per-tile loop is "
                         "also timed (it is minutes beyond this)")
    ap.add_argument("--out", default=str(REPO / "BENCH_compiled.json"))
    args = ap.parse_args(argv)
    return run_smoke(args) if args.smoke else run_full(args)


if __name__ == "__main__":
    sys.exit(main())
