"""Detection-pipeline benchmarks: the downstream payoff of fast SATs.

The cascade's wall-clock is dominated by SAT construction plus O(1) lookups;
these benches measure the dense sliding-window detector, its early-rejection
ratio, and the CPU-parallel host SAT that would feed it at video rates.
"""

import numpy as np
import pytest

from repro.apps.cascade import detect, squares_scene
from repro.sat import sat_reference
from repro.sat.parallel_host import parallel_sat


def test_cascade_throughput(benchmark):
    img, corners = squares_scene(256, num_squares=4, square=14, seed=1)
    dets, stats = benchmark(detect, img, window=16)
    print(f"\nwindows={stats.windows_total} "
          f"early-reject={stats.early_reject_fraction:.3f} "
          f"detections={len(dets)}")
    assert stats.early_reject_fraction > 0.9
    assert len(dets) >= len(corners) - 1


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_host_sat(benchmark, workers):
    rng = np.random.default_rng(0)
    a = rng.random((2048, 2048))
    out = benchmark(parallel_sat, a, workers=workers)
    assert out.shape == a.shape


def test_parallel_matches_reference(benchmark):
    rng = np.random.default_rng(1)
    a = rng.integers(0, 100, size=(512, 512)).astype(float)

    def both():
        return parallel_sat(a, workers=4), sat_reference(a)

    par, ref = benchmark.pedantic(both, rounds=1, iterations=1)
    assert np.array_equal(par, ref)
