#!/usr/bin/env python3
"""Benchmark the sharded distributed executor (``repro.distsat``).

Times the digest-mode (gigapixel-path) executor over a shard-count sweep on
a procedurally generated 8192x8192 uint8 image, measures the overhead of
recovering from an injected worker kill, and emits ``BENCH_distsat.json``.

Run modes:

    python benchmarks/bench_distsat.py             # shard sweep + recovery
                                                   # overhead, writes
                                                   # BENCH_distsat.json
    python benchmarks/bench_distsat.py --smoke     # fast correctness +
                                                   # recovery gate (CI),
                                                   # writes distsat_smoke.json
    python benchmarks/bench_distsat.py --gigapixel # 65536^2 uint8 (4 Gpx)
                                                   # on a memory-capped
                                                   # worker (slow tier)

The acceptance gate — the best multi-shard throughput must be at least the
single-shard throughput at n=8192 — does not assume extra cores: even on one
CPU, processing the image as smaller bands beats one monolithic pass on
cache locality, which is the same effect the shard sweep measures.

The gigapixel mode streams a :class:`~repro.distsat.SyntheticSource` in
128-row chunks, so no worker ever materialises more than ~75 MB while
computing a 4-gigapixel SAT whose dense int64 form would need 34 GB; the
result is verified against independently regenerated column strips.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # allow running without install
    sys.path.insert(0, str(REPO / "src"))

from repro.distsat import (FaultAction, FaultPlan,  # noqa: E402
                           SyntheticSource, distributed_sat)
from repro.sat import sat_reference  # noqa: E402

SWEEP_N = 8192
SWEEP_SHARDS = (1, 2, 4, 8)
GIGAPIXEL_N = 65536
GIGAPIXEL_CHUNK = 128


def timed(source, **kwargs):
    t0 = time.perf_counter()
    result = distributed_sat(source, **kwargs)
    return time.perf_counter() - t0, result


def machine() -> dict:
    return {"cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": sys.version.split()[0]}


def strip_oracle(source: SyntheticSource, top: int, left: int,
                 bottom: int, right: int) -> int:
    """Rectangle sum by independent regeneration (narrow strips only)."""
    return int(source.rect(top, left, bottom, right).sum(dtype=np.int64))


def run_sweep(n: int, repeats: int) -> dict:
    source = SyntheticSource(n, n)
    megapixels = n * n / 1e6
    kill = FaultPlan(actions=(
        FaultAction(kind="kill", shard=1, attempt=1, phase="apply"),))

    sweep = {}
    for shards in SWEEP_SHARDS:
        seconds, result = min(
            (timed(source, shards=shards, collect=False)
             for _ in range(repeats)), key=lambda t: t[0])
        assert result.stats["recovered_shards"] == []
        sweep[shards] = {"seconds": round(seconds, 3),
                         "throughput_mp_s": round(megapixels / seconds, 2)}
        print(f"shards={shards}: {seconds:.2f}s "
              f"({sweep[shards]['throughput_mp_s']} MP/s)")

    # Recovery overhead: same 4-shard run with one worker killed mid-apply.
    clean_s = sweep[4]["seconds"]
    faulted_s, faulted = timed(source, shards=4, collect=False,
                               fault_plan=kill)
    assert faulted.stats["recovered_shards"] == [1]
    # recovery must be invisible: both runs end with identical edge rows
    _, clean = timed(source, shards=4, collect=False)
    for edge, row in clean.edge_rows.items():
        assert np.array_equal(row, faulted.edge_rows[edge])
    recovery = {"clean_seconds": round(clean_s, 3),
                "killed_seconds": round(faulted_s, 3),
                "overhead_ratio": round(faulted_s / clean_s, 3)}
    print(f"recovery: clean {clean_s:.2f}s, one kill {faulted_s:.2f}s "
          f"(x{recovery['overhead_ratio']})")

    single = sweep[1]["throughput_mp_s"]
    best_multi = max(sweep[s]["throughput_mp_s"] for s in SWEEP_SHARDS
                     if s > 1)
    gate = best_multi >= single
    print(f"gate: best multi-shard {best_multi} MP/s >= "
          f"single-shard {single} MP/s -> {gate}")
    return {"n": n, "dtype": "uint8", "mode": "digest",
            "transport": "inline", "repeats": repeats,
            "sweep": {str(k): v for k, v in sweep.items()},
            "recovery": recovery,
            "acceptance": {"multi_shard_not_slower": bool(gate),
                           "single_mp_s": single,
                           "best_multi_mp_s": best_multi}}


def run_smoke() -> dict:
    n, shards = 256, 4
    source = SyntheticSource(n, n)
    dense = source.band(0, n)
    want = sat_reference(dense)

    ok_clean = True
    for k in (1, 2, shards):
        result = distributed_sat(source, shards=k)
        ok_clean &= bool(np.array_equal(result.sat, want))

    plan = FaultPlan(actions=(
        FaultAction(kind="kill", shard=2, attempt=1, phase="reduce"),
        FaultAction(kind="corrupt", shard=0, attempt=1, phase="apply")))
    seconds, faulted = timed(source, shards=shards, fault_plan=plan,
                             chunk_rows=32)
    ok_recovered = bool(np.array_equal(faulted.sat, want))
    attempts = faulted.stats["attempts"]
    ok_ledger = all(
        attempts[phase][k] == plan.expected_attempts(k, phase)
        for phase in ("reduce", "apply") for k in range(shards))

    print(f"smoke n={n}: clean={ok_clean} recovered={ok_recovered} "
          f"ledger={ok_ledger} ({seconds:.2f}s faulted run)")
    if not (ok_clean and ok_recovered and ok_ledger):
        raise SystemExit("distsat smoke gate failed")
    return {"n": n, "shards": shards,
            "clean_bit_identical": ok_clean,
            "recovered_bit_identical": ok_recovered,
            "attempt_ledger_exact": ok_ledger,
            "faulted_seconds": round(seconds, 3),
            "recovered_shards": faulted.stats["recovered_shards"]}


def run_gigapixel() -> dict:
    n, chunk, shards = GIGAPIXEL_N, GIGAPIXEL_CHUNK, 8
    source = SyntheticSource(n, n)
    print(f"gigapixel: {n}x{n} uint8 ({n * n / 1e9:.1f} Gpx), "
          f"{shards} shards, {chunk}-row chunks ...")
    seconds, result = timed(source, shards=shards, chunk_rows=chunk,
                            collect=False)
    # Memory cap: one uint8 chunk + its int64 SAT rows, nothing larger.
    cap_bytes = chunk * n * (1 + 8)
    peak = result.stats["peak_worker_bytes"]
    assert peak <= cap_bytes, (peak, cap_bytes)

    # The SAT total two ways: reduce-side carries vs apply-side edge row.
    total = int(result.rect_sum(0, 0, n - 1, n - 1))
    assert total == int(result.carries.planes()["BCS"].sum(dtype=np.int64))

    # Edge-aligned rectangles vs independently regenerated narrow strips.
    edges = sorted(result.edge_rows)
    checks = [(0, 1000, edges[0], 1010),
              (edges[2] + 1, 0, edges[5], 7),
              (edges[0] + 1, n - 9, edges[1], n - 1)]
    for top, left, bottom, right in checks:
        got = int(result.rect_sum(top, left, bottom, right))
        assert got == strip_oracle(source, top, left, bottom, right)

    mp_s = n * n / 1e6 / seconds
    print(f"gigapixel: {seconds:.1f}s ({mp_s:.1f} MP/s), "
          f"peak worker bytes {peak / 1e6:.1f} MB (cap {cap_bytes / 1e6:.1f})")
    return {"n": n, "shards": shards, "chunk_rows": chunk,
            "seconds": round(seconds, 1),
            "throughput_mp_s": round(mp_s, 2),
            "peak_worker_bytes": int(peak),
            "worker_memory_cap_bytes": int(cap_bytes),
            "rect_checks": len(checks) + 2}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast correctness + recovery gate (CI)")
    parser.add_argument("--gigapixel", action="store_true",
                        help="the 4-gigapixel memory-capped demo (slow)")
    parser.add_argument("-n", type=int, default=SWEEP_N,
                        help="sweep image side (default 8192)")
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("-o", "--output", default=None,
                        help="output JSON path (defaults per mode)")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = {"benchmark": "distsat-smoke", **machine(),
                   "smoke": run_smoke()}
        out = Path(args.output or REPO / "distsat_smoke.json")
    elif args.gigapixel:
        out = Path(args.output or REPO / "BENCH_distsat.json")
        payload = json.loads(out.read_text()) if out.exists() \
            else {"benchmark": "distsat", **machine()}
        payload["gigapixel"] = run_gigapixel()
    else:
        payload = {"benchmark": "distsat", **machine(),
                   **run_sweep(args.n, args.repeats)}
        out = Path(args.output or REPO / "BENCH_distsat.json")
        if not payload["acceptance"]["multi_shard_not_slower"]:
            out.write_text(json.dumps(payload, indent=2, sort_keys=True)
                           + "\n")
            raise SystemExit("distsat throughput gate failed "
                             "(multi-shard slower than single-shard)")

    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
