"""The duplication baseline (Table III row 1) and host-throughput reality
checks.

The first half validates the calibration (model vs paper duplication row);
the second half is honest wall-clock benchmarking of the host NumPy SAT —
the fastest concrete SAT available in this environment — to anchor the
repository's own performance claims.
"""

import numpy as np
import pytest

from repro.perfmodel import (DEFAULT_CALIBRATION, PAPER_DUPLICATION_MS, SIZES,
                             fit_duplication)
from repro.sat import sat_reference


def test_calibration_fit(benchmark):
    cal = benchmark(fit_duplication)
    rows = [f"{'n':>6} {'paper ms':>10} {'model ms':>10} {'ratio':>7}"]
    for n, paper in zip(SIZES, PAPER_DUPLICATION_MS):
        model = cal.duplication_us(n) / 1e3
        rows.append(f"{n:>6} {paper:>10.5f} {model:>10.5f} "
                    f"{model / paper:>7.2f}")
    print("\n" + "\n".join(rows))
    print(f"fitted: t0 = {cal.t0_us:.2f} us, B = {cal.bandwidth_gbps:.0f} GB/s")
    assert 500 <= cal.bandwidth_gbps <= 660


@pytest.mark.parametrize("n", [256, 512, 1024, 2048])
def test_host_sat_throughput(benchmark, n):
    """Wall-clock NumPy SAT (cumsum x2): the host-side reference speed."""
    rng = np.random.default_rng(0)
    a = rng.random((n, n)).astype(np.float32)
    sat = benchmark(sat_reference, a)
    assert sat.shape == (n, n)


@pytest.mark.parametrize("n", [256, 1024])
def test_host_duplication_throughput(benchmark, n):
    """Wall-clock matrix duplication — the same lower bound the paper uses."""
    rng = np.random.default_rng(0)
    a = rng.random((n, n)).astype(np.float32)
    out = benchmark(np.copy, a)
    assert out.shape == (n, n)
