#!/usr/bin/env python3
"""Benchmark the host execution engines (serial / wavefront / parallel).

Times the serial per-algorithm tile loop against the multi-core wavefront
tile engine (:mod:`repro.hostexec`) and the fork/join banded 2R2W scan
(:func:`repro.sat.parallel_host.parallel_sat`) over a size and worker sweep,
and quantifies the batched-execution amortization (``compute_many`` on a warm
engine vs one-shot calls that pay pool spin-up and plan construction every
time).

Run modes:

    python benchmarks/bench_host_engine.py            # full sweep, writes
                                                      # BENCH_host_engine.json
    python benchmarks/bench_host_engine.py --smoke    # fast correctness +
                                                      # sanity gate (CI)

The smoke mode is wired into ``make test`` (target ``bench-smoke``): it
asserts the wavefront engine is bit-identical to the serial host path and not
slower than serial beyond a generous tolerance, exiting non-zero on failure.
Unlike the ``bench_*`` pytest-benchmark modules, this file is a plain script
(it defines no test functions) so it can emit a committed JSON artefact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # allow running without install
    sys.path.insert(0, str(REPO / "src"))

from repro.hostexec import WavefrontEngine  # noqa: E402
from repro.sat.parallel_host import parallel_sat  # noqa: E402
from repro.sat.registry import get_algorithm  # noqa: E402

ALGORITHM = "1R1W-SKSS-LB"
TILE_WIDTH = 32


def _matrix(n: int, seed: int = 2018) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=(n, n)).astype(np.float64)


def _best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time (seconds) of ``fn()``."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_size(n: int, workers_list: list[int], repeats: int) -> dict:
    """Serial vs wavefront (cold + warm) vs parallel at one matrix size."""
    a = _matrix(n)
    alg = get_algorithm(ALGORITHM, tile_width=TILE_WIDTH)
    serial_sat = alg.run_host(a)
    serial = _best(lambda: alg.run_host(a), repeats)

    row = {"n": n, "tile_width": TILE_WIDTH, "algorithm": ALGORITHM,
           "serial_s": serial, "wavefront": [], "parallel": []}
    for w in workers_list:
        with WavefrontEngine(workers=w) as eng:
            wf_sat = eng.compute(a, algorithm=ALGORITHM,
                                 tile_width=TILE_WIDTH)  # warms plan + pool
            if not np.array_equal(wf_sat, serial_sat):
                raise AssertionError(
                    f"wavefront (workers={w}) not bit-identical at n={n}")
            warm = _best(lambda: eng.compute(a, algorithm=ALGORITHM,
                                             tile_width=TILE_WIDTH), repeats)

        def cold():
            with WavefrontEngine(workers=w) as fresh:
                fresh.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        row["wavefront"].append({
            "workers": w, "warm_s": warm, "cold_s": _best(cold, repeats),
            "speedup_vs_serial": serial / warm})

        par = _best(lambda: parallel_sat(a, workers=w), repeats)
        row["parallel"].append({"workers": w, "s": par,
                                "speedup_vs_serial": serial / par})
    return row


def bench_batched(n: int, batch: int, workers: int, repeats: int) -> dict:
    """Amortization of ``compute_many`` over one-shot per-call engines."""
    arrays = [_matrix(n, seed=100 + i) for i in range(batch)]

    with WavefrontEngine(workers=workers) as eng:
        eng.compute(arrays[0], algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        batched = _best(lambda: eng.compute_many(
            arrays, algorithm=ALGORITHM, tile_width=TILE_WIDTH), repeats)

    def one_shot_all():
        for a in arrays:  # pays pool spin-up + plan build per call
            with WavefrontEngine(workers=workers) as fresh:
                fresh.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
    one_shot = _best(one_shot_all, repeats)
    return {"n": n, "batch": batch, "workers": workers,
            "batched_per_call_s": batched / batch,
            "one_shot_per_call_s": one_shot / batch,
            "amortization_speedup": one_shot / batched}


def run_full(args) -> int:
    results = {
        "benchmark": "host_engine",
        "algorithm": ALGORITHM,
        "tile_width": TILE_WIDTH,
        "cpu_count": os.cpu_count(),
        "repro_workers_env": os.environ.get("REPRO_WORKERS"),
        "repeats": args.repeats,
        "sizes": [],
        "batched": None,
        "acceptance": None,
    }
    for n in args.sizes:
        print(f"n={n} ...", flush=True)
        row = bench_size(n, args.workers, args.repeats)
        results["sizes"].append(row)
        wf = ", ".join(f"w={e['workers']}: {e['warm_s']:.3f}s "
                       f"({e['speedup_vs_serial']:.2f}x)"
                       for e in row["wavefront"])
        print(f"  serial {row['serial_s']:.3f}s | wavefront {wf}")

    print(f"batched n={args.batch_n} x{args.batch} ...", flush=True)
    results["batched"] = bench_batched(args.batch_n, args.batch,
                                       max(args.workers), args.repeats)
    b = results["batched"]
    print(f"  per-call batched {b['batched_per_call_s']:.3f}s vs one-shot "
          f"{b['one_shot_per_call_s']:.3f}s "
          f"({b['amortization_speedup']:.2f}x)")

    # Acceptance: >=2x over serial at n=2048, W=32 with >=4 workers.
    gate = None
    for row in results["sizes"]:
        if row["n"] == 2048:
            cands = [e for e in row["wavefront"] if e["workers"] >= 4]
            if cands:
                gate = max(e["speedup_vs_serial"] for e in cands)
    results["acceptance"] = {
        "wavefront_2x_at_2048": None if gate is None else gate >= 2.0,
        "best_speedup_at_2048": gate,
        "batched_amortization": b["amortization_speedup"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    if gate is not None and gate < 2.0:
        print(f"ACCEPTANCE FAIL: best wavefront speedup at n=2048 is "
              f"{gate:.2f}x (< 2x)", file=sys.stderr)
        return 1
    return 0


def run_smoke(args) -> int:
    """Fast gate for ``make test``: correctness plus a loose perf sanity.

    Bit-identity is checked on the *threaded* scheduler (workers=4, real
    dependency races); the perf gate uses the deterministic workers=1 fast
    path, whose batched chunk kernels must beat the serial per-tile loop —
    thread timings on shared CI boxes are too noisy to gate on.
    """
    n = 512
    a = _matrix(n)
    alg = get_algorithm(ALGORITHM, tile_width=TILE_WIDTH)
    serial_sat = alg.run_host(a)
    serial = _best(lambda: alg.run_host(a), 3)

    with WavefrontEngine(workers=4) as eng:
        ok_bits = np.array_equal(
            eng.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH),
            serial_sat)
    with WavefrontEngine(workers=1) as eng:
        eng.compute(a, algorithm=ALGORITHM, tile_width=TILE_WIDTH)
        warm = _best(lambda: eng.compute(a, algorithm=ALGORITHM,
                                         tile_width=TILE_WIDTH), 3)
    ok_par = np.allclose(parallel_sat(a, workers=4), serial_sat)

    print(f"smoke n={n}: serial {serial * 1e3:.1f}ms, "
          f"wavefront(warm, 1w) {warm * 1e3:.1f}ms, "
          f"bit-identical(4w)={ok_bits}, parallel-ok={ok_par}")
    if not ok_bits:
        print("SMOKE FAIL: wavefront result differs from serial host path",
              file=sys.stderr)
        return 1
    if not ok_par:
        print("SMOKE FAIL: parallel_sat result differs", file=sys.stderr)
        return 1
    if warm > serial * 1.5:
        print(f"SMOKE FAIL: warm wavefront {warm:.3f}s > 1.5x serial "
              f"{serial:.3f}s", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast correctness/sanity gate; writes no JSON")
    ap.add_argument("--sizes", type=int, nargs="+",
                    default=[512, 1024, 2048, 4096])
    ap.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4, 8])
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--batch", type=int, default=10,
                    help="batch size for the compute_many amortization run")
    ap.add_argument("--batch-n", type=int, default=256,
                    help="matrix size for the batched run (small enough that "
                         "per-call pool/plan setup is visible)")
    ap.add_argument("--out", default=str(REPO / "BENCH_host_engine.json"))
    args = ap.parse_args(argv)
    return run_smoke(args) if args.smoke else run_full(args)


if __name__ == "__main__":
    sys.exit(main())
