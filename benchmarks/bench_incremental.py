#!/usr/bin/env python3
"""Benchmark incremental SAT repair against full wavefront recompute.

Times :class:`repro.hostexec.IncrementalSAT` edit repair (rectangle patches
of a configurable dirty fraction, cycling corner/edge/centre placements so
best and worst repair frontiers are both sampled) against recomputing the
whole table on a warm :class:`~repro.hostexec.WavefrontEngine`, across dirty
fractions and both repair strategies, plus a frame-stream scenario
(:func:`repro.apps.video.synthetic_stream`) where only a small block moves
between frames.

Run modes:

    python benchmarks/bench_incremental.py            # full sweep, writes
                                                      # BENCH_incremental.json
    python benchmarks/bench_incremental.py --smoke    # fast correctness +
                                                      # sanity gate (CI)

The smoke mode is wired into ``make test`` (target ``bench-incremental-
smoke``): it asserts repaired tables are bit-identical to from-scratch
recompute and that repair of a small edit beats full recompute, exiting
non-zero on failure.  The full run enforces the acceptance gate: >=5x mean
speedup for a <=10% dirty area at n=2048.  Like ``bench_host_engine.py``
this is a plain script (no test functions) so it can emit a committed JSON
artefact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:  # allow running without install
    sys.path.insert(0, str(REPO / "src"))

from repro.apps.video import synthetic_stream  # noqa: E402
from repro.hostexec.incremental import (IncrementalSAT,  # noqa: E402
                                        repair_benchmark)
from repro.sat.registry import get_algorithm  # noqa: E402

ALGORITHM = "1R1W-SKSS-LB"
TILE_WIDTH = 32


def _best(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time (seconds) of ``fn()``."""
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def bench_stream(n: int, frames: int, block: int, repeats: int) -> dict:
    """Video scenario: per-frame advance() vs per-frame full recompute."""
    frame_list = list(synthetic_stream(n, frames=frames, block=block,
                                       step=block // 2, dtype=np.int32))
    inc = IncrementalSAT(frame_list[0], algorithm=ALGORITHM,
                         tile_width=TILE_WIDTH)
    acc = inc.dtype

    # Full-recompute baseline on the warm resident engine.
    full_s = _best(lambda: inc._engine.compute(
        frame_list[0], algorithm=ALGORITHM, tile_width=TILE_WIDTH,
        dtype_policy=acc), repeats)

    per_frame = []
    for frame in frame_list[1:]:
        t0 = time.perf_counter()
        inc.advance(frame)
        per_frame.append(time.perf_counter() - t0)
    ok = bool(np.array_equal(
        inc.sat, get_algorithm(ALGORITHM, tile_width=TILE_WIDTH)
        .run_host(frame_list[-1], dtype_policy=acc)))
    inc.close()
    mean = float(np.mean(per_frame))
    return {"n": n, "frames": frames, "block": block,
            "full_recompute_s": full_s, "advance_mean_s": mean,
            "advance_worst_s": float(np.max(per_frame)),
            "speedup_mean": full_s / mean, "bit_identical": ok}


def run_full(args) -> int:
    results = {
        "benchmark": "incremental",
        "algorithm": ALGORITHM,
        "tile_width": TILE_WIDTH,
        "cpu_count": os.cpu_count(),
        "repeats": args.repeats,
        "edits": [],
        "stream": None,
        "acceptance": None,
    }
    gate = None
    for dirty_frac in args.dirty_fracs:
        for strategy, dtype in (("delta", "int32"), ("recompute", "float64")):
            row = repair_benchmark(
                args.size, dirty_frac=dirty_frac, edits=args.edits,
                tile_width=TILE_WIDTH, algorithm=ALGORITHM, dtype=dtype,
                strategy=strategy, repeats=args.repeats)
            results["edits"].append(row)
            print(f"n={row['n']} dirty={100 * dirty_frac:4.1f}% "
                  f"{strategy:>9}/{dtype:<7} full "
                  f"{1e3 * row['full_recompute_s']:7.2f}ms repair "
                  f"{1e3 * row['repair_mean_s']:7.2f}ms "
                  f"({row['speedup_mean']:5.1f}x) "
                  f"bit-identical={row['bit_identical']}", flush=True)
            if not row["bit_identical"]:
                print("ACCEPTANCE FAIL: repaired SAT is not bit-identical",
                      file=sys.stderr)
                return 1
            if strategy == "delta" and dirty_frac <= 0.1:
                gate = max(gate or 0.0, row["speedup_mean"])

    print("stream ...", flush=True)
    results["stream"] = bench_stream(args.size, frames=args.frames,
                                     block=96, repeats=args.repeats)
    s = results["stream"]
    print(f"  {s['frames']} frames, {s['block']}² moving block: "
          f"advance {1e3 * s['advance_mean_s']:.2f}ms vs full "
          f"{1e3 * s['full_recompute_s']:.2f}ms "
          f"({s['speedup_mean']:.1f}x) bit-identical={s['bit_identical']}")

    results["acceptance"] = {
        "speedup_5x_at_10pct_dirty": None if gate is None else gate >= 5.0,
        "best_speedup_at_10pct_dirty": gate,
        "stream_speedup": s["speedup_mean"],
        "all_bit_identical": all(r["bit_identical"]
                                 for r in results["edits"])
        and s["bit_identical"],
    }
    out = Path(args.out)
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    if gate is not None and gate < 5.0:
        print(f"ACCEPTANCE FAIL: best delta-repair speedup at <=10% dirty "
              f"is {gate:.2f}x (< 5x)", file=sys.stderr)
        return 1
    return 0


def run_smoke(args) -> int:
    """Fast gate for ``make test``: bit-identity on both strategies plus a
    loose perf sanity (a 10% edit must repair faster than full recompute)."""
    n = 512
    row = repair_benchmark(n, dirty_frac=0.1, edits=4, tile_width=TILE_WIDTH,
                           algorithm=ALGORITHM, dtype="int32",
                           strategy="delta", repeats=2)
    rowf = repair_benchmark(n, dirty_frac=0.1, edits=4, tile_width=TILE_WIDTH,
                            algorithm=ALGORITHM, dtype="float64",
                            strategy="recompute", repeats=2)
    print(f"smoke n={n}: delta {row['speedup_mean']:.1f}x "
          f"(bit-identical={row['bit_identical']}), recompute "
          f"{rowf['speedup_mean']:.1f}x "
          f"(bit-identical={rowf['bit_identical']})")
    if not (row["bit_identical"] and rowf["bit_identical"]):
        print("SMOKE FAIL: repaired SAT differs from from-scratch recompute",
              file=sys.stderr)
        return 1
    if row["speedup_mean"] < 1.0:
        print(f"SMOKE FAIL: delta repair slower than full recompute "
              f"({row['speedup_mean']:.2f}x)", file=sys.stderr)
        return 1
    print("smoke ok")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="fast correctness/sanity gate; writes no JSON")
    ap.add_argument("-n", "--size", type=int, default=2048)
    ap.add_argument("--dirty-fracs", type=float, nargs="+",
                    default=[0.01, 0.05, 0.1, 0.25])
    ap.add_argument("--edits", type=int, default=8)
    ap.add_argument("--frames", type=int, default=12)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--out", default=str(REPO / "BENCH_incremental.json"))
    args = ap.parse_args(argv)
    return run_smoke(args) if args.smoke else run_full(args)


if __name__ == "__main__":
    sys.exit(main())
