"""The m sweep: threads per tile (paper parameter ``m = W²/threads``).

Table I expresses thread counts through ``m``; the paper fixes 1024-thread
blocks ("to maximize parallelism") and sweeps W instead.  This bench sweeps
the block size for the paper's algorithm at fixed W: global traffic is
invariant (same tiles, same publishes), shared-memory behaviour is invariant
(same accesses in more passes), and the model's occupancy term shows why
fewer threads per tile only ever hurts.
"""

import numpy as np
import pytest

from repro.gpusim import GPU
from repro.perfmodel import TitanVModel
from repro.sat import SKSSLB1R1W, sat_reference

THREADS = [128, 256, 512, 1024]


@pytest.mark.parametrize("threads", THREADS)
def test_traffic_invariant_in_m(benchmark, threads, small_bench_matrix):
    res = benchmark.pedantic(
        lambda: SKSSLB1R1W(tile_width=32, threads_per_block=threads).run(
            small_bench_matrix, GPU(seed=2)),
        rounds=1, iterations=1)
    assert np.array_equal(res.sat, sat_reference(small_bench_matrix))
    t = res.report.traffic
    n2 = small_bench_matrix.size
    m = 32 * 32 // threads
    print(f"\nthreads={threads} (m={m}): reads/n²="
          f"{t.global_read_requests / n2:.3f} "
          f"writes/n²={t.global_write_requests / n2:.3f}")
    # Global traffic must not depend on m.
    assert t.global_read_requests <= 1.1 * n2
    assert t.global_write_requests <= 1.2 * n2


def test_model_prefers_full_blocks(benchmark):
    """With W=32 the model's occupancy term makes m=1 (1024 threads) at
    least as fast as any thinner block at every size."""
    model = TitanVModel()

    def sweep():
        out = {}
        for n in (1024, 8192):
            out[n] = {tpb: model.estimate("1R1W-SKSS-LB", n, W=32,
                                          threads_per_block=tpb).total_ms
                      for tpb in THREADS}
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, times in out.items():
        print(f"\nn={n}: " + "  ".join(f"tpb={k}:{v:.4f}ms"
                                       for k, v in times.items()))
        assert times[1024] <= min(times.values()) * 1.001
