"""Out-of-core banded SAT: overhead vs the in-memory reference (extension).

Band stitching adds one carry-vector update per band; the bench quantifies
that against a whole-matrix cumsum and exercises the streaming query path.
"""

import numpy as np
import pytest

from repro.sat import sat_reference
from repro.sat.outofcore import OutOfCoreSAT, band_bounds, out_of_core_sat


@pytest.mark.parametrize("band_rows", [64, 256, 1024])
def test_banded_sat(benchmark, band_rows):
    rng = np.random.default_rng(1)
    a = rng.random((1024, 1024))
    out = benchmark(out_of_core_sat, a, band_rows=band_rows)
    assert out.shape == a.shape


def test_whole_matrix_baseline(benchmark):
    rng = np.random.default_rng(1)
    a = rng.random((1024, 1024))
    benchmark(sat_reference, a)


def test_streaming_queries(benchmark):
    rng = np.random.default_rng(2)
    a = rng.random((512, 512))

    def stream_and_query():
        oos = OutOfCoreSAT(n_cols=512)
        total = 0.0
        for lo, hi in band_bounds(512, 128):
            oos.push_band(a[lo:hi])
            total += oos.rect_sum(0, 0, hi - 1, 511)
        return total

    total = benchmark(stream_and_query)
    assert total > 0
