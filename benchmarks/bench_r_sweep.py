"""The r sweep of the (1+r)R1W hybrid (paper Section III.B, Figure 8).

The paper "chooses the best value of r that minimizes the running time": this
bench sweeps r over [0, 1] in the cost model at several sizes, prints the
optimum, and checks the measured traffic of the simulator scales as
``(1+r)n²`` reads while staying ``n²`` writes.
"""

import numpy as np
import pytest

from repro.gpusim import GPU
from repro.perfmodel import TitanVModel
from repro.sat import Hybrid1R1W

R_GRID = [0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0]


def test_model_r_sweep(benchmark):
    model = TitanVModel()

    def sweep():
        out = {}
        for n in (1024, 4096, 16384):
            times = {r: model.estimate("(1+r)R1W", n, W=64, r=r).total_ms
                     for r in R_GRID}
            out[n] = times
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n, times in out.items():
        best_r = min(times, key=times.get)
        row = "  ".join(f"r={r}:{t:.3f}" for r, t in times.items())
        print(f"\nn={n}: best r = {best_r}\n  {row}")
        # The optimum is interior-ish at small n (launch overhead pushes away
        # from r=0) and leans small at very large n (traffic dominates).
        if n <= 1024:
            assert times[best_r] <= times[0.0]
    # At 16K traffic dominates: large r must be worse than the optimum by a
    # visible margin.
    t16 = out[16384]
    assert t16[1.0] > min(t16.values()) * 1.05


@pytest.mark.parametrize("r", [0.0, 0.25, 0.5, 1.0])
def test_simulated_traffic_scales_with_r(benchmark, r, small_bench_matrix):
    res = benchmark.pedantic(
        lambda: Hybrid1R1W(r=r).run(small_bench_matrix, GPU(seed=1)),
        rounds=1, iterations=1)
    n2 = small_bench_matrix.size
    reads = res.report.traffic.global_read_requests
    print(f"\nr={r}: reads/n² = {reads / n2:.3f}")
    assert reads >= (1 + 0.8 * r) * n2 * 0.92
    assert res.report.traffic.global_write_requests <= 1.2 * n2
