"""Benchmarks of the simulator itself: wall-clock throughput and scaling.

These are honest performance numbers for this repository's substrate (not
paper artefacts): how fast the functional simulator executes the paper's
kernel per matrix size, and how the cost of adversarial features (relaxed
consistency, tracing, uninitialized-read detection) compares to the baseline.
"""

import numpy as np
import pytest

from repro.gpusim import GPU, Tracer
from repro.sat import SKSSLB1R1W, sat_reference


def _matrix(n):
    rng = np.random.default_rng(0)
    return rng.integers(0, 100, size=(n, n)).astype(np.float64)


@pytest.mark.parametrize("n", [64, 128, 256])
def test_sim_throughput_by_size(benchmark, n):
    a = _matrix(n)

    def run():
        return SKSSLB1R1W().run(a, GPU(seed=1))

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.array_equal(res.sat, sat_reference(a))


@pytest.mark.parametrize("mode", ["strong", "relaxed", "relaxed+detect",
                                  "relaxed+trace"])
def test_sim_feature_overhead(benchmark, mode):
    a = _matrix(128)

    def run():
        kw = {"seed": 1}
        if mode == "strong":
            kw["consistency"] = "strong"
        if mode == "relaxed+detect":
            kw["detect_uninitialized"] = True
        if mode == "relaxed+trace":
            kw["tracer"] = Tracer()
        return SKSSLB1R1W().run(a, GPU(**kw))

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.array_equal(res.sat, sat_reference(a))


def test_host_path_much_faster_than_simulation(benchmark):
    """The host path exists because simulation costs ~10³x wall-clock; check
    the gap is real (and therefore that offering both paths is justified)."""
    import time
    a = _matrix(128)

    def measure():
        t0 = time.perf_counter()
        SKSSLB1R1W().run_host(a)
        host = time.perf_counter() - t0
        t0 = time.perf_counter()
        SKSSLB1R1W().run(a, GPU(seed=1))
        sim = time.perf_counter() - t0
        return host, sim

    host, sim = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nhost {host * 1e3:.1f} ms vs simulated {sim * 1e3:.1f} ms "
          f"({sim / host:.0f}x)")
    assert sim > 3 * host
