"""Regenerates **Table I**: kernel calls, threads, reads, writes per algorithm.

The numbers are *measured* from the functional simulator (not asserted from
the closed forms) and checked against the paper's columns; the rendered table
is printed alongside the symbolic version.
"""

import pytest

from repro.analysis import check_counts, check_result, render_table1
from repro.gpusim import GPU
from repro.perfmodel.table import TABLE3_ORDER
from repro.sat import get_algorithm

_RESULTS = {}


def _run(name, matrix):
    res = get_algorithm(name).run(matrix, GPU(seed=1))
    _RESULTS[name] = res
    return res


@pytest.mark.parametrize("name", TABLE3_ORDER)
def test_table1_row(benchmark, name, bench_matrix):
    """Benchmark: one full simulated run of each algorithm at 256² (W=32)."""
    res = benchmark.pedantic(_run, args=(name, bench_matrix),
                             rounds=1, iterations=1)
    assert check_result(res, bench_matrix)
    check = check_counts(res)
    assert check.ok, str(check)


def test_print_table1(benchmark, bench_matrix):
    """Emit the measured Table I (paper format + measured counts)."""
    def render():
        lines = [render_table1(bench_matrix.shape[0]), "",
                 "Measured on the functional simulator (n=256, W=32):"]
        header = (f"{'algorithm':<14} {'kernels':>7} {'max threads':>11} "
                  f"{'reads':>9} {'writes':>9}")
        lines.append(header)
        lines.append("-" * len(header))
        for name in TABLE3_ORDER:
            res = _RESULTS.get(name) or _run(name, bench_matrix)
            t = res.report.traffic
            lines.append(f"{name:<14} {res.kernel_calls:>7} "
                         f"{res.max_threads:>11} "
                         f"{t.global_read_requests:>9} "
                         f"{t.global_write_requests:>9}")
        return "\n".join(lines)

    table = benchmark.pedantic(render, rounds=1, iterations=1)
    print("\n" + table)
    assert "1R1W-SKSS-LB" in table
