"""Regenerates **Table III**: running times and overheads, 256² to 32K².

The timing source is the analytic TITAN V model calibrated only against the
paper's cudaMemcpy duplication row (see ``repro.perfmodel``); traffic inputs
are the closed forms validated against the simulator.  The printed table
interleaves the model's cells with the paper's measured cells, and the
assertions encode the paper's Section V conclusions (who wins, the overhead
floors, where the minimum overhead lands).
"""

import math

import pytest

from repro.perfmodel import (PAPER_DUPLICATION_MS, SIZES, TABLE3_ORDER,
                             TitanVModel, model_table3, paper_best_ms,
                             render_table3)


@pytest.fixture(scope="module")
def model():
    return TitanVModel()


def _best(table, name, k):
    return min(v[k] for v in table[name].values() if not math.isnan(v[k]))


def test_render_full_table3(benchmark, model):
    text = benchmark.pedantic(lambda: render_table3(model), rounds=3,
                              iterations=1)
    print("\n" + text)
    assert "matrix duplication" in text


def test_table3_model_generation(benchmark, model):
    """Benchmark the full 7-algorithm x 3-width x 8-size prediction sweep."""
    table = benchmark(model_table3, model)
    assert len(table) == len(TABLE3_ORDER) + 1


def test_headline_overheads(benchmark, model):
    """The paper's abstract: SKSS-LB's overhead over duplication bottoms out
    in single digits (paper: 5.7 % at 8K²)."""
    table = benchmark.pedantic(model_table3, args=(model,), rounds=1,
                               iterations=1)
    dup = table["duplication"][None]
    overheads = [(_best(table, "1R1W-SKSS-LB", k) - dup[k]) / dup[k] * 100
                 for k in range(len(SIZES))]
    print("\nSKSS-LB overhead vs duplication (model): "
          + ", ".join(f"{SIZES[k]}:{o:.1f}%" for k, o in enumerate(overheads)))
    assert min(overheads) < 12.0
    # Winner at every size.
    for k in range(len(SIZES)):
        lb = _best(table, "1R1W-SKSS-LB", k)
        assert all(lb <= _best(table, nm, k) for nm in TABLE3_ORDER)


def test_model_vs_paper_ratio_report(benchmark, model):
    """Print the per-cell model/paper ratios recorded in EXPERIMENTS.md."""
    table = benchmark.pedantic(model_table3, args=(model,), rounds=1,
                               iterations=1)
    lines = [f"{'algorithm':<14}" + "".join(f"{n:>9}" for n in SIZES)]
    for name in TABLE3_ORDER:
        ratios = [_best(table, name, k) / paper_best_ms(name, k)
                  for k in range(len(SIZES))]
        lines.append(f"{name:<14}" + "".join(f"{r:>9.2f}" for r in ratios))
    dup_ratios = [table["duplication"][None][k] / PAPER_DUPLICATION_MS[k]
                  for k in range(len(SIZES))]
    lines.append(f"{'duplication':<14}" + "".join(f"{r:>9.2f}"
                                                  for r in dup_ratios))
    print("\nmodel/paper best-time ratios:\n" + "\n".join(lines))
    assert all(1 / 3 <= r <= 3 for r in dup_ratios)
