"""The W sweep of Table III: per-width rows and the best-W trend.

The paper sweeps W in {32, 64, 128} for every tile-based algorithm; the best
width grows with the matrix (narrow tiles lose to per-tile flag/atomic
overhead at large n, wide tiles lose to low occupancy at small n).  The model
rows are printed per algorithm; measured simulator traffic at two widths is
benchmarked for the paper's algorithm.
"""

import math

import pytest

from repro.gpusim import GPU
from repro.perfmodel import SIZES, TILE_WIDTHS, TitanVModel
from repro.perfmodel.table import TABLE3_ORDER
from repro.sat import SKSSLB1R1W

TILE_ALGOS = [n for n in TABLE3_ORDER if not n.startswith("2R2W")]


def test_model_w_sweep_table(benchmark):
    model = TitanVModel()

    def build():
        rows = {}
        for name in TILE_ALGOS:
            rows[name] = {W: [model.estimate(name, n, W=W).total_ms
                              if n % W == 0 and W <= n else math.nan
                              for n in SIZES] for W in TILE_WIDTHS}
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    lines = []
    for name, by_w in rows.items():
        for W, times in by_w.items():
            cells = "".join(f"{v:>10.4f}" if not math.isnan(v) else f"{'-':>10}"
                            for v in times)
            lines.append(f"{name:<14} W={W:<4}{cells}")
    print("\nmodel W sweep (ms):\n" + "\n".join(lines))

    # Trend: for SKSS-LB, the best W at 32K is wider than the best W at 512.
    lb = rows["1R1W-SKSS-LB"]
    k_small, k_big = SIZES.index(512), SIZES.index(32768)
    best_small = min(TILE_WIDTHS, key=lambda W: lb[W][k_small])
    best_big = min(TILE_WIDTHS, key=lambda W: lb[W][k_big])
    assert best_big >= best_small
    assert best_big == 128


@pytest.mark.parametrize("W", [32, 64])
def test_simulated_w_traffic(benchmark, W, small_bench_matrix):
    """Measured overhead traffic shrinks with W: the O(n²/W) term is real."""
    res = benchmark.pedantic(
        lambda: SKSSLB1R1W(tile_width=W).run(small_bench_matrix, GPU(seed=1)),
        rounds=1, iterations=1)
    n2 = small_bench_matrix.size
    extra = res.report.traffic.global_write_requests - n2
    print(f"\nW={W}: write overhead {extra} elements "
          f"({100 * extra / n2:.1f}% of n²)")
    assert extra <= 8 * n2 / W
