"""Shared fixtures for the benchmark harness.

Each benchmark regenerates a paper artefact (Table I, Table III, the W and r
sweeps, or an ablation) and prints it; run with ``-s`` to see the tables:

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def bench_matrix() -> np.ndarray:
    """The simulated-measurement workload: 256x256 (8x8 tiles at W=32)."""
    rng = np.random.default_rng(2018)
    return rng.integers(0, 100, size=(256, 256)).astype(np.float64)


@pytest.fixture(scope="session")
def small_bench_matrix() -> np.ndarray:
    rng = np.random.default_rng(2018)
    return rng.integers(0, 100, size=(128, 128)).astype(np.float64)
