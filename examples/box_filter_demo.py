#!/usr/bin/env python3
"""SAT applications demo: box blur, adaptive thresholding, local variance.

Renders small ASCII previews of each stage on synthetic scenes.  The SATs are
built by the paper's 1R1W-SKSS-LB algorithm running on the GPU simulator.
"""

import numpy as np

from repro.apps import (adaptive_threshold, box_filter, global_threshold,
                        local_moments)
from repro.apps.synthetic import gaussian_blobs, noisy_document
from repro.gpusim import GPU

RAMP = " .:-=+*#%@"


def ascii_render(img: np.ndarray, width: int = 48) -> str:
    """Downsample an image to a small ASCII block picture."""
    step = max(1, img.shape[0] // (width // 2))
    small = img[::step, ::step]
    lo, hi = small.min(), small.max()
    norm = (small - lo) / (hi - lo) if hi > lo else np.zeros_like(small)
    idx = (norm * (len(RAMP) - 1)).astype(int)
    return "\n".join("".join(RAMP[v] * 2 for v in row) for row in idx)


def main() -> None:
    n = 128
    print("=== Box blur (radius 6) via SAT on the simulator ===")
    img = gaussian_blobs(n, num_blobs=6, seed=7)
    blurred = box_filter(img, 6, algorithm="1R1W-SKSS-LB", gpu=GPU(seed=1))
    print("input:")
    print(ascii_render(img))
    print("\nblurred:")
    print(ascii_render(blurred))

    print("\n=== Adaptive vs global thresholding on an unevenly lit page ===")
    doc = noisy_document(n, seed=3)
    adaptive = adaptive_threshold(doc, radius=8, ratio=0.3,
                                  algorithm="1R1W-SKSS-LB", gpu=GPU(seed=2))
    flooded = global_threshold(doc, level=0.5)
    print("document (dark on the left, bright on the right):")
    print(ascii_render(doc))
    print(f"\nadaptive threshold: {adaptive.mean() * 100:.1f}% foreground "
          f"(text on both sides)")
    print(ascii_render(adaptive.astype(float)))
    print(f"\nglobal threshold:   {flooded.mean() * 100:.1f}% foreground "
          f"(dark side floods)")

    print("\n=== Local variance (variance-shadow-map moments) ===")
    mean, var = local_moments(img, 5)
    print(f"mean of means: {mean.mean():.4f}  "
          f"peak local variance: {var.max():.5f}")
    print("variance map (bright = textured):")
    print(ascii_render(var))


if __name__ == "__main__":
    main()
