#!/usr/bin/env python3
"""Run all seven SAT algorithms of the paper on the simulator and compare.

Prints a measured mini-Table I — kernel launches, peak threads, global
reads/writes per element, spins, fences — plus the emergent simulator cycles,
for a 256x256 matrix at W=32.  A second table times the host execution
engines (serial tile loop, multi-core wavefront, fork/join 2R2W) on a larger
matrix.
"""

import time

import numpy as np

from repro import ALGORITHMS, get_algorithm, sat_reference
from repro.gpusim import GPU
from repro.perfmodel.table import TABLE3_ORDER
from repro.sat.registry import HOST_ENGINES, host_sat


def main() -> None:
    rng = np.random.default_rng(0)
    n = 256
    a = rng.integers(0, 100, size=(n, n)).astype(np.float64)
    ref = sat_reference(a)
    n2 = n * n

    header = (f"{'algorithm':<14} {'ok':<3} {'kernels':>7} {'threads':>8} "
              f"{'rd/elem':>8} {'wr/elem':>8} {'spins':>6} {'fences':>6} "
              f"{'Mcycles':>8}")
    print(f"n = {n}, W = 32, random scheduling, relaxed consistency\n")
    print(header)
    print("-" * len(header))
    for name in TABLE3_ORDER:
        res = get_algorithm(name).run(a, GPU(seed=1,
                                             scheduler_policy="random"))
        t = res.report.traffic
        cycles = sum(k.sim_cycles for k in res.report.kernels) / 1e6
        ok = "yes" if np.array_equal(res.sat, ref) else "NO"
        print(f"{name:<14} {ok:<3} {res.kernel_calls:>7} "
              f"{res.max_threads:>8} {t.global_read_requests / n2:>8.3f} "
              f"{t.global_write_requests / n2:>8.3f} "
              f"{t.spin_iterations:>6} {t.fences:>6} {cycles:>8.2f}")

    print("\nReading the table:")
    print(" * 2R2W/2R2W-optimal move every element twice (rd+wr = 4/elem).")
    print(" * 2R1W reads twice, writes once (3/elem).")
    print(" * the 1R1W family is at the global-memory optimum (~2/elem).")
    print(" * only the SKSS variants spin (single-kernel soft sync); only")
    print("   1R1W-SKSS-LB combines that with full n²/m parallelism.")

    compare_host_engines()


def compare_host_engines(n: int = 1024) -> None:
    """Time the host execution engines on the same 1R1W-SKSS-LB dataflow."""
    rng = np.random.default_rng(1)
    a = rng.integers(0, 100, size=(n, n)).astype(np.float64)
    ref = sat_reference(a)

    print(f"\nHost execution engines (n = {n}, W = 32, 1R1W-SKSS-LB):\n")
    print(f"{'engine':<12} {'ok':<3} {'seconds':>8}")
    print("-" * 25)
    for engine in HOST_ENGINES:
        t0 = time.perf_counter()
        sat = host_sat(a, algorithm="1R1W-SKSS-LB", engine=engine)
        dt = time.perf_counter() - t0
        ok = "yes" if np.allclose(sat, ref) else "NO"
        print(f"{engine:<12} {ok:<3} {dt:>8.3f}")
    print("\n * serial runs the algorithm's own tile loop;")
    print(" * wavefront dispatches anti-diagonal tile chunks to a pool")
    print("   (bit-identical to serial);")
    print(" * parallel is the banded fork/join 2R2W scan (plain cumsums).")


if __name__ == "__main__":
    main()
