#!/usr/bin/env python3
"""Integral-image feature detection: box-Hessian blobs + NCC template match.

Both workloads live entirely on SATs: the SURF-style detector evaluates
box-filter second derivatives with O(1) lookups per pixel per scale, and the
NCC matcher normalizes correlation scores with two SATs (sums and energies).
"""

import numpy as np

from repro.apps.blob_detection import detect_blobs, hessian_response
from repro.apps.synthetic import gaussian_blobs
from repro.apps.template_match import best_match, ncc_match


def main() -> None:
    n = 96
    img = gaussian_blobs(n, num_blobs=4, seed=9)
    true_peaks = _true_maxima(img)

    print("=== SURF-style box-Hessian blob detection ===")
    blobs = detect_blobs(img, lobes=(3, 5, 7), threshold=1e-6)
    print(f"detected {len(blobs)} blob candidates across 3 scales; top 5:")
    for b in blobs[:5]:
        print(f"  ({b.row:3d},{b.col:3d})  lobe={b.lobe}  "
              f"response={b.response:.2e}")
    hits = sum(1 for (pi, pj) in true_peaks
               if any(abs(b.row - pi) <= 5 and abs(b.col - pj) <= 5
                      for b in blobs[:8]))
    print(f"planted intensity maxima recovered: {hits}/{len(true_peaks)}")

    resp = hessian_response(img, lobe=5)
    print(f"response map: max={resp.max():.2e} at "
          f"{np.unravel_index(np.argmax(resp), resp.shape)}")

    print("\n=== NCC template matching (brightness/contrast invariant) ===")
    rng = np.random.default_rng(4)
    scene = rng.random((80, 80))
    top, left = 23, 41
    template = scene[top:top + 12, left:left + 16].copy()
    # Distort the scene's intensities: NCC must still find the placement.
    distorted = scene * 2.5 + 0.7
    i, j, score = best_match(distorted, template)
    print(f"template planted at ({top},{left}); "
          f"found at ({i},{j}) with score {score:.6f}")
    ncc = ncc_match(distorted, template)
    runner_up = np.partition(ncc.ravel(), -2)[-2]
    print(f"runner-up score: {runner_up:.3f} (clear margin)")


def _true_maxima(img: np.ndarray, radius: int = 6) -> list[tuple[int, int]]:
    peaks = []
    for i in range(radius, img.shape[0] - radius):
        for j in range(radius, img.shape[1] - radius):
            win = img[i - radius:i + radius + 1, j - radius:j + radius + 1]
            if img[i, j] >= win.max() and img[i, j] > 0.3:
                peaks.append((i, j))
    return peaks


if __name__ == "__main__":
    main()
