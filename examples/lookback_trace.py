#!/usr/bin/env python3
"""Inside 1R1W-SKSS-LB: serial numbers, status bytes, and a look-back trace.

Prints the diagonal-major serial numbering of Figure 9, runs the kernel on a
low-residency device, and reports the per-tile spin/look-back statistics that
show *why* the algorithm tolerates any block schedule.
"""

import numpy as np

from repro.gpusim import GPU, TINY_DEVICE
from repro.gpusim.counters import LaunchSummary
from repro.primitives.tile import TileGrid
from repro.sat import SKSSLB1R1W, sat_reference
from repro.sat.skss_lb import serial_to_tile, tile_serial_number


def main() -> None:
    t = 5
    print(f"=== Figure 9: diagonal-major serial numbers ({t}x{t} tiles) ===")
    for I in range(t):
        print("  ".join(f"{tile_serial_number(I, J, t):2d}" for J in range(t)))
    print("\nacquisition order (atomicAdd returns 0, 1, 2, ...):")
    order = [serial_to_tile(s, t) for s in range(t * t)]
    print("  " + " -> ".join(f"T{ij}" for ij in order[:8]) + " -> ...")
    print("every dependency (left, above, diagonal) has a smaller serial,")
    print("so a spinning block always waits on a resident or retired one.\n")

    n, W = 96, 32
    rng = np.random.default_rng(1)
    a = rng.integers(0, 10, size=(n, n)).astype(np.float64)

    print(f"=== Running on a tiny device (2 SMs, residency 2), n={n} ===")
    gpu = GPU(device=TINY_DEVICE, seed=5, scheduler_policy="lifo",
              max_resident_blocks=2)
    alg = SKSSLB1R1W()
    a_buf = gpu.alloc("_sat_a", (n, n), np.float64, fill=a)
    b_buf = gpu.alloc("_sat_b", (n, n), np.float64)
    report = LaunchSummary()
    alg._run_device(gpu, a_buf, b_buf, TileGrid(n=n, W=W), report)

    ok = np.array_equal(gpu.read("_sat_b"), sat_reference(a))
    traffic = report.traffic
    tiles = (n // W) ** 2
    print(f"correct: {ok}")
    print(f"tiles: {tiles}, scheduler steps: {report.kernels[0].scheduler_steps}")
    print(f"spin iterations: {traffic.spin_iterations} "
          f"({traffic.spin_iterations / tiles:.2f} per tile)")
    print(f"fences: {traffic.fences} "
          f"({traffic.fences / tiles:.1f} per tile - one per publish)")

    print("\nfinal status bytes (R should be 4, C should be 2 everywhere):")
    print("R:", gpu.read("_sat_s_R").ravel().tolist())
    print("C:", gpu.read("_sat_s_C").ravel().tolist())

    gs = gpu.read("_sat_s_gs")
    print("\npublished GS (running totals of whole-tile rectangles):")
    for row in gs:
        print("  " + "  ".join(f"{v:7.0f}" for v in row))
    print(f"bottom-right GS equals the matrix total: "
          f"{gs[-1, -1] == a.sum()}")

    print("\n=== Why the look-back wins: dependence depth ===")
    from repro.analysis.waves import (lookback_profile, render_profile,
                                      wavefront_profile)
    print(render_profile(wavefront_profile(16)))
    print()
    print(render_profile(lookback_profile(16)))


if __name__ == "__main__":
    main()
