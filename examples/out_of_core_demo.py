#!/usr/bin/env python3
"""Out-of-core SAT: matrices bigger than device memory (extension demo).

Streams a tall matrix through the banded SAT in row bands, computing each
band's SAT with the paper's algorithm, answering rectangle queries while
streaming, and showing the low-memory mode that retains only band-edge rows.
"""

import numpy as np

from repro.gpusim import GPU
from repro.sat import sat_reference
from repro.sat.outofcore import OutOfCoreSAT, band_bounds, out_of_core_sat


def main() -> None:
    rng = np.random.default_rng(11)
    rows, cols = 512, 128
    a = rng.integers(0, 10, size=(rows, cols)).astype(np.float64)
    ref = sat_reference(a)

    print(f"matrix: {rows}x{cols}, processed in 128-row bands")
    print("(each square band's SAT computed by 1R1W-SKSS-LB on the simulator)")
    got = out_of_core_sat(a, band_rows=128, algorithm="1R1W-SKSS-LB",
                          gpu_factory=lambda: GPU(seed=1))
    print(f"matches reference: {np.array_equal(got, ref)}")

    print("\nstreaming mode with queries between bands:")
    oos = OutOfCoreSAT(n_cols=cols)
    for k, (lo, hi) in enumerate(band_bounds(rows, 128)):
        oos.push_band(a[lo:hi])
        q = oos.rect_sum(0, 0, hi - 1, cols - 1)
        print(f"  after band {k}: rows 0..{hi - 1} pushed, "
              f"total-so-far query = {q:.0f} "
              f"(direct: {a[:hi].sum():.0f})")

    print("\nlow-memory mode (keep_sat=False): only band-edge rows retained")
    lite = OutOfCoreSAT(n_cols=cols, keep_sat=False)
    for lo, hi in band_bounds(rows, 128):
        lite.push_band(a[lo:hi])
    q = lite.rect_sum(128, 10, 383, 100)
    print(f"  band-aligned query rows 128..383, cols 10..100: {q:.0f} "
          f"(direct: {a[128:384, 10:101].sum():.0f})")
    resident = cols * len(band_bounds(rows, 128))
    print(f"  retained floats: {resident} vs full SAT {rows * cols} "
          f"({100 * resident / (rows * cols):.1f}%)")


if __name__ == "__main__":
    main()
