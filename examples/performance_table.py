#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables from this repository.

Prints Table I (symbolic + numeric) and Table III (the calibrated TITAN V
model side by side with the paper's measured milliseconds), then the headline
overhead numbers.  See EXPERIMENTS.md for the recorded comparison.
"""

import math

from repro.analysis import render_table1
from repro.perfmodel import (SIZES, TABLE3_ORDER, TitanVModel, model_table3,
                             paper_best_ms, render_table3)


def main() -> None:
    print("=" * 72)
    print("Table I - theoretical comparison (numeric column: n=1024, W=32)")
    print("=" * 72)
    print(render_table1(1024))

    print()
    print("=" * 72)
    print("Table III - model predictions vs paper measurements (ms)")
    print("  model calibrated ONLY on the paper's cudaMemcpy row;")
    print("  '*' marks the best tile width per size")
    print("=" * 72)
    model = TitanVModel()
    print(render_table3(model))

    table = model_table3(model)
    dup = table["duplication"][None]

    def best(name, k):
        return min(v[k] for v in table[name].values() if not math.isnan(v[k]))

    print()
    print("Headline (paper Section V):")
    lb_oh = [(best("1R1W-SKSS-LB", k) - dup[k]) / dup[k] * 100
             for k in range(len(SIZES))]
    print(f"  model 1R1W-SKSS-LB minimum overhead: {min(lb_oh):.1f}% "
          f"(paper: 5.7%)")
    wins = all(best("1R1W-SKSS-LB", k) <= best(nm, k)
               for k in range(len(SIZES)) for nm in TABLE3_ORDER)
    print(f"  1R1W-SKSS-LB fastest at every size: {wins} (paper: yes)")
    worst = max(best(nm, k) / paper_best_ms(nm, k)
                for nm in TABLE3_ORDER for k in range(len(SIZES)))
    print(f"  worst best-cell model/paper ratio: {worst:.2f}x")


if __name__ == "__main__":
    main()
