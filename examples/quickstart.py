#!/usr/bin/env python3
"""Quickstart: compute a summed area table with the paper's algorithm.

Runs 1R1W-SKSS-LB on the functional GPU simulator, verifies the result
against the NumPy reference, answers a rectangle-sum query in O(1), and
prints the measured launch statistics (the Table I quantities).
"""

import numpy as np

from repro import compute_sat, sat_reference
from repro.gpusim import GPU
from repro.sat.reference import rect_sum


def main() -> None:
    rng = np.random.default_rng(42)
    n = 128
    a = rng.integers(0, 10, size=(n, n)).astype(np.float64)

    # A simulator with an adversarial configuration: random block scheduling
    # and relaxed store visibility - the algorithm must not care.
    gpu = GPU(seed=7, scheduler_policy="random", consistency="relaxed")
    result = compute_sat(a, algorithm="1R1W-SKSS-LB", tile_width=32, gpu=gpu)

    ok = np.array_equal(result.sat, sat_reference(a))
    print(f"matrix: {n}x{n}, algorithm: {result.algorithm}")
    print(f"correct vs reference: {ok}")
    print(result.summary())

    t = result.report.traffic
    n2 = n * n
    print(f"reads per element:  {t.global_read_requests / n2:.3f} "
          f"(1R1W optimum: 1 + O(1/W))")
    print(f"writes per element: {t.global_write_requests / n2:.3f}")
    print(f"syncthreads per tile: "
          f"{t.syncthreads / (n // 32) ** 2:.0f} (paper: 3)")

    # The point of the data structure: any rectangle sum in O(1).
    total = rect_sum(result.sat, 10, 20, 90, 110)
    print(f"sum of a[10:91, 20:111] via 4 SAT lookups: {total:.0f} "
          f"(direct: {a[10:91, 20:111].sum():.0f})")

    # The pure-NumPy host path for large matrices (no simulation overhead).
    host = compute_sat(a, simulate=False)
    print(f"host path agrees: {np.array_equal(host.sat, result.sat)}")


if __name__ == "__main__":
    main()
