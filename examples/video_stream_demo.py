#!/usr/bin/env python3
"""Streaming video on an incrementally-maintained SAT (extension demo).

A synthetic surveillance stream (static background, one moving block) is fed
through :class:`repro.apps.video.VideoSAT`: each frame repairs only the tiles
the inter-frame delta dirtied (plus their right/down carry frontier) instead
of rebuilding the whole table, while every per-frame statistic — global
mean, ROI sums, a box filter — comes from a SAT that is bit-identical to a
from-scratch computation.
"""

import numpy as np

from repro.apps.video import VideoSAT, synthetic_stream
from repro.sat import sat_reference


def main() -> None:
    n, block = 256, 24
    frames = list(synthetic_stream(n, frames=6, block=block, step=16,
                                   seed=11))
    rois = [(0, 0, 63, 63), (96, 96, 159, 159)]

    print(f"stream: {len(frames)} frames of {n}x{n} int32, "
          f"{block}x{block} block moving 16 px/frame")
    print(f"ROIs tracked: {rois}")
    with VideoSAT(frames[0], rois=rois, tile_width=32) as video:
        print(f"repair strategy: {video.engine.strategy} "
              f"(exact for integer frames)\n")
        print(f"{'frame':>5} {'mean':>8} {'ROI-0 sum':>12} {'ROI-1 sum':>12} "
              f"{'dirty':>6} {'repaired':>9}")
        for frame in frames:
            s = video.process(frame)
            print(f"{s.index:>5} {s.mean:>8.2f} {s.roi_sums[0]:>12.0f} "
                  f"{s.roi_sums[1]:>12.0f} {s.dirty_tiles:>6} "
                  f"{s.repaired_tiles:>4}/{s.total_tiles:<4}")

        ok = np.array_equal(video.sat,
                            sat_reference(frames[-1].astype(np.int64)))
        blurred = video.box_filter(radius=4)
        print(f"\nfinal SAT bit-identical to reference: {ok}")
        print(f"box filter (r=4) from the resident SAT: "
              f"mean={blurred.mean():.2f}, max={blurred.max():.1f}")
        stats = video.engine.stats
        print(f"lifetime tile work avoided vs per-frame rebuilds: "
              f"{100 * stats.savings:.0f}%")


if __name__ == "__main__":
    main()
