"""repro — reproduction of "An Optimal Parallel Algorithm for Computing the
Summed Area Table on the GPU" (Emoto, Funasaka, Tokura, Honda, Nakano, Ito,
IPDPS Workshops 2018).

The package provides:

* :mod:`repro.gpusim` — a functional CUDA-like GPU simulator (the hardware
  substitute; see DESIGN.md for the substitution argument);
* :mod:`repro.primitives` — warp scans, the diagonal shared-memory
  arrangement, tile region-sum algebra, Merrill–Garland decoupled look-back
  scans and Tokura column-wise scans;
* :mod:`repro.sat` — the paper's 1R1W-SKSS-LB algorithm plus the six
  baselines it is evaluated against, all runnable on the simulator and as
  dataflow-equivalent host implementations;
* :mod:`repro.perfmodel` — a calibrated TITAN V performance model that
  regenerates Table III;
* :mod:`repro.analysis` — closed-form Table I complexity accounting;
* :mod:`repro.apps` — SAT applications (box filter, Haar-like features,
  adaptive thresholding, local variance).

Quickstart
----------
>>> import numpy as np
>>> from repro import compute_sat, sat_reference
>>> a = np.arange(64.0).reshape(8, 8)
>>> result = compute_sat(a, algorithm="1R1W-SKSS-LB", tile_width=4)
>>> bool(np.array_equal(result.sat, sat_reference(a)))
True
"""

from repro._version import __version__
from repro.errors import (AllocationError, ConfigurationError, DeadlockError,
                          InvalidAccessError, KernelLaunchError,
                          RaceConditionError, ReproError, SimulationError)
from repro.sat import (ALGORITHMS, SATResult, compute_sat, get_algorithm,
                       sat_reference)

__all__ = [
    "__version__",
    "compute_sat", "sat_reference", "get_algorithm", "ALGORITHMS", "SATResult",
    "ReproError", "ConfigurationError", "SimulationError", "DeadlockError",
    "InvalidAccessError", "AllocationError", "KernelLaunchError",
    "RaceConditionError",
]
