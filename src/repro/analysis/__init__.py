"""Complexity accounting (Table I) and verification helpers."""

from repro.analysis.complexity import (HIGH, LOW, MEDIUM, TABLE1_ORDER,
                                       Table1Row, render_table1, table1_row)
from repro.analysis.costcheck import (Poly, check_overflow, crossval_algorithm,
                                      find_cost_bugs, prove_table1,
                                      run_costcheck)
from repro.analysis.table1 import TABLE1, Table1Sym, leading_traffic, table1_sym
from repro.analysis.numcheck import (error_bound_strings, find_numeric_bugs,
                                     run_numcheck, symbolic_depth,
                                     validate_bounds)
from repro.analysis.tolerances import (Tolerance, assert_sat_close,
                                       derived_tolerance, sat_close)
from repro.analysis.precision import (PrecisionRow, max_relative_error,
                                      precision_report, sat_float32,
                                      sat_kahan, ulps_needed)
from repro.analysis.fuzzing import (FuzzConfig, FuzzReport, fuzz,
                                    load_replay_config, run_one)
from repro.analysis.kernellint import (LintFinding, default_targets, lint_file,
                                       lint_paths, lint_source)
from repro.analysis.modelcheck import (CheckResult, LaunchCheck, PoolCheck,
                                       VIOLATION_KINDS, Violation, check,
                                       check_algorithm, check_corpus,
                                       check_model)
from repro.analysis.protomodel import (KernelProtocol, MODEL_ALGORITHMS,
                                       ProtocolModel, build_corpus_model,
                                       build_model, extract_kernel,
                                       validate_hints)
from repro.analysis.sanitizer import (PROTOCOL_RULES, RACE_RULES, Finding,
                                      SanitizeReport, SanitizeRun, Sanitizer,
                                      sanitize_algorithm, sanitize_all)
from repro.analysis.verify import CountCheck, check_counts, check_result
from repro.analysis.waves import (ParallelismProfile, lookback_profile,
                                  profile, render_profile, skss_profile,
                                  wavefront_profile)

__all__ = [
    "LOW", "MEDIUM", "HIGH", "TABLE1_ORDER", "Table1Row", "render_table1",
    "table1_row", "TABLE1", "Table1Sym", "table1_sym", "leading_traffic",
    "Poly", "run_costcheck", "prove_table1", "crossval_algorithm",
    "check_overflow", "find_cost_bugs",
    "run_numcheck", "symbolic_depth", "validate_bounds", "find_numeric_bugs",
    "error_bound_strings",
    "Tolerance", "derived_tolerance", "sat_close", "assert_sat_close",
    "CountCheck", "check_counts", "check_result",
    "PrecisionRow", "max_relative_error", "precision_report", "sat_float32",
    "sat_kahan", "ulps_needed",
    "FuzzConfig", "FuzzReport", "fuzz", "run_one", "load_replay_config",
    "Sanitizer", "Finding", "SanitizeRun", "SanitizeReport",
    "RACE_RULES", "PROTOCOL_RULES",
    "sanitize_algorithm", "sanitize_all",
    "LintFinding", "lint_source", "lint_file", "lint_paths", "default_targets",
    "KernelProtocol", "MODEL_ALGORITHMS", "ProtocolModel", "build_model",
    "build_corpus_model", "extract_kernel", "validate_hints",
    "CheckResult", "LaunchCheck", "PoolCheck", "Violation", "VIOLATION_KINDS",
    "check", "check_algorithm", "check_corpus", "check_model",
    "ParallelismProfile", "lookback_profile", "profile", "render_profile",
    "skss_profile", "wavefront_profile",
]
