"""Complexity accounting (Table I) and verification helpers."""

from repro.analysis.complexity import (HIGH, LOW, MEDIUM, TABLE1_ORDER,
                                       Table1Row, render_table1, table1_row)
from repro.analysis.precision import (PrecisionRow, max_relative_error,
                                      precision_report, sat_float32,
                                      sat_kahan, ulps_needed)
from repro.analysis.fuzzing import FuzzConfig, FuzzReport, fuzz
from repro.analysis.verify import CountCheck, check_counts, check_result
from repro.analysis.waves import (ParallelismProfile, lookback_profile,
                                  profile, render_profile, skss_profile,
                                  wavefront_profile)

__all__ = [
    "LOW", "MEDIUM", "HIGH", "TABLE1_ORDER", "Table1Row", "render_table1",
    "table1_row", "CountCheck", "check_counts", "check_result",
    "PrecisionRow", "max_relative_error", "precision_report", "sat_float32",
    "sat_kahan", "ulps_needed",
    "FuzzConfig", "FuzzReport", "fuzz",
    "ParallelismProfile", "lookback_profile", "profile", "render_profile",
    "skss_profile", "wavefront_profile",
]
