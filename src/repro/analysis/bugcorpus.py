"""Deliberately buggy look-back kernels: ground truth for every checker layer.

Each kernel seeds one classic concurrency bug from the paper's protocol
domain; the corpus is the acceptance test for all three detection layers:

* **dynamically** — running a kernel under :class:`repro.analysis.Sanitizer`
  must produce the spec's ``expected_dynamic`` finding rules;
* **statically (lint)** — :func:`repro.analysis.lint_file` over this very
  file must flag the kernel with the spec's ``expected_lint`` rules;
* **statically (model checking)** — :func:`repro.analysis.modelcheck.check`
  over the kernel's extracted protocol model must produce a counterexample
  whose violation kind matches ``expected_model``, exhaustively (no sampling).

``correct_kernel`` is the control: the same communication pattern written
with :func:`repro.primitives.lookback.publish` must be clean all three ways.

The corpus lives in ``src`` (not ``tests``) so the model checker and the
sanitize-mode fuzzer can replay entries by name; ``tests/analysis/
bug_corpus.py`` re-exports it for the historical import path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.sanitizer import Sanitizer
from repro.errors import ConfigurationError
from repro.gpusim import GPU, TINY_DEVICE
from repro.primitives.lookback import publish


def correct_kernel(ctx, data, status, out):
    """Control: data -> fence -> flag via the publish helper (no bug)."""
    if ctx.block_id == 0:
        publish(ctx, [(data, np.asarray([0]), np.asarray([42.0]))],
                status, 0, 1)
        yield ctx.syncthreads()
    else:
        yield from ctx.wait_until(status, 0, lambda v: v >= 1)
        ctx.gstore_scalar(out, 0, ctx.gload_scalar(data, 0))


def dropped_fence_kernel(ctx, data, status, out):
    """BUG: the __threadfence() between data store and flag store is missing,
    so the flag may become visible while the data is still store-buffered."""
    if ctx.block_id == 0:
        ctx.gstore_scalar(data, 0, 42.0)
        ctx.gstore_scalar(status, 0, 1)
        yield ctx.syncthreads()
    else:
        yield from ctx.wait_until(status, 0, lambda v: v >= 1)
        ctx.gstore_scalar(out, 0, ctx.gload_scalar(data, 0))


def premature_flag_kernel(ctx, data, status, out):
    """BUG: the flag is raised before the data is even written; the fence
    afterwards is too late — a reader may consume the pre-publish value."""
    if ctx.block_id == 0:
        ctx.gstore_scalar(status, 0, 1)
        yield ctx.syncthreads()
        ctx.gstore_scalar(data, 0, 42.0)
        ctx.threadfence()
        yield ctx.syncthreads()
    else:
        yield from ctx.wait_until(status, 0, lambda v: v >= 1)
        ctx.gstore_scalar(out, 0, ctx.gload_scalar(data, 0))


def nonatomic_counter_kernel(ctx, counter, out):
    """BUG: the tile ticket is taken with a plain read-modify-write instead
    of atomicAdd, so two blocks can acquire the same ticket."""
    ticket = ctx.gload_scalar(counter, 0)
    ctx.gstore_scalar(counter, 0, ticket + 1)
    yield ctx.syncthreads()
    ctx.gstore_scalar(out, ctx.block_id, ticket)


def store_in_spin_kernel(ctx, data, status, out):
    """BUG: a progress marker is stored inside a hand-rolled spin loop, so
    the write is re-issued on every poll iteration — its global traffic is
    schedule-unbounded (and invisible to leading-term accounting)."""
    if ctx.block_id == 0:
        publish(ctx, [(data, np.asarray([0]), np.asarray([42.0]))],
                status, 0, 1)
        yield ctx.syncthreads()
    else:
        while ctx.gload_scalar(status, 0) < 1:
            ctx.gstore_scalar(out, 1, 1.0)  # re-written every poll
            yield ctx.syncthreads()
        ctx.gstore_scalar(out, 0, ctx.gload_scalar(data, 0))


def double_fence_kernel(ctx, data, status, out):
    """BUG: two back-to-back __threadfence() calls; the second has nothing
    to commit and is pure added latency on every block."""
    ctx.gstore_scalar(data, 0, 42.0)
    ctx.threadfence()
    ctx.threadfence()
    ctx.gstore_scalar(out, ctx.block_id, 1.0)
    yield ctx.syncthreads()


def redundant_read_kernel(ctx, data, status, out):
    """BUG: the same global element is loaded twice with the lexically
    identical access — the second read is pure excess traffic (a register
    or shared-memory copy serves it for free)."""
    first = ctx.gload_scalar(data, 0)
    second = ctx.gload_scalar(data, 0)
    ctx.gstore_scalar(out, ctx.block_id, first + second)
    yield ctx.syncthreads()


def rounding_roundtrip_kernel(ctx, data, status, out):
    """BUG: the accumulator is updated as ``work += new - work`` — the exact
    shape that caused the PR 4 carry-application rounding regression.  The
    subtraction against the current accumulator re-rounds it and cancels low
    bits, so the update is *not* equivalent to ``work = new`` in float
    arithmetic once ``work`` carries rounding from earlier steps."""
    work = ctx.gload_scalar(data, 0)
    for _ in range(3):
        new = work + ctx.gload_scalar(data, 0)
        work += new - work   # roundtrip update: drops low-order bits
    ctx.gstore_scalar(out, ctx.block_id, work)
    yield ctx.syncthreads()


def _flag_buffers(gpu: GPU):
    data = gpu.alloc("data", (1,), np.float64, fill=0.0)
    status = gpu.alloc("status", (1,), np.int64, fill=0, kind="status",
                       status_values=(0, 1))
    out = gpu.alloc("out", (2,), np.float64, fill=0.0)
    return (data, status, out)


def _counter_buffers(gpu: GPU):
    counter = gpu.alloc("counter", (1,), np.int64, fill=0, kind="counter")
    out = gpu.alloc("out", (2,), np.float64, fill=0.0)
    return (counter, out)


@dataclass(frozen=True)
class BugSpec:
    """One corpus entry: the kernel, its harness, and what must be caught."""

    name: str
    kernel: Callable
    buffers: Callable[[GPU], tuple]
    expected_dynamic: tuple[str, ...]  # >=1 of these rules must fire
    expected_lint: tuple[str, ...]     # each of these rules must fire
    expected_model: str = ""           # modelcheck violation kind ("" = clean)
    expected_cost: str = ""            # costcheck finding kind ("" = clean)
    expected_numeric: str = ""         # numcheck finding kind ("" = clean)


CORPUS = (
    BugSpec("dropped-fence", dropped_fence_kernel, _flag_buffers,
            expected_dynamic=("missing-fence",),
            expected_lint=("KL001", "KL003"),
            expected_model="stale-read"),
    BugSpec("premature-flag", premature_flag_kernel, _flag_buffers,
            expected_dynamic=("unordered-write", "unordered-read",
                              "stale-read"),
            expected_lint=("KL003",),
            expected_model="stale-read"),
    BugSpec("nonatomic-counter", nonatomic_counter_kernel, _counter_buffers,
            expected_dynamic=("plain-counter-store",),
            expected_lint=("KL002",),
            expected_model="duplicate-ticket"),
)

CONTROL = BugSpec("correct", correct_kernel, _flag_buffers,
                  expected_dynamic=(), expected_lint=(), expected_model="")

#: Planted memory-traffic regressions: each must be rejected statically by
#: :func:`repro.analysis.costcheck.find_cost_bugs` with the spec's
#: ``expected_cost`` kind, and (where a lint rule exists for the shape) by
#: lint rule KL006.  Kept out of :data:`CORPUS` so the protocol layers'
#: clean/dirty pins are unchanged.
COST_CORPUS = (
    BugSpec("store-in-spin", store_in_spin_kernel, _flag_buffers,
            expected_dynamic=(), expected_lint=("KL005", "KL006"),
            expected_cost="store-in-spin"),
    BugSpec("double-fence", double_fence_kernel, _flag_buffers,
            expected_dynamic=(), expected_lint=("KL006",),
            expected_cost="redundant-fence"),
    BugSpec("redundant-read", redundant_read_kernel, _flag_buffers,
            expected_dynamic=(), expected_lint=(),
            expected_cost="excess-read"),
)

#: Planted numerical-accuracy regressions: each must be rejected statically
#: both by :func:`repro.analysis.numcheck.find_numeric_bugs` with the spec's
#: ``expected_numeric`` kind and by lint rule KL007, while every real Table I
#: kernel stays clean (numcheck's control sweep pins that).  Kept out of
#: :data:`CORPUS` so the protocol layers' clean/dirty pins are unchanged.
NUMERIC_CORPUS = (
    BugSpec("rounding-roundtrip", rounding_roundtrip_kernel, _flag_buffers,
            expected_dynamic=(), expected_lint=("KL007",),
            expected_numeric="rounding-roundtrip"),
)


def get_spec(name: str) -> BugSpec:
    """Look a corpus entry (or the control) up by name."""
    for spec in CORPUS + COST_CORPUS + NUMERIC_CORPUS + (CONTROL,):
        if spec.name == name:
            return spec
    known = tuple(s.name for s in CORPUS + COST_CORPUS + NUMERIC_CORPUS
                  + (CONTROL,))
    raise ConfigurationError(
        f"unknown bug-corpus entry '{name}'; choose from {known}")


def run_spec(spec: BugSpec, *, seed: int = 0, consistency: str = "relaxed",
             policy: str = "random",
             spin_bound: int | None = None) -> Sanitizer:
    """Run one corpus kernel under the sanitizer; returns it for inspection."""
    sanitizer = Sanitizer()
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
              consistency=consistency, max_resident_blocks=2,
              sanitizer=sanitizer, spin_bound=spin_bound)
    args = spec.buffers(gpu)
    gpu.launch(spec.kernel, grid_blocks=2, threads_per_block=32, args=args)
    return sanitizer
