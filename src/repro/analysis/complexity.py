"""Closed-form Table I accounting: kernel calls, threads, reads, writes.

The paper's Table I characterises each algorithm by four quantities.  This
module provides them in two forms:

* the *symbolic* strings exactly as the paper prints them (for rendering the
  table), and
* *closed-form numeric predictions* — leading term plus our implementation's
  known lower-order overheads — that the test-suite checks against counts
  *measured* from the functional simulator.

Conventions: ``n`` is the matrix side, ``W`` the tile width,
``m = W²/threads_per_block`` (the paper's thread-dilution parameter), ``t =
n/W`` the tiles per side, ``r`` the hybrid parameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.table1 import (HIGH, LOW, MEDIUM, TABLE1_ORDER,
                                   table1_sym)
from repro.errors import ConfigurationError

__all__ = ["LOW", "MEDIUM", "HIGH", "TABLE1_ORDER", "Table1Row",
           "table1_row", "render_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One algorithm's Table I entries, symbolic and numeric."""

    algorithm: str
    kernel_calls_sym: str
    threads_sym: str
    parallelism: str
    reads_sym: str
    writes_sym: str
    kernel_calls: int
    max_threads: int
    reads: float
    writes: float


def _tile_params(n: int, W: int, threads_per_block: int) -> tuple[int, float]:
    if n % W:
        raise ConfigurationError(f"n={n} not a multiple of W={W}")
    t = n // W
    threads = min(threads_per_block, W * W)
    m = W * W / threads
    return t, m


def table1_row(algorithm: str, n: int, *, W: int = 32,
               threads_per_block: int = 1024, r: float = 0.25) -> Table1Row:
    """Table I entries for ``algorithm`` at the given parameters.

    Numeric reads/writes are the paper's leading terms plus our
    implementation's concrete lower-order terms (boundary vectors, status
    flags, look-back traffic is excluded since it is schedule-dependent);
    tests assert the measured counts land between the leading term and the
    prediction plus a small look-back allowance.
    """
    t, m = _tile_params(n, W, threads_per_block)
    n2 = float(n) * n
    sym = table1_sym(algorithm)  # raises ConfigurationError on unknown names

    def row(kernel_calls: int, max_threads: int, reads: float,
            writes: float) -> Table1Row:
        """Symbolic columns come verbatim from the shared table."""
        return Table1Row(
            algorithm, sym.kernel_calls, sym.threads, sym.parallelism,
            sym.reads, sym.writes, kernel_calls=kernel_calls,
            max_threads=max_threads, reads=reads, writes=writes)

    # Numeric reads/writes are the paper's *leading* terms (guaranteed lower
    # bounds); tests allow measured counts to exceed them by the O(n^2/W)
    # boundary/status/look-back allowance.
    if algorithm == "2R2W":
        return row(kernel_calls=2, max_threads=n, reads=2 * n2, writes=2 * n2)
    if algorithm == "2R2W-optimal":
        # Our row phase assigns one element per thread (m = 1), so the peak
        # thread count is n^2.
        return row(kernel_calls=2, max_threads=int(n2),
                   reads=2 * n2, writes=2 * n2)
    if algorithm == "2R1W":
        # The global-sums kernel launches 2*lane_blocks+1 blocks, which can
        # exceed the t² tile blocks on tiny grids.
        tpb = min(threads_per_block, W * W)
        lane_blocks = (t * W + tpb - 1) // tpb
        widest = max(t * t, 2 * lane_blocks + 1) * tpb
        return row(kernel_calls=3, max_threads=max(int(n2 / m), widest),
                   reads=2 * n2, writes=n2)
    if algorithm == "1R1W":
        return row(kernel_calls=2 * t - 1, max_threads=int(t * W * W / m),
                   reads=n2, writes=n2)
    if algorithm == "(1+r)R1W":
        ka = min(t, round(math.sqrt(r) * t))
        kc = max(t - 1, round((2 - math.sqrt(r)) * t) - 1)
        band_a = sum(min(k + 1, t) for k in range(ka))
        band_c = sum(t - abs(k - (t - 1)) for k in range(kc + 1, 2 * t - 1))
        wave = max(0, min(kc, 2 * t - 2) - ka + 1)
        kernels = wave + (3 if band_a else 0) + (3 if band_c else 0)
        extra = float((band_a + band_c) * W * W)  # exact band re-read volume
        tpb = min(threads_per_block, W * W)
        lane_blocks = (t * W + tpb - 1) // tpb
        widest = max(band_a, band_c, t,
                     (2 * lane_blocks + 1) if (band_a or band_c) else 0) * tpb
        return row(kernel_calls=kernels, max_threads=int(widest),
                   reads=n2 + extra, writes=n2)
    if algorithm == "1R1W-SKSS":
        return row(kernel_calls=1, max_threads=int(t * W * W / m),
                   reads=n2, writes=n2)
    if algorithm == "1R1W-SKSS-LB":
        return row(kernel_calls=1, max_threads=int(n2 / m),
                   reads=n2, writes=n2)
    raise ConfigurationError(f"no Table I row for algorithm '{algorithm}'")


def render_table1(n: int | None = None, *, W: int = 32,
                  threads_per_block: int = 1024, r: float = 0.25) -> str:
    """Render Table I; with ``n`` given, append the numeric predictions."""
    header = ["Parallel algorithms", "kernel calls", "threads", "parallelism",
              "global memory reads", "global memory writes"]
    rows = [header]
    for name in TABLE1_ORDER:
        row = table1_row(name, n or 1024, W=W,
                         threads_per_block=threads_per_block, r=r)
        cells = [row.algorithm, row.kernel_calls_sym, row.threads_sym,
                 row.parallelism, row.reads_sym, row.writes_sym]
        if n is not None:
            cells[1] += f" [{row.kernel_calls}]"
            cells[2] += f" [{row.max_threads}]"
            cells[4] += f" [{row.reads:.3g}]"
            cells[5] += f" [{row.writes:.3g}]"
        rows.append(cells)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    for i, cells in enumerate(rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
