"""Static cost verification: prove Table I's memory traffic from kernel ASTs.

The dynamic counters (:mod:`repro.gpusim.counters`) *measure* each
algorithm's global-memory traffic; this module *derives* it, symbolically,
from the same kernel ASTs that :mod:`repro.analysis.protomodel` extracts, and
proves three things about the code we actually execute:

1. **Table I optimality** — every counted global access site in the 13
   kernels carries a ``COST_HINTS`` annotation in its module (execution
   count, access width, coalescing pattern, as functions of the geometry).
   Interpreting the sites over *symbolic* geometry (``t = n/W`` tiles per
   side, ``W`` the tile width) yields each algorithm's read/write request
   counts as bivariate polynomials in ``(t, W)``; the leading ``n²``
   coefficient and the remainder class must equal the row declared in
   :mod:`repro.analysis.table1` (2 reads/2 writes for 2R2W, ``1+r`` reads for
   the hybrid, 1R1W for SKSS, ...).  A kernel edit that adds traffic — or a
   hint that no longer matches the source — fails here, statically, before
   any benchmark runs.

2. **Transaction prediction** — each access's 32-byte-segment transaction
   count follows from its width and pattern (``coalesced`` → ``width/4``
   segments for float64, ``strided`` → one segment per element, ``scalar`` →
   one).  Interpreting the sites over *concrete* geometry (the same layout
   functions the host code calls: :class:`~repro.primitives.colscan.
   ColScanLayout`, :class:`~repro.primitives.scan1d.RowScanLayout`,
   :func:`~repro.sat.hybrid_1r1w.band_limits`/``band_tiles``,
   :class:`~repro.primitives.tile.TileGrid`) predicts every kernel's request
   *and* transaction counters exactly; :func:`crossval_algorithm` runs the
   simulator and demands equality (look-back polls are schedule-dependent,
   so measured reads are compared net of ``spin_iterations``, and walk
   *steps* are bracketed by the ``[lo, hi]`` bounds — ``lo == hi`` for every
   algorithm except 1R1W-SKSS-LB, whose walks may shortcut).

3. **Overflow freedom** — interval analysis over the dtype policy
   (:mod:`repro.sat.dtypes`): every stored buffer has a closed-form bound in
   units of the maximum input magnitude (``lrs ≤ W·M``, ``grs ≤ n·M``,
   SAT ≤ ``n²·M``); at the largest shape that fits the device, the exact-int
   accumulators either provably cannot overflow or the *first* store site
   that can is pinpointed with its file and line.

The accounting conventions mirror :mod:`repro.gpusim.block` exactly: a
``wait_until`` costs one scalar read per poll (failed polls are counted in
``spin_iterations``), a look-back walk step costs one poll plus one payload
read whichever way it terminates, and ``publish`` costs its payload stores
plus the flag store and one fence.
"""

from __future__ import annotations

import ast
import importlib
import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro.analysis.protomodel import (_calls_postorder, _expr_name,
                                       _function_ast, _method_name)
from repro.analysis.table1 import TABLE1_ORDER, table1_sym
from repro.errors import ConfigurationError, CostModelError

__all__ = ["Poly", "AccessSite", "extract_sites", "dump_hint_keys",
           "kernel_totals", "algorithm_totals", "prove_table1",
           "crossval_algorithm", "check_overflow", "find_cost_bugs",
           "spin_store_calls", "redundant_fence_calls",
           "run_costcheck", "render_report", "KERNELS"]


# ---------------------------------------------------------------------------
# Bivariate polynomials in (t, W) with exact rational coefficients
# ---------------------------------------------------------------------------

class Poly:
    """A polynomial ``sum c[a,b] * t^a * W^b`` with Fraction coefficients.

    Supports ``+ - *`` with other polynomials and integers and division by
    integer constants; concrete geometry uses plain ints through the same
    hint lambdas, so every formula is written once and evaluated in both
    modes.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[tuple[int, int], Any] | None = None):
        clean: dict[tuple[int, int], Fraction] = {}
        for key, coeff in (terms or {}).items():
            frac = Fraction(coeff)
            if frac:
                clean[key] = frac
        self.terms = clean

    @classmethod
    def const(cls, value: Any) -> "Poly":
        return cls({(0, 0): value})

    @classmethod
    def var(cls, name: str) -> "Poly":
        if name == "t":
            return cls({(1, 0): 1})
        if name == "W":
            return cls({(0, 1): 1})
        raise ConfigurationError(f"unknown cost variable {name!r}")

    @staticmethod
    def _coerce(other: Any) -> "Poly":
        if isinstance(other, Poly):
            return other
        if isinstance(other, (int, Fraction)):
            return Poly.const(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Any) -> "Poly":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        out = dict(self.terms)
        for key, coeff in rhs.terms.items():
            out[key] = out.get(key, Fraction(0)) + coeff
        return Poly(out)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({k: -c for k, c in self.terms.items()})

    def __sub__(self, other: Any) -> "Poly":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self + (-rhs)

    def __rsub__(self, other: Any) -> "Poly":
        return self._coerce(other) + (-self)

    def __mul__(self, other: Any) -> "Poly":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        out: dict[tuple[int, int], Fraction] = {}
        for (a1, b1), c1 in self.terms.items():
            for (a2, b2), c2 in rhs.terms.items():
                key = (a1 + a2, b1 + b2)
                out[key] = out.get(key, Fraction(0)) + c1 * c2
        return Poly(out)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "Poly":
        if not isinstance(other, (int, Fraction)):
            return NotImplemented
        return Poly({k: c / other for k, c in self.terms.items()})

    def __floordiv__(self, other: Any) -> "Poly":
        # Geometry formulas use // where the division is known exact.
        return self.__truediv__(other)

    def __eq__(self, other: object) -> bool:
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self.terms == rhs.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def coeff(self, a: int, b: int) -> Fraction:
        """Coefficient of the ``t^a * W^b`` monomial."""
        return self.terms.get((a, b), Fraction(0))

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for (a, b) in sorted(self.terms, key=lambda k: (-(k[0] + k[1]),
                                                        -k[0], -k[1])):
            coeff = self.terms[(a, b)]
            mono = "*".join(
                ([] if a == 0 else [f"t^{a}" if a > 1 else "t"])
                + ([] if b == 0 else [f"W^{b}" if b > 1 else "W"]))
            if mono:
                parts.append(f"{coeff}*{mono}" if coeff != 1 else mono)
            else:
                parts.append(str(coeff))
        return " + ".join(parts).replace("+ -", "- ")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Poly({self})"


# ---------------------------------------------------------------------------
# Access-site extraction from kernel ASTs
# ---------------------------------------------------------------------------

#: Counted global-memory methods, by role.
_LOADS = ("gload",)
_SCALAR_LOADS = ("gload_scalar",)
_TILE_LOADS = ("load_tile", "load_tile_with_col_sums")
_STORES = ("gstore",)
_SCALAR_STORES = ("gstore_scalar",)
_TILE_STORES = ("store_tile",)
_PUBLISHES = ("publish", "publish_vector", "publish_scalar")
_WAITS = ("wait_until",)
_WALKS = ("lookback_walk", "row_lookback", "col_lookback", "diag_lookback")
_ATOMICS = ("atomic_add",)
_FENCES = ("threadfence",)

_ROLE_OF = {}
for _names, _role in ((_LOADS, "load"), (_SCALAR_LOADS, "scalar_load"),
                      (_TILE_LOADS, "tile_load"), (_STORES, "store"),
                      (_SCALAR_STORES, "scalar_store"),
                      (_TILE_STORES, "tile_store"),
                      (_PUBLISHES, "publish"), (_WAITS, "wait"),
                      (_WALKS, "walk"), (_ATOMICS, "atomic"),
                      (_FENCES, "fence")):
    for _name in _names:
        _ROLE_OF[_name] = _role

#: Hint fields each role accepts (``count`` defaults to 1 where optional).
_ROLE_FIELDS = {
    "load": {"count", "width", "pattern"},
    "scalar_load": {"count"},
    "tile_load": {"count", "width", "pattern"},
    "store": {"count", "width", "pattern"},
    "scalar_store": {"count"},
    "tile_store": {"count", "width", "pattern"},
    "publish": {"count", "width", "pattern"},
    "wait": {"count"},
    "walk": {"steps_lo", "steps_hi", "width", "pattern"},
    "atomic": {"count"},
    "fence": {"count"},
}

_PATTERNS = ("coalesced", "strided", "scalar")


@dataclass(frozen=True)
class AccessSite:
    """One counted global-memory access site in a kernel's source."""

    kernel: str
    method: str
    role: str
    key: str   # ast.unparse of the full call — the COST_HINTS key
    file: str
    line: int  # 1-based line in the source file
    buffer: str  # AST name of the stored/loaded buffer ("" when unknown)

    @property
    def where(self) -> str:
        return f"{self.file}:{self.line}"


def _site_buffer(call: ast.Call, method: str) -> str:
    """The AST-level name of the buffer a counted call touches."""
    role = _ROLE_OF[method]
    if role in ("load", "scalar_load", "store", "scalar_store", "wait"):
        return _expr_name(call.args[0]) if call.args else ""
    if role in ("tile_load", "tile_store"):
        return _expr_name(call.args[1]) if len(call.args) > 1 else ""
    if method == "publish" and len(call.args) > 1:
        entries = call.args[1]
        if isinstance(entries, (ast.List, ast.Tuple)) and entries.elts:
            first = entries.elts[0]
            if isinstance(first, ast.Tuple) and first.elts:
                return _expr_name(first.elts[0])
    if method in ("publish_vector", "publish_scalar") and len(call.args) > 1:
        return _expr_name(call.args[1])
    return ""


def extract_sites(fn: Callable) -> list[AccessSite]:
    """All counted global-access sites of ``fn``, in source order.

    A *duplicate* site (two lexically identical counted calls in one kernel)
    raises :class:`~repro.errors.CostModelError`: identical global accesses
    are redundant traffic by construction — this is the static excess-read
    detector the planted-bug corpus exercises.
    """
    func = _function_ast(fn)
    filename = fn.__code__.co_filename.rsplit("/", 1)[-1]
    base = fn.__code__.co_firstlineno
    sites: list[AccessSite] = []
    seen: dict[str, AccessSite] = {}
    for call in _calls_postorder(func):
        method = _method_name(call)
        if method not in _ROLE_OF:
            continue
        site = AccessSite(kernel=fn.__name__, method=method,
                          role=_ROLE_OF[method], key=ast.unparse(call),
                          file=filename, line=base + call.lineno - 1,
                          buffer=_site_buffer(call, method))
        if site.key in seen:
            if site.role == "fence":
                # Repeated bare fences are legitimate (and separately judged
                # by the redundant-fence detector); one hint covers them all.
                continue
            first = seen[site.key]
            raise CostModelError(
                f"{site.where}: kernel {fn.__name__} repeats the global "
                f"access `{site.key}` (first at {first.where}) — identical "
                f"accesses are redundant traffic (excess-read)")
        seen[site.key] = site
        sites.append(site)
    sites.sort(key=lambda s: s.line)
    return sites


def dump_hint_keys(fn: Callable) -> list[str]:
    """The COST_HINTS keys ``fn`` requires (for authoring annotations)."""
    return [s.key for s in extract_sites(fn)]


# ---------------------------------------------------------------------------
# Hint interpretation: sites x geometry -> traffic totals
# ---------------------------------------------------------------------------

#: float64 elements per 32-byte DRAM segment.
_ELEMS_PER_SEGMENT = 4


def _tx_exec(width: int, pattern: str, where: str) -> int:
    """Transactions of one aligned warp-cooperative access execution."""
    if pattern == "scalar":
        return 1
    if pattern == "strided":
        return width
    if pattern == "coalesced":
        if width % _ELEMS_PER_SEGMENT:
            raise CostModelError(
                f"{where}: coalesced width {width} is not a whole number of "
                f"32-byte segments; transaction prediction needs aligned "
                f"shapes")
        return width // _ELEMS_PER_SEGMENT
    raise CostModelError(f"{where}: unknown access pattern {pattern!r}")


class Geometry:
    """Attribute bag of counting parameters — ints (concrete) or
    :class:`Poly` (symbolic)."""

    def __init__(self, **fields: Any) -> None:
        self.__dict__.update(fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Geometry({self.__dict__})"


def _ev(value: Any, g: Geometry) -> Any:
    return value(g) if callable(value) else value


def _zero_totals(concrete: bool) -> dict[str, Any]:
    keys = ["reads_lo", "reads_hi", "writes", "atomics", "fences"]
    if concrete:
        keys += ["read_tx_lo", "read_tx_hi", "write_tx"]
    return {k: 0 for k in keys}


def _merge_totals(into: dict[str, Any], other: Mapping[str, Any]) -> None:
    for k, v in other.items():
        into[k] = into.get(k, 0) + v


def kernel_totals(fn: Callable, hints: Mapping[str, Mapping[str, Any]],
                  g: Geometry, *, concrete: bool) -> dict[str, Any]:
    """Interpret ``fn``'s access sites under ``hints`` over geometry ``g``.

    Returns request totals (``reads_lo``/``reads_hi``/``writes``/``atomics``/
    ``fences``; plus ``*_tx`` transaction totals in concrete mode).  Raises
    :class:`~repro.errors.CostModelError` with the offending source location
    when the hints are missing, stale, or malformed — the drift gate.
    """
    sites = extract_sites(fn)
    keys = {s.key for s in sites}
    for key in hints:
        if key not in keys:
            raise CostModelError(
                f"{fn.__name__}: COST_HINTS entry `{key}` matches no access "
                f"site in the kernel source — stale annotation")
    totals = _zero_totals(concrete)
    for site in sites:
        hint = hints.get(site.key)
        if hint is None:
            raise CostModelError(
                f"{site.where}: access site `{site.key}` has no COST_HINTS "
                f"entry in {fn.__module__}")
        allowed = _ROLE_FIELDS[site.role]
        extra = set(hint) - allowed
        if extra:
            raise CostModelError(
                f"{site.where}: COST_HINTS for `{site.key}` has unknown "
                f"field(s) {sorted(extra)}; a {site.role} site takes "
                f"{sorted(allowed)}")
        if site.role == "walk" and ("steps_lo" not in hint
                                    or "steps_hi" not in hint):
            raise CostModelError(
                f"{site.where}: walk site `{site.key}` needs steps_lo= and "
                f"steps_hi= bounds")
        _merge_totals(totals, _site_cost(site, hint, g, concrete))
    return totals


def _site_cost(site: AccessSite, hint: Mapping[str, Any], g: Geometry,
               concrete: bool) -> dict[str, Any]:
    count = _ev(hint.get("count", 1), g)
    width = _ev(hint.get("width", 1), g)
    pattern = hint.get("pattern", "scalar" if width == 1 else "coalesced")
    if pattern not in _PATTERNS:
        raise CostModelError(
            f"{site.where}: unknown pattern {pattern!r} (expected one of "
            f"{_PATTERNS})")
    out: dict[str, Any] = {}
    role = site.role
    if role in ("scalar_load", "scalar_store", "wait"):
        width, pattern = 1, "scalar"
    tx = (_tx_exec(width, pattern, site.where) if concrete
          and role not in ("atomic", "fence") else 0)
    if role in ("load", "tile_load", "scalar_load"):
        out["reads_lo"] = out["reads_hi"] = count * width
        if concrete:
            out["read_tx_lo"] = out["read_tx_hi"] = count * tx
    elif role == "wait":
        # Every executed wait costs >= 1 scalar poll; extra polls land in
        # spin_iterations, which cross-validation subtracts back out.
        out["reads_lo"] = out["reads_hi"] = count
        if concrete:
            out["read_tx_lo"] = out["read_tx_hi"] = count
    elif role == "walk":
        lo = _ev(hint["steps_lo"], g)
        hi = _ev(hint["steps_hi"], g) if concrete else lo
        # Each step: one wait poll plus one payload read (local or global).
        out["reads_lo"] = lo * (1 + width)
        out["reads_hi"] = hi * (1 + width)
        if concrete:
            out["read_tx_lo"] = lo * (1 + tx)
            out["read_tx_hi"] = hi * (1 + tx)
    elif role in ("store", "tile_store", "scalar_store"):
        out["writes"] = count * width
        if concrete:
            out["write_tx"] = count * tx
    elif role == "publish":
        # publish = payload stores + one fence + one scalar flag store.
        out["writes"] = count * (width + 1)
        out["fences"] = count
        if concrete:
            out["write_tx"] = count * (tx + 1)
    elif role == "atomic":
        out["atomics"] = count
    elif role == "fence":
        out["fences"] = count
    return out


# ---------------------------------------------------------------------------
# The 13 kernels, their modules, and their launch names
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class KernelSpec:
    """Where a kernel lives and which launches execute it."""

    module: str
    kernel: str
    #: Normalized launch names (trailing ``_<digits>`` stripped) whose
    #: measured counters this kernel's prediction covers.
    launches: tuple[str, ...]
    #: Concrete-mode predicted total grid blocks over those launches.
    blocks: Callable[[Geometry], int]


#: Table I algorithms -> the kernels that implement them.  The hybrid band
#: kernels run once per band (A and C); the wavefront kernel is shared
#: between 1R1W and the hybrid's middle band.
KERNELS: dict[str, tuple[KernelSpec, ...]] = {
    "2R2W": (
        KernelSpec("repro.sat.naive_2r2w", "column_scan_kernel",
                   ("2r2w_column_scan",), lambda g: g.naive_blocks),
        KernelSpec("repro.sat.naive_2r2w", "row_scan_kernel",
                   ("2r2w_row_scan",), lambda g: g.naive_blocks),
    ),
    "2R2W-optimal": (
        KernelSpec("repro.primitives.colscan", "col_scan_kernel",
                   ("2r2w_opt_col_scan",), lambda g: g.cs_tiles),
        KernelSpec("repro.primitives.scan1d", "row_scan_kernel",
                   ("2r2w_opt_row_scan",), lambda g: g.rs_parts),
    ),
    "2R1W": (
        KernelSpec("repro.sat.nehab_2r1w", "local_sums_kernel",
                   ("2r1w_local_sums",), lambda g: g.tiles),
        KernelSpec("repro.sat.nehab_2r1w", "global_sums_kernel",
                   ("2r1w_global_sums",), lambda g: g.gs_blocks),
        KernelSpec("repro.sat.nehab_2r1w", "gsat_kernel",
                   ("2r1w_gsat",), lambda g: g.tiles),
    ),
    "1R1W": (
        KernelSpec("repro.sat.kasagi_1r1w", "wavefront_kernel",
                   ("1r1w_wave",), lambda g: g.tiles),
    ),
    "(1+r)R1W": (
        KernelSpec("repro.sat.hybrid_1r1w", "band_local_sums_kernel",
                   ("hybrid_A_local", "hybrid_C_local"),
                   lambda g: g.band),
        KernelSpec("repro.sat.hybrid_1r1w", "band_global_sums_kernel",
                   ("hybrid_A_global", "hybrid_C_global"),
                   lambda g: g.band_gs_blocks),
        KernelSpec("repro.sat.hybrid_1r1w", "band_gsat_kernel",
                   ("hybrid_A_gsat", "hybrid_C_gsat"),
                   lambda g: g.band),
        KernelSpec("repro.sat.kasagi_1r1w", "wavefront_kernel",
                   ("hybrid_wave",), lambda g: g.wave),
    ),
    "1R1W-SKSS": (
        KernelSpec("repro.sat.skss", "skss_kernel",
                   ("skss",), lambda g: g.t),
    ),
    "1R1W-SKSS-LB": (
        KernelSpec("repro.sat.skss_lb", "skss_lb_kernel",
                   ("skss_lb",), lambda g: g.tiles),
    ),
}


def _load_kernel(spec: KernelSpec) -> tuple[Callable, Mapping]:
    module = importlib.import_module(spec.module)
    fn = getattr(module, spec.kernel)
    all_hints = getattr(module, "COST_HINTS", None)
    if all_hints is None or spec.kernel not in all_hints:
        raise CostModelError(
            f"{spec.module} declares no COST_HINTS for {spec.kernel}")
    return fn, all_hints[spec.kernel]


# ---------------------------------------------------------------------------
# Geometry builders (symbolic formulas / concrete host layout functions)
# ---------------------------------------------------------------------------

def _warp_round(x: int, w: int = 32) -> int:
    return ((x + w - 1) // w) * w


def build_geometry(algorithm: str, *, sym: bool, n: int = 128,
                   W: int = 32) -> Geometry:
    """Counting parameters for ``algorithm``.

    Concrete mode (``sym=False``) computes them through the *same* host
    layout functions the algorithms call at launch time (so geometry drift
    is impossible); symbolic mode uses the closed forms, which assume square
    ``n = t*W`` grids, even ``t`` and ``r = 1/4`` for the hybrid, and ``n``
    a multiple of the scan partition sizes for 2R2W-optimal.
    """
    t: Any
    Wv: Any
    if sym:
        t, Wv = Poly.var("t"), Poly.var("W")
    else:
        if n % W:
            raise ConfigurationError(f"n={n} not a multiple of W={W}")
        t, Wv = n // W, W
    nn = t * Wv
    g: dict[str, Any] = dict(t=t, W=Wv, W2=Wv * Wv, n=nn, n2=nn * nn,
                             tiles=t * t)
    if algorithm == "2R2W":
        if not sym:
            threads = _warp_round(min(256, n))
            g["naive_blocks"] = (n + threads - 1) // threads
    elif algorithm == "2R2W-optimal":
        g.update(_colscan_geometry(sym, n, t, Wv))
        g.update(_scan1d_geometry(sym, n, t, Wv))
    elif algorithm == "2R1W":
        if not sym:
            lane_blocks = (t * W + 1023) // 1024
            g["gs_blocks"] = 2 * lane_blocks + 1
    elif algorithm == "1R1W":
        g.update(_wave_counts_full(sym, n, W, t))
    elif algorithm == "(1+r)R1W":
        g.update(_hybrid_geometry(sym, n, W, t))
    elif algorithm == "1R1W-SKSS":
        g["skss_waits"] = g["tiles"] - t
        g["skss_atomics"] = 2 * t
    elif algorithm == "1R1W-SKSS-LB":
        g["lb_row_lo"] = g["tiles"] - t
        g["lb_col_lo"] = g["tiles"] - t
        g["lb_diag_lo"] = (t - 1) * (t - 1)
        g["lb_atomics"] = 2 * g["tiles"]
        if not sym:
            g["lb_row_hi"] = g["lb_col_hi"] = t * (t * (t - 1) // 2)
            g["lb_diag_hi"] = sum(min(i, j) for i in range(t)
                                  for j in range(t))
    else:
        raise ConfigurationError(f"no cost geometry for '{algorithm}'")
    return Geometry(**g)


def _colscan_geometry(sym: bool, n: int, t: Any, Wv: Any) -> dict[str, Any]:
    """Tokura column-scan geometry (strip = 32, threads = 256 as launched
    by :class:`~repro.sat.optimal_2r2w.Optimal2R2W`)."""
    if sym:
        nn = t * Wv
        tiles = nn * nn / 2048  # strips (n/32) x panels (n/64)
        return dict(cs_tiles=tiles, cs_strips=nn / 32, cs_tile_elems=2048,
                    cs_C=32, cs_panel_rows=64, cs_walk_lo=tiles - nn / 32,
                    cs_walk_hi=None, cs_atomics=2 * tiles)
    from repro.primitives.colscan import ColScanLayout
    threads, strip = 256, 32
    panel = min(n, max(strip, 8 * threads // strip))
    while n % panel:
        panel //= 2
    layout = ColScanLayout(rows=n, cols=n, panel_rows=panel,
                           strip_width=strip)
    tiles, strips = layout.total_tiles, layout.num_strips
    panels = layout.num_panels
    return dict(cs_tiles=tiles, cs_strips=strips,
                cs_tile_elems=panel * strip, cs_C=strip,
                cs_panel_rows=panel, cs_walk_lo=tiles - strips,
                cs_walk_hi=strips * panels * (panels - 1) // 2,
                cs_atomics=2 * tiles)


def _scan1d_geometry(sym: bool, n: int, t: Any, Wv: Any) -> dict[str, Any]:
    """Merrill-Garland row-scan geometry (partition = 256 for n >= 256)."""
    if sym:
        nn = t * Wv
        parts = nn * nn / 256
        return dict(rs_parts=parts, rs_P=256, rs_rows=nn,
                    rs_walk_lo=parts - nn, rs_walk_hi=None,
                    rs_atomics=2 * parts)
    from repro.primitives.scan1d import RowScanLayout
    row_threads = min(256, _warp_round(max(32, n)))
    part = min(row_threads, n)
    layout = RowScanLayout(rows=n, n=n, partition_size=part)
    parts, pp = layout.total_parts, layout.parts_per_row
    return dict(rs_parts=parts, rs_P=part, rs_rows=n,
                rs_walk_lo=parts - n,
                rs_walk_hi=n * pp * (pp - 1) // 2,
                rs_atomics=2 * parts)


def _wave_counts(tiles: Iterable[tuple[int, int]]) -> dict[str, int]:
    tiles = list(tiles)
    return dict(
        wave=len(tiles),
        wave_left=sum(1 for i, j in tiles if j > 0),
        wave_above=sum(1 for i, j in tiles if i > 0),
        wave_corner=sum(1 for i, j in tiles if i > 0 and j > 0))


def _wave_counts_full(sym: bool, n: int, W: int, t: Any) -> dict[str, Any]:
    """Wavefront counts over the full grid (the 1R1W algorithm)."""
    if sym:
        return dict(wave=t * t, wave_left=t * t - t, wave_above=t * t - t,
                    wave_corner=(t - 1) * (t - 1))
    from repro.primitives.tile import TileGrid
    grid = TileGrid(n=n, W=W)
    return _wave_counts(T for K in range(grid.num_diagonals)
                        for T in grid.tiles_on_diagonal(K))


def _hybrid_geometry(sym: bool, n: int, W: int, t: Any) -> dict[str, Any]:
    """Band/wavefront split of the hybrid at ``r = 1/4``."""
    if sym:
        # Even t: band A holds diagonals K < t/2 (t^2/8 + t/4 tiles), band C
        # the last t/2 - 1 diagonals (t^2/8 - t/4 tiles).
        band_a = t * t / 8 + t / 4
        band_c = t * t / 8 - t / 4
        band = band_a + band_c
        wave = 3 * (t * t) / 4
        return dict(
            band=band, band_left=band - t / 2, band_up=band - t / 2,
            band_corner=band - t + 1, band_seed_row=t / 2 - 1,
            band_seed_col=t / 2 - 1, wave=wave, wave_left=wave - t / 2,
            wave_above=wave - t / 2, wave_corner=wave - t)
    from repro.primitives.tile import TileGrid
    from repro.sat.hybrid_1r1w import band_limits, band_tiles
    grid = TileGrid(n=n, W=W)
    Ka, Kc = band_limits(0.25, t, t)
    a_tiles, _b, c_tiles = band_tiles(grid, Ka, Kc)
    band_list = a_tiles + c_tiles
    lane_blocks = (t * W + 1023) // 1024

    def seeds(tiles: list, axis: int) -> int:
        # Rows (axis 0) whose band segment starts at J > 0 need a GRS seed
        # read (resp. columns starting at I > 0 for GCS).
        starts: dict[int, int] = {}
        for tile in tiles:
            i, j = tile[axis], tile[1 - axis]
            starts[i] = min(starts.get(i, j), j)
        return sum(1 for start in starts.values() if start > 0)

    wave = _wave_counts(
        T for K in range(Ka, min(Kc, grid.num_diagonals - 1) + 1)
        for T in grid.tiles_on_diagonal(K))
    return dict(
        band=len(band_list),
        band_left=sum(1 for i, j in band_list if j > 0),
        band_up=sum(1 for i, j in band_list if i > 0),
        band_corner=sum(1 for i, j in band_list if i > 0 and j > 0),
        band_seed_row=seeds(a_tiles, 0) + seeds(c_tiles, 0),
        band_seed_col=seeds(a_tiles, 1) + seeds(c_tiles, 1),
        band_gs_blocks=(2 * lane_blocks + 1) * ((1 if a_tiles else 0)
                                                + (1 if c_tiles else 0)),
        **wave)


# ---------------------------------------------------------------------------
# Symbolic Table I proof
# ---------------------------------------------------------------------------

def algorithm_totals(algorithm: str, *, sym: bool, n: int = 128,
                     W: int = 32) -> dict[str, Any]:
    """Whole-run traffic totals: sum of the algorithm's kernel totals."""
    g = build_geometry(algorithm, sym=sym, n=n, W=W)
    totals = _zero_totals(concrete=not sym)
    for spec in KERNELS[algorithm]:
        fn, hints = _load_kernel(spec)
        _merge_totals(totals, kernel_totals(fn, hints, g, concrete=not sym))
    return totals


def _check_remainder(poly: Poly, lead: Fraction, remainder: str,
                     what: str) -> list[str]:
    """The sub-leading monomials must fit the row's declared big-O class."""
    problems = []
    for (a, b), coeff in poly.terms.items():
        if (a, b) == (2, 2):
            continue
        if remainder == "":
            problems.append(
                f"{what}: unexpected term {coeff}*t^{a}*W^{b} in an "
                f"exact-count row")
        elif remainder == "n^2/W":
            # O(n^2/W) = O(t^2 W): anything with t-degree 2 must lose at
            # least one W factor; higher t-degrees are out entirely.
            if a > 2 or (a == 2 and b >= 2):
                problems.append(
                    f"{what}: term {coeff}*t^{a}*W^{b} exceeds the "
                    f"O(n^2/W) remainder class")
        elif remainder == "n^2":
            if a > 2:
                problems.append(
                    f"{what}: term {coeff}*t^{a}*W^{b} exceeds the "
                    f"O(n^2) remainder class")
        else:  # pragma: no cover - table1 only declares the above
            problems.append(f"{what}: unknown remainder class {remainder!r}")
    return problems


def prove_table1(algorithm: str) -> dict[str, Any]:
    """Prove ``algorithm``'s symbolic traffic matches its Table I row.

    The leading ``n²`` (= ``t²W²``) coefficients of the derived read/write
    polynomials must equal the row's ``read_class``/``write_class`` exactly
    (2R2W-optimal, whose scan metadata scales with ``n²`` at fixed
    strip/panel geometry, may exceed its class by less than 1 — the paper's
    ``O(n²)``), and every sub-leading monomial must fit the declared
    remainder class.  Reads use the minimum look-back depth (each walk
    terminates at its first probe); deeper walks are schedule, not
    algorithm.
    """
    row = table1_sym(algorithm)
    totals = algorithm_totals(algorithm, sym=True)
    reads, writes = totals["reads_lo"], totals["writes"]
    problems: list[str] = []
    for what, poly, want in (("reads", reads, row.read_class),
                             ("writes", writes, row.write_class)):
        lead = poly.coeff(2, 2)
        if row.remainder == "n^2":
            if not want <= lead < want + 1:
                problems.append(
                    f"{what}: leading n^2 coefficient {lead} outside "
                    f"[{want}, {want + 1})")
        elif lead != want:
            problems.append(
                f"{what}: leading n^2 coefficient {lead} != {want}")
        problems += _check_remainder(poly, want, row.remainder, what)
    return {
        "algorithm": algorithm,
        "reads": str(reads), "writes": str(writes),
        "atomics": str(totals["atomics"]), "fences": str(totals["fences"]),
        "read_lead": str(reads.coeff(2, 2)),
        "write_lead": str(writes.coeff(2, 2)),
        "read_class": str(row.read_class),
        "write_class": str(row.write_class),
        "remainder": row.remainder,
        "ok": not problems, "problems": problems,
    }


# ---------------------------------------------------------------------------
# Dynamic cross-validation against gpusim counters
# ---------------------------------------------------------------------------

def crossval_algorithm(algorithm: str, *, n: int = 128, W: int = 32,
                       seed: int = 0) -> list[dict[str, Any]]:
    """Run ``algorithm`` in the simulator and check every kernel's counters
    against the static prediction.

    Reads are compared net of ``spin_iterations`` (every failed wait poll is
    one extra scalar read request *and* transaction); everything else —
    writes, write transactions, atomics, fences, grid blocks — must match
    exactly.  ``exact`` is true when the read window is a single point,
    which holds for every algorithm except 1R1W-SKSS-LB.
    """
    from repro.gpusim.kernel import GPU
    from repro.sat.registry import compute_sat
    g = build_geometry(algorithm, sym=False, n=n, W=W)
    result = compute_sat(np.ones((n, n)), algorithm=algorithm, tile_width=W,
                         gpu=GPU(seed=seed))
    if result.report is None:  # pragma: no cover - simulate=True guarantees
        raise CostModelError(f"{algorithm}: simulator returned no report")
    measured = result.report.per_kernel()
    checks = []
    for spec in KERNELS[algorithm]:
        fn, hints = _load_kernel(spec)
        pred = kernel_totals(fn, hints, g, concrete=True)
        pred["blocks"] = spec.blocks(g)
        present = [name for name in spec.launches if name in measured]
        if not present:
            if pred["blocks"] == 0:
                # An empty band (e.g. the hybrid's C band at t=2) launches
                # nothing; zero predicted blocks with no launch agree.
                continue
            raise CostModelError(
                f"{algorithm}/{spec.kernel}: no launches named "
                f"{list(spec.launches)} in the run (saw {sorted(measured)})")
        # A spec may name launches that a small grid legitimately skips
        # (the hybrid's C band at t=2); the totals comparison below still
        # holds the present ones to the full prediction.
        traffic = None
        blocks = launches = 0
        for name in present:
            kb = measured[name]
            blocks += kb.grid_blocks
            launches += kb.launches
            if traffic is None:
                traffic = kb.traffic.copy()
            else:
                traffic.merge(kb.traffic)
        assert traffic is not None
        spins = traffic.spin_iterations
        got = {
            "reads": traffic.global_read_requests - spins,
            "read_tx": traffic.global_read_transactions - spins,
            "writes": traffic.global_write_requests,
            "write_tx": traffic.global_write_transactions,
            "atomics": traffic.atomic_ops,
            "fences": traffic.fences,
            "blocks": blocks,
        }
        problems = []
        for what, lo_key, hi_key in (("reads", "reads_lo", "reads_hi"),
                                     ("read_tx", "read_tx_lo",
                                      "read_tx_hi")):
            lo, hi = pred[lo_key], pred[hi_key]
            if not lo <= got[what] <= hi:
                problems.append(
                    f"{what}: measured {got[what]} (net of {spins} spins) "
                    f"outside predicted [{lo}, {hi}]")
        for what in ("writes", "write_tx", "atomics", "fences", "blocks"):
            if got[what] != pred[what]:
                problems.append(
                    f"{what}: measured {got[what]} != predicted "
                    f"{pred[what]}")
        checks.append({
            "kernel": spec.kernel, "launches": list(spec.launches),
            "launch_count": launches,
            "exact": pred["reads_lo"] == pred["reads_hi"],
            "spins": spins, "predicted": dict(pred), "measured": got,
            "ok": not problems, "problems": problems,
        })
    return checks


# ---------------------------------------------------------------------------
# Overflow interval analysis over the dtype policy
# ---------------------------------------------------------------------------

#: Per-element magnitude bound of every stored buffer, in units of the
#: maximum input magnitude M, as a function of (n, W).
BUFFER_BOUNDS: dict[str, Callable[[int, int], int]] = {
    # SAT values / full prefix matrices.
    "dst": lambda n, W: n * n,
    "buf": lambda n, W: n * n,
    "b": lambda n, W: n * n,
    "gs": lambda n, W: n * n,
    # Per-tile local sums.
    "lrs": lambda n, W: W,
    "lcs": lambda n, W: W,
    "ls": lambda n, W: W * W,
    # Global row/column prefixes (sums along one full matrix axis).
    "grs": lambda n, W: n,
    "gcs": lambda n, W: n,
    "gls": lambda n, W: 2 * n * W + W * W,
    # Scan partition aggregates/prefixes (bounded by a full row/column sum).
    "aggregates": lambda n, W: n,
    "prefixes": lambda n, W: n,
}

#: Protocol/control buffers carry small bounded ints, never accumulators.
_CONTROL_BUFFERS = ("status", "counter", "R", "C", "flag")


def device_max_n(*, dtype_bytes: int = 8) -> int:
    """Largest square side whose two working buffers fit device memory."""
    from repro.gpusim.device import TITAN_V
    return math.isqrt(TITAN_V.global_mem_bytes // (2 * dtype_bytes))


def _store_sites() -> list[AccessSite]:
    """Every accumulator store site across the 13 kernels, in Table I and
    program order (the pinpointing order for overflow verdicts)."""
    sites = []
    seen = set()
    for algorithm in TABLE1_ORDER:
        for spec in KERNELS[algorithm]:
            if (spec.module, spec.kernel) in seen:
                continue
            seen.add((spec.module, spec.kernel))
            module = importlib.import_module(spec.module)
            for site in extract_sites(getattr(module, spec.kernel)):
                if site.role in ("store", "scalar_store", "tile_store",
                                 "publish"):
                    if site.buffer in _CONTROL_BUFFERS:
                        continue
                    sites.append(site)
    return sites


def check_overflow(*, n: int | None = None, W: int = 32,
                   policy: Any = None) -> list[dict[str, Any]]:
    """Interval analysis: can any kernel store overflow its accumulator?

    For every input dtype, resolve the accumulator the dtype policy assigns,
    bound every stored value by ``BUFFER_BOUNDS[buffer](n, W) * M`` (``M``
    the maximum input magnitude) at the largest shape that fits the device,
    and either prove the bound below the accumulator's limit or pinpoint the
    first store site (file:line) that can exceed it.  Float accumulators are
    reported informationally (they saturate *precision*, not range).
    """
    from repro.sat.dtypes import resolve_policy
    pol = resolve_policy(policy)
    n_max = n or device_max_n()
    sites = _store_sites()
    verdicts = []
    dtypes = (np.bool_, np.uint8, np.int8, np.uint16, np.int16, np.uint32,
              np.int32, np.uint64, np.int64, np.float16, np.float32,
              np.float64)
    for dtype in dtypes:
        dt = np.dtype(dtype)
        acc = pol.accumulator(dt)
        verdict: dict[str, Any] = {
            "dtype": dt.name, "accumulator": acc.name, "n": n_max, "W": W,
            "policy": pol.name,
        }
        if np.issubdtype(acc, np.floating):
            mantissa = np.finfo(acc).nmant
            verdict.update(
                exact=False, ok=True, site=None,
                note=(f"accumulates in {acc.name}: integer sums above "
                      f"2^{mantissa + 1} lose exactness (range does not "
                      f"overflow)"))
            verdicts.append(verdict)
            continue
        m = 1 if dt == np.dtype(np.bool_) else int(
            max(abs(int(np.iinfo(dt).min)), int(np.iinfo(dt).max)))
        limit = int(max(abs(int(np.iinfo(acc).min)),
                        int(np.iinfo(acc).max)))
        verdict["exact"] = True
        bad = None
        for site in sites:
            bound_fn = BUFFER_BOUNDS.get(site.buffer)
            if bound_fn is None:
                raise CostModelError(
                    f"{site.where}: store to buffer {site.buffer!r} has no "
                    f"entry in BUFFER_BOUNDS")
            bound = bound_fn(n_max, W) * m
            if bound > limit:
                bad = (site, bound)
                break
        if bad is None:
            verdict.update(
                ok=True, site=None,
                note=(f"all stores provably fit {acc.name} up to "
                      f"n={n_max}"))
        else:
            site, bound = bad
            verdict.update(
                ok=False,
                site={"kernel": site.kernel, "buffer": site.buffer,
                      "file": site.file, "line": site.line,
                      "expr": site.key},
                note=(f"{site.where}: store to {site.buffer!r} in "
                      f"{site.kernel} can reach {bound:.3e} > "
                      f"{acc.name} max {limit:.3e} at n={n_max}"))
        verdicts.append(verdict)
    return verdicts


# ---------------------------------------------------------------------------
# Structural cost-bug detectors (shared with lint rule KL006)
# ---------------------------------------------------------------------------

def spin_store_calls(func: ast.FunctionDef) -> list[ast.Call]:
    """Global stores issued inside hand-rolled spin loops.

    A spin loop is a ``while`` that polls global memory (``gload``/
    ``gload_scalar``) without the sanctioned primitives (``wait_until``,
    ticket ``atomic_add``).  A store inside one is re-issued every
    iteration: unbounded redundant write traffic.
    """
    findings = []
    for node in ast.walk(func):
        if not isinstance(node, ast.While):
            continue
        calls = _calls_postorder(node)
        names = {_method_name(c) for c in calls}
        if not names & {"gload", "gload_scalar"}:
            continue
        if names & {"wait_until", "atomic_add"}:
            continue
        findings += [c for c in calls
                     if _method_name(c) in ("gstore", "gstore_scalar")]
    return findings


_FENCE_BREAKERS = (_STORES + _SCALAR_STORES + _TILE_STORES + _PUBLISHES
                   + _ATOMICS)


def redundant_fence_calls(func: ast.FunctionDef) -> list[ast.Call]:
    """``threadfence`` calls with no global store since the previous fence.

    Back-to-back fences commit nothing new — pure latency.  ``publish``
    counts as a store (its flag store follows its internal fence), so a
    fence after a publish is *not* flagged.
    """
    findings = []
    stores_since_fence: int | None = None
    for call in _calls_postorder(func):
        name = _method_name(call)
        if name == "threadfence":
            if stores_since_fence == 0:
                findings.append(call)
            stores_since_fence = 0
        elif name in _FENCE_BREAKERS:
            if stores_since_fence is not None:
                stores_since_fence += 1
    return findings


def find_cost_bugs(fn: Callable) -> list[dict[str, Any]]:
    """All static cost findings for one kernel: stores-in-spin-loops,
    redundant fences, and duplicated (excess) global accesses — each with
    its source location."""
    func = _function_ast(fn)
    filename = fn.__code__.co_filename.rsplit("/", 1)[-1]
    base = fn.__code__.co_firstlineno
    findings = []

    def add(kind: str, node: ast.AST, detail: str) -> None:
        findings.append({"kind": kind, "kernel": fn.__name__,
                         "file": filename,
                         "line": base + node.lineno - 1, "detail": detail})

    for call in spin_store_calls(func):
        add("store-in-spin", call,
            f"global store `{ast.unparse(call)}` inside a spin loop is "
            f"re-issued every poll iteration")
    for call in redundant_fence_calls(func):
        add("redundant-fence", call,
            "threadfence with no global store since the previous fence")
    try:
        extract_sites(fn)
    except CostModelError as exc:
        # extract_sites pinpoints the duplicate in its message.
        msg = str(exc)
        line = int(msg.split(":", 2)[1]) if msg.split(":", 2)[1].isdigit() \
            else base
        findings.append({"kind": "excess-read", "kernel": fn.__name__,
                         "file": filename, "line": line, "detail": msg})
    return findings


def check_corpus() -> list[dict[str, Any]]:
    """Run the cost detectors over the planted-bug corpus.

    Every :data:`~repro.analysis.bugcorpus.COST_CORPUS` entry must be
    rejected with its declared finding kind (and a source location); the
    clean control kernels must produce no findings.
    """
    from repro.analysis import bugcorpus
    results = []
    for spec in bugcorpus.COST_CORPUS:
        findings = find_cost_bugs(spec.kernel)
        kinds = {f["kind"] for f in findings}
        ok = spec.expected_cost in kinds if spec.expected_cost else \
            not findings
        results.append({
            "bug": spec.name, "expected": spec.expected_cost,
            "found": sorted(kinds), "findings": findings, "ok": ok,
        })
    # Control: the real kernels must stay clean.
    for algorithm in TABLE1_ORDER:
        for spec in KERNELS[algorithm]:
            module = importlib.import_module(spec.module)
            findings = find_cost_bugs(getattr(module, spec.kernel))
            if findings:
                results.append({
                    "bug": f"control:{spec.kernel}", "expected": "",
                    "found": sorted({f["kind"] for f in findings}),
                    "findings": findings, "ok": False,
                })
    return results


# ---------------------------------------------------------------------------
# Top-level driver / report
# ---------------------------------------------------------------------------

def run_costcheck(algorithms: Iterable[str] | None = None, *,
                  crossval: bool = True, corpus: bool = True,
                  overflow: bool = True, n: int = 128, W: int = 32,
                  seed: int = 0) -> dict[str, Any]:
    """The full static cost verification; the ``repro costcheck`` payload."""
    names = list(algorithms) if algorithms is not None else \
        list(TABLE1_ORDER)
    out: dict[str, Any] = {"n": n, "W": W, "algorithms": [], "ok": True}
    for name in names:
        entry: dict[str, Any] = {"algorithm": name,
                                 "table1": prove_table1(name)}
        entry["ok"] = entry["table1"]["ok"]
        if crossval:
            entry["kernels"] = crossval_algorithm(name, n=n, W=W, seed=seed)
            entry["ok"] = entry["ok"] and all(k["ok"]
                                              for k in entry["kernels"])
        out["algorithms"].append(entry)
        out["ok"] = out["ok"] and entry["ok"]
    if overflow:
        out["overflow"] = check_overflow(W=W)
        out["ok"] = out["ok"] and all(
            v["ok"] or not v["exact"] or v["dtype"] in ("int64", "uint64")
            for v in out["overflow"])
    if corpus:
        out["corpus"] = check_corpus()
        out["ok"] = out["ok"] and all(c["ok"] for c in out["corpus"])
    return out


def render_report(result: Mapping[str, Any]) -> str:
    """Human-readable summary of a :func:`run_costcheck` result."""
    lines = [f"costcheck @ n={result['n']} W={result['W']}", ""]
    for entry in result["algorithms"]:
        t1 = entry["table1"]
        mark = "ok" if entry["ok"] else "FAIL"
        lines.append(f"[{mark}] {entry['algorithm']}: "
                     f"reads lead {t1['read_lead']} "
                     f"(class {t1['read_class']}), "
                     f"writes lead {t1['write_lead']} "
                     f"(class {t1['write_class']})")
        lines.append(f"       reads  = {t1['reads']}")
        lines.append(f"       writes = {t1['writes']}")
        for problem in t1["problems"]:
            lines.append(f"       !! {problem}")
        for check in entry.get("kernels", ()):
            tag = "exact" if check["exact"] else "bounded"
            status = "ok" if check["ok"] else "MISMATCH"
            got = check["measured"]
            lines.append(
                f"       {check['kernel']}: {status} ({tag}) reads "
                f"{got['reads']} tx {got['read_tx']} writes "
                f"{got['writes']} tx {got['write_tx']} atomics "
                f"{got['atomics']} fences {got['fences']}")
            for problem in check["problems"]:
                lines.append(f"         !! {problem}")
    if "overflow" in result:
        lines.append("")
        lines.append("overflow (exact-int accumulators, device-max shape):")
        for v in result["overflow"]:
            mark = "ok" if v["ok"] else "OVERFLOW"
            lines.append(f"  [{mark}] {v['dtype']} -> {v['accumulator']}: "
                         f"{v['note']}")
    if "corpus" in result:
        lines.append("")
        lines.append("planted-bug corpus:")
        for c in result["corpus"]:
            mark = "ok" if c["ok"] else "MISSED"
            found = ", ".join(c["found"]) or "nothing"
            lines.append(f"  [{mark}] {c['bug']}: expected "
                         f"{c['expected'] or 'clean'}, found {found}")
    lines.append("")
    lines.append("PASS" if result["ok"] else "FAIL")
    return "\n".join(lines)
