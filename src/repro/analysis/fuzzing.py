"""Differential fuzzing of the SAT algorithms.

Randomly samples (matrix, algorithm, tile width, scheduler policy, seed,
residency, consistency) configurations, runs the simulator, and checks the
result bit-for-bit against the NumPy reference (inputs are integer-valued so
float64 arithmetic is exact).  Any surviving discrepancy or unexpected
exception is reported with its full configuration for replay.

Used by the test suite (short budget) and the ``repro fuzz`` CLI command
(arbitrary budgets).

Two modes share the harness (``repro fuzz --mode``):

``simulate``
    The original algorithm-vs-reference check on the GPU simulator.

``incremental``
    Edit-sequence fuzzing of :class:`~repro.hostexec.IncrementalSAT`: a
    random frame takes a random sequence of rectangle writes, tile writes,
    sparse frame deltas and frame advances, and after *every* edit the
    resident table must be bit-identical to a from-scratch host computation
    of the current input (same accumulator dtype), with the carry planes
    matching their Table II oracles at the end.  Shapes are rectangular
    (ragged tile edges included) and dtypes span integer and float
    accumulators, so both repair strategies get adversarial coverage; float
    data is genuinely fractional at mixed magnitudes so rounding behavior
    is exercised, not just exact arithmetic.

``engine``
    Backend differential fuzzing: a random (algorithm, dtype, ragged
    shape, workers) configuration runs through a randomly chosen non-serial
    backend from the unified registry (:mod:`repro.backend.registry` —
    wavefront / parallel / compiled, plus the gpusim simulator at small
    warp-aligned shapes and the banded outofcore streamer) and is compared
    against the serial oracle.  Backends whose spec declares
    ``bit_identical=True`` are held to ``np.array_equal``; every backend is
    held to exact equality on integer accumulators; the rest (banded
    reductions, simulator-side float64 accumulation) are held to the proven
    rounding budget from :mod:`repro.analysis.tolerances`.  The pool is
    resolved from the registry at sampling time, so registering a new
    backend automatically puts it under differential fire.

``distsat``
    Differential fuzzing of the sharded distributed executor
    (:func:`repro.distsat.distributed_sat`): random shard counts, worker
    chunk heights, dtypes and ragged shapes run through the inline
    work-queue transport — more than half the runs under a deterministic
    fault plan (worker kills, corrupted carry payloads, delays) — and the
    stitched result must match the serial oracle under the same
    exact/derived-tolerance contract as ``engine`` mode.  Recovery must be
    invisible in the output *and* exact in the books: every shard's
    per-phase attempt counter must equal
    :meth:`~repro.distsat.FaultPlan.expected_attempts`, so a silently
    swallowed fault or a spurious retry fails even when the numbers agree.

``cost``
    Planted traffic-regression replay: each :data:`~repro.analysis.bugcorpus
    .COST_CORPUS` kernel (a store re-issued inside a spin loop, back-to-back
    fences, a duplicated global read) runs through the *static* cost checker
    (:func:`repro.analysis.costcheck.find_cost_bugs`) and the KL006 lint and
    must be rejected with exactly its declared finding kinds — while the
    control kernel stays clean.  This is the regression harness for the
    Table I verifier: a checker change that stops catching a planted cost
    bug fails here even though every tier-1 numeric test still passes.

``numeric``
    The accuracy analogue of ``cost``: roughly half the runs replay a
    :data:`~repro.analysis.bugcorpus.NUMERIC_CORPUS` kernel (or the clean
    control) through the static rounding-bug detector
    (:func:`repro.analysis.numcheck.find_numeric_bugs`) and the KL007 lint;
    the other half spot-check a sampled (algorithm, size, dtype) point of
    the proven error bounds empirically via
    :func:`repro.analysis.numcheck.validate_bounds` — a regression in
    either the error model or an algorithm's actual accuracy fails here.

All modes replay from the same :class:`FuzzConfig` JSON round-trip; the
mode-specific fields default to inert values so pre-existing replay files
keep working.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.tolerances import derived_tolerance, sat_close
from repro.errors import ConfigurationError
from repro.gpusim import GPU, TINY_DEVICE, TITAN_V
from repro.sat import get_algorithm, sat_reference

#: Algorithms eligible for fuzzing (all of them).
FUZZ_ALGORITHMS = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                   "1R1W-SKSS", "1R1W-SKSS-LB")

#: Fuzzing modes accepted by :func:`fuzz` / ``repro fuzz --mode``.
#: ``sanitize`` replays a configuration under the concurrency sanitizer with
#: a bounded spin budget — the dynamic half of the model checker's
#: counterexamples (:mod:`repro.analysis.modelcheck` emits replay configs in
#: this mode, including bug-corpus kernels via the ``kernel`` field).
FUZZ_MODES = ("simulate", "incremental", "sanitize", "engine", "cost",
              "distsat", "numeric")

#: Backends exercised by engine-mode fuzzing (everything registered except
#: the serial oracle itself; resolved lazily so sampling reflects the
#: unified backend registry, not a second hand-maintained list).
def _engine_fuzz_engines() -> tuple[str, ...]:
    from repro.backend.registry import known_backends
    return tuple(b for b in known_backends() if b != "serial")

#: Tile-based algorithms the incremental engine can maintain (the wavefront
#: kernel set — 2R2W variants have no tile carry state to repair).
INCREMENTAL_ALGORITHMS = ("2R1W", "1R1W", "(1+r)R1W", "1R1W-SKSS",
                          "1R1W-SKSS-LB")

#: Input dtypes exercised by incremental-mode fuzzing (integer accumulators
#: take the exact delta path, float accumulators the recompute path).
INCREMENTAL_DTYPES = ("uint8", "int32", "float32", "float64")


def _fuzz_values(rng: np.random.Generator, shape, dtype,
                 low: int = 0, high: int = 100) -> np.ndarray:
    """Random data in ``[low, high)`` for one edit or frame.

    Float dtypes get genuinely fractional values at a randomly drawn
    magnitude: integer-valued float data makes every add/subtract in the
    suite exact, which would leave float round-trip bugs (e.g. an edit
    reconstructed as ``work += values - work``) structurally undetectable
    despite the bit-identity oracle.
    """
    dt = np.dtype(dtype)
    if np.issubdtype(dt, np.floating):
        scale = float(rng.choice([1e-2, 1.0, 1e6]))
        return ((low + (high - low) * rng.random(size=shape)) * scale) \
            .astype(dt)
    return rng.integers(low, high, size=shape).astype(dt)


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled configuration (sufficient to replay a failure)."""

    algorithm: str
    n: int
    tile_width: int
    policy: str
    sim_seed: int
    data_seed: int
    residency: int | None
    consistency: str
    tiny_device: bool
    r: float = 0.25
    # Incremental-mode fields (defaults keep pre-existing replay JSON valid).
    mode: str = "simulate"
    dtype: str = "float64"
    rows: int | None = None
    cols: int | None = None
    edits: int = 0
    workers: int = 1
    strategy: str = "auto"
    # Sanitize-mode fields (defaults keep pre-existing replay JSON valid).
    kernel: str | None = None       # bug-corpus entry instead of an algorithm
    acquisition: str = "diagonal"   # 1R1W-SKSS-LB tile acquisition order
    spin_bound: int | None = None   # DeadlockSuspectedError after this many spins
    # Engine-mode fields (defaults keep pre-existing replay JSON valid).
    engine: str = "wavefront"       # backend differenced vs the serial oracle
    band_rows: int | None = None    # outofcore backend's band height
    # Distsat-mode fields (defaults keep pre-existing replay JSON valid).
    shards: int | None = None       # distributed executor's band-shard count
    fault: dict | None = None       # FaultPlan.to_dict() payload to inject

    def build_gpu(self) -> GPU:
        return GPU(device=TINY_DEVICE if self.tiny_device else TITAN_V,
                   scheduler_policy=self.policy, seed=self.sim_seed,
                   consistency=self.consistency,
                   max_resident_blocks=self.residency,
                   spin_bound=self.spin_bound)

    def build_matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.data_seed)
        if self.mode in ("incremental", "engine", "distsat"):
            shape = (self.rows or self.n, self.cols or self.n)
            return _fuzz_values(rng, shape, self.dtype)
        return rng.integers(-50, 50, size=(self.n, self.n)).astype(np.float64)

    def to_json(self) -> str:
        """Serialize for ``repro fuzz --replay`` (stable key order)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzConfig":
        """Inverse of :meth:`to_json`; rejects unknown/missing fields."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid replay config JSON: {exc}") \
                from None
        if not isinstance(raw, dict):
            raise ConfigurationError(
                "replay config must be a JSON object of FuzzConfig fields")
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown replay config field(s): {sorted(unknown)}")
        try:
            return cls(**raw)
        except TypeError as exc:
            raise ConfigurationError(f"incomplete replay config: {exc}") \
                from None


def load_replay_config(spec: str) -> FuzzConfig:
    """Parse a ``--replay`` argument: a JSON file path or an inline JSON object."""
    text = spec
    if not spec.lstrip().startswith("{"):
        path = Path(spec)
        if not path.is_file():
            raise ConfigurationError(
                f"replay config '{spec}' is neither a file nor inline JSON")
        text = path.read_text()
    return FuzzConfig.from_json(text)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing session."""

    runs: int = 0
    failures: list[tuple[FuzzConfig, str]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (f"fuzz: {self.runs} runs in {self.elapsed_s:.1f}s -> {status}")


def sample_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one random configuration (sizes kept simulator-friendly)."""
    tile_width = int(rng.choice([32, 64]))
    t = int(rng.integers(1, 4))
    algorithm = str(rng.choice(FUZZ_ALGORITHMS))
    tiny = bool(rng.random() < 0.4)
    residency = int(rng.integers(1, 7)) if rng.random() < 0.6 else None
    return FuzzConfig(
        algorithm=algorithm,
        n=t * tile_width,
        tile_width=tile_width,
        policy=str(rng.choice(["round_robin", "random", "lifo"])),
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=residency,
        consistency=str(rng.choice(["relaxed", "relaxed", "strong"])),
        tiny_device=tiny,
        r=float(rng.choice([0.0, 0.25, 0.5, 1.0])),
    )


def sample_incremental_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one random edit-sequence configuration.

    Rectangular shapes (ragged tile edges with probability well above half),
    all four input dtypes, both repair strategies where legal, and 1 or 4
    workers for the initial build (repair itself is worker-independent).
    """
    tile_width = int(rng.choice([16, 32]))
    rows = int(rng.integers(1, 5)) * tile_width + int(rng.integers(0, tile_width))
    cols = int(rng.integers(1, 5)) * tile_width + int(rng.integers(0, tile_width))
    dtype = str(rng.choice(INCREMENTAL_DTYPES))
    is_int = np.issubdtype(np.dtype(dtype), np.integer)
    strategies = ["auto", "recompute"] + (["delta"] if is_int else [])
    return FuzzConfig(
        algorithm=str(rng.choice(INCREMENTAL_ALGORITHMS)),
        n=max(rows, cols),
        tile_width=tile_width,
        policy="round_robin",       # unused off-simulator; kept for replay
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=None,
        consistency="strong",
        tiny_device=False,
        r=float(rng.choice([0.0, 0.25, 1.0])),
        mode="incremental",
        dtype=dtype,
        rows=rows,
        cols=cols,
        edits=int(rng.integers(2, 7)),
        workers=int(rng.choice([1, 4])),
        strategy=str(rng.choice(strategies)),
    )


def sample_engine_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one random backend differential configuration.

    Ragged rectangular shapes, all four differential dtypes, 1 or 4 workers,
    and a backend drawn from the unified registry (everything but the serial
    oracle).  Each backend's algorithm pool comes from its spec — wavefront
    only executes the five tile algorithms; parallel, compiled, gpusim and
    outofcore cover all seven.  The gpusim backend gets small warp-aligned
    shapes (its collectives need ``tile_width`` to be a whole number of
    32-lane warps, and the simulator pays per instruction); the outofcore
    backend gets a random band height.
    """
    from repro.backend.registry import get_spec

    engine = str(rng.choice(_engine_fuzz_engines()))
    spec = get_spec(engine)
    if spec.kind == "device":
        tile_width = 32             # warp-width multiple; see GpusimBackend
        rows = tile_width + int(rng.integers(0, tile_width + 1))
        cols = tile_width + int(rng.integers(0, tile_width + 1))
        workers = 1                 # the simulator has no host worker pool
    else:
        tile_width = int(rng.choice([16, 32]))
        rows = int(rng.integers(1, 5)) * tile_width \
            + int(rng.integers(0, tile_width))
        cols = int(rng.integers(1, 5)) * tile_width \
            + int(rng.integers(0, tile_width))
        workers = int(rng.choice([1, 4]))
    pool = spec.algorithms if spec.algorithms is not None else FUZZ_ALGORITHMS
    band_rows = int(rng.integers(1, rows + 1)) \
        if spec.kind == "streaming" else None
    return FuzzConfig(
        algorithm=str(rng.choice(pool)),
        n=max(rows, cols),
        tile_width=tile_width,
        policy="round_robin",       # unused off-simulator; kept for replay
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=None,
        consistency="strong",
        tiny_device=False,
        mode="engine",
        dtype=str(rng.choice(INCREMENTAL_DTYPES)),
        rows=rows,
        cols=cols,
        workers=workers,
        engine=engine,
        band_rows=band_rows,
    )


def sample_distsat_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one random sharded-executor configuration.

    Ragged rectangular shapes, all four differential dtypes, 1-5 band
    shards, a random worker chunk height about half the time, and — with
    probability 0.6 — a deterministic fault plan of one or two
    kill/corrupt/delay actions aimed at random (shard, attempt, phase)
    coordinates.  At most two lossy actions are sampled, so the
    coordinator's retry budget of four in :func:`_run_distsat` always
    suffices; what is under test is that recovery is silent in the output
    and exact in the attempt ledger.
    """
    from repro.distsat import FaultAction, FaultPlan

    tile_width = int(rng.choice([16, 32]))
    rows = int(rng.integers(1, 4)) * tile_width + int(rng.integers(0, tile_width))
    cols = int(rng.integers(1, 4)) * tile_width + int(rng.integers(0, tile_width))
    shards = int(rng.integers(1, 6))
    fault = None
    if rng.random() < 0.6:
        actions = []
        for _ in range(int(rng.integers(1, 3))):
            kind = str(rng.choice(["kill", "corrupt", "delay"]))
            actions.append(FaultAction(
                kind=kind,
                shard=int(rng.integers(0, shards)),
                attempt=1 if rng.random() < 0.8 else 2,
                phase=str(rng.choice(["reduce", "apply"])),
                seconds=0.002 if kind == "delay" else 0.0))
        fault = FaultPlan(actions=tuple(actions)).to_dict()
    return FuzzConfig(
        algorithm=str(rng.choice(FUZZ_ALGORITHMS)),
        n=max(rows, cols),
        tile_width=tile_width,
        policy="round_robin",       # unused off-simulator; kept for replay
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=None,
        consistency="strong",
        tiny_device=False,
        mode="distsat",
        dtype=str(rng.choice(INCREMENTAL_DTYPES)),
        rows=rows,
        cols=cols,
        band_rows=int(rng.integers(1, rows + 1))
        if rng.random() < 0.5 else None,
        shards=shards,
        fault=fault,
    )


def sample_cost_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one planted traffic regression (or the clean control) to replay.

    The check is static, so the only sampled dimension is *which* corpus
    kernel to replay; the numeric fields are inert but keep the replay JSON
    round-trip uniform with every other mode.
    """
    from repro.analysis.bugcorpus import CONTROL, COST_CORPUS

    names = tuple(s.name for s in COST_CORPUS) + (CONTROL.name,)
    return FuzzConfig(
        algorithm="1R1W-SKSS-LB",   # unused; kept for replay uniformity
        n=32, tile_width=32, policy="round_robin",
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=None, consistency="relaxed", tiny_device=False,
        mode="cost", kernel=str(rng.choice(names)),
    )


def sample_numeric_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one numeric-layer check: a planted rounding bug to replay (or
    the clean control), or an empirical spot-check of one proven error
    bound at a sampled (algorithm, size, dtype) point."""
    from repro.analysis.bugcorpus import CONTROL, NUMERIC_CORPUS

    if rng.random() < 0.5:
        names = tuple(s.name for s in NUMERIC_CORPUS) + (CONTROL.name,)
        kernel, algorithm, n = str(rng.choice(names)), "1R1W-SKSS-LB", 32
        dtype = "float64"
    else:
        kernel = None
        algorithm = str(rng.choice(FUZZ_ALGORITHMS))
        n = int(rng.choice([64, 96, 128]))
        dtype = str(rng.choice(["float32", "float64"]))
    return FuzzConfig(
        algorithm=algorithm, n=n, tile_width=32, policy="round_robin",
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=None, consistency="relaxed", tiny_device=False,
        mode="numeric", dtype=dtype, kernel=kernel,
    )


def _run_engine(config: FuzzConfig) -> str | None:
    """Difference one registered backend against the serial oracle.

    Bit-identical backends (``bit_identical=True`` in the registry —
    wavefront and compiled, including compiled's no-Numba fallback) must
    satisfy ``np.array_equal``, as must every backend on integer
    accumulators.  Float results from the rest (parallel's banding, gpusim's
    simulator-side float64 accumulation, outofcore's band stitching) reorder
    reductions, so they are held to the proven mass-relative budget of
    :func:`repro.analysis.tolerances.derived_tolerance` (oracle ``"host"``:
    both legs round).
    """
    from repro.backend.registry import get_backend

    backend = get_backend(config.engine)
    spec = backend.spec
    a = config.build_matrix()
    kwargs: dict = {"algorithm": config.algorithm,
                    "tile_width": config.tile_width}
    if spec.kind == "host":
        kwargs["workers"] = config.workers
    if spec.kind == "streaming":
        kwargs["band_rows"] = config.band_rows
    got = backend.compute(a, **kwargs)
    if spec.algorithm_agnostic:
        # The parallel backend computes the 2R2W dataflow regardless of the
        # configured algorithm; its oracle is the banding-free reference.
        want = a.astype(got.dtype, copy=False).cumsum(axis=0).cumsum(axis=1)
    else:
        want = get_algorithm(config.algorithm,
                             tile_width=config.tile_width).run_host(a)
    exact = spec.bit_identical or np.issubdtype(got.dtype, np.integer)
    if exact:
        ok = np.array_equal(got, want)
    elif got.shape != want.shape:
        ok = False
    else:
        # Proven rounding budget for this algorithm/size/dtype; the host
        # oracle is as deep as the subject, hence oracle="host".  Worst-case
        # over Table I for the algorithm-agnostic parallel backend (its
        # banded dataflow is shallower than any tiled algorithm).
        tol = derived_tolerance(
            None if spec.algorithm_agnostic else config.algorithm,
            got.shape, got.dtype, tile_width=config.tile_width,
            oracle="host")
        ok = sat_close(got, want, tol, abs_input=a)
    if not ok:
        bad = int(np.argmax(got != want)) if got.shape == want.shape else -1
        kind = "exact" if exact else "derived-tolerance"
        return (f"backend {config.engine!r} diverged from the serial oracle "
                f"({kind} comparison, first mismatch at flat index {bad})")
    if got.dtype != want.dtype:
        return (f"backend {config.engine!r} accumulator dtype {got.dtype} "
                f"!= oracle {want.dtype}")
    return None


def _run_distsat(config: FuzzConfig) -> str | None:
    """Difference the sharded distributed executor against the serial oracle.

    The executor runs through the inline transport (deaths are precise, so
    attempt accounting is exact) with the configured shard count, chunk
    height and fault plan.  The stitched SAT must match the serial oracle —
    exactly on integer accumulators, within the derived rounding budget on
    floats (band stitching adds one carry fold per chunk, charged as
    ``extra_depth``) — and every
    shard's per-phase attempt counter must equal
    :meth:`~repro.distsat.FaultPlan.expected_attempts`: recovery invisible
    in the output, exact in the books.
    """
    from repro.distsat import FaultPlan, distributed_sat

    a = config.build_matrix()
    plan = FaultPlan.from_dict(config.fault) if config.fault else FaultPlan()
    result = distributed_sat(
        a, shards=config.shards or 2, algorithm=config.algorithm,
        tile_width=config.tile_width, chunk_rows=config.band_rows,
        fault_plan=plan, max_attempts=4)
    got = result.sat
    want = get_algorithm(config.algorithm,
                         tile_width=config.tile_width).run_host(a)
    exact = np.issubdtype(got.dtype, np.integer)
    if exact:
        ok = np.array_equal(got, want)
    elif got.shape != want.shape:
        ok = False
    else:
        # Band stitching accumulates a carry add per chunk (<= rows) and a
        # cols-length cumsum of the carry vector on top of the algorithm's
        # proven depth — extra_depth covers what the static model cannot
        # see.  The host oracle runs the same algorithm, so its depth is
        # charged too.
        tol = derived_tolerance(config.algorithm, got.shape, got.dtype,
                                tile_width=config.tile_width, oracle="host",
                                extra_depth=sum(got.shape))
        ok = sat_close(got, want, tol, abs_input=a)
    if not ok:
        bad = int(np.argmax(got != want)) if got.shape == want.shape else -1
        kind = "exact" if exact else "derived-tolerance"
        return (f"distributed executor diverged from the serial oracle "
                f"({kind} comparison, first mismatch at flat index {bad})")
    if got.dtype != want.dtype:
        return (f"distributed accumulator dtype {got.dtype} "
                f"!= oracle {want.dtype}")
    for phase, counters in result.stats["attempts"].items():
        for shard, n in counters.items():
            expect = plan.expected_attempts(shard, phase)
            if n != expect:
                return (f"shard {shard} {phase} took {n} attempt(s), fault "
                        f"plan predicts {expect} (recovery bookkeeping drift)")
    return None


def _run_incremental(config: FuzzConfig) -> str | None:
    """Replay one edit sequence, checking bit-identity after every edit."""
    from repro.hostexec.incremental import IncrementalSAT, verify_state

    a = config.build_matrix()
    rows, cols = a.shape
    rng = np.random.default_rng(config.sim_seed)
    kwargs = {}
    if config.algorithm == "(1+r)R1W":
        kwargs["r"] = config.r
    oracle = get_algorithm(config.algorithm, tile_width=config.tile_width,
                           **kwargs)
    with IncrementalSAT(a, algorithm=config.algorithm,
                        tile_width=config.tile_width,
                        strategy=config.strategy,
                        workers=config.workers) as inc:
        current = a.astype(inc.dtype)
        for e in range(config.edits):
            kind = rng.choice(["rect", "rect", "tiles", "delta", "advance"])
            if kind == "rect":
                h = int(rng.integers(1, rows + 1))
                w = int(rng.integers(1, cols + 1))
                top = int(rng.integers(0, rows - h + 1))
                left = int(rng.integers(0, cols - w + 1))
                vals = _fuzz_values(rng, (h, w), a.dtype)
                inc.update(top, left, vals)
                current[top:top + h, left:left + w] = vals
            elif kind == "tiles":
                grid = inc.grid
                k = int(rng.integers(1, min(3, grid.num_tiles) + 1))
                edits = []
                for _ in range(k):
                    I = int(rng.integers(0, grid.tile_rows))
                    J = int(rng.integers(0, grid.tile_cols))
                    shape = (grid.tile_height(I), grid.tile_width_at(J))
                    edits.append((I, J, _fuzz_values(rng, shape, a.dtype)))
                inc.update_tiles(edits)
                W = config.tile_width
                for I, J, vals in edits:
                    current[W * I:W * I + vals.shape[0],
                            W * J:W * J + vals.shape[1]] = vals
            elif kind == "delta":
                d = np.zeros((rows, cols), dtype=inc.dtype)
                h = int(rng.integers(1, rows + 1))
                w = int(rng.integers(1, cols + 1))
                top = int(rng.integers(0, rows - h + 1))
                left = int(rng.integers(0, cols - w + 1))
                d[top:top + h, left:left + w] = \
                    _fuzz_values(rng, (h, w), inc.dtype, -20, 20)
                inc.delta(d)
                current += d
            else:  # advance
                frame = current.copy()
                h = int(rng.integers(1, rows + 1))
                w = int(rng.integers(1, cols + 1))
                top = int(rng.integers(0, rows - h + 1))
                left = int(rng.integers(0, cols - w + 1))
                frame[top:top + h, left:left + w] += \
                    _fuzz_values(rng, (h, w), inc.dtype, 1, 20)
                inc.advance(frame)
                current = frame
            want = oracle.run_host(current, dtype_policy=inc.dtype)
            if not np.array_equal(inc.sat, want):
                bad = int(np.argmax(inc.sat != want))
                return (f"edit {e} ({kind}, strategy={inc.strategy}): "
                        f"SAT diverged from full recompute "
                        f"(first mismatch at flat index {bad})")
        findings = verify_state(inc, check_sat=False)
        if findings:
            return f"stale carry state after edits: {findings[0]}"
    return None


def _run_sanitize(config: FuzzConfig) -> str | None:
    """Replay one model-checker counterexample under the dynamic sanitizer.

    With ``kernel`` set, the named bug-corpus entry runs over five scheduler
    seeds; otherwise the configured algorithm runs once with the configured
    residency/acquisition.  Any sanitizer finding — or a deadlock, which
    surfaces as an exception through :func:`run_one`'s handler — is the
    dynamic confirmation of the static counterexample.
    """
    from repro.analysis.sanitizer import Sanitizer

    if config.kernel is not None:
        from repro.analysis.bugcorpus import get_spec, run_spec
        spec = get_spec(config.kernel)
        rules: set[str] = set()
        for seed in range(config.sim_seed, config.sim_seed + 5):
            s = run_spec(spec, seed=seed, consistency=config.consistency,
                         policy=config.policy, spin_bound=config.spin_bound)
            rules |= {f.rule for f in s.findings}
        if rules:
            return f"corpus '{spec.name}': sanitizer rules {sorted(rules)}"
        return None
    a = config.build_matrix()
    kwargs: dict = {"tile_width": config.tile_width}
    if config.algorithm == "(1+r)R1W":
        kwargs["r"] = config.r
    if config.algorithm == "1R1W-SKSS-LB":
        kwargs["acquisition"] = config.acquisition
    gpu = config.build_gpu()
    sanitizer = Sanitizer()
    gpu.attach_sanitizer(sanitizer)
    result = get_algorithm(config.algorithm, **kwargs).run(a, gpu)
    if not np.array_equal(result.sat, sat_reference(a)):
        bad = int(np.argmax(result.sat != sat_reference(a)))
        return f"wrong SAT (first mismatch at flat index {bad})"
    if not sanitizer.ok:
        return f"{sanitizer.summary()}; first: {sanitizer.findings[0]}"
    return None


def _run_cost(config: FuzzConfig) -> str | None:
    """Replay one planted traffic regression through the static cost layer.

    ``config.kernel`` names a :data:`~repro.analysis.bugcorpus.COST_CORPUS`
    entry (or the clean control).  The kernel must be rejected by
    :func:`repro.analysis.costcheck.find_cost_bugs` with its declared
    ``expected_cost`` kind at a concrete source location, and the KL006-era
    lint must produce exactly the spec's ``expected_lint`` rules; the
    control must survive both untouched.
    """
    import repro.analysis.bugcorpus as bugcorpus
    from repro.analysis.costcheck import find_cost_bugs
    from repro.analysis.kernellint import lint_file

    spec = bugcorpus.get_spec(config.kernel or "store-in-spin")
    findings = find_cost_bugs(spec.kernel)
    kinds = sorted({f["kind"] for f in findings})
    if spec.expected_cost:
        if spec.expected_cost not in kinds:
            return (f"corpus '{spec.name}': costcheck expected "
                    f"'{spec.expected_cost}', found {kinds or 'nothing'}")
        if any(not f.get("line") for f in findings):
            return f"corpus '{spec.name}': finding without a source line"
    elif findings:
        return (f"corpus '{spec.name}': costcheck flagged a clean kernel: "
                f"{kinds}")
    lint_rules = {f.rule for f in lint_file(bugcorpus.__file__)
                  if f.function == spec.kernel.__name__}
    missing = set(spec.expected_lint) - lint_rules
    if missing:
        return (f"corpus '{spec.name}': lint missed expected rule(s) "
                f"{sorted(missing)} (got {sorted(lint_rules) or 'none'})")
    return None


def _run_numeric(config: FuzzConfig) -> str | None:
    """Replay one numeric-layer check (see ``numeric`` in the module doc).

    With ``config.kernel`` set, the named
    :data:`~repro.analysis.bugcorpus.NUMERIC_CORPUS` entry must be rejected
    by :func:`repro.analysis.numcheck.find_numeric_bugs` with its declared
    ``expected_numeric`` kind at a concrete source location, and the lint
    must produce the spec's expected rules (KL007) — while the control
    stays clean both ways.  Without it, the sampled (algorithm, n, dtype)
    point's measured worst-case error on adversarial inputs must sit under
    the statically proven bound.
    """
    import repro.analysis.bugcorpus as bugcorpus
    from repro.analysis.kernellint import lint_file
    from repro.analysis.numcheck import find_numeric_bugs, validate_bounds

    if config.kernel is not None:
        spec = bugcorpus.get_spec(config.kernel)
        findings = find_numeric_bugs(spec.kernel)
        kinds = sorted({f["kind"] for f in findings})
        if spec.expected_numeric:
            if spec.expected_numeric not in kinds:
                return (f"corpus '{spec.name}': numcheck expected "
                        f"'{spec.expected_numeric}', found "
                        f"{kinds or 'nothing'}")
            if any(not f.get("line") for f in findings):
                return f"corpus '{spec.name}': finding without a source line"
        elif findings:
            return (f"corpus '{spec.name}': numcheck flagged a clean "
                    f"kernel: {kinds}")
        lint_rules = {f.rule for f in lint_file(bugcorpus.__file__)
                      if f.function == spec.kernel.__name__}
        missing = set(spec.expected_lint) - lint_rules
        if missing:
            return (f"corpus '{spec.name}': lint missed expected rule(s) "
                    f"{sorted(missing)} (got {sorted(lint_rules) or 'none'})")
        return None
    rows = validate_bounds([config.algorithm], sizes=(config.n,),
                           dtypes=(config.dtype,), device=False,
                           seed=config.data_seed)
    bad = [r for r in rows if not r["ok"]]
    if bad:
        r = bad[0]
        return (f"{r['algorithm']} {r['dtype']} n={r['n']}: measured depth "
                f"{r['measured_depth']:.1f} vs proven {r['proven_depth']} "
                f"(tightness {r['tightness']:.1f})")
    return None


def run_one(config: FuzzConfig, *, sanitize: bool = False) -> str | None:
    """Run one configuration; returns an error description or ``None``.

    With ``sanitize=True`` the run executes under the concurrency sanitizer
    (:mod:`repro.analysis.sanitizer`) and any race or protocol finding counts
    as a failure even when the numeric result happens to be right.
    ``mode="incremental"`` configs replay an edit sequence instead, and
    ``mode="engine"`` configs difference a registered backend against the
    serial oracle (the sanitizer flag does not apply to either mode).
    """
    if config.mode == "incremental":
        try:
            return _run_incremental(config)
        except Exception as exc:  # noqa: BLE001 - the fuzzer reports
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode == "engine":
        try:
            return _run_engine(config)
        except Exception as exc:  # noqa: BLE001 - the fuzzer reports
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode == "sanitize":
        try:
            return _run_sanitize(config)
        except Exception as exc:  # noqa: BLE001 - deadlocks count as findings
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode == "cost":
        try:
            return _run_cost(config)
        except Exception as exc:  # noqa: BLE001 - the fuzzer reports
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode == "distsat":
        try:
            return _run_distsat(config)
        except Exception as exc:  # noqa: BLE001 - the fuzzer reports
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode == "numeric":
        try:
            return _run_numeric(config)
        except Exception as exc:  # noqa: BLE001 - the fuzzer reports
            return f"exception: {type(exc).__name__}: {exc}"
    if config.mode != "simulate":
        return f"unknown fuzz mode {config.mode!r}; known: {FUZZ_MODES}"
    a = config.build_matrix()
    kwargs = {"tile_width": config.tile_width}
    if config.algorithm == "(1+r)R1W":
        kwargs["r"] = config.r
    gpu = config.build_gpu()
    sanitizer = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer
        sanitizer = Sanitizer()
        gpu.attach_sanitizer(sanitizer)
    try:
        result = get_algorithm(config.algorithm, **kwargs).run(a, gpu)
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports, not raises
        return f"exception: {type(exc).__name__}: {exc}"
    if not np.array_equal(result.sat, sat_reference(a)):
        bad = int(np.argmax(result.sat != sat_reference(a)))
        return f"wrong SAT (first mismatch at flat index {bad})"
    if sanitizer is not None and not sanitizer.ok:
        first = sanitizer.findings[0]
        return f"{sanitizer.summary()}; first: {first}"
    return None


def fuzz(num_runs: int = 50, *, seed: int = 0,
         time_budget_s: float | None = None,
         sanitize: bool = False, mode: str = "simulate") -> FuzzReport:
    """Run ``num_runs`` random configurations (or until the time budget).

    ``mode`` selects the harness: ``"simulate"`` (algorithms vs the NumPy
    reference on the simulator), ``"incremental"`` (edit sequences vs
    from-scratch recompute; see :func:`sample_incremental_config`),
    ``"sanitize"``, ``"engine"`` (registered backends vs the serial
    oracle; see :func:`sample_engine_config`), or ``"distsat"`` (the
    sharded distributed executor under random fault plans; see
    :func:`sample_distsat_config`).
    """
    if mode not in FUZZ_MODES:
        raise ConfigurationError(
            f"unknown fuzz mode {mode!r}; known: {FUZZ_MODES}")
    rng = np.random.default_rng(seed)
    report = FuzzReport()
    start = time.perf_counter()
    for _ in range(num_runs):
        if time_budget_s is not None \
                and time.perf_counter() - start > time_budget_s:
            break
        if mode == "incremental":
            config = sample_incremental_config(rng)
        elif mode == "engine":
            config = sample_engine_config(rng)
        elif mode == "cost":
            config = sample_cost_config(rng)
        elif mode == "distsat":
            config = sample_distsat_config(rng)
        elif mode == "numeric":
            config = sample_numeric_config(rng)
        else:
            config = sample_config(rng)
            if mode == "sanitize":
                from dataclasses import replace
                config = replace(config, mode="sanitize", spin_bound=200_000)
        error = run_one(config, sanitize=sanitize)
        report.runs += 1
        if error is not None:
            report.failures.append((config, error))
    report.elapsed_s = time.perf_counter() - start
    return report
