"""Differential fuzzing of the SAT algorithms.

Randomly samples (matrix, algorithm, tile width, scheduler policy, seed,
residency, consistency) configurations, runs the simulator, and checks the
result bit-for-bit against the NumPy reference (inputs are integer-valued so
float64 arithmetic is exact).  Any surviving discrepancy or unexpected
exception is reported with its full configuration for replay.

Used by the test suite (short budget) and the ``repro fuzz`` CLI command
(arbitrary budgets).
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim import GPU, TINY_DEVICE, TITAN_V
from repro.sat import get_algorithm, sat_reference

#: Algorithms eligible for fuzzing (all of them).
FUZZ_ALGORITHMS = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                   "1R1W-SKSS", "1R1W-SKSS-LB")


@dataclass(frozen=True)
class FuzzConfig:
    """One sampled configuration (sufficient to replay a failure)."""

    algorithm: str
    n: int
    tile_width: int
    policy: str
    sim_seed: int
    data_seed: int
    residency: int | None
    consistency: str
    tiny_device: bool
    r: float = 0.25

    def build_gpu(self) -> GPU:
        return GPU(device=TINY_DEVICE if self.tiny_device else TITAN_V,
                   scheduler_policy=self.policy, seed=self.sim_seed,
                   consistency=self.consistency,
                   max_resident_blocks=self.residency)

    def build_matrix(self) -> np.ndarray:
        rng = np.random.default_rng(self.data_seed)
        return rng.integers(-50, 50, size=(self.n, self.n)).astype(np.float64)

    def to_json(self) -> str:
        """Serialize for ``repro fuzz --replay`` (stable key order)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzConfig":
        """Inverse of :meth:`to_json`; rejects unknown/missing fields."""
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid replay config JSON: {exc}") \
                from None
        if not isinstance(raw, dict):
            raise ConfigurationError(
                "replay config must be a JSON object of FuzzConfig fields")
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(raw) - fields
        if unknown:
            raise ConfigurationError(
                f"unknown replay config field(s): {sorted(unknown)}")
        try:
            return cls(**raw)
        except TypeError as exc:
            raise ConfigurationError(f"incomplete replay config: {exc}") \
                from None


def load_replay_config(spec: str) -> FuzzConfig:
    """Parse a ``--replay`` argument: a JSON file path or an inline JSON object."""
    text = spec
    if not spec.lstrip().startswith("{"):
        path = Path(spec)
        if not path.is_file():
            raise ConfigurationError(
                f"replay config '{spec}' is neither a file nor inline JSON")
        text = path.read_text()
    return FuzzConfig.from_json(text)


@dataclass
class FuzzReport:
    """Outcome of a fuzzing session."""

    runs: int = 0
    failures: list[tuple[FuzzConfig, str]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        return (f"fuzz: {self.runs} runs in {self.elapsed_s:.1f}s -> {status}")


def sample_config(rng: np.random.Generator) -> FuzzConfig:
    """Draw one random configuration (sizes kept simulator-friendly)."""
    tile_width = int(rng.choice([32, 64]))
    t = int(rng.integers(1, 4))
    algorithm = str(rng.choice(FUZZ_ALGORITHMS))
    tiny = bool(rng.random() < 0.4)
    residency = int(rng.integers(1, 7)) if rng.random() < 0.6 else None
    return FuzzConfig(
        algorithm=algorithm,
        n=t * tile_width,
        tile_width=tile_width,
        policy=str(rng.choice(["round_robin", "random", "lifo"])),
        sim_seed=int(rng.integers(0, 2**31)),
        data_seed=int(rng.integers(0, 2**31)),
        residency=residency,
        consistency=str(rng.choice(["relaxed", "relaxed", "strong"])),
        tiny_device=tiny,
        r=float(rng.choice([0.0, 0.25, 0.5, 1.0])),
    )


def run_one(config: FuzzConfig, *, sanitize: bool = False) -> str | None:
    """Run one configuration; returns an error description or ``None``.

    With ``sanitize=True`` the run executes under the concurrency sanitizer
    (:mod:`repro.analysis.sanitizer`) and any race or protocol finding counts
    as a failure even when the numeric result happens to be right.
    """
    a = config.build_matrix()
    kwargs = {"tile_width": config.tile_width}
    if config.algorithm == "(1+r)R1W":
        kwargs["r"] = config.r
    gpu = config.build_gpu()
    sanitizer = None
    if sanitize:
        from repro.analysis.sanitizer import Sanitizer
        sanitizer = Sanitizer()
        gpu.attach_sanitizer(sanitizer)
    try:
        result = get_algorithm(config.algorithm, **kwargs).run(a, gpu)
    except Exception as exc:  # noqa: BLE001 - the fuzzer reports, not raises
        return f"exception: {type(exc).__name__}: {exc}"
    if not np.array_equal(result.sat, sat_reference(a)):
        bad = int(np.argmax(result.sat != sat_reference(a)))
        return f"wrong SAT (first mismatch at flat index {bad})"
    if sanitizer is not None and not sanitizer.ok:
        first = sanitizer.findings[0]
        return f"{sanitizer.summary()}; first: {first}"
    return None


def fuzz(num_runs: int = 50, *, seed: int = 0,
         time_budget_s: float | None = None,
         sanitize: bool = False) -> FuzzReport:
    """Run ``num_runs`` random configurations (or until the time budget)."""
    rng = np.random.default_rng(seed)
    report = FuzzReport()
    start = time.perf_counter()
    for _ in range(num_runs):
        if time_budget_s is not None \
                and time.perf_counter() - start > time_budget_s:
            break
        config = sample_config(rng)
        error = run_one(config, sanitize=sanitize)
        report.runs += 1
        if error is not None:
            report.failures.append((config, error))
    report.elapsed_s = time.perf_counter() - start
    return report
