"""Static kernel lint: AST checks for look-back protocol discipline.

The dynamic sanitizer (:mod:`repro.analysis.sanitizer`) catches protocol bugs
on the schedules a test run happens to explore; this module catches the same
*classes* of bug at the source level, before any simulation runs.  It parses
kernel modules (``src/repro/primitives`` and ``src/repro/sat`` by default) and
checks, per function and in source order:

``KL001`` *fence-before-flag* — a store to a status buffer while earlier data
    stores in the same function have not been fenced.  This is the static twin
    of the sanitizer's ``missing-fence`` rule: on hardware the unfenced data
    may land after the flag.
``KL002`` *atomic-only counters* — a ticket counter accessed with a plain
    ``gload``/``gstore`` instead of ``atomic_add``.  Plain accesses race on
    the very variable whose atomicity the dispatch-order argument rests on.
``KL003`` *publish-only status stores* — a direct ``gstore`` to a status
    buffer anywhere outside :mod:`repro.primitives.lookback`.  All flag
    raises must go through :func:`~repro.primitives.lookback.publish`, which
    owns the fence and the strict-monotonicity assertion.
``KL004`` *yielded spin-waits* — a ``ctx.wait_until(...)`` call not wrapped
    in ``yield from``.  ``wait_until`` is a generator; calling it without
    delegation never polls and silently skips the synchronization.
``KL005`` *bounded spin loops* — a hand-rolled ``while`` loop that polls a
    status buffer directly instead of going through ``ctx.wait_until``.
    Hand-rolled spins bypass the simulator's configurable spin bound
    (:class:`~repro.errors.DeadlockSuspectedError`) and its scheduler-level
    deadlock detection, so an unsound protocol hangs instead of failing
    loudly.  Ticket-acquisition loops (``while True`` around ``atomic_add``)
    are not spins and are exempt.

Buffer roles are inferred from names, matching the repo's conventions: an
identifier (or attribute) containing ``status`` — or the scratch attributes
``.R``/``.C`` — is a status buffer; one containing ``counter`` is a ticket
counter.  A call to ``publish``/``publish_vector``/``publish_scalar`` resets
the unfenced-store count (the helper fences internally).

The checks are heuristic in the way all lints are: they approximate program
order by source order within one function.  They are tuned to be exactly
clean on this repository's kernels and to catch each seeded bug in the
corpus at :mod:`repro.analysis.bugcorpus`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Rule identifiers and their one-line descriptions.
RULES = {
    "KL001": "status flag stored while data stores are unfenced "
             "(missing __threadfence before publish)",
    "KL002": "ticket counter accessed non-atomically "
             "(use ctx.atomic_add)",
    "KL003": "plain global store to a status buffer "
             "(use lookback.publish, which fences and checks monotonicity)",
    "KL004": "ctx.wait_until(...) not wrapped in 'yield from' "
             "(the spin-wait generator is never driven)",
    "KL005": "hand-rolled spin loop polling a status buffer "
             "(use ctx.wait_until, which honors the spin bound and "
             "deadlock detection)",
    "KL006": "redundant global-memory traffic: a store re-issued inside a "
             "spin loop, or a __threadfence with no store since the "
             "previous fence",
    "KL007": "cancellation-prone read-modify-write update "
             "('x += y - x' / 'x = x + (y - x)'): the subtraction against "
             "the accumulator re-rounds it and drops low bits — assign "
             "the new value directly",
}

#: Module basenames allowed to store status bytes directly (the publish
#: helper itself lives here and owns the fence).
_PUBLISH_MODULES = ("lookback.py",)

_STORE_METHODS = ("gstore", "gstore_scalar")
_LOAD_METHODS = ("gload", "gload_scalar")
_PUBLISH_HELPERS = ("publish", "publish_vector", "publish_scalar")


@dataclass(frozen=True)
class LintFinding:
    """One static lint diagnostic."""

    rule: str
    path: str
    line: int
    function: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} in '{self.function}': " \
               f"{self.message}"


def _expr_name(node: ast.AST) -> str:
    """Best-effort identifier for a buffer expression (name or attribute)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _expr_name(node.func)
    if isinstance(node, ast.Subscript):
        return _expr_name(node.value)
    return ""


def _is_status_buffer(node: ast.AST) -> bool:
    name = _expr_name(node)
    if name in ("R", "C"):  # TileScratch status bytes
        return True
    return "status" in name.lower()


def _is_counter_buffer(node: ast.AST) -> bool:
    return "counter" in _expr_name(node).lower()


def _method_name(call: ast.Call) -> str:
    """``ctx.gstore(...)`` -> ``gstore``; plain ``publish(...)`` -> ``publish``."""
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _function_calls(func: ast.AST) -> list[ast.Call]:
    """All calls lexically inside ``func`` but not inside a nested function,
    in source order (the lint's approximation of program order)."""
    calls: list[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    visit(func)
    calls.sort(key=lambda c: (c.lineno, c.col_offset))
    return calls


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns all findings in line order."""
    tree = ast.parse(source, filename=path)
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    basename = Path(path).name
    may_store_status = basename in _PUBLISH_MODULES
    findings: list[LintFinding] = []

    funcs = [n for n in ast.walk(tree)
             if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    for func in funcs:
        unfenced = 0  # data stores since the last fence, in source order
        for call in _function_calls(func):
            method = _method_name(call)
            args = call.args
            if method == "threadfence":
                unfenced = 0
            elif method in _PUBLISH_HELPERS:
                unfenced = 0  # the helper fences before raising the flag
            elif method in _STORE_METHODS and args:
                buf = args[0]
                if _is_counter_buffer(buf):
                    findings.append(LintFinding(
                        "KL002", path, call.lineno, func.name,
                        f"plain store to counter "
                        f"'{_expr_name(buf)}' — {RULES['KL002']}"))
                elif _is_status_buffer(buf):
                    if not may_store_status:
                        findings.append(LintFinding(
                            "KL003", path, call.lineno, func.name,
                            f"direct store to status buffer "
                            f"'{_expr_name(buf)}' — {RULES['KL003']}"))
                    if unfenced:
                        findings.append(LintFinding(
                            "KL001", path, call.lineno, func.name,
                            f"{unfenced} data store(s) unfenced when the "
                            f"status flag is raised — {RULES['KL001']}"))
                else:
                    unfenced += 1
            elif method in _LOAD_METHODS and args \
                    and _is_counter_buffer(args[0]):
                findings.append(LintFinding(
                    "KL002", path, call.lineno, func.name,
                    f"plain load of counter '{_expr_name(args[0])}' — "
                    f"{RULES['KL002']}"))
            elif method == "wait_until":
                if not isinstance(parents.get(call), ast.YieldFrom):
                    findings.append(LintFinding(
                        "KL004", path, call.lineno, func.name,
                        RULES["KL004"]))
        findings.extend(_check_spin_loops(func, path))
        findings.extend(_check_redundant_traffic(func, path))
        findings.extend(_check_roundtrip_updates(func, path))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _check_spin_loops(func: ast.AST, path: str) -> list[LintFinding]:
    """KL005: ``while`` loops that poll a status buffer without wait_until.

    A loop is a hand-rolled spin when its test or body loads a status buffer
    but neither drives ``wait_until`` (the bounded primitive) nor acquires
    tickets via ``atomic_add`` (a dispatch loop, not a spin).
    """
    findings = []
    for loop in ast.walk(func):
        if not isinstance(loop, ast.While):
            continue
        polls_status = False
        bounded = False
        for call in ast.walk(loop):
            if not isinstance(call, ast.Call):
                continue
            method = _method_name(call)
            if method in ("wait_until", "atomic_add"):
                bounded = True
            elif method in _LOAD_METHODS and call.args \
                    and _is_status_buffer(call.args[0]):
                polls_status = True
        if polls_status and not bounded:
            findings.append(LintFinding(
                "KL005", path, loop.lineno, func.name,
                RULES["KL005"]))
    return findings


def _check_redundant_traffic(func: ast.AST, path: str) -> list[LintFinding]:
    """KL006: traffic a correct kernel never needs to issue.

    Two shapes, both also caught quantitatively by
    :mod:`repro.analysis.costcheck`:

    * a global store inside a hand-rolled spin loop (one that polls global
      memory without ``wait_until``/``atomic_add``) — re-issued on *every*
      poll iteration, so its traffic is schedule-unbounded;
    * a ``threadfence`` with no global store since the previous fence —
      back-to-back fences commit nothing new (``publish`` counts as a store:
      its flag store follows its internal fence).
    """
    findings = []
    name = getattr(func, "name", "<lambda>")
    for loop in ast.walk(func):
        if not isinstance(loop, ast.While):
            continue
        methods = {_method_name(c) for c in ast.walk(loop)
                   if isinstance(c, ast.Call)}
        if not methods & set(_LOAD_METHODS):
            continue
        if methods & {"wait_until", "atomic_add"}:
            continue
        for call in ast.walk(loop):
            if isinstance(call, ast.Call) \
                    and _method_name(call) in _STORE_METHODS:
                findings.append(LintFinding(
                    "KL006", path, call.lineno, name,
                    f"global store re-issued on every iteration of a spin "
                    f"loop — {RULES['KL006']}"))
    stores_since_fence: int | None = None
    for call in _function_calls(func):
        method = _method_name(call)
        if method == "threadfence":
            if stores_since_fence == 0:
                findings.append(LintFinding(
                    "KL006", path, call.lineno, name,
                    f"no global store since the previous fence — "
                    f"{RULES['KL006']}"))
            stores_since_fence = 0
        elif method in _PUBLISH_HELPERS:
            stores_since_fence = 1
        elif method in _STORE_METHODS + ("store_tile", "atomic_add"):
            if stores_since_fence is not None:
                stores_since_fence += 1
    return findings


def roundtrip_update_stmts(func: ast.AST) -> list[ast.stmt]:
    """Statements of the ``x += y - x`` / ``x = x + (y - x)`` shape.

    The PR 4 regression class: updating an accumulator through a
    subtraction against itself re-rounds the accumulator and silently
    drops low bits under cancellation.  Kahan compensation
    (``comp = (t - total) - y``) does *not* match: its outer operation is
    a subtraction and its target never appears on the right-hand side.
    Shared with :func:`repro.analysis.numcheck.find_numeric_bugs` so the
    lint (KL007) and the numeric verifier can never disagree on the shape.
    """
    out: list[ast.stmt] = []
    for stmt in ast.walk(func):
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
            value = stmt.value
            if isinstance(value, ast.BinOp) \
                    and isinstance(value.op, ast.Sub) \
                    and ast.unparse(value.right) == ast.unparse(stmt.target):
                out.append(stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = ast.unparse(stmt.targets[0])
            value = stmt.value
            if not (isinstance(value, ast.BinOp)
                    and isinstance(value.op, ast.Add)):
                continue
            for own, rest in ((value.left, value.right),
                              (value.right, value.left)):
                if ast.unparse(own) == target \
                        and isinstance(rest, ast.BinOp) \
                        and isinstance(rest.op, ast.Sub) \
                        and ast.unparse(rest.right) == target:
                    out.append(stmt)
                    break
    return out


def _check_roundtrip_updates(func: ast.AST, path: str) -> list[LintFinding]:
    """KL007: cancellation-prone read-modify-write accumulator updates."""
    name = getattr(func, "name", "<lambda>")
    return [LintFinding("KL007", path, stmt.lineno, name,
                        f"update `{ast.unparse(stmt)}` — {RULES['KL007']}")
            for stmt in roundtrip_update_stmts(func)]


def lint_file(path: str | Path) -> list[LintFinding]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def default_targets() -> list[Path]:
    """Every kernel-bearing source location.

    The ``primitives`` and ``sat`` trees hold the algorithm kernels;
    ``hostexec/kernels.py`` holds the incremental engine's repair kernels and
    ``gpusim/kernel.py`` documents the kernel authoring idiom — both were
    historically missed by the lint sweep.  ``hostexec/incremental.py``
    reconstructs accumulator state from edits, exactly the code KL007's
    cancellation-prone update pattern bites hardest.
    """
    import repro
    pkg = Path(repro.__file__).parent
    return [pkg / "primitives", pkg / "sat",
            pkg / "hostexec" / "kernels.py",
            pkg / "hostexec" / "incremental.py",
            pkg / "gpusim" / "kernel.py"]


def lint_paths(paths: Iterable[str | Path] | None = None) -> list[LintFinding]:
    """Lint files and/or directory trees (defaults to :func:`default_targets`)."""
    targets: Sequence[str | Path] = list(paths) if paths else default_targets()
    findings: list[LintFinding] = []
    for target in targets:
        target = Path(target)
        files = sorted(target.rglob("*.py")) if target.is_dir() else [target]
        for f in files:
            findings.extend(lint_file(f))
    return findings
