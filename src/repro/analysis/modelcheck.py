"""Exhaustive model checking of the extracted SAT protocols.

Explores **every** block interleaving of a :class:`~repro.analysis.protomodel.
ProtocolModel` on a small tile grid with an explicit-state BFS, proving (not
sampling) four properties per launch and residency pool:

* **deadlock freedom** — no reachable state where every resident worker is
  blocked on a ``wait``/look-back probe and no store can still commit;
* **status monotonicity & domains** — every flag write strictly increases the
  flag and stays inside the buffer's declared value domain;
* **look-back termination** — walks are finite by construction, so this
  reduces to deadlock freedom of their per-step spins;
* **refinement** — every output cell equals the sequential SAT of the
  symbolic input masses, every spec'd cell is written exactly once, and
  every cross-launch read finds a committed value (launch-barrier
  sufficiency).

Exploration assumes exactly the dispatcher contract the simulator publishes
(:class:`repro.gpusim.DispatchModel`): blocks dispatched in launch order,
bounded residency, slots refilled eagerly.  Two reductions keep the state
space finite and small without losing behaviours:

* **worker symmetry** — resident workers are interchangeable (their identity
  is the program they run, which is part of their state), so states are
  stored with the worker tuple sorted;
* **partial-order reduction** — operations whose timing other workers cannot
  observe (reads of committed single-writer slots, satisfied waits over
  monotone flags, output writes, store-buffer appends, empty fences,
  walk probes whose outcome is already final) are folded deterministically
  into their predecessor edge.  ``por=False`` disables this folding and
  explores them as first-class transitions — the verdict must not change,
  which the test suite cross-checks.

Counterexamples are shortest traces (BFS with parent pointers) and carry a
replay configuration in the fuzzer's ``FuzzConfig`` JSON format, so every
statically found violation can be reproduced dynamically with
``repro fuzz --replay '<json>'`` under the concurrency sanitizer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, NamedTuple

from repro.analysis.protomodel import (CounterRead, CounterStore, Fence,
                                       LaunchModel, Loc, Out, ProtocolModel,
                                       Publish, RaiseFlag, Read, Store, Wait,
                                       Walk, build_corpus_model, build_model,
                                       describe_loc, eval_expr)
from repro.errors import ModelCheckError

#: Default state budget per (launch, pool) exploration.
DEFAULT_MAX_STATES = 500_000

#: Residency pools swept per launch (capped at the program count).
MAX_POOL = 4

#: Violation kinds the checker can report, in severity order.
VIOLATION_KINDS = (
    "deadlock", "stale-read", "duplicate-ticket", "status-regression",
    "status-domain", "double-write", "wrong-value", "conflicting-write",
    "missing-output",
)


class _Worker(NamedTuple):
    """One resident block: program position plus private execution state."""
    prog: int
    pc: int
    phase: int        # next look-back step when parked on a Walk op
    acc: int          # walk accumulator
    env: tuple        # sorted ((register, value), ...)
    pending: tuple    # FIFO store buffer: ((loc, value), ...)


class _Violation(Exception):
    def __init__(self, kind: str, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.message = message


class _Mem:
    """Mutable memory under exploration (frozen into state tuples)."""

    __slots__ = ("slots", "written", "statuses", "counters", "claimed", "outs")

    def __init__(self, initial) -> None:
        self.slots = dict(initial)
        self.written: dict = {}        # slots committed during THIS launch
        self.statuses: dict = {}
        self.counters: dict = {}
        self.claimed: set = set()
        self.outs: dict = {}

    def freeze(self) -> tuple:
        return (tuple(sorted(self.written.items())),
                tuple(sorted(self.statuses.items())),
                tuple(sorted(self.counters.items())),
                tuple(sorted(self.claimed)),
                tuple(sorted(self.outs.items())))

    def commit(self, loc: Loc, value: int) -> None:
        if loc in self.written:
            raise _Violation("double-write",
                             f"{describe_loc(loc)} committed twice")
        self.written[loc] = value
        self.slots[loc] = value

    def raise_flag(self, loc: Loc, value: int,
                   domains) -> None:
        domain = domains.get(loc[0])
        if domain is not None and value not in domain:
            raise _Violation(
                "status-domain",
                f"{describe_loc(loc)} <- {value} outside domain {domain}")
        old = self.statuses.get(loc, 0)
        if value <= old:
            raise _Violation(
                "status-regression",
                f"{describe_loc(loc)} <- {value} does not increase {old}")
        self.statuses[loc] = value


@dataclass
class Violation:
    """One property violation with its shortest counterexample trace."""

    kind: str
    message: str
    trace: tuple[str, ...]
    replay: dict | None = None

    def to_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "trace": list(self.trace), "replay": self.replay}


@dataclass
class PoolCheck:
    """Exploration result of one launch at one residency pool."""

    pool: int
    states: int
    transitions: int
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {"pool": self.pool, "ok": self.ok, "states": self.states,
                "transitions": self.transitions,
                "violations": [v.to_dict() for v in sorted(
                    self.violations,
                    key=lambda v: VIOLATION_KINDS.index(v.kind))]}


@dataclass
class LaunchCheck:
    """All pool sweeps of one launch."""

    name: str
    dispatch: str
    programs: int
    pools: list[PoolCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.pools)

    def to_dict(self) -> dict:
        return {"launch": self.name, "dispatch": self.dispatch,
                "programs": self.programs, "ok": self.ok,
                "pools": [p.to_dict() for p in self.pools]}


@dataclass
class CheckResult:
    """Complete verification result of one algorithm (or corpus kernel)."""

    algorithm: str
    t: int
    acquisition: str
    por: bool
    launches: list[LaunchCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(launch.ok for launch in self.launches)

    @property
    def states(self) -> int:
        return sum(p.states for launch in self.launches
                   for p in launch.pools)

    @property
    def transitions(self) -> int:
        return sum(p.transitions for launch in self.launches
                   for p in launch.pools)

    def violations(self) -> list[Violation]:
        return [v for launch in self.launches for p in launch.pools
                for v in p.violations]

    def to_dict(self) -> dict:
        return {"algorithm": self.algorithm, "t": self.t,
                "acquisition": self.acquisition, "por": self.por,
                "ok": self.ok, "states": self.states,
                "transitions": self.transitions,
                "launches": [launch.to_dict() for launch in self.launches]}

    def report(self) -> str:
        verdict = "VERIFIED" if self.ok else "VIOLATIONS FOUND"
        lines = [f"modelcheck {self.algorithm} t={self.t} "
                 f"(acquisition={self.acquisition}, por={self.por}): "
                 f"{verdict} — {self.states} states, "
                 f"{self.transitions} transitions"]
        for launch in self.launches:
            pools = ", ".join(
                f"pool {p.pool}: "
                + ("ok" if p.ok else "/".join(v.kind for v in p.violations))
                + f" ({p.states} states)"
                for p in launch.pools)
            lines.append(f"  {launch.name} [{launch.dispatch}, "
                         f"{launch.programs} programs] {pools}")
        for v in self.violations():
            lines.append(f"  counterexample [{v.kind}] {v.message}")
            for step in v.trace:
                lines.append(f"    {step}")
            if v.replay:
                lines.append(f"    replay: repro fuzz --replay "
                             f"'{_replay_json(v.replay)}'")
        return "\n".join(lines)


def _replay_json(replay: dict) -> str:
    import json
    return json.dumps(replay, sort_keys=True)


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------

class _LaunchExplorer:
    def __init__(self, launch: LaunchModel, pool: int, *, por: bool,
                 max_states: int) -> None:
        self.launch = launch
        self.pool = pool
        self.por = por
        self.max_states = max_states

    # -- operation semantics ------------------------------------------------

    def _read_value(self, worker: _Worker, mem: _Mem, loc: Loc) -> int:
        for ploc, value in reversed(worker.pending):
            if ploc == loc:
                return value  # store-buffer forwarding
        if loc in mem.slots:
            return mem.slots[loc]
        raise _Violation(
            "stale-read",
            f"read of {describe_loc(loc)} observes no committed value")

    def _can_read(self, worker: _Worker, mem: _Mem, loc: Loc) -> bool:
        return loc in mem.slots or any(p == loc for p, _ in worker.pending)

    def _enabled(self, worker: _Worker, mem: _Mem) -> bool:
        op = self.launch.programs[worker.prog].ops[worker.pc]
        if isinstance(op, Wait):
            return mem.statuses.get(op.status, 0) >= op.threshold
        if isinstance(op, Walk) and worker.phase < len(op.steps):
            step = op.steps[worker.phase]
            return mem.statuses.get(step.status, 0) >= step.local_threshold
        return True

    def _is_eager(self, worker: _Worker, mem: _Mem) -> bool:
        """True when the op's timing is unobservable by other workers (or its
        outcome can no longer change), so it can be folded deterministically.

        Publish/RaiseFlag/Fence-with-pending/Counter ops are always visible.
        Reads are eager only for already-committed values — sound because the
        double-write check guarantees committed slots are final.  Waits are
        eager once satisfied — sound because flags are checked monotone.
        Walk probes are eager only once the observed flag has reached the
        global threshold (terminal branch; monotone flags cannot back out).
        """
        op = self.launch.programs[worker.prog].ops[worker.pc]
        if isinstance(op, (Store, Out)):
            return True
        if isinstance(op, Fence):
            return not worker.pending
        if isinstance(op, Wait):
            return self._enabled(worker, mem)
        if isinstance(op, Read):
            return self._can_read(worker, mem, op.loc)
        if isinstance(op, Walk):
            if worker.phase >= len(op.steps):
                return True  # completion is a pure register write
            step = op.steps[worker.phase]
            return (mem.statuses.get(step.status, 0) >= step.global_threshold
                    and step.global_loc in mem.slots)
        return False

    def _apply(self, worker: _Worker, mem: _Mem) -> tuple[_Worker, str]:
        """Execute the worker's current op against ``mem``."""
        program = self.launch.programs[worker.prog]
        op = program.ops[worker.pc]
        env = dict(worker.env)
        label = f"{program.label}: "
        pending = worker.pending
        phase, acc = 0, 0

        if isinstance(op, Store):
            pending = pending + ((op.loc, eval_expr(op.expr, env)),)
            label += f"store {describe_loc(op.loc)} (buffered)"
        elif isinstance(op, Fence):
            for loc, value in pending:
                mem.commit(loc, value)
            label += f"fence ({len(pending)} stores committed)"
            pending = ()
        elif isinstance(op, Publish):
            for loc, value in pending:
                mem.commit(loc, value)
            pending = ()
            for loc, expr in op.stores:
                mem.commit(loc, eval_expr(expr, env))
            mem.raise_flag(op.status, op.value, self.launch.status_domains)
            locs = ",".join(describe_loc(loc) for loc, _ in op.stores)
            label += f"publish {locs} -> {describe_loc(op.status)}={op.value}"
        elif isinstance(op, RaiseFlag):
            mem.raise_flag(op.status, op.value, self.launch.status_domains)
            label += (f"raise {describe_loc(op.status)}={op.value} "
                      f"({len(pending)} stores still buffered)")
        elif isinstance(op, Wait):
            label += f"wait {describe_loc(op.status)}>={op.threshold}"
        elif isinstance(op, Read):
            env[op.reg] = self._read_value(worker, mem, op.loc)
            label += f"read {describe_loc(op.loc)}"
        elif isinstance(op, Walk):
            if worker.phase < len(op.steps):
                step = op.steps[worker.phase]
                status = mem.statuses.get(step.status, 0)
                if status >= step.global_threshold:
                    value = self._read_value(worker, mem, step.global_loc)
                    env[op.reg] = worker.acc + value
                    label += (f"look-back {describe_loc(step.status)}={status}"
                              f": global {describe_loc(step.global_loc)},"
                              f" walk done")
                else:
                    value = self._read_value(worker, mem, step.local_loc)
                    label += (f"look-back {describe_loc(step.status)}={status}"
                              f": local {describe_loc(step.local_loc)}")
                    return worker._replace(
                        phase=worker.phase + 1, acc=worker.acc + value,
                        env=tuple(sorted(env.items()))), label
            else:
                env[op.reg] = worker.acc
                label += "look-back exhausted all predecessors"
        elif isinstance(op, Out):
            value = eval_expr(op.expr, env)
            want = self.launch.out_spec.get(op.loc)
            if want is not None and value != want:
                raise _Violation(
                    "wrong-value",
                    f"{describe_loc(op.loc)} <- {value}, spec requires {want}"
                    f" (refinement of the sequential SAT fails)")
            if op.loc in mem.outs and mem.outs[op.loc] != value:
                raise _Violation(
                    "conflicting-write",
                    f"{describe_loc(op.loc)} rewritten with a different "
                    f"value ({mem.outs[op.loc]} then {value})")
            mem.outs[op.loc] = value
            if op.reg is not None:
                env[op.reg] = value
            label += f"out {describe_loc(op.loc)}"
        elif isinstance(op, CounterRead):
            value = mem.counters.get(op.counter, 0)
            if value in mem.claimed:
                raise _Violation(
                    "duplicate-ticket",
                    f"ticket {value} acquired twice from '{op.counter}' "
                    f"(non-atomic read-modify-write)")
            mem.claimed.add(value)
            env[op.reg] = value
            label += f"ticket read -> {value}"
        elif isinstance(op, CounterStore):
            mem.counters[op.counter] = eval_expr(op.expr, env)
            label += f"ticket store {mem.counters[op.counter]}"
        else:  # pragma: no cover - op set is closed
            raise ModelCheckError(f"unknown op {op!r}")
        return worker._replace(pc=worker.pc + 1, phase=phase, acc=acc,
                               env=tuple(sorted(env.items())),
                               pending=pending), label

    def _drain(self, worker: _Worker, mem: _Mem) -> tuple[_Worker, str]:
        (loc, value), rest = worker.pending[0], worker.pending[1:]
        mem.commit(loc, value)
        program = self.launch.programs[worker.prog]
        return worker._replace(pending=rest), \
            f"{program.label}: store buffer drains {describe_loc(loc)}"

    # -- normalization ------------------------------------------------------

    def _normalize(self, workers: list[_Worker], nxt: int,
                   mem: _Mem) -> tuple[tuple, int, list[str]]:
        """Retire finished workers, dispatch eagerly, fold eager ops."""
        folded: list[str] = []
        changed = True
        while changed:
            changed = False
            kept = []
            for worker in workers:
                ops = self.launch.programs[worker.prog].ops
                if worker.pc >= len(ops) and not worker.pending:
                    changed = True  # retired: frees a residency slot
                else:
                    kept.append(worker)
            workers = kept
            while len(workers) < self.pool and nxt < len(self.launch.programs):
                workers.append(_Worker(nxt, 0, 0, 0, (), ()))
                folded.append(
                    f"dispatch {self.launch.programs[nxt].label}")
                nxt += 1
                changed = True
            if not self.por:
                continue
            for i, worker in enumerate(workers):
                if worker.pc >= len(self.launch.programs[worker.prog].ops):
                    continue
                if self._is_eager(worker, mem):
                    workers[i], label = self._apply(worker, mem)
                    folded.append(label)
                    changed = True
                    break
        return tuple(sorted(workers)), nxt, folded

    # -- exploration --------------------------------------------------------

    def run(self) -> PoolCheck:
        result = PoolCheck(pool=self.pool, states=0, transitions=0)
        seen_kinds: set[str] = set()
        parents: dict = {}

        def record(kind: str, message: str, state, labels: Iterable[str]):
            if kind in seen_kinds:
                return
            seen_kinds.add(kind)
            trace: list[str] = list(labels)
            while state is not None:
                state, label = parents[state]
                if label:
                    trace[:0] = label
            result.violations.append(
                Violation(kind=kind, message=message, trace=tuple(trace)))

        def freeze(workers, nxt, mem):
            return (workers, nxt, mem.freeze())

        mem = _Mem(self.launch.initial)
        try:
            workers, nxt, folded = self._normalize([], 0, mem)
        except _Violation as exc:
            record(exc.kind, exc.message, None, [])
            return result
        init = freeze(workers, nxt, mem)
        parents[init] = (None, folded)
        queue = deque([init])
        explored = set()

        while queue:
            state = queue.popleft()
            if state in explored:
                continue
            explored.add(state)
            result.states += 1
            if result.states > self.max_states:
                raise ModelCheckError(
                    f"launch '{self.launch.name}' pool={self.pool}: state "
                    f"budget {self.max_states} exceeded — raise --max-states "
                    f"or shrink t")
            workers, nxt, mem_frozen = state
            if not workers:
                for loc in sorted(self.launch.out_spec):
                    outs = dict(mem_frozen[4])
                    if loc not in outs:
                        record("missing-output",
                               f"terminated without writing "
                               f"{describe_loc(loc)}", state, [])
                continue

            moves = []
            seen_workers: set = set()
            mem0 = self._thaw(mem_frozen)
            for i, worker in enumerate(workers):
                if worker in seen_workers:
                    continue  # symmetric: identical worker, same successors
                seen_workers.add(worker)
                in_program = \
                    worker.pc < len(self.launch.programs[worker.prog].ops)
                if in_program and self._enabled(worker, mem0):
                    moves.append(("op", i))
                if worker.pending:
                    moves.append(("drain", i))
            if not moves:
                blocked = "; ".join(self._describe_block(w) for w in workers)
                record("deadlock",
                       f"{len(workers)} worker(s) blocked forever: {blocked}",
                       state, [])
                continue

            for kind, i in moves:
                mem = self._thaw(mem_frozen)
                mutable = list(workers)
                labels: list[str] = []
                try:
                    if kind == "op":
                        mutable[i], label = self._apply(mutable[i], mem)
                    else:
                        mutable[i], label = self._drain(mutable[i], mem)
                    labels.append(label)
                    new_workers, new_nxt, folded = \
                        self._normalize(mutable, nxt, mem)
                    labels.extend(folded)
                except _Violation as exc:
                    record(exc.kind, exc.message, state, labels)
                    continue
                result.transitions += 1
                successor = freeze(new_workers, new_nxt, mem)
                if successor not in parents:
                    parents[successor] = (state, labels)
                    queue.append(successor)
        return result

    def _thaw(self, mem_frozen) -> _Mem:
        written, statuses, counters, claimed, outs = mem_frozen
        mem = _Mem(self.launch.initial)
        mem.written = dict(written)
        mem.slots.update(mem.written)
        mem.statuses = dict(statuses)
        mem.counters = dict(counters)
        mem.claimed = set(claimed)
        mem.outs = dict(outs)
        return mem

    def _describe_block(self, worker: _Worker) -> str:
        program = self.launch.programs[worker.prog]
        if worker.pc >= len(program.ops):
            return f"{program.label} draining"
        op = program.ops[worker.pc]
        if isinstance(op, Wait):
            return (f"{program.label} waiting on "
                    f"{describe_loc(op.status)}>={op.threshold}")
        if isinstance(op, Walk):
            step = op.steps[worker.phase]
            return (f"{program.label} spinning in look-back on "
                    f"{describe_loc(step.status)}>={step.local_threshold}")
        return f"{program.label} at op {worker.pc}"


# ---------------------------------------------------------------------------
# Driver API
# ---------------------------------------------------------------------------

def _assert_dispatch_assumptions() -> None:
    """Refuse to verify against a dispatcher the simulator does not implement."""
    from repro.gpusim import DispatchModel
    model = DispatchModel()
    for name in ("in_order", "bounded_residency", "eager",
                 "intra_residency_free"):
        if not getattr(model, name):
            raise ModelCheckError(
                f"the simulator's DispatchModel no longer guarantees "
                f"'{name}'; the model checker's dispatch normalization "
                f"is built on it and must be revisited")


def check_launch(launch: LaunchModel, pool: int, *, por: bool = True,
                 max_states: int = DEFAULT_MAX_STATES) -> PoolCheck:
    """Exhaustively explore one launch at one residency pool."""
    explorer = _LaunchExplorer(launch, pool, por=por, max_states=max_states)
    return explorer.run()


def _pool_range(launch: LaunchModel,
                pools: tuple[int, ...] | None) -> tuple[int, ...]:
    cap = max(1, min(MAX_POOL, len(launch.programs)))
    if pools is None:
        return tuple(range(1, cap + 1))
    return tuple(p for p in pools if 1 <= p <= len(launch.programs)) or (1,)


def check_model(model: ProtocolModel, *, pools: tuple[int, ...] | None = None,
                por: bool = True,
                max_states: int = DEFAULT_MAX_STATES) -> CheckResult:
    """Check every launch of a model over the residency pool sweep.

    Each launch is explored independently (the launch boundary is a full
    barrier; its memory contract is the cumulative spec of earlier launches,
    and barrier sufficiency is itself checked — a cross-launch read of a cell
    no earlier launch was specified to write is a ``stale-read``).
    """
    _assert_dispatch_assumptions()
    result = CheckResult(algorithm=model.algorithm, t=model.t,
                         acquisition="-", por=por)
    for launch in model.launches:
        launch_check = LaunchCheck(name=launch.name, dispatch=launch.dispatch,
                                   programs=len(launch.programs))
        for pool in _pool_range(launch, pools):
            launch_check.pools.append(
                check_launch(launch, pool, por=por, max_states=max_states))
        result.launches.append(launch_check)
    return result


def _algorithm_replay(algorithm: str, t: int, acquisition: str,
                      pool: int) -> dict:
    """A ``FuzzConfig``-format replay of one violation: same algorithm, same
    residency, under the dynamic sanitizer with a bounded spin budget."""
    return {
        "algorithm": algorithm, "n": 32 * t, "tile_width": 32,
        "policy": "round_robin", "sim_seed": 0, "data_seed": 0,
        "residency": pool, "consistency": "relaxed", "tiny_device": False,
        "mode": "sanitize", "acquisition": acquisition, "spin_bound": 20000,
    }


def _corpus_replay(kernel: str, seed: int = 0) -> dict:
    return {
        "algorithm": "corpus", "kernel": kernel, "n": 32, "tile_width": 32,
        "policy": "random", "sim_seed": seed, "data_seed": 0,
        "residency": 2, "consistency": "relaxed", "tiny_device": True,
        "mode": "sanitize", "spin_bound": 20000,
    }


def _attach_replays(result: CheckResult, make_replay) -> CheckResult:
    for launch_check in result.launches:
        for pool_check in launch_check.pools:
            for violation in pool_check.violations:
                violation.replay = make_replay(pool_check.pool)
    return result


def check_algorithm(algorithm: str, t: int = 2, *,
                    acquisition: str = "diagonal", r: float = 0.25,
                    por: bool = True, pools: tuple[int, ...] | None = None,
                    max_states: int = DEFAULT_MAX_STATES) -> CheckResult:
    """Extract, build and exhaustively check one SAT algorithm."""
    model = build_model(algorithm, t, acquisition=acquisition, r=r)
    result = check_model(model, pools=pools, por=por, max_states=max_states)
    result.algorithm = model.algorithm
    result.acquisition = acquisition
    return _attach_replays(result, lambda pool: _algorithm_replay(
        model.algorithm, t, acquisition, pool))


def check_corpus(name: str, *, por: bool = True,
                 max_states: int = DEFAULT_MAX_STATES) -> CheckResult:
    """Check one bug-corpus kernel; violations replay the corpus entry."""
    model = build_corpus_model(name)
    result = check_model(model, por=por, max_states=max_states)
    return _attach_replays(result, lambda pool: _corpus_replay(name))


def check(target: str, t: int = 2, **kwargs) -> CheckResult:
    """Check an algorithm by name, or a bug-corpus kernel by its entry name."""
    from repro.analysis.bugcorpus import CONTROL, CORPUS
    corpus_names = {spec.name for spec in CORPUS + (CONTROL,)}
    if target in corpus_names:
        kwargs.pop("acquisition", None)
        kwargs.pop("r", None)
        kwargs.pop("pools", None)
        return check_corpus(target, **kwargs)
    return check_algorithm(target, t, **kwargs)
