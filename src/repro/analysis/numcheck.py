"""Static numerical-accuracy verification of the SAT kernels.

The fourth static leg (after protocol extraction, model checking, and cost
verification): prove a worst-case floating-point rounding-error bound for
every Table I algorithm *from the kernel ASTs*, and make that proof the
single source every float tolerance in the repo derives from
(:mod:`repro.analysis.tolerances`).

**Error model.**  Every SAT entry is a sum of input elements; each algorithm
computes it through a different tree of float additions (tile reductions,
prefix passes, carry chains).  The standard backward analysis gives

    ``computed[i, j] = sum_k a_k * (1 + theta_k)``, ``|theta_k| <= gamma_D``

where ``D`` bounds the number of serial float roundings along *any* single
addend's path and ``gamma_D = D*eps / (1 - D*eps)``.  Every addend of entry
``(i, j)`` lies in the rectangle ``[0..i, 0..j]``, so

    ``|computed[i, j] - exact[i, j]| <= gamma_D * SAT(|a|)[i, j]``.

The bound is *mass*-relative (relative to the absolute-value SAT), which is
the only form that stays sound under cancellation — a result-relative
``rtol * |want|`` is unsound whenever ``SAT(|a|) >> |SAT(a)|``.

**What is extracted.**  Each kernel's AST is scanned for three roles of
rounding-error site:

* *reduction* — a call to a shared-memory/warp reduction or prefix helper
  (``tile_row_sums``, ``assemble_gsat_in_shared``, ``cumsum``, look-back
  walks, ...) whose result feeds an accumulator;
* *accumulate* — an assignment that folds its own target back in
  (``acc = acc + ctx.gload(...)``, ``col_sums += ...``);
* *carry* — a global store/publish whose value expression itself performs a
  float addition (``ctx.gstore(sb.grs, ..., grs_left + lrs)``).

Each site carries an ``ERR_HINTS`` annotation next to the kernel code: the
worst-path number of serial float additions the site contributes over the
whole algorithm run, as an int or a ``lambda g`` over the counting geometry
(:func:`build_error_geometry`, reusing :mod:`repro.analysis.costcheck`'s
:class:`~repro.analysis.costcheck.Poly` so every formula evaluates both
symbolically and concretely).  Stale/missing/malformed hints raise
:class:`~repro.errors.NumericModelError` with file:line — the drift gate.
Summing per-site worst-path contributions over-approximates the deepest
path, so the per-algorithm depth ``D(t, W)`` is a sound closed form.

Notable proven facts: 1R1W and 1R1W-SKSS propagate carries *through* the
tile prefix passes (every tile hop costs ~2W roundings), so their depth is
``O(t*W) = O(n)``; 2R1W and the paper's 1R1W-SKSS-LB apply carries with
direct one-add chains and achieve ``O(t + W)`` — the load-balanced
algorithm is numerically superior as well as traffic-optimal.

**Host legs.**  ``_run_host`` mirrors each kernel's dataflow with shallower
(vectorized pairwise) tile sums, so the kernel depth covers it — except
2R2W-optimal, whose host path is a plain double ``cumsum`` of depth ``2n``
(:data:`HOST_DEPTHS`); tolerances take the max over both legs.

**Validation.**  The proofs are checked empirically: adversarial inputs
(half-ulp dust, sign-alternating, exponent-spread — see
:mod:`repro.apps.synthetic`) are run through every algorithm's host loop at
n in {256, 1024, 4096} x {float32, float64} (plus a simulator leg pinning
the kernel-dataflow depth specifically), and the measured mass-relative
error must sit below the proven bound while the bound stays tight within
~100x.  Integer accumulators are exact by construction; numcheck
cross-references :func:`~repro.analysis.costcheck.check_overflow` to prove
them overflow-free, hence error-free.
"""

from __future__ import annotations

import ast
import importlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Iterable, Iterator, Mapping

import numpy as np

from repro.analysis.costcheck import (KERNELS, Geometry, Poly, _ev,
                                      build_geometry, check_overflow)
from repro.analysis.kernellint import roundtrip_update_stmts
from repro.analysis.protomodel import (_calls_postorder, _function_ast,
                                       _method_name)
from repro.analysis.table1 import TABLE1_ORDER
from repro.errors import ConfigurationError, NumericModelError

__all__ = ["ErrorSite", "extract_error_sites", "dump_error_keys",
           "kernel_error_depth", "kernel_depths", "build_error_geometry",
           "symbolic_depth", "symbolic_host_depth", "concrete_depth",
           "error_bound_strings", "gamma", "find_numeric_bugs",
           "validate_bounds", "integer_exactness", "check_numeric_corpus",
           "run_numcheck", "render_numcheck_report", "HOST_DEPTHS",
           "GENERATORS", "TIGHTNESS_PROBES"]


# ---------------------------------------------------------------------------
# Error-site extraction from kernel ASTs
# ---------------------------------------------------------------------------

#: Reduction/prefix helpers whose result feeds an accumulator.  ``sum`` is
#: deliberately absent: bare ``.sum(...)`` only appears inside accumulation
#: statements, which are already sites — listing it would double-extract.
_REDUCTIONS = frozenset({
    "tile_row_sums", "tile_col_sums", "tile_row_prefix_sums",
    "tile_col_prefix_sums", "load_tile_with_col_sums",
    "assemble_gsat_in_shared", "lane_vector_sum", "block_inclusive_scan",
    "cumsum", "lookback_walk", "row_lookback", "col_lookback",
    "diag_lookback", "add_to_col", "add_to_row", "add_to_element",
})

#: Store/publish methods -> positional index of the stored value expression.
#: ``publish`` is handled separately (its values sit in a stores list).
_CARRY_VALUE_ARG = {"gstore": 2, "gstore_scalar": 2,
                    "publish_vector": 3, "publish_scalar": 3}

#: The only field an ERR_HINTS entry takes.
_HINT_FIELDS = {"depth"}


@dataclass(frozen=True)
class ErrorSite:
    """One rounding-error site in a kernel's source."""

    kernel: str
    role: str    # "reduction" | "accumulate" | "carry"
    method: str  # helper/store method name ("" for accumulate statements)
    key: str     # ast.unparse of the call/statement — the ERR_HINTS key
    file: str
    line: int    # 1-based line in the source file

    @property
    def where(self) -> str:
        return f"{self.file}:{self.line}"


def _stmts_in(node: ast.AST) -> Iterator[ast.AST]:
    """Nodes lexically inside ``node``, excluding nested function/lambda
    bodies (mirrors ``_calls_postorder``'s scoping)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        yield from _stmts_in(child)


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _is_accumulation(stmt: ast.AST) -> bool:
    """An assignment that folds its own target back in with ``+``/``-``."""
    if isinstance(stmt, ast.AugAssign):
        return isinstance(stmt.op, (ast.Add, ast.Sub))
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
        return (isinstance(target, ast.Name) and isinstance(value, ast.BinOp)
                and isinstance(value.op, (ast.Add, ast.Sub))
                and target.id in _names_in(value))
    return False


def _has_float_binop(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.BinOp)
               and isinstance(sub.op, (ast.Add, ast.Sub))
               for sub in ast.walk(node))


def _carry_value_exprs(call: ast.Call, method: str) -> list[ast.AST]:
    """The stored value expression(s) of a store/publish call."""
    if method in _CARRY_VALUE_ARG:
        idx = _CARRY_VALUE_ARG[method]
        return [call.args[idx]] if len(call.args) > idx else []
    if method == "publish" and len(call.args) > 1:
        entries = call.args[1]
        if isinstance(entries, (ast.List, ast.Tuple)):
            return [e.elts[2] for e in entries.elts
                    if isinstance(e, (ast.Tuple, ast.List))
                    and len(e.elts) >= 3]
    return []


def extract_error_sites(fn: Callable) -> list[ErrorSite]:
    """All rounding-error sites of ``fn``, in source order.

    Duplicate (lexically identical) sites raise
    :class:`~repro.errors.NumericModelError`: ERR_HINTS keys on the
    unparsed source, so ambiguity would make the drift gate unsound.
    """
    func = _function_ast(fn)
    filename = fn.__code__.co_filename.rsplit("/", 1)[-1]
    base = fn.__code__.co_firstlineno
    sites: list[ErrorSite] = []
    seen: dict[str, ErrorSite] = {}

    def add(role: str, method: str, node: ast.AST, key: str) -> None:
        site = ErrorSite(kernel=fn.__name__, role=role, method=method,
                         key=key, file=filename,
                         line=base + node.lineno - 1)
        if site.key in seen:
            first = seen[site.key]
            raise NumericModelError(
                f"{site.where}: kernel {fn.__name__} repeats the error site "
                f"`{site.key}` (first at {first.where}); numcheck needs "
                f"lexically unique sites to key ERR_HINTS")
        seen[site.key] = site
        sites.append(site)

    for call in _calls_postorder(func):
        method = _method_name(call)
        if method in _REDUCTIONS:
            add("reduction", method, call, ast.unparse(call))
        elif method in _CARRY_VALUE_ARG or method == "publish":
            if any(_has_float_binop(v)
                   for v in _carry_value_exprs(call, method)):
                add("carry", method, call, ast.unparse(call))
    for stmt in _stmts_in(func):
        if isinstance(stmt, (ast.Assign, ast.AugAssign)) \
                and _is_accumulation(stmt):
            add("accumulate", "", stmt, ast.unparse(stmt))
    sites.sort(key=lambda s: s.line)
    return sites


def dump_error_keys(fn: Callable) -> list[str]:
    """The ERR_HINTS keys ``fn`` requires (for authoring annotations)."""
    return [s.key for s in extract_error_sites(fn)]


# ---------------------------------------------------------------------------
# Hint interpretation: sites x geometry -> worst-path rounding depth
# ---------------------------------------------------------------------------

def kernel_error_depth(fn: Callable, hints: Mapping[str, Mapping[str, Any]],
                       g: Geometry) -> Any:
    """Total worst-path rounding depth of ``fn`` under ``hints`` over ``g``.

    Each hint is the site's whole-run worst-path contribution; the sum
    over-approximates the deepest addition chain.  Raises
    :class:`~repro.errors.NumericModelError` with the offending source
    location when hints are missing, stale, or malformed — the drift gate.
    """
    sites = extract_error_sites(fn)
    keys = {s.key for s in sites}
    for key in hints:
        if key not in keys:
            raise NumericModelError(
                f"{fn.__name__}: ERR_HINTS entry `{key}` matches no error "
                f"site in the kernel source — stale annotation")
    total: Any = 0
    for site in sites:
        hint = hints.get(site.key)
        if hint is None:
            raise NumericModelError(
                f"{site.where}: {site.role} site `{site.key}` has no "
                f"ERR_HINTS entry in {fn.__module__}")
        extra = set(hint) - _HINT_FIELDS
        if extra or "depth" not in hint:
            raise NumericModelError(
                f"{site.where}: ERR_HINTS for `{site.key}` must be "
                f"{{'depth': <int or lambda g>}}; got field(s) "
                f"{sorted(hint)}")
        total = total + _ev(hint["depth"], g)
    return total


def _load_err_kernel(spec) -> tuple[Callable, Mapping]:
    module = importlib.import_module(spec.module)
    fn = getattr(module, spec.kernel)
    all_hints = getattr(module, "ERR_HINTS", None)
    if all_hints is None or spec.kernel not in all_hints:
        raise NumericModelError(
            f"{spec.module} declares no ERR_HINTS for {spec.kernel}")
    return fn, all_hints[spec.kernel]


def build_error_geometry(algorithm: str, *, sym: bool, n: int = 128,
                         W: int = 32) -> Geometry:
    """Cost geometry plus the chain-length fields the error hints need."""
    g = build_geometry(algorithm, sym=sym, n=n, W=W)
    if algorithm == "2R2W-optimal":
        # Panels along one column / partitions along one row: the carry
        # chain lengths of the two scan primitives.
        g.cs_panels = g.n // g.cs_panel_rows
        g.rs_parts_per_row = g.n // g.rs_P
    return g


def kernel_depths(algorithm: str, g: Geometry) -> dict[str, Any]:
    """Per-kernel worst-path depth of ``algorithm``, keyed by kernel name."""
    if algorithm not in KERNELS:
        raise ConfigurationError(
            f"unknown algorithm '{algorithm}'; known: {sorted(KERNELS)}")
    out: dict[str, Any] = {}
    for spec in KERNELS[algorithm]:
        fn, hints = _load_err_kernel(spec)
        out[spec.kernel] = kernel_error_depth(fn, hints, g)
    return out


#: ``_run_host`` dataflow depths where they EXCEED the kernel dataflow.
#: Only 2R2W-optimal diverges: its host path is a plain double cumsum
#: (depth ``rows + cols = 2n``), while the device path's panel/partition
#: decomposition is exponentially shallower.  Every other ``_run_host``
#: mirrors its kernels' dataflow with vectorized (never deeper) tile sums.
HOST_DEPTHS: dict[str, Callable[[Geometry], Any]] = {
    "2R2W-optimal": lambda g: 2 * g.n,
}


def symbolic_depth(algorithm: str) -> Poly:
    """The proven closed-form kernel-dataflow depth ``D(t, W)``."""
    g = build_error_geometry(algorithm, sym=True)
    total: Any = 0
    for depth in kernel_depths(algorithm, g).values():
        total = total + depth
    return total if isinstance(total, Poly) else Poly.const(total)


def symbolic_host_depth(algorithm: str) -> Poly:
    """Closed-form depth of the serial host leg (= kernel depth unless the
    host dataflow is deeper, see :data:`HOST_DEPTHS`)."""
    if algorithm in HOST_DEPTHS:
        g = build_error_geometry(algorithm, sym=True)
        value = _ev(HOST_DEPTHS[algorithm], g)
        return value if isinstance(value, Poly) else Poly.const(value)
    return symbolic_depth(algorithm)


@lru_cache(maxsize=None)
def concrete_depth(algorithm: str, n: int, W: int = 32,
                   leg: str = "any") -> int:
    """Worst-path rounding depth at a concrete square shape ``n`` (a tile
    multiple).  ``leg`` is ``"device"`` (kernel dataflow), ``"host"``
    (serial ``_run_host``), or ``"any"`` (max of both — what tolerances
    use, since either leg may have produced the result under comparison).
    """
    if leg not in ("device", "host", "any"):
        raise ConfigurationError(
            f"leg must be 'device', 'host' or 'any', got {leg!r}")
    g = build_error_geometry(algorithm, sym=False, n=n, W=W)
    device = 0
    for depth in kernel_depths(algorithm, g).values():
        device += int(depth)
    if leg == "device":
        return device
    host = int(_ev(HOST_DEPTHS[algorithm], g)) \
        if algorithm in HOST_DEPTHS else device
    return host if leg == "host" else max(device, host)


def error_bound_strings() -> dict[str, str]:
    """Per-algorithm proven bound, rendered for ``repro list --json``."""
    out = {}
    for algorithm in TABLE1_ORDER:
        out[algorithm] = (f"|err| <= gamma_D * SAT(|a|), "
                          f"D = {symbolic_depth(algorithm)}")
    return out


def gamma(depth: int, dtype: Any) -> float:
    """``gamma_D = D*eps / (1 - D*eps)`` for the accumulator ``dtype``.

    Uses the full machine epsilon (not ``eps/2``) as the per-rounding unit
    — a deliberate factor-2 cushion over the round-to-nearest unit roundoff
    so the bound stays sound against mild model slop.
    """
    dt = np.dtype(dtype)
    if not np.issubdtype(dt, np.floating):
        return 0.0
    eps = float(np.finfo(dt).eps)
    x = depth * eps
    if x >= 1.0:
        raise NumericModelError(
            f"rounding depth {depth} saturates {dt.name} "
            f"(D*eps = {x:.2f} >= 1); no finite relative bound exists")
    return x / (1.0 - x)


# ---------------------------------------------------------------------------
# Structural numeric-bug detector (shared with lint rule KL007)
# ---------------------------------------------------------------------------

def find_numeric_bugs(fn: Callable) -> list[dict[str, Any]]:
    """Cancellation-prone read-modify-write updates in one kernel.

    The PR 4 regression class: ``x += y - x`` (or ``x = x + (y - x)``)
    computes the new value through a subtraction against the accumulator,
    re-rounding it and silently dropping low bits — instead of assigning
    the new value directly.  Shares its AST predicate with lint rule KL007
    (:func:`repro.analysis.kernellint.roundtrip_update_stmts`).
    """
    func = _function_ast(fn)
    filename = fn.__code__.co_filename.rsplit("/", 1)[-1]
    base = fn.__code__.co_firstlineno
    return [{"kind": "rounding-roundtrip", "kernel": fn.__name__,
             "file": filename, "line": base + stmt.lineno - 1,
             "detail": (f"cancellation-prone update "
                        f"`{ast.unparse(stmt)}`: the subtraction against "
                        f"the accumulator re-rounds it and drops low bits; "
                        f"assign the new value directly")}
            for stmt in roundtrip_update_stmts(func)]


def check_numeric_corpus() -> list[dict[str, Any]]:
    """Planted numeric bugs must be caught; the 13 real kernels stay clean."""
    from repro.analysis import bugcorpus
    results = []
    for spec in bugcorpus.NUMERIC_CORPUS:
        findings = find_numeric_bugs(spec.kernel)
        kinds = {f["kind"] for f in findings}
        ok = spec.expected_numeric in kinds if spec.expected_numeric \
            else not findings
        results.append({
            "bug": spec.name, "expected": spec.expected_numeric,
            "found": sorted(kinds), "findings": findings, "ok": ok,
        })
    for algorithm in TABLE1_ORDER:
        for spec in KERNELS[algorithm]:
            module = importlib.import_module(spec.module)
            findings = find_numeric_bugs(getattr(module, spec.kernel))
            if findings:
                results.append({
                    "bug": f"control:{spec.kernel}", "expected": "",
                    "found": sorted({f["kind"] for f in findings}),
                    "findings": findings, "ok": False,
                })
    return results


# ---------------------------------------------------------------------------
# Empirical validation of the proven bounds
# ---------------------------------------------------------------------------

#: Adversarial input families (see :mod:`repro.apps.synthetic`).  The two
#: dust probes are the tightness probes (their measured error tracks actual
#: chain lengths: uniform dust drives the plain scan paths, diagonal dust
#: the wavefront carry chains where uniform boundary sums outgrow half an
#: ulp); the other two exercise absorption and cancellation soundness.
GENERATORS = ("halfulp-dust", "diag-dust", "exponent-spread",
              "sign-alternating")

#: The subset of :data:`GENERATORS` run at *every* size and used for the
#: tightness verdict (max over probes).
TIGHTNESS_PROBES = ("halfulp-dust", "diag-dust")


def _adversarial_input(generator: str, n: int, dtype: np.dtype,
                       seed: int = 0, W: int = 32) -> np.ndarray:
    from repro.apps.synthetic import (diag_dust, exponent_spread,
                                      halfulp_dust, sign_alternating)
    if generator == "halfulp-dust":
        a = halfulp_dust(n, dtype=dtype, seed=seed)
    elif generator == "diag-dust":
        a = diag_dust(n, tile=W, dtype=dtype, seed=seed)
    elif generator == "exponent-spread":
        a = exponent_spread(n, seed=seed)
    elif generator == "sign-alternating":
        a = sign_alternating(n, seed=seed)
    else:
        raise ConfigurationError(
            f"unknown adversarial generator {generator!r}; "
            f"known: {GENERATORS}")
    return np.ascontiguousarray(a.astype(dtype))


def _reference_and_mass(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Near-exact reference SAT and the per-entry absolute mass SAT(|a|).

    float32 inputs: a plain float64 double cumsum is ~2^29 times more
    accurate than any float32 result — effectively exact.  float64 inputs:
    Kahan-compensated float64 scans (error O(eps^2) per step).
    """
    a64 = np.asarray(a, dtype=np.float64)
    if np.dtype(a.dtype) == np.dtype(np.float64):
        from repro.analysis.precision import sat_kahan
        ref = sat_kahan(a64, np.float64)
    else:
        ref = a64.cumsum(axis=0).cumsum(axis=1)
    mass = np.abs(a64).cumsum(axis=0).cumsum(axis=1)
    return ref, mass


def _measured_depth(got: np.ndarray, ref: np.ndarray, mass: np.ndarray,
                    dtype: np.dtype) -> float:
    """Max observed error in depth units: ``|got - ref| / (eps * mass)``."""
    eps = float(np.finfo(dtype).eps)
    err = np.abs(np.asarray(got, dtype=np.float64) - ref)
    denom = eps * np.maximum(mass, np.finfo(np.float64).tiny)
    return float((err / denom).max())


def validate_bounds(algorithms: Iterable[str] | None = None, *,
                    sizes: tuple[int, ...] = (256, 1024, 4096),
                    dtypes: tuple[str, ...] = ("float32", "float64"),
                    device: bool = True, device_n: int = 128, W: int = 32,
                    seed: int = 0,
                    tightness_limit: float = 100.0) -> list[dict[str, Any]]:
    """Measured vs. proven error for every algorithm x dtype x size.

    The host leg runs every generator at the smallest size and the two
    tightness probes (uniform and diagonal dust) at every size; the
    simulator leg runs the dust probes at ``device_n`` in float64 (the
    simulator's buffers are float64, so it is the only dtype whose device
    result is meaningful) and checks the kernel-dataflow depth
    specifically.  A row fails when the measured error exceeds the proven
    bound, or when the best tightness probe shows the bound looser than
    ``tightness_limit``.
    """
    from repro.sat.registry import get_algorithm
    names = tuple(algorithms) if algorithms is not None else TABLE1_ORDER
    rows: list[dict[str, Any]] = []
    for dtype_name in dtypes:
        dtype = np.dtype(dtype_name)
        if not np.issubdtype(dtype, np.floating):
            raise ConfigurationError(
                f"validate_bounds covers float dtypes, got {dtype_name!r}")
        for n in sizes:
            probes = GENERATORS if n == min(sizes) else TIGHTNESS_PROBES
            inputs = {}
            for generator in probes:
                a = _adversarial_input(generator, n, dtype, seed=seed, W=W)
                inputs[generator] = (a, *_reference_and_mass(a))
            for name in names:
                alg = get_algorithm(name, tile_width=W)
                proven = concrete_depth(name, n, W, leg="any")
                bound = gamma(proven, dtype)
                measured = {
                    generator: _measured_depth(
                        alg.run_host(a), ref, mass, dtype)
                    for generator, (a, ref, mass) in inputs.items()}
                worst = max(measured.values())
                dust = max(measured[g] for g in TIGHTNESS_PROBES)
                tightness = proven / dust if dust > 0 else float("inf")
                rows.append({
                    "algorithm": name, "dtype": dtype.name, "n": n,
                    "leg": "host", "proven_depth": proven,
                    "gamma": bound, "measured_depth": worst,
                    "measured_rel": worst * float(np.finfo(dtype).eps),
                    "per_generator": measured, "tightness": tightness,
                    "ok": (worst <= proven
                           and tightness <= tightness_limit),
                })
    if device:
        dtype = np.dtype(np.float64)
        inputs = {}
        for generator in TIGHTNESS_PROBES:
            a = _adversarial_input(generator, device_n, dtype, seed=seed,
                                   W=W)
            inputs[generator] = (a, *_reference_and_mass(a))
        for name in names:
            alg = get_algorithm(name, tile_width=W)
            proven = concrete_depth(name, device_n, W, leg="device")
            measured = {
                generator: _measured_depth(alg.run(a).sat, ref, mass, dtype)
                for generator, (a, ref, mass) in inputs.items()}
            worst = max(measured.values())
            tightness = proven / worst if worst > 0 else float("inf")
            rows.append({
                "algorithm": name, "dtype": dtype.name, "n": device_n,
                "leg": "device", "proven_depth": proven,
                "gamma": gamma(proven, dtype), "measured_depth": worst,
                "measured_rel": worst * float(np.finfo(dtype).eps),
                "per_generator": measured, "tightness": tightness,
                "ok": (worst <= proven
                       and tightness <= tightness_limit),
            })
    return rows


def integer_exactness(*, W: int = 32) -> list[dict[str, Any]]:
    """Integer accumulators are error-free iff they cannot overflow.

    Integer addition is exact, so the only numeric failure mode is range —
    which costcheck's interval analysis already proves per dtype at the
    device-max shape.  This cross-references those verdicts into numeric
    form: overflow-free integer accumulator => zero rounding error
    (``gamma = 0``); float accumulators point at the proven gamma bounds.
    """
    rows = []
    for verdict in check_overflow(W=W):
        acc = np.dtype(verdict["accumulator"])
        if np.issubdtype(acc, np.floating):
            rows.append({
                "dtype": verdict["dtype"], "accumulator": acc.name,
                "exact": False, "error_free": False, "ok": True,
                "note": "float accumulator: bounded by the proven "
                        "per-algorithm gamma_D (see bounds)"})
        else:
            rows.append({
                "dtype": verdict["dtype"], "accumulator": acc.name,
                "exact": True, "error_free": bool(verdict["ok"]),
                "ok": bool(verdict["ok"]) or verdict["dtype"] in
                      ("int64", "uint64"),
                "note": verdict["note"]})
    return rows


# ---------------------------------------------------------------------------
# Top-level driver / report
# ---------------------------------------------------------------------------

def run_numcheck(algorithms: Iterable[str] | None = None, *,
                 sizes: tuple[int, ...] = (256, 1024, 4096),
                 dtypes: tuple[str, ...] = ("float32", "float64"),
                 device: bool = True, device_n: int = 128, W: int = 32,
                 corpus: bool = True, seed: int = 0,
                 tightness_limit: float = 100.0) -> dict[str, Any]:
    """The full numerical-accuracy verification; the ``repro numcheck``
    payload (written to ``numcheck.json`` by the smoke gate)."""
    names = list(algorithms) if algorithms is not None \
        else list(TABLE1_ORDER)
    out: dict[str, Any] = {"W": W, "sizes": list(sizes),
                           "dtypes": list(dtypes), "algorithms": [],
                           "ok": True}
    for name in names:
        gsym = build_error_geometry(name, sym=True)
        depths = kernel_depths(name, gsym)
        entry: dict[str, Any] = {
            "algorithm": name,
            "depth": str(symbolic_depth(name)),
            "host_depth": str(symbolic_host_depth(name)),
            "kernels": {k: str(v) for k, v in depths.items()},
            "bounds": {},
        }
        for dtype_name in dtypes:
            dtype = np.dtype(dtype_name)
            entry["bounds"][dtype.name] = [
                {"n": n, "depth": concrete_depth(name, n, W, leg="any"),
                 "gamma": gamma(concrete_depth(name, n, W, leg="any"),
                                dtype)}
                for n in sizes]
        out["algorithms"].append(entry)
    out["validation"] = validate_bounds(
        names, sizes=sizes, dtypes=dtypes, device=device,
        device_n=device_n, W=W, seed=seed,
        tightness_limit=tightness_limit)
    out["ok"] = out["ok"] and all(r["ok"] for r in out["validation"])
    out["integer"] = integer_exactness(W=W)
    out["ok"] = out["ok"] and all(r["ok"] for r in out["integer"])
    if corpus:
        out["corpus"] = check_numeric_corpus()
        out["ok"] = out["ok"] and all(c["ok"] for c in out["corpus"])
    return out


def render_numcheck_report(result: Mapping[str, Any]) -> str:
    """Human-readable summary of a :func:`run_numcheck` result."""
    lines = [f"numcheck @ W={result['W']} "
             f"sizes={','.join(str(n) for n in result['sizes'])}", ""]
    lines.append("proven worst-case rounding depths "
                 "(|err| <= gamma_D * SAT(|a|)):")
    for entry in result["algorithms"]:
        lines.append(f"  {entry['algorithm']}: D = {entry['depth']}")
        if entry["host_depth"] != entry["depth"]:
            lines.append(f"    host leg: D = {entry['host_depth']}")
        for kernel, depth in entry["kernels"].items():
            lines.append(f"    {kernel}: {depth}")
    lines.append("")
    lines.append("empirical validation (measured depth <= proven depth; "
                 "tightness = proven/measured on the dust probe):")
    for row in result["validation"]:
        mark = "ok" if row["ok"] else "FAIL"
        lines.append(
            f"  [{mark}] {row['algorithm']} {row['dtype']} n={row['n']} "
            f"({row['leg']}): measured {row['measured_depth']:.1f} "
            f"<= proven {row['proven_depth']} "
            f"(tightness {row['tightness']:.1f}x, "
            f"rel {row['measured_rel']:.3e} <= gamma {row['gamma']:.3e})")
    lines.append("")
    lines.append("integer accumulators (exact arithmetic; error-free iff "
                 "overflow-free per costcheck):")
    for row in result["integer"]:
        mark = "ok" if row["ok"] else "FAIL"
        free = "error-free" if row["error_free"] else \
            ("gamma-bounded" if not row["exact"] else "CAN OVERFLOW")
        lines.append(f"  [{mark}] {row['dtype']} -> {row['accumulator']}: "
                     f"{free}")
    if "corpus" in result:
        lines.append("")
        lines.append("planted numeric-bug corpus:")
        for c in result["corpus"]:
            mark = "ok" if c["ok"] else "MISSED"
            found = ", ".join(c["found"]) or "nothing"
            lines.append(f"  [{mark}] {c['bug']}: expected "
                         f"{c['expected'] or 'clean'}, found {found}")
    lines.append("")
    lines.append("PASS" if result["ok"] else "FAIL")
    return "\n".join(lines)
