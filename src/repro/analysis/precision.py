"""Floating-point precision analysis of SAT construction.

The paper computes float32 SATs up to 32K x 32K.  A SAT entry is a sum of up
to n² values, so float32 round-off grows with the prefix length — a practical
concern any 1R1W implementation inherits unchanged (the tile algebra performs
the same additions in a different order).  This module quantifies it:

* :func:`sat_float32` — the SAT in float32 arithmetic (the paper's dtype);
* :func:`sat_kahan` — compensated (Kahan) column/row scans in float32,
  recovering most of the lost accuracy at ~2x the additions;
* :func:`max_relative_error` / :func:`precision_report` — empirical error of
  a computed SAT against a float64 reference, and its growth with n.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference


def sat_float32(a: np.ndarray) -> np.ndarray:
    """The SAT computed entirely in float32 (column then row scans)."""
    a32 = np.asarray(a, dtype=np.float32)
    if a32.ndim != 2:
        raise ConfigurationError("expected a 2-D matrix")
    return a32.cumsum(axis=0, dtype=np.float32).cumsum(axis=1,
                                                       dtype=np.float32)


def _kahan_cumsum(a: np.ndarray, axis: int,
                  dtype: np.dtype | type = np.float32) -> np.ndarray:
    """Compensated running sum along an axis (float32 by default; numcheck's
    empirical leg uses the float64 variant as its near-exact reference)."""
    a = np.moveaxis(np.asarray(a, dtype=dtype), axis, 0)
    out = np.empty_like(a)
    total = np.zeros(a.shape[1:], dtype=dtype)
    comp = np.zeros(a.shape[1:], dtype=dtype)
    for k in range(a.shape[0]):
        y = a[k] - comp
        t = total + y
        comp = (t - total) - y
        total = t
        out[k] = total
    return np.moveaxis(out, 0, axis)


def sat_kahan(a: np.ndarray,
              dtype: np.dtype | type = np.float32) -> np.ndarray:
    """SAT with Kahan-compensated scans on both axes (float32 by default)."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError("expected a 2-D matrix")
    return _kahan_cumsum(_kahan_cumsum(a, 0, dtype), 1, dtype)


def max_relative_error(computed: np.ndarray, a: np.ndarray) -> float:
    """Max |computed − exact| / max(|exact|, 1) against the float64 SAT."""
    exact = sat_reference(np.asarray(a, dtype=np.float64))
    scale = np.maximum(np.abs(exact), 1.0)
    return float((np.abs(np.asarray(computed, dtype=np.float64) - exact)
                  / scale).max())


@dataclass(frozen=True)
class PrecisionRow:
    """Error of one size: plain float32 vs Kahan-compensated float32."""

    n: int
    err_float32: float
    err_kahan: float


def precision_report(sizes=(64, 256, 1024), *, seed: int = 0) -> list[PrecisionRow]:
    """Empirical error growth of float32 SATs on uniform random inputs."""
    rng = np.random.default_rng(seed)
    rows = []
    for n in sizes:
        a = rng.random((n, n))
        rows.append(PrecisionRow(
            n=n,
            err_float32=max_relative_error(sat_float32(a), a),
            err_kahan=max_relative_error(sat_kahan(a), a)))
    return rows


def ulps_needed(n: int) -> float:
    """Rule-of-thumb worst-case relative error of a length-n² recursive sum
    in float32: ~n²·eps/2 (linear in the number of additions)."""
    return n * n * np.finfo(np.float32).eps / 2
