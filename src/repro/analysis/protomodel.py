"""Protocol extraction: kernel ASTs -> finite protocol models.

The dynamic sanitizer (:mod:`repro.analysis.sanitizer`) observes the
schedules a run happens to explore; the model checker
(:mod:`repro.analysis.modelcheck`) needs the *complete* behaviour instead.
This module builds that bridge: it statically extracts each kernel's
synchronization skeleton — publish/fence/wait edges, look-back walks, ticket
acquisition — from the kernel's AST and compiles it, together with the host
side's real geometry functions, into a finite :class:`ProtocolModel` that the
checker can exhaust.

The split of trust is deliberate and narrow:

* the **protocol shape** (which buffers are published under which status
  values, in which order; which walks run with which thresholds; whether the
  kernel loops on an ``atomicAdd`` ticket) is *extracted* from the kernel
  source via :func:`extract_kernel` and cross-checked against the kernel
  module's declared ``MODEL_HINTS`` — any drift between source and
  declaration raises :class:`~repro.errors.ExtractionError`;
* the **index geometry** (which tile a serial maps to, which predecessors a
  walk visits) comes from the same host functions the kernels themselves
  call at run time (``acquisition_tile``, ``serial_to_tile``,
  ``RowScanLayout``/``ColScanLayout``, ``band_limits``/``band_tiles``,
  ``tiles_on_diagonal``); the per-step ``status_index`` lambdas of the
  tile walkers are additionally re-evaluated from their extracted ASTs
  against the builder's step lists;
* the **value algebra** is abstracted to integer *masses*: input cell
  ``(i, j)`` of a ``t x t`` tile grid carries ``2**(i*t + j)``, so every
  region sum is a distinct bitmask and the refinement check
  (model output == sequential SAT of the masses) is exact.

Plain global stores whose only readers live in *later* launches (the
multi-launch algorithms' ``grs``/``gcs``/``gs``/output tiles) are modeled as
immediate :class:`Out` writes: the kernel-launch boundary is a full barrier,
so their intra-launch visibility is irrelevant — the checker still verifies
that every cross-launch read finds a committed value (barrier sufficiency).
Stores that *are* read within a launch must go through :class:`Publish`
(data, fence, monotone flag) — exactly the discipline
:func:`repro.primitives.lookback.publish` implements.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.errors import ConfigurationError, ExtractionError

# ---------------------------------------------------------------------------
# Value expressions: int mass | register name | ("+"/"-", lhs, rhs)
# ---------------------------------------------------------------------------

Loc = tuple
Expr = object


def eval_expr(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate a mass expression against a register environment."""
    if isinstance(expr, bool):  # bool is an int subclass; reject explicitly
        raise ConfigurationError(f"invalid mass expression {expr!r}")
    if isinstance(expr, int):
        return expr
    if isinstance(expr, str):
        return env[expr]
    op, lhs, rhs = expr
    if op == "+":
        return eval_expr(lhs, env) + eval_expr(rhs, env)
    if op == "-":
        return eval_expr(lhs, env) - eval_expr(rhs, env)
    raise ConfigurationError(f"unknown expression operator {op!r}")


def describe_loc(loc: Loc) -> str:
    """``("grs", 1, 0)`` -> ``"grs[1,0]"``."""
    return f"{loc[0]}[{','.join(str(x) for x in loc[1:])}]"


def unit(i: int, j: int, t: int) -> int:
    """The mass of input tile/cell ``(i, j)`` on a ``t x t`` grid."""
    return 1 << (i * t + j)


def rect_mass(i: int, j: int, t: int) -> int:
    """Mass of the inclusive rectangle ``(0..i, 0..j)`` — the SAT value."""
    return sum(unit(a, b, t) for a in range(i + 1) for b in range(j + 1))


def row_mass(i: int, j0: int, j1: int, t: int) -> int:
    """Mass of row ``i``, columns ``j0 .. j1`` inclusive (empty -> 0)."""
    return sum(unit(i, b, t) for b in range(j0, j1 + 1))


def col_mass(i0: int, i1: int, j: int, t: int) -> int:
    """Mass of column ``j``, rows ``i0 .. i1`` inclusive (empty -> 0)."""
    return sum(unit(a, j, t) for a in range(i0, i1 + 1))


# ---------------------------------------------------------------------------
# Protocol operations (the model IR)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Store:
    """Plain global store: enters the worker's store buffer (unfenced)."""
    loc: Loc
    expr: Expr


@dataclass(frozen=True)
class Fence:
    """``__threadfence()``: commits every pending store of this worker."""


@dataclass(frozen=True)
class Publish:
    """The :func:`~repro.primitives.lookback.publish` discipline, atomically:
    drain own pending stores, commit ``stores``, then raise the (strictly
    monotone, domain-checked) status flag."""
    stores: tuple[tuple[Loc, Expr], ...]
    status: Loc
    value: int


@dataclass(frozen=True)
class RaiseFlag:
    """A *plain* store to a status byte: the flag becomes visible without
    draining pending data stores (the dropped-fence bug shape)."""
    status: Loc
    value: int


@dataclass(frozen=True)
class Wait:
    """Spin until ``status >= threshold`` (blocking; statuses are monotone)."""
    status: Loc
    threshold: int


@dataclass(frozen=True)
class Read:
    """Load a data slot into a register; reading an unwritten slot is the
    ``stale-read`` violation (own pending stores are forwarded first)."""
    loc: Loc
    reg: str


@dataclass(frozen=True)
class WalkStep:
    """One predecessor probe of a look-back walk."""
    status: Loc
    local_threshold: int
    global_threshold: int
    local_loc: Loc
    global_loc: Loc


@dataclass(frozen=True)
class Walk:
    """A decoupled look-back walk: per step, spin to ``local_threshold``;
    if the observed status reaches ``global_threshold`` read the global slot
    and stop, else accumulate the local slot.  The result lands in ``reg``."""
    steps: tuple[WalkStep, ...]
    reg: str


@dataclass(frozen=True)
class Out:
    """A store whose readers are all in later launches (or nobody): committed
    immediately, checked against the launch's output spec.  ``reg`` optionally
    also binds the value for later expressions of the same worker."""
    loc: Loc
    expr: Expr
    reg: str | None = None


@dataclass(frozen=True)
class CounterRead:
    """Plain (non-atomic) load of a ticket counter."""
    counter: str
    reg: str


@dataclass(frozen=True)
class CounterStore:
    """Plain (non-atomic) store of a ticket counter."""
    counter: str
    expr: Expr


Op = object

# ---------------------------------------------------------------------------
# Programs, launches, models
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Program:
    """The op sequence one parallel unit (block/worker) executes."""
    label: str
    ops: tuple[Op, ...]


@dataclass(frozen=True)
class LaunchModel:
    """One kernel launch: programs plus dispatch mode and memory contract.

    ``dispatch`` is ``"static"`` (program ``k`` goes to block ``k``, blocks
    dispatched in order under bounded residency) or ``"ticket"`` (persistent
    workers acquire programs via an atomic counter; the checker exploits that
    ticket assignment order is worker-symmetric and assigns eagerly).
    ``initial`` holds the committed data slots visible at launch start (the
    cumulative spec of earlier launches — the launch boundary is a barrier);
    ``out_spec`` the required value of every :class:`Out` location;
    ``status_domains`` the legal value set per status buffer name.
    """
    name: str
    dispatch: str
    programs: tuple[Program, ...]
    initial: Mapping[Loc, int]
    out_spec: Mapping[Loc, int]
    status_domains: Mapping[str, tuple[int, ...]] = field(default_factory=dict)


@dataclass(frozen=True)
class ProtocolModel:
    """A whole algorithm: its launch sequence over a ``t x t`` tile grid."""
    algorithm: str
    t: int
    launches: tuple[LaunchModel, ...]


# ---------------------------------------------------------------------------
# AST extraction
# ---------------------------------------------------------------------------

#: publish-style helpers -> (data arg, status arg, value arg) positions.
_PUBLISH_SIGS = {
    "publish": (1, 2, 4),
    "publish_vector": (1, 4, 6),
    "publish_scalar": (1, 4, 6),
}
_STORE_METHODS = ("gstore", "gstore_scalar")
_LOAD_METHODS = ("gload", "gload_scalar")
#: smem helpers that move a tile between global and shared memory
#: (buffer argument right after ``ctx``).
_TILE_STORES = ("store_tile",)
_TILE_LOADS = ("load_tile", "load_tile_with_col_sums")
#: Recognized look-back walker helpers (recursed into; see tilecommon).
_WALKER_NAMES = ("row_lookback", "col_lookback", "diag_lookback")


@dataclass(frozen=True)
class KernelProtocol:
    """The extracted synchronization skeleton of one kernel function.

    ``events`` is the source-ordered tuple of protocol events:

    ``("publish", data, status, value)``, ``("walk", status, lo, hi,
    local_buf, global_buf, walker)``, ``("wait", status, threshold)``,
    ``("fence",)``, ``("flag-store", buf)``, ``("counter-load", buf)``,
    ``("counter-store", buf)``, ``("store", buf)``, ``("load", buf)``.
    """
    kernel: str
    ticket: bool
    counter: str
    events: tuple[tuple, ...]

    def _select(self, kind: str) -> tuple[tuple, ...]:
        return tuple(ev for ev in self.events if ev[0] == kind)

    @property
    def publishes(self) -> tuple[tuple, ...]:
        return tuple(ev[1:] for ev in self._select("publish"))

    @property
    def walks(self) -> tuple[tuple, ...]:
        return tuple(ev[1:6] for ev in self._select("walk"))

    @property
    def waits(self) -> tuple[tuple, ...]:
        return tuple(ev[1:] for ev in self._select("wait"))

    @property
    def stores(self) -> tuple[str, ...]:
        return tuple(sorted({ev[1] for ev in self._select("store")}))

    @property
    def loads(self) -> tuple[str, ...]:
        return tuple(sorted({ev[1] for ev in self._select("load")}))

    @property
    def flag_stores(self) -> int:
        return len(self._select("flag-store"))


def _expr_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _expr_name(node.value)
    return ""


def _is_status_name(name: str) -> bool:
    return name in ("R", "C") or "status" in name.lower()


def _is_counter_name(name: str) -> bool:
    return "counter" in name.lower()


def _method_name(call: ast.Call) -> str:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return ""


def _calls_postorder(node: ast.AST) -> list[ast.Call]:
    """Calls lexically inside ``node`` (excluding nested function/lambda
    bodies), children before parents — i.e. argument evaluation order."""
    out: list[ast.Call] = []

    def visit(n: ast.AST) -> None:
        for child in ast.iter_child_nodes(n):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            visit(child)
        if isinstance(n, ast.Call):
            out.append(n)

    visit(node)
    return out


def _resolve_const(node: ast.AST, g: Mapping, where: str) -> int:
    """An integer constant, possibly spelled as a module-level name."""
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return int(node.value)
    if isinstance(node, ast.Name):
        value = g.get(node.id)
        if isinstance(value, int):
            return value
    raise ExtractionError(
        f"{where}: cannot resolve {ast.dump(node)} to an integer constant")


def _wait_threshold(call: ast.Call, g: Mapping, where: str) -> int:
    """Threshold from a ``lambda v: v >= X`` wait predicate."""
    if len(call.args) >= 3 and isinstance(call.args[2], ast.Lambda):
        body = call.args[2].body
        if (isinstance(body, ast.Compare) and len(body.ops) == 1
                and isinstance(body.ops[0], ast.GtE)):
            return _resolve_const(body.comparators[0], g, where)
    raise ExtractionError(
        f"{where}: wait_until predicate is not 'lambda v: v >= <const>'")


def _publish_data_buffer(node: ast.AST, where: str) -> str:
    """Data buffer name of a publish call: a buffer expression, or the first
    element of a ``[(buf, idx, values), ...]`` stores list."""
    if isinstance(node, (ast.List, ast.Tuple)):
        if node.elts and isinstance(node.elts[0], (ast.Tuple, ast.List)) \
                and node.elts[0].elts:
            node = node.elts[0].elts[0]
    name = _expr_name(node)
    if not name:
        raise ExtractionError(f"{where}: cannot name the published buffer")
    return name


def _reader_buffer(node: ast.AST, where: str) -> str:
    """Buffer a walk's ``read_local``/``read_global`` argument reads from."""
    if isinstance(node, ast.Lambda):
        for call in _calls_postorder(node.body):
            if _method_name(call) in _LOAD_METHODS and call.args:
                return _expr_name(call.args[0])
        node = node.body
    if isinstance(node, ast.Call):
        for arg in node.args:
            name = _expr_name(arg)
            if name and name != "ctx":
                return name
    name = _expr_name(node)
    if name:
        return name
    raise ExtractionError(f"{where}: cannot name the walk's read buffer")


def _kw(call: ast.Call, name: str, where: str) -> ast.AST:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    raise ExtractionError(f"{where}: lookback_walk missing keyword '{name}'")


def _walk_event(call: ast.Call, g: Mapping, where: str,
                walker: str = "") -> tuple:
    return ("walk",
            _expr_name(_kw(call, "status_buf", where)),
            _resolve_const(_kw(call, "local_threshold", where), g, where),
            _resolve_const(_kw(call, "global_threshold", where), g, where),
            _reader_buffer(_kw(call, "read_local", where), where),
            _reader_buffer(_kw(call, "read_global", where), where),
            walker)


def _function_ast(fn: Callable) -> ast.FunctionDef:
    source = textwrap.dedent(inspect.getsource(fn))
    tree = ast.parse(source)
    func = tree.body[0]
    if not isinstance(func, ast.FunctionDef):
        raise ExtractionError(f"{fn!r} is not a plain function")
    return func


def _extract_from_walker(walker_fn: Callable) -> tuple:
    """The single ``lookback_walk`` event inside a tilecommon walker."""
    func = _function_ast(walker_fn)
    g = vars(inspect.getmodule(walker_fn))
    where = walker_fn.__name__
    for call in _calls_postorder(func):
        if _method_name(call) == "lookback_walk":
            return _walk_event(call, g, where, walker=walker_fn.__name__)
    raise ExtractionError(f"{where}: no lookback_walk call found")


class _ScratchGeometry:
    """Mirrors :class:`~repro.sat.tilecommon.TileScratch` index arithmetic
    for evaluating extracted ``status_index`` lambdas."""

    def __init__(self, tc: int) -> None:
        self.tc = tc

    def scalar_idx(self, i: int, j: int) -> int:
        return i * self.tc + j


def walker_status_indexer(walker_fn: Callable) -> Callable:
    """Compile a walker's ``status_index`` lambda from its AST.

    Returns ``indexer(t, I, J, step) -> flat status index`` so builders can
    verify their step geometry against the kernel's own index arithmetic.
    """
    func = _function_ast(walker_fn)
    where = walker_fn.__name__
    for call in _calls_postorder(func):
        if _method_name(call) == "lookback_walk":
            lam = _kw(call, "status_index", where)
            if not isinstance(lam, ast.Lambda):
                raise ExtractionError(f"{where}: status_index is not a lambda")
            expr = ast.Expression(lam)
            ast.fix_missing_locations(expr)
            code = compile(expr, f"<{where}.status_index>", "eval")

            def indexer(t: int, I: int, J: int, step: int,
                        _code=code) -> int:
                fn = eval(_code, {"sb": _ScratchGeometry(t), "I": I, "J": J})
                return fn(step)

            return indexer
    raise ExtractionError(f"{where}: no lookback_walk call found")


def extract_kernel(fn: Callable) -> KernelProtocol:
    """Extract the protocol skeleton of one kernel function from its AST."""
    func = _function_ast(fn)
    g = dict(vars(inspect.getmodule(fn)))
    where = fn.__name__
    events: list[tuple] = []
    ticket = False
    counter = ""

    def handle_call(call: ast.Call) -> None:
        nonlocal ticket, counter
        method = _method_name(call)
        args = call.args
        if method == "atomic_add" and args \
                and _is_counter_name(_expr_name(args[0])):
            ticket = True
            counter = _expr_name(args[0])
        elif method in _PUBLISH_SIGS:
            d, s, v = _PUBLISH_SIGS[method]
            if len(args) <= max(d, s, v):
                raise ExtractionError(f"{where}: truncated {method} call")
            events.append(("publish",
                           _publish_data_buffer(args[d], where),
                           _expr_name(args[s]),
                           _resolve_const(args[v], g, where)))
        elif method == "wait_until" and args:
            events.append(("wait", _expr_name(args[0]),
                           _wait_threshold(call, g, where)))
        elif method == "lookback_walk":
            events.append(_walk_event(call, g, where))
        elif method in _WALKER_NAMES:
            walker_fn = g.get(method)
            if walker_fn is None:
                raise ExtractionError(
                    f"{where}: walker helper '{method}' is not importable")
            events.append(_extract_from_walker(walker_fn))
        elif method == "threadfence":
            events.append(("fence",))
        elif method in _STORE_METHODS and args:
            name = _expr_name(args[0])
            if _is_counter_name(name):
                events.append(("counter-store", name))
            elif _is_status_name(name):
                events.append(("flag-store", name))
            else:
                events.append(("store", name))
        elif method in _LOAD_METHODS and args:
            name = _expr_name(args[0])
            if _is_counter_name(name):
                events.append(("counter-load", name))
            else:
                events.append(("load", name))
        elif method in _TILE_STORES and len(args) >= 2:
            events.append(("store", _expr_name(args[1])))
        elif method in _TILE_LOADS and len(args) >= 2:
            events.append(("load", _expr_name(args[1])))

    for call in _calls_postorder(func):
        handle_call(call)
    return KernelProtocol(kernel=where, ticket=ticket, counter=counter,
                          events=tuple(events))


def validate_hints(proto: KernelProtocol, hints: Mapping) -> KernelProtocol:
    """Check an extracted protocol against the kernel's declared shape.

    ``hints`` is the kernel's entry in its module's ``MODEL_HINTS``; any
    mismatch means the kernel source and the declared protocol drifted and
    the model would be verifying fiction — refuse loudly.
    """
    got = {
        "ticket": proto.ticket,
        "publishes": proto.publishes,
        "walks": proto.walks,
        "waits": proto.waits,
        "stores": proto.stores,
        "loads": proto.loads,
    }
    for key, actual in got.items():
        want = hints.get(key)
        if key in ("stores", "loads"):
            want = tuple(sorted(want or ()))
        elif want is None:
            want = () if key != "ticket" else False
        if actual != want:
            raise ExtractionError(
                f"{proto.kernel}: extracted {key}={actual!r} but MODEL_HINTS "
                f"declares {want!r}; kernel and declaration drifted")
    allowed_raw = hints.get("flag_stores", 0)
    if proto.flag_stores != allowed_raw:
        raise ExtractionError(
            f"{proto.kernel}: {proto.flag_stores} plain status store(s) "
            f"found, {allowed_raw} declared — raw flag stores bypass "
            f"publish() and void the model's fence assumptions")
    return proto


def _extract_validated(fn: Callable) -> KernelProtocol:
    module = inspect.getmodule(fn)
    hints = getattr(module, "MODEL_HINTS", {})
    if fn.__name__ not in hints:
        raise ExtractionError(
            f"{fn.__name__}: no MODEL_HINTS entry in {module.__name__}")
    return validate_hints(extract_kernel(fn), hints[fn.__name__])


# ---------------------------------------------------------------------------
# Bug-corpus compiler (statement-level; two-block kernels)
# ---------------------------------------------------------------------------

def _const_scalar(node: ast.AST, where: str) -> int:
    """Integer from a literal, possibly wrapped in ``np.asarray([x])``."""
    if isinstance(node, ast.Call) and _method_name(node) == "asarray" \
            and node.args and isinstance(node.args[0], ast.List) \
            and node.args[0].elts:
        node = node.args[0].elts[0]
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return int(node.value)
    raise ExtractionError(f"{where}: expected a literal scalar")


def _compile_corpus_stmts(stmts: Iterable[ast.stmt], block_id: int,
                          where: str) -> list[Op]:
    """Compile straight-line corpus-kernel statements into model ops."""
    ops: list[Op] = []
    env_regs: dict[str, str] = {}  # python variable -> model register

    def flat_loc(node: ast.AST, index: ast.AST) -> Loc:
        name = _expr_name(node)
        if isinstance(index, ast.Constant):
            return (name, int(index.value))
        if _expr_name(index) == "block_id":
            return (name, block_id)
        raise ExtractionError(f"{where}: unsupported index {ast.dump(index)}")

    def value_expr(node: ast.AST) -> Expr:
        if isinstance(node, ast.Constant):
            return int(node.value)
        if isinstance(node, ast.Name) and node.id in env_regs:
            return env_regs[node.id]
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return ("+", value_expr(node.left), value_expr(node.right))
        if isinstance(node, ast.Call) \
                and _method_name(node) in _LOAD_METHODS:
            reg = f"r{len(ops)}"
            ops.append(Read(flat_loc(node.args[0], node.args[1]), reg))
            return reg
        raise ExtractionError(f"{where}: unsupported value {ast.dump(node)}")

    for stmt in stmts:
        node = stmt.value if isinstance(stmt, (ast.Expr, ast.Assign)) else None
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            node = node.value
        if not isinstance(node, ast.Call):
            if node is None and isinstance(stmt, ast.Return):
                continue
            raise ExtractionError(
                f"{where}: unsupported statement {ast.dump(stmt)}")
        method = _method_name(node)
        args = node.args
        if method == "syncthreads":
            continue
        elif method == "publish":
            data = args[1].elts[0]  # [(buf, idx, values)]
            ops.append(Publish(
                (((_expr_name(data.elts[0]), 0),
                  _const_scalar(data.elts[2], where)),),
                flat_loc(args[2], args[3]),
                _resolve_const(args[4], {}, where)))
        elif method == "wait_until":
            ops.append(Wait(flat_loc(args[0], args[1]),
                            _wait_threshold(node, {}, where)))
        elif method == "threadfence":
            ops.append(Fence())
        elif method in _STORE_METHODS:
            name = _expr_name(args[0])
            if _is_counter_name(name):
                ops.append(CounterStore(name, value_expr(args[2])))
            elif _is_status_name(name):
                ops.append(RaiseFlag(flat_loc(args[0], args[1]),
                                     _resolve_const(args[2], {}, where)))
            elif name == "out":
                ops.append(Out(flat_loc(args[0], args[1]),
                               value_expr(args[2])))
            else:
                ops.append(Store(flat_loc(args[0], args[1]),
                                 _const_scalar(args[2], where)))
        elif method in _LOAD_METHODS \
                and _is_counter_name(_expr_name(args[0])):
            if not isinstance(stmt, ast.Assign):
                raise ExtractionError(f"{where}: dangling counter load")
            var = stmt.targets[0].id
            reg = f"{var}{block_id}"
            env_regs[var] = reg
            ops.append(CounterRead(_expr_name(args[0]), reg))
        else:
            raise ExtractionError(
                f"{where}: unsupported call '{method}' in corpus kernel")
    return ops


def build_corpus_model(name: str) -> ProtocolModel:
    """Compile one bug-corpus kernel into a two-block protocol model."""
    from repro.analysis.bugcorpus import get_spec
    spec = get_spec(name)
    func = _function_ast(spec.kernel)
    where = spec.kernel.__name__
    body = func.body
    while body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # docstring
    programs = []
    if len(body) == 1 and isinstance(body[0], ast.If):
        # ``if ctx.block_id == 0: <producer> else: <consumer>``
        for block_id, stmts in ((0, body[0].body), (1, body[0].orelse)):
            ops = _compile_corpus_stmts(stmts, block_id, where)
            role = "producer" if block_id == 0 else "consumer"
            programs.append(Program(label=f"{role}(block {block_id})",
                                    ops=tuple(ops)))
        out_spec = {("out", 0): 42}
    else:
        for block_id in (0, 1):
            ops = _compile_corpus_stmts(body, block_id, where)
            programs.append(Program(label=f"block {block_id}",
                                    ops=tuple(ops)))
        out_spec = {}  # tickets land nondeterministically; the claimed-set
        #               check catches duplicates exhaustively instead
    launch = LaunchModel(
        name=where, dispatch="static", programs=tuple(programs),
        initial={}, out_spec=out_spec, status_domains={"status": (0, 1)})
    return ProtocolModel(algorithm=f"corpus:{name}", t=0, launches=(launch,))


# ---------------------------------------------------------------------------
# Per-algorithm model builders
# ---------------------------------------------------------------------------

def _status_domains_tile() -> dict[str, tuple[int, ...]]:
    from repro.sat import tilecommon as tc
    return {"R": (0, tc.R_LRS, tc.R_GRS, tc.R_GLS, tc.R_GS),
            "C": (0, tc.C_LCS, tc.C_GCS)}


def _check_walk_geometry(walker: str, steps: tuple[WalkStep, ...],
                         step_args: tuple[int, ...], t: int, I: int,
                         J: int) -> None:
    """Re-evaluate the walker's extracted ``status_index`` lambda against the
    builder's step list; any disagreement means the geometry drifted."""
    from repro.sat import tilecommon as tc
    indexer = walker_status_indexer(getattr(tc, walker))
    for step, arg in zip(steps, step_args):
        want = step.status[1] * t + step.status[2]
        got = indexer(t, I, J, arg)
        if got != want:
            raise ExtractionError(
                f"{walker}: status_index({arg}) = {got} but the model "
                f"expects {describe_loc(step.status)} (flat {want}); "
                f"walk geometry drifted")


def _skss_lb_tile_ops(proto: KernelProtocol, I: int, J: int,
                      t: int) -> tuple[Op, ...]:
    """Ops for one SKSS-LB tile, ordered by the kernel's extracted events."""
    gls_expr: Expr = ("+", ("+", "row", "col"), "x")
    exprs: dict[str, Expr] = {
        "lrs": "x", "lcs": "x",
        "grs": ("+", "row", "x"), "gcs": ("+", "col", "x"),
        "gls": gls_expr, "gs": ("+", "diag", gls_expr),
    }
    walk_regs = {"lrs": "row", "lcs": "col", "gls": "diag"}
    ops: list[Op] = []
    for ev in proto.events:
        kind = ev[0]
        if kind == "load":
            ops.append(Read(("a", I, J), "x"))
        elif kind == "publish":
            data, status, value = ev[1], ev[2], ev[3]
            ops.append(Publish((((data, I, J), exprs[data]),),
                               (status, I, J), value))
        elif kind == "walk":
            status, lo, hi, lbuf, gbuf, walker = ev[1:]
            if lbuf == "lrs":
                args = tuple(range(J - 1, -1, -1))
                locs = [(I, jp) for jp in args]
            elif lbuf == "lcs":
                args = tuple(range(I - 1, -1, -1))
                locs = [(ip, J) for ip in args]
            else:  # gls: diagonal walk
                args = tuple(range(1, min(I, J) + 1))
                locs = [(I - k, J - k) for k in args]
            steps = tuple(
                WalkStep((status, i, j), lo, hi, (lbuf, i, j), (gbuf, i, j))
                for i, j in locs)
            if walker:
                _check_walk_geometry(walker, steps, args, t, I, J)
            ops.append(Walk(steps, walk_regs[lbuf]))
        elif kind == "store":
            ops.append(Out(("b", I, J), exprs["gs"]))
    return tuple(ops)


def _build_skss_lb(t: int, acquisition: str = "diagonal") -> ProtocolModel:
    from repro.sat.skss_lb import acquisition_tile, skss_lb_kernel
    proto = _extract_validated(skss_lb_kernel)
    initial = {("a", i, j): unit(i, j, t)
               for i in range(t) for j in range(t)}
    programs, out_spec = [], {}
    for serial in range(t * t):
        I, J = acquisition_tile(serial, t, acquisition, t)
        programs.append(Program(label=f"tile({I},{J})",
                                ops=_skss_lb_tile_ops(proto, I, J, t)))
        out_spec[("b", I, J)] = rect_mass(I, J, t)
    launch = LaunchModel(
        name=f"skss_lb[{acquisition}]", dispatch="ticket",
        programs=tuple(programs), initial=initial, out_spec=out_spec,
        status_domains=_status_domains_tile())
    return ProtocolModel(algorithm="1R1W-SKSS-LB", t=t, launches=(launch,))


def _build_skss(t: int) -> ProtocolModel:
    from repro.sat.skss import GRS_READY, skss_kernel
    proto = _extract_validated(skss_kernel)
    assert proto.publishes == (("grs", "R", GRS_READY),)
    initial = {("a", i, j): unit(i, j, t)
               for i in range(t) for j in range(t)}
    programs, out_spec = [], {}
    for J in range(t):
        ops: list[Op] = []
        acc: Expr | None = None
        for i in range(t):
            ops.append(Read(("a", i, J), f"x{i}"))
            if J > 0:
                ops.append(Wait(("R", i, J - 1), GRS_READY))
                ops.append(Read(("grs", i, J - 1), f"g{i}"))
                grs_expr: Expr = ("+", f"g{i}", f"x{i}")
            else:
                grs_expr = f"x{i}"
            ops.append(Publish(((("grs", i, J), grs_expr),),
                               ("R", i, J), GRS_READY))
            acc = grs_expr if acc is None else ("+", acc, grs_expr)
            ops.append(Out(("b", i, J), acc))
            out_spec[("b", i, J)] = rect_mass(i, J, t)
        programs.append(Program(label=f"column {J}", ops=tuple(ops)))
    launch = LaunchModel(
        name="skss", dispatch="ticket", programs=tuple(programs),
        initial=initial, out_spec=out_spec,
        status_domains={"R": (0, GRS_READY)})
    return ProtocolModel(algorithm="1R1W-SKSS", t=t, launches=(launch,))


def _build_naive(t: int) -> ProtocolModel:
    from repro.sat.naive_2r2w import column_scan_kernel, row_scan_kernel
    _extract_validated(column_scan_kernel)
    _extract_validated(row_scan_kernel)
    initial = {("a", i, j): unit(i, j, t)
               for i in range(t) for j in range(t)}
    col_programs, col_spec = [], {}
    for j in range(t):
        ops: list[Op] = []
        acc: Expr | None = None
        for i in range(t):
            ops.append(Read(("a", i, j), f"x{i}"))
            acc = f"x{i}" if acc is None else ("+", acc, f"x{i}")
            ops.append(Out(("b", i, j), acc))
            col_spec[("b", i, j)] = col_mass(0, i, j, t)
        col_programs.append(Program(label=f"column {j}", ops=tuple(ops)))
    launch1 = LaunchModel(name="column_scan", dispatch="static",
                          programs=tuple(col_programs), initial=initial,
                          out_spec=col_spec)
    initial2 = dict(initial)
    initial2.update(col_spec)
    row_programs, row_spec = [], {}
    for i in range(t):
        ops = []
        acc = None
        for j in range(t):
            ops.append(Read(("b", i, j), f"y{j}"))
            acc = f"y{j}" if acc is None else ("+", acc, f"y{j}")
            ops.append(Out(("b", i, j), acc))
            row_spec[("b", i, j)] = rect_mass(i, j, t)
        row_programs.append(Program(label=f"row {i}", ops=tuple(ops)))
    launch2 = LaunchModel(name="row_scan", dispatch="static",
                          programs=tuple(row_programs), initial=initial2,
                          out_spec=row_spec)
    return ProtocolModel(algorithm="2R2W", t=t, launches=(launch1, launch2))


def _scan_launch(name: str, t: int, serial_to_tile: Callable,
                 cell_of: Callable, initial: Mapping[Loc, int],
                 spec_of: Callable, thresholds: tuple[int, int]) -> LaunchModel:
    """A decoupled look-back scan launch (colscan panels / scan1d parts).

    ``serial_to_tile(serial) -> (line, step)`` where ``line`` is the
    independent scan line (strip/row) and ``step`` the position along it;
    ``cell_of(line, step)`` / ``spec_of(line, step)`` give the data cell read
    and the required inclusive prefix mass.
    """
    lo, hi = thresholds
    agg, pref, status = f"{name}.agg", f"{name}.pref", f"{name}.status"
    programs, out_spec = [], {}
    for serial in range(t * t):
        line, step = serial_to_tile(serial)
        cell = cell_of(line, step)
        walk = tuple(
            WalkStep((status, line, p), lo, hi,
                     (agg, line, p), (pref, line, p))
            for p in range(step - 1, -1, -1))
        incl: Expr = ("+", "ex", "x")
        ops = (
            Read(cell, "x"),
            Publish((((agg, line, step), "x"),), (status, line, step), lo),
            Walk(walk, "ex"),
            Publish((((pref, line, step), incl),), (status, line, step), hi),
            Out(cell, incl),
        )
        programs.append(Program(label=f"{name}({line},{step})", ops=ops))
        out_spec[cell] = spec_of(line, step)
    return LaunchModel(name=name, dispatch="ticket", programs=tuple(programs),
                       initial=initial, out_spec=out_spec,
                       status_domains={status: (0, lo, hi)})


def _build_optimal(t: int) -> ProtocolModel:
    from repro.primitives.colscan import ColScanLayout, col_scan_kernel
    from repro.primitives.scan1d import (STATUS_AGGREGATE, STATUS_PREFIX,
                                         RowScanLayout, row_scan_kernel)
    _extract_validated(col_scan_kernel)
    _extract_validated(row_scan_kernel)
    thresholds = (STATUS_AGGREGATE, STATUS_PREFIX)
    initial = {("a", i, j): unit(i, j, t)
               for i in range(t) for j in range(t)}
    # Launch 1: column scan — one model cell per (strip=column, panel=row),
    # serials in the real layout's panel-major acquisition order.
    col_layout = ColScanLayout(rows=t, cols=t, panel_rows=1, strip_width=1)
    launch1 = _scan_launch(
        "colscan", t, col_layout.serial_to_tile,
        cell_of=lambda strip, panel: ("b", panel, strip),
        initial=initial,
        spec_of=lambda strip, panel: col_mass(0, panel, strip, t),
        thresholds=thresholds)
    # Column scan reads a, writes b: rewire the read cell via op surgery is
    # avoided by modeling the copy as Read(a)/Out(b) of the same (row, col).
    launch1 = LaunchModel(
        name=launch1.name, dispatch=launch1.dispatch,
        programs=tuple(
            Program(p.label, tuple(
                Read(("a",) + op.loc[1:], op.reg)
                if isinstance(op, Read) and op.loc[0] == "b" else op
                for op in p.ops))
            for p in launch1.programs),
        initial=launch1.initial, out_spec=launch1.out_spec,
        status_domains=launch1.status_domains)
    initial2 = dict(initial)
    initial2.update(launch1.out_spec)
    # Launch 2: row scan over b in place, partition-major serials.
    row_layout = RowScanLayout(rows=t, n=t, partition_size=1)
    launch2 = _scan_launch(
        "rowscan", t, row_layout.serial_to_tile,
        cell_of=lambda row, part: ("b", row, part),
        initial=initial2,
        spec_of=lambda row, part: rect_mass(row, part, t),
        thresholds=thresholds)
    return ProtocolModel(algorithm="2R2W-optimal", t=t,
                         launches=(launch1, launch2))


def _guarded_read(ops: list[Op], loc: Loc, reg: str,
                  condition: bool) -> Expr:
    """Append a Read when in range; out-of-range regions have mass 0."""
    if not condition:
        return 0
    ops.append(Read(loc, reg))
    return reg


def _gsat_tile_ops(I: int, J: int) -> tuple[Op, ...]:
    """The L3 assemble: b(I,J) = gs(I-1,J-1) + grs(I,J-1) + gcs(I-1,J) + x."""
    ops: list[Op] = [Read(("a", I, J), "x")]
    gl = _guarded_read(ops, ("grs", I, J - 1), "gl", J > 0)
    ga = _guarded_read(ops, ("gcs", I - 1, J), "ga", I > 0)
    gc = _guarded_read(ops, ("gs", I - 1, J - 1), "gc", I > 0 and J > 0)
    ops.append(Out(("b", I, J), ("+", ("+", ("+", gc, gl), ga), "x")))
    return tuple(ops)


def _build_nehab(t: int) -> ProtocolModel:
    from repro.sat.nehab_2r1w import (global_sums_kernel, gsat_kernel,
                                      local_sums_kernel)
    _extract_validated(local_sums_kernel)
    _extract_validated(global_sums_kernel)
    _extract_validated(gsat_kernel)
    initial = {("a", i, j): unit(i, j, t)
               for i in range(t) for j in range(t)}
    # L1: per-tile local sums (block_id row-major, one tile per block).
    l1_programs, l1_spec = [], {}
    for I in range(t):
        for J in range(t):
            ops = (Read(("a", I, J), "x"),
                   Out(("lrs", I, J), "x"), Out(("lcs", I, J), "x"),
                   Out(("ls", I, J), "x"))
            l1_programs.append(Program(label=f"local({I},{J})", ops=ops))
            for buf in ("lrs", "lcs", "ls"):
                l1_spec[(buf, I, J)] = unit(I, J, t)
    launch1 = LaunchModel(name="local_sums", dispatch="static",
                          programs=tuple(l1_programs), initial=initial,
                          out_spec=l1_spec)
    cumulative = dict(initial)
    cumulative.update(l1_spec)
    # L2: three chain workers (row chains, column chains, the GS block).
    l2_spec: dict[Loc, int] = {}
    grs_ops: list[Op] = []
    for I in range(t):
        acc: Expr | None = None
        for J in range(t):
            reg = f"r{I}_{J}"
            grs_ops.append(Read(("lrs", I, J), reg))
            acc = reg if acc is None else ("+", acc, reg)
            grs_ops.append(Out(("grs", I, J), acc))
            l2_spec[("grs", I, J)] = row_mass(I, 0, J, t)
    gcs_ops: list[Op] = []
    for J in range(t):
        acc = None
        for I in range(t):
            reg = f"c{I}_{J}"
            gcs_ops.append(Read(("lcs", I, J), reg))
            acc = reg if acc is None else ("+", acc, reg)
            gcs_ops.append(Out(("gcs", I, J), acc))
            l2_spec[("gcs", I, J)] = col_mass(0, I, J, t)
    gs_ops: list[Op] = []
    for I in range(t):
        for J in range(t):
            gs_ops.append(Read(("ls", I, J), f"s{I}_{J}"))
    for I in range(t):
        for J in range(t):
            acc = None
            for i in range(I + 1):
                for j in range(J + 1):
                    reg = f"s{i}_{j}"
                    acc = reg if acc is None else ("+", acc, reg)
            gs_ops.append(Out(("gs", I, J), acc))
            l2_spec[("gs", I, J)] = rect_mass(I, J, t)
    launch2 = LaunchModel(
        name="global_sums", dispatch="static",
        programs=(Program("row chains", tuple(grs_ops)),
                  Program("column chains", tuple(gcs_ops)),
                  Program("GS block", tuple(gs_ops))),
        initial=dict(cumulative), out_spec=l2_spec)
    cumulative.update(l2_spec)
    # L3: per-tile GSAT assembly.
    l3_programs, l3_spec = [], {}
    for I in range(t):
        for J in range(t):
            l3_programs.append(Program(label=f"gsat({I},{J})",
                                       ops=_gsat_tile_ops(I, J)))
            l3_spec[("b", I, J)] = rect_mass(I, J, t)
    launch3 = LaunchModel(name="gsat", dispatch="static",
                          programs=tuple(l3_programs),
                          initial=dict(cumulative), out_spec=l3_spec)
    return ProtocolModel(algorithm="2R1W", t=t,
                         launches=(launch1, launch2, launch3))


def _wavefront_tile_ops(I: int, J: int) -> tuple[Op, ...]:
    """One 1R1W wavefront tile: read the frontier, write all four results."""
    ops: list[Op] = [Read(("a", I, J), "x")]
    gl = _guarded_read(ops, ("grs", I, J - 1), "gl", J > 0)
    ga = _guarded_read(ops, ("gcs", I - 1, J), "ga", I > 0)
    gc = _guarded_read(ops, ("gs", I - 1, J - 1), "gc", I > 0 and J > 0)
    rect: Expr = ("+", ("+", ("+", gc, gl), ga), "x")
    ops.append(Out(("grs", I, J), ("+", gl, "x")))
    ops.append(Out(("gcs", I, J), ("+", ga, "x")))
    ops.append(Out(("gs", I, J), rect))
    ops.append(Out(("b", I, J), rect))
    return tuple(ops)


def _wavefront_spec(I: int, J: int, t: int) -> dict[Loc, int]:
    return {("grs", I, J): row_mass(I, 0, J, t),
            ("gcs", I, J): col_mass(0, I, J, t),
            ("gs", I, J): rect_mass(I, J, t),
            ("b", I, J): rect_mass(I, J, t)}


def _wavefront_launch(name: str, tiles: Iterable[tuple[int, int]], t: int,
                      cumulative: dict[Loc, int]) -> LaunchModel:
    programs, spec = [], {}
    for I, J in tiles:
        programs.append(Program(label=f"tile({I},{J})",
                                ops=_wavefront_tile_ops(I, J)))
        spec.update(_wavefront_spec(I, J, t))
    launch = LaunchModel(name=name, dispatch="static",
                         programs=tuple(programs),
                         initial=dict(cumulative), out_spec=spec)
    cumulative.update(spec)
    return launch


def _build_kasagi(t: int) -> ProtocolModel:
    from repro.primitives.tile import TileGrid
    from repro.sat.kasagi_1r1w import wavefront_kernel
    _extract_validated(wavefront_kernel)
    grid = TileGrid(n=32 * t, W=32)
    cumulative = {("a", i, j): unit(i, j, t)
                  for i in range(t) for j in range(t)}
    launches = tuple(
        _wavefront_launch(f"wavefront K={K}", grid.tiles_on_diagonal(K), t,
                          cumulative)
        for K in range(grid.num_diagonals))
    return ProtocolModel(algorithm="1R1W", t=t, launches=launches)


def _band_row_range(band: str, I: int, t: int, Ka: int,
                    Kc: int) -> range:
    """Tile columns the band-A/C chain kernels cover in row ``I`` (mirrors
    ``band_global_sums_kernel``; validated end-to-end by the refinement
    check against the mass spec)."""
    if band == "A":
        return range(0, min(t, Ka - I))
    return range(max(0, Kc - I + 1), t)


def _band_launches(band: str, tiles: list[tuple[int, int]], t: int, Ka: int,
                   Kc: int, cumulative: dict[Loc, int]) -> list[LaunchModel]:
    """The local-sums / chain-sums / gsat launch triple over one band."""
    if not tiles:
        return []
    launches = []
    local_programs, local_spec = [], {}
    for I, J in tiles:
        ops = (Read(("a", I, J), "x"),
               Out(("lrs", I, J), "x"), Out(("lcs", I, J), "x"),
               Out(("ls", I, J), "x"))
        local_programs.append(Program(label=f"local({I},{J})", ops=ops))
        for buf in ("lrs", "lcs", "ls"):
            local_spec[(buf, I, J)] = unit(I, J, t)
    launches.append(LaunchModel(
        name=f"band-{band} local", dispatch="static",
        programs=tuple(local_programs), initial=dict(cumulative),
        out_spec=local_spec))
    cumulative.update(local_spec)

    spec: dict[Loc, int] = {}
    grs_ops: list[Op] = []
    for I in range(t):
        cols = _band_row_range(band, I, t, Ka, Kc)
        if not cols:
            continue
        acc: Expr = 0
        if cols.start:
            grs_ops.append(Read(("grs", I, cols.start - 1), f"gr{I}"))
            acc = f"gr{I}"
        for J in cols:
            reg = f"r{I}_{J}"
            grs_ops.append(Read(("lrs", I, J), reg))
            acc = reg if acc == 0 else ("+", acc, reg)
            grs_ops.append(Out(("grs", I, J), acc))
            spec[("grs", I, J)] = row_mass(I, 0, J, t)
    gcs_ops: list[Op] = []
    for J in range(t):
        rows = _band_row_range(band, J, t, Ka, Kc)
        if not rows:
            continue
        acc = 0
        if rows.start:
            gcs_ops.append(Read(("gcs", rows.start - 1, J), f"gc{J}"))
            acc = f"gc{J}"
        for I in rows:
            reg = f"c{I}_{J}"
            gcs_ops.append(Read(("lcs", I, J), reg))
            acc = reg if acc == 0 else ("+", acc, reg)
            gcs_ops.append(Out(("gcs", I, J), acc))
            spec[("gcs", I, J)] = col_mass(0, I, J, t)
    gs_ops: list[Op] = []
    in_band: dict[tuple[int, int], str] = {}
    for I in range(t):
        for J in _band_row_range(band, I, t, Ka, Kc):
            def term(i: int, j: int, reg: str) -> Expr:
                if i < 0 or j < 0:
                    return 0
                if (i, j) in in_band:
                    return in_band[(i, j)]
                gs_ops.append(Read(("gs", i, j), reg))
                return reg
            up = term(I - 1, J, f"u{I}_{J}")
            left = term(I, J - 1, f"l{I}_{J}")
            corner = term(I - 1, J - 1, f"k{I}_{J}")
            gs_ops.append(Read(("ls", I, J), f"s{I}_{J}"))
            # Four-corner recurrence: GS = up + left - corner + LS.
            expr: Expr = ("+", ("-", ("+", up, left), corner), f"s{I}_{J}")
            reg = f"g{I}_{J}"
            gs_ops.append(Out(("gs", I, J), expr, reg=reg))
            in_band[(I, J)] = reg
            spec[("gs", I, J)] = rect_mass(I, J, t)
    launches.append(LaunchModel(
        name=f"band-{band} chains", dispatch="static",
        programs=(Program("row chains", tuple(grs_ops)),
                  Program("column chains", tuple(gcs_ops)),
                  Program("GS block", tuple(gs_ops))),
        initial=dict(cumulative), out_spec=spec))
    cumulative.update(spec)

    gsat_programs, gsat_spec = [], {}
    for I, J in tiles:
        gsat_programs.append(Program(label=f"gsat({I},{J})",
                                     ops=_gsat_tile_ops(I, J)))
        gsat_spec[("b", I, J)] = rect_mass(I, J, t)
    launches.append(LaunchModel(
        name=f"band-{band} gsat", dispatch="static",
        programs=tuple(gsat_programs), initial=dict(cumulative),
        out_spec=gsat_spec))
    cumulative.update(gsat_spec)
    return launches


def _build_hybrid(t: int, r: float = 0.25) -> ProtocolModel:
    from repro.primitives.tile import TileGrid
    from repro.sat.hybrid_1r1w import (band_gsat_kernel,
                                       band_global_sums_kernel,
                                       band_limits, band_local_sums_kernel,
                                       band_tiles)
    _extract_validated(band_local_sums_kernel)
    _extract_validated(band_global_sums_kernel)
    _extract_validated(band_gsat_kernel)
    grid = TileGrid(n=32 * t, W=32)
    Ka, Kc = band_limits(r, t)
    a_tiles, b_tiles, c_tiles = band_tiles(grid, Ka, Kc)
    cumulative = {("a", i, j): unit(i, j, t)
                  for i in range(t) for j in range(t)}
    launches = _band_launches("A", a_tiles, t, Ka, Kc, cumulative)
    for K in range(Ka, min(Kc, grid.num_diagonals - 1) + 1):
        launches.append(_wavefront_launch(
            f"wavefront K={K}", grid.tiles_on_diagonal(K), t, cumulative))
    launches.extend(_band_launches("C", c_tiles, t, Ka, Kc, cumulative))
    return ProtocolModel(algorithm="(1+r)R1W", t=t, launches=tuple(launches))


#: Algorithms the model builder covers, Table I order.
MODEL_ALGORITHMS = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                    "1R1W-SKSS", "1R1W-SKSS-LB")


def build_model(algorithm: str, t: int = 2, *, acquisition: str = "diagonal",
                r: float = 0.25) -> ProtocolModel:
    """Build the protocol model of one algorithm over a ``t x t`` tile grid.

    The final launch's output spec always covers the complete SAT; the
    builder asserts the bottom-right cell's spec is the full input mass.
    """
    if t < 1 or t > 6:
        raise ConfigurationError(f"model grid size t={t} out of range 1..6")
    from repro.sat.registry import get_algorithm
    name = get_algorithm(algorithm, tile_width=32).name
    builders: dict[str, Callable[[], ProtocolModel]] = {
        "2R2W": lambda: _build_naive(t),
        "2R2W-optimal": lambda: _build_optimal(t),
        "2R1W": lambda: _build_nehab(t),
        "1R1W": lambda: _build_kasagi(t),
        "(1+r)R1W": lambda: _build_hybrid(t, r),
        "1R1W-SKSS": lambda: _build_skss(t),
        "1R1W-SKSS-LB": lambda: _build_skss_lb(t, acquisition),
    }
    model = builders[name]()
    full = rect_mass(t - 1, t - 1, t)
    final = model.launches[-1].out_spec.get(("b", t - 1, t - 1))
    if final != full:
        raise ExtractionError(
            f"{name}: final output spec {final!r} is not the full input "
            f"mass {full}; the builder's launch sequence is incomplete")
    return model
