"""Concurrency sanitizer: happens-before race detection and protocol checking.

The paper's 1R1W-SKSS-LB correctness hangs on a fragile inter-block protocol —
data stores, ``__threadfence()``, then a status-flag store, consumed by
spin-waiting walkers (Figs. 10-11).  The relaxed-consistency simulator can
*exhibit* the classic missing-fence bug; this module *detects* it (and every
other unsynchronized inter-block access) automatically, so correctness tooling
scales with the seven algorithms instead of hand-written litmus tests.

The :class:`Sanitizer` is a :class:`~repro.gpusim.observer.MemoryObserver`
that consumes the simulator's instrumentation events and maintains a
happens-before (HB) relation with one **vector clock per block**.  Edges:

* **atomics** — an ``atomicAdd`` acquires the location's clock and releases
  the block's current clock to it (conservative acquire-release; CUDA atomics
  are relaxed, but no algorithm here relies on atomic ordering for data
  visibility, so this only ever *hides* impossible races);
* **fence + flag-read pairs** — a ``__threadfence()`` snapshots the block's
  clock; a later store to a *status* location releases that snapshot to the
  location, and a reader that observes the committed flag acquires it.  A
  flag raised **without** a fence releases only the previous snapshot, so the
  data it was meant to publish stays unordered — exactly the missing-fence
  hazard;
* **block retirement / kernel boundaries** — a retired block's clock joins a
  kernel-wide clock inherited by every block dispatched later and by the next
  launch (the inter-kernel barrier the wavefront algorithms rely on).

On top of HB ordering the sanitizer checks the publish/look-back protocol
itself:

* a status store issued while *unfenced data stores are pending* is reported
  (``missing-fence``) even on schedules where the reorder happens not to bite;
* committed status values must be **monotone non-decreasing** and stay inside
  the buffer's annotated domain (``R`` ∈ 0..4, ``C`` ∈ 0..2, 1-D scan flags
  ∈ 0..2);
* ticket counters must only be accessed atomically (``plain-counter-store``);
* a read that observes a location while another block still holds an
  **uncommitted** store to it is reported (``stale-read``) — the dynamic
  face of "the flag arrived before the data".

Status/counter locations are identified by allocation-site annotations
(``gpu.alloc(..., kind="status")`` — see :func:`repro.sat.tilecommon.alloc_scratch`)
and discovered dynamically: any location polled through
:meth:`~repro.gpusim.block.BlockContext.wait_until` is a flag, any location
touched by ``atomicAdd`` is a counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.memory import GlobalBuffer, StoreBuffer

from repro.gpusim.observer import MemoryObserver

#: A vector clock: sparse map from task id (one per dispatched block) to count.
Clock = dict

#: Rules that indicate an unordered (racy) memory access.
RACE_RULES = ("stale-read", "unordered-read", "unordered-write")
#: Rules that indicate a publish/look-back protocol violation.
PROTOCOL_RULES = ("missing-fence", "status-regression", "status-domain",
                  "plain-counter-store")


def _join(into: Clock, other: Clock) -> None:
    """``into`` |= ``other`` (pointwise max), in place."""
    for k, v in other.items():
        if v > into.get(k, 0):
            into[k] = v


def _leq(a: Clock, b: Clock) -> bool:
    """Whether ``a`` happens-before-or-equals ``b`` (pointwise <=)."""
    for k, v in a.items():
        if v > b.get(k, 0):
            return False
    return True


@dataclass(frozen=True)
class Finding:
    """One sanitizer diagnostic."""

    rule: str
    message: str
    kernel: str
    block: int
    buffer: str
    index: int | None = None

    @property
    def is_race(self) -> bool:
        return self.rule in RACE_RULES

    def __str__(self) -> str:
        where = f"{self.buffer}" + (f"[{self.index}]" if self.index is not None
                                    else "")
        return (f"[{self.rule}] kernel '{self.kernel}' block {self.block} "
                f"@ {where}: {self.message}")


class Sanitizer(MemoryObserver):
    """Happens-before race detector + protocol state-machine checker.

    Attach to a simulator with ``GPU(sanitizer=Sanitizer())`` (or
    :meth:`~repro.gpusim.kernel.GPU.attach_sanitizer`); inspect ``findings``
    after the launches.  Findings are collected, not raised, so one run
    reports every distinct violation.
    """

    def __init__(self, *, max_findings: int = 200) -> None:
        self.findings: list[Finding] = []
        self.suppressed = 0
        self.max_findings = max_findings
        self.events = 0
        self._kernel = "<none>"
        self._next_task = 0
        self._task: dict[int, int] = {}          # block id -> task component
        self._vc: dict[int, Clock] = {}          # block id -> vector clock
        self._fence_vc: dict[int, Clock] = {}    # clock at last threadfence
        self._dirty: dict[int, int] = {}         # unfenced data stores issued
        self._sb: dict[int, "StoreBuffer"] = {}  # resident store buffers
        self._kernel_clock: Clock = {}           # join of all finished work
        # Per-location state; a location is (buffer name, flat element index).
        self._write: dict[tuple, tuple] = {}     # loc -> (task, clock snapshot)
        self._reads: dict[tuple, dict] = {}      # loc -> {task: clock snapshot}
        self._release: dict[tuple, Clock] = {}   # loc -> released clock
        self._sync_names: set[str] = set()       # dynamically discovered flags
        self._dedupe: set[tuple] = set()

    # -- report ----------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def races(self) -> list[Finding]:
        return [f for f in self.findings if f.rule in RACE_RULES]

    @property
    def protocol_violations(self) -> list[Finding]:
        return [f for f in self.findings if f.rule in PROTOCOL_RULES]

    def summary(self) -> str:
        if self.ok:
            return f"sanitizer: OK ({self.events} events checked)"
        extra = f" (+{self.suppressed} suppressed)" if self.suppressed else ""
        return (f"sanitizer: {len(self.races)} race(s), "
                f"{len(self.protocol_violations)} protocol violation(s)"
                f"{extra} in {self.events} events")

    def report(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {f}" for f in self.findings)
        return "\n".join(lines)

    def _emit(self, rule: str, message: str, block: int, buf_name: str,
              index: int | None = None) -> None:
        key = (rule, self._kernel, buf_name, index)
        if key in self._dedupe or len(self.findings) >= self.max_findings:
            self.suppressed += 1
            return
        self._dedupe.add(key)
        self.findings.append(Finding(rule=rule, message=message,
                                     kernel=self._kernel, block=block,
                                     buffer=buf_name, index=index))

    # -- clock plumbing --------------------------------------------------------

    def _tick(self, block: int) -> None:
        task = self._task[block]
        vc = self._vc[block]
        vc[task] = vc.get(task, 0) + 1

    def _snap(self, block: int) -> Clock:
        return dict(self._vc[block])

    def _is_sync(self, buf: "GlobalBuffer") -> bool:
        return buf.kind != "data" or buf.name in self._sync_names

    # -- lifecycle events ------------------------------------------------------

    def on_launch(self, name: str, grid_blocks: int) -> None:
        self._kernel = name
        self._task.clear()
        self._vc.clear()
        self._fence_vc.clear()
        self._dirty.clear()
        self._sb.clear()

    def on_dispatch(self, block_id: int, store_buffer: "StoreBuffer") -> None:
        task = self._next_task
        self._next_task += 1
        self._task[block_id] = task
        # A new block inherits everything that retired before it was
        # dispatched (bounded residency: its slot was freed by a retirement)
        # plus all previous kernel launches (the inter-kernel barrier).
        vc = dict(self._kernel_clock)
        vc[task] = 1
        self._vc[block_id] = vc
        self._fence_vc[block_id] = dict(vc)
        self._dirty[block_id] = 0
        self._sb[block_id] = store_buffer

    def on_retire(self, block_id: int) -> None:
        if block_id in self._vc:
            _join(self._kernel_clock, self._vc[block_id])
        self._sb.pop(block_id, None)

    def on_kernel_done(self, name: str) -> None:
        for vc in self._vc.values():
            _join(self._kernel_clock, vc)
        self._sb.clear()

    # -- memory events ---------------------------------------------------------

    def on_store_issue(self, block_id: int, buf: "GlobalBuffer",
                       flat_indices: np.ndarray, values: np.ndarray,
                       pending_before: int) -> None:
        if block_id not in self._task:
            return
        self.events += 1
        self._tick(block_id)
        if buf.kind == "counter":
            self._emit(
                "plain-counter-store",
                f"plain store to ticket counter '{buf.name}' — counters must "
                "only be accessed with atomicAdd (ticket duplication hazard)",
                block_id, buf.name, int(flat_indices[0]))
        elif self._is_sync(buf):
            dirty = self._dirty.get(block_id, 0)
            if dirty:
                self._emit(
                    "missing-fence",
                    f"status store issued with {dirty} unfenced data store(s) "
                    "in program order — the flag may become visible before "
                    "its data (missing __threadfence before publish)",
                    block_id, buf.name, int(flat_indices[0]))
        else:
            self._dirty[block_id] = self._dirty.get(block_id, 0) + 1

    def on_commit(self, block_id: int, buf: "GlobalBuffer",
                  flat_indices: np.ndarray, values: np.ndarray,
                  reason: str) -> None:
        if block_id not in self._task:
            return
        self.events += 1
        self._tick(block_id)
        sync = self._is_sync(buf)
        if sync or buf.kind == "status":
            self._check_status_commit(block_id, buf, flat_indices, values)
        # Every committed store carries the release clock of the last fence
        # that precedes it in program order.  Readers only *acquire* it from
        # locations that are synchronization flags at read time, so ordinary
        # data locations record it without creating edges.
        release = self._fence_vc[block_id]
        for i in flat_indices:
            loc = (buf.name, int(i))
            existing = self._release.get(loc)
            if existing is None:
                self._release[loc] = release
            elif existing is not release:
                merged = dict(existing)
                _join(merged, release)
                self._release[loc] = merged
        if sync:
            return
        # Happens-before conflict checks for ordinary data.
        task = self._task[block_id]
        vc = self._vc[block_id]
        snap = self._snap(block_id)
        for i in flat_indices:
            loc = (buf.name, int(i))
            prev = self._write.get(loc)
            if prev is not None and prev[0] != task and not _leq(prev[1], vc):
                self._emit(
                    "unordered-write",
                    "conflicting global stores by concurrent blocks with no "
                    "happens-before edge between them (write-write race)",
                    block_id, buf.name, int(i))
            readers = self._reads.pop(loc, None)
            if readers:
                for rtask, rclock in readers.items():
                    if rtask != task and not _leq(rclock, vc):
                        self._emit(
                            "unordered-write",
                            "store to a location read by another block with "
                            "no happens-before edge (read-write race)",
                            block_id, buf.name, int(i))
                        break
            self._write[loc] = (task, snap)

    def on_release(self, block_id: int) -> None:
        if block_id not in self._task:
            return
        self.events += 1
        self._tick(block_id)
        self._fence_vc[block_id] = self._snap(block_id)
        self._dirty[block_id] = 0

    def on_load(self, block_id: int, buf: "GlobalBuffer",
                flat_indices: np.ndarray, from_own_buffer: np.ndarray) -> None:
        if block_id not in self._task:
            return
        self.events += 1
        self._tick(block_id)
        vc = self._vc[block_id]
        if self._is_sync(buf):
            # Acquire: reading a committed flag value justifies everything the
            # publisher fenced before raising it.
            for i in flat_indices:
                rel = self._release.get((buf.name, int(i)))
                if rel is not None:
                    _join(vc, rel)
            return
        # stale-read: the location is being observed while a remote store to
        # it is still sitting in another block's store buffer.
        for other_id, other_sb in self._sb.items():
            if other_id == block_id or other_sb.pending_count == 0:
                continue
            mask = other_sb.has_pending(buf, flat_indices)
            mask &= ~from_own_buffer
            if mask.any():
                i = int(flat_indices[int(np.argmax(mask))])
                self._emit(
                    "stale-read",
                    f"read while block {other_id} holds an uncommitted store "
                    "to the same location (store-buffered data observed "
                    "stale — flag published before its data?)",
                    block_id, buf.name, i)
        # unordered-read: HB check against the last committed writer.
        task = self._task[block_id]
        snap = None
        for k, i in enumerate(flat_indices):
            if from_own_buffer[k]:
                continue
            loc = (buf.name, int(i))
            prev = self._write.get(loc)
            if prev is not None and prev[0] != task and not _leq(prev[1], vc):
                self._emit(
                    "unordered-read",
                    "read of another block's store with no happens-before "
                    "edge (no fence+flag, atomic, or kernel-boundary "
                    "ordering justifies this value)",
                    block_id, buf.name, int(i))
            if snap is None:
                snap = self._snap(block_id)
            self._reads.setdefault(loc, {})[task] = snap

    def on_atomic(self, block_id: int, buf: "GlobalBuffer", flat_index: int,
                  old_value, added) -> None:
        # Any atomically-accessed location is a synchronization variable.
        if buf.kind == "data":
            buf.kind = "counter"
        self._sync_names.add(buf.name)
        if block_id not in self._task:
            return
        self.events += 1
        loc = (buf.name, int(flat_index))
        vc = self._vc[block_id]
        rel = self._release.get(loc)
        if rel is not None:
            _join(vc, rel)
        self._tick(block_id)
        self._release[loc] = self._snap(block_id)

    def on_spin_poll(self, block_id: int, buf: "GlobalBuffer",
                     flat_index: int) -> None:
        self._sync_names.add(buf.name)

    # -- protocol state machine ------------------------------------------------

    def _check_status_commit(self, block_id: int, buf: "GlobalBuffer",
                             flat_indices: np.ndarray,
                             values: np.ndarray) -> None:
        """Committed status bytes must be monotone and inside their domain."""
        old = buf.flat_view()[np.asarray(flat_indices, dtype=np.int64)]
        vals = np.asarray(values).ravel()
        for k, i in enumerate(flat_indices):
            new_v, old_v = vals[k], old[k]
            if new_v < old_v:
                self._emit(
                    "status-regression",
                    f"status flag downgraded {int(old_v)} -> {int(new_v)}; "
                    "statuses must be monotone non-decreasing for pollers "
                    "to be sound",
                    block_id, buf.name, int(i))
            if buf.status_values is not None \
                    and int(new_v) not in buf.status_values:
                self._emit(
                    "status-domain",
                    f"status value {int(new_v)} outside the protocol domain "
                    f"{tuple(buf.status_values)}",
                    block_id, buf.name, int(i))


# -- whole-algorithm sanitized runs ---------------------------------------------


@dataclass
class SanitizeRun:
    """Outcome of one sanitized simulation of one algorithm."""

    algorithm: str
    n: int
    tile_width: int
    consistency: str
    policy: str
    seed: int
    correct: bool
    findings: list[Finding]
    events: int

    @property
    def ok(self) -> bool:
        return self.correct and not self.findings

    def summary(self) -> str:
        status = "OK" if self.ok else (
            f"{len(self.findings)} finding(s)"
            + ("" if self.correct else ", WRONG RESULT"))
        return (f"{self.algorithm:<14} n={self.n:<5} {self.consistency:<7} "
                f"{self.policy:<11} -> {status}")


@dataclass
class SanitizeReport:
    """Aggregate of sanitized runs over algorithms x modes x policies."""

    runs: list[SanitizeRun] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.runs)

    @property
    def failures(self) -> list[SanitizeRun]:
        return [r for r in self.runs if not r.ok]

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILING RUN(S)"
        return f"sanitize: {len(self.runs)} run(s) -> {status}"


def sanitize_algorithm(algorithm: str, *, n: int = 64, tile_width: int = 32,
                       consistency: str = "relaxed", policy: str = "lifo",
                       seed: int = 0, residency: int | None = None,
                       max_findings: int = 200) -> SanitizeRun:
    """Run one algorithm under the sanitizer and verify the result.

    ``policy="lifo"`` is the adversarial schedule (most recently dispatched
    block favoured), the worst case for look-back chains.  ``residency``
    optionally bounds resident blocks to stress soft synchronization.
    """
    from repro.gpusim import GPU
    from repro.sat import get_algorithm, sat_reference

    rng = np.random.default_rng(seed)
    a = rng.integers(0, 50, size=(n, n)).astype(np.float64)
    sanitizer = Sanitizer(max_findings=max_findings)
    gpu = GPU(scheduler_policy=policy, seed=seed, consistency=consistency,
              max_resident_blocks=residency, sanitizer=sanitizer)
    alg = get_algorithm(algorithm, tile_width=tile_width)
    result = alg.run(a, gpu)
    correct = bool(np.array_equal(result.sat, sat_reference(a)))
    return SanitizeRun(algorithm=alg.name, n=n, tile_width=tile_width,
                       consistency=consistency, policy=policy, seed=seed,
                       correct=correct, findings=list(sanitizer.findings),
                       events=sanitizer.events)


def sanitize_all(algorithms: Sequence[str] | None = None, *,
                 n: int = 64, tile_width: int = 32,
                 consistencies: Iterable[str] = ("relaxed",),
                 policies: Iterable[str] = ("lifo",),
                 seed: int = 0,
                 residency: int | None = None) -> SanitizeReport:
    """Sanitize every algorithm under every consistency x policy combination."""
    from repro.sat import ALGORITHMS

    names = list(algorithms) if algorithms else list(ALGORITHMS)
    report = SanitizeReport()
    for name in names:
        for consistency in consistencies:
            for policy in policies:
                report.runs.append(sanitize_algorithm(
                    name, n=n, tile_width=tile_width, consistency=consistency,
                    policy=policy, seed=seed, residency=residency))
    return report
