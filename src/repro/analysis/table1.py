"""Table I as data: the single source of truth for the symbolic cost rows.

The paper's Table I characterises each of the seven algorithms by its kernel
calls, thread count, parallelism class and global-memory reads/writes.  Those
entries used to be spelled out independently in ``analysis/complexity.py``,
``perfmodel/costs.py`` and the test-suite; this module deduplicates them into
one exported table that everything else derives from:

* :data:`TABLE1` — the symbolic strings exactly as the paper prints them
  (rendered by ``repro table1`` and the REPRODUCTION_REPORT);
* the *traffic classes*: ``read_class``/``write_class`` are the exact leading
  coefficients of the ``n²`` term (``5/4`` for the hybrid at ``r = 1/4``), and
  ``remainder`` names the big-O class of everything below the leading term.

:mod:`repro.analysis.costcheck` proves, from the kernel ASTs, that each
algorithm's statically-derived traffic polynomial has exactly these leading
coefficients and a remainder inside the declared class — so editing a kernel
in a way that changes its Table I row fails ``repro costcheck`` before any
benchmark runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import ConfigurationError

#: Parallelism classes from Table I.
LOW, MEDIUM, HIGH = "low", "medium", "high"

#: Table I rows in the paper's order.
TABLE1_ORDER = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                "1R1W-SKSS", "1R1W-SKSS-LB")


@dataclass(frozen=True)
class Table1Sym:
    """One algorithm's symbolic Table I row plus its exact traffic classes.

    ``read_class``/``write_class`` are the coefficients of ``n²`` in the
    per-run global read/write request counts (requests, not transactions;
    the hybrid row assumes the default ``r = 1/4``).  ``remainder`` is the
    asymptotic class of the lower-order terms: ``"n^2/W"`` for every row
    except 2R2W-optimal, whose look-back/aggregate metadata scales with
    ``n²`` at fixed strip/panel geometry (hence the paper's ``O(n^2)``),
    and 2R2W, whose counts are exact with no remainder at all (``""``).
    """

    algorithm: str
    kernel_calls: str
    threads: str
    parallelism: str
    reads: str
    writes: str
    read_class: Fraction
    write_class: Fraction
    remainder: str


def _row(algorithm: str, kernel_calls: str, threads: str, parallelism: str,
         reads: str, writes: str, read_class, write_class,
         remainder: str) -> Table1Sym:
    return Table1Sym(algorithm, kernel_calls, threads, parallelism, reads,
                     writes, Fraction(read_class), Fraction(write_class),
                     remainder)


#: The deduplicated Table I, keyed by algorithm name.
TABLE1: dict[str, Table1Sym] = {row.algorithm: row for row in (
    _row("2R2W", "2", "n", LOW,
         "2n^2", "2n^2", 2, 2, ""),
    _row("2R2W-optimal", "2", "n^2/m", HIGH,
         "2n^2 + O(n^2)", "2n^2 + O(n^2)", 2, 2, "n^2"),
    _row("2R1W", "3", "n^2/m", HIGH,
         "2n^2 + O(n^2/W)", "n^2 + O(n^2/W)", 2, 1, "n^2/W"),
    _row("1R1W", "2n/W - 1", "nW/m", MEDIUM,
         "n^2 + O(n^2/W)", "n^2 + O(n^2/W)", 1, 1, "n^2/W"),
    _row("(1+r)R1W", "2(1-sqrt(r))n/W + 5", "max(rn^2/2m, nW/m)", MEDIUM,
         "(1+r)n^2 + O(n^2/W)", "n^2 + O(n^2/W)",
         Fraction(5, 4), 1, "n^2/W"),
    _row("1R1W-SKSS", "1", "nW/m", MEDIUM,
         "n^2 + O(n^2/W)", "n^2 + O(n^2/W)", 1, 1, "n^2/W"),
    _row("1R1W-SKSS-LB", "1", "n^2/m", HIGH,
         "n^2 + O(n^2/W)", "n^2 + O(n^2/W)", 1, 1, "n^2/W"),
)}


def table1_sym(algorithm: str) -> Table1Sym:
    """The symbolic Table I row for ``algorithm`` (raises on unknown names)."""
    try:
        return TABLE1[algorithm]
    except KeyError:
        raise ConfigurationError(
            f"no Table I row for algorithm '{algorithm}'") from None


def leading_traffic(algorithm: str, n: int) -> tuple[float, float]:
    """Leading-term global (reads, writes) in *requests* for an ``n x n`` run.

    This is the quantity ``repro.perfmodel`` prices: ``read_class * n²``
    reads and ``write_class * n²`` writes, exact up to the row's declared
    remainder class.
    """
    row = table1_sym(algorithm)
    return float(row.read_class) * n * n, float(row.write_class) * n * n


__all__ = ["LOW", "MEDIUM", "HIGH", "TABLE1", "TABLE1_ORDER", "Table1Sym",
           "table1_sym", "leading_traffic"]
