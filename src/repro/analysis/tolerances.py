"""The single source of every SAT comparison tolerance.

Before this module, each consumer of a SAT comparison carried its own
hand-tuned constants — ``rtol=1e-9, atol=1e-6`` in one place, ``rtol=1e-5``
in another, ad-hoc ``eps * 4 * (rows + cols)`` formulas elsewhere.  Those
constants were *unsound* both ways: too loose for small float64 runs (bugs
slip through) and too tight for large float32 runs with mixed magnitudes
(healthy results get flagged).  Every tolerance here is instead **derived**
from the per-algorithm worst-case rounding depths that
:mod:`repro.analysis.numcheck` proves statically from the kernel ASTs:

    |computed - exact| <= gamma_D * SAT(|a|)      (elementwise)

with ``gamma_D = D*eps / (1 - D*eps)`` and ``D`` the algorithm's proven
worst-path count of serial float roundings (plus the oracle's own depth —
the reference the comparison differences against also rounds).

The bound is **mass-relative**: the scale is the SAT of the *absolute*
input, not of the signed result.  Result-relative tolerances
(``rtol * |want|``) silently assume no cancellation; on sign-mixed inputs a
SAT entry can be tiny while the rounding error — which tracks the absolute
mass that flowed through the accumulators — is not.

Callers compare through :func:`sat_close` / :func:`assert_sat_close`, which
perform the comparison with explicit arithmetic.  ``np.allclose`` appears
nowhere in the package outside this docstring — a grep-enforced invariant
(its asymmetric ``atol + rtol*|want|`` shape cannot express the mass bound).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.numcheck import concrete_depth, gamma
from repro.analysis.table1 import TABLE1_ORDER
from repro.errors import ConfigurationError

#: Extra rounding depth charged for each supported oracle, as a function of
#: the padded problem size ``n`` and the algorithm's own depth ``d``:
#:
#: * ``"exact"`` — the reference is (near-)exact in a strictly wider type
#:   (float64 reference for a float32 result; Kahan for float64): charge 0.
#: * ``"reference"`` — a plain double cumulative sum in the *same* dtype:
#:   one rounding per fold, ``2n`` worst-path.
#: * ``"host"`` — the same algorithm's host leg in the same dtype: the
#:   oracle is as deep as the subject, ``d`` again.
_ORACLES = ("exact", "reference", "host")


@dataclass(frozen=True)
class Tolerance:
    """A derived comparison budget: where it came from and what it allows."""

    algorithm: str | None   #: None = worst case over every Table I algorithm
    dtype: np.dtype         #: accumulator dtype of the compared results
    n: int                  #: padded square side the depth was evaluated at
    depth: int              #: total proven rounding depth (subject + oracle)
    eps: float              #: machine epsilon of ``dtype`` (0 for integers)
    gamma: float            #: relative bound D*eps/(1 - D*eps) (0 = exact)
    exact: bool             #: integer accumulator: comparison must be exact

    def describe(self) -> str:
        who = self.algorithm or "any Table I algorithm"
        if self.exact:
            return f"{who}, {self.dtype.name}: exact (integer accumulator)"
        return (f"{who}, n<={self.n}, {self.dtype.name}: "
                f"|err| <= {self.gamma:.3g} * SAT(|a|) (depth {self.depth})")


def derived_tolerance(algorithm: str | None, shape, dtype, *,
                      tile_width: int = 32, oracle: str = "reference",
                      extra_depth: int = 0) -> Tolerance:
    """The proven comparison budget for SATs of ``shape`` in ``dtype``.

    ``shape`` is a side length or a ``(rows, cols)`` pair; the depth is
    evaluated at the larger side padded up to the layouts' granularity —
    the lcm of the tile width and the 2R2W-optimal scan layouts' strip and
    partition sizes (depths are monotone in n, so padding only loosens —
    stays sound).  ``dtype`` is the
    dtype of the compared arrays (the accumulator); integer accumulators get
    an exact tolerance — :mod:`repro.analysis.costcheck` proves them
    overflow-free, so any difference is a bug, not rounding.  ``oracle``
    names what the comparison differences against (see :data:`_ORACLES`);
    ``extra_depth`` charges additional roundings the static model cannot see
    (e.g. one carry add per shard when a distributed run stitches bands).
    """
    if oracle not in _ORACLES:
        raise ConfigurationError(
            f"unknown oracle {oracle!r}; choose from {_ORACLES}")
    if isinstance(shape, (int, np.integer)):
        side = int(shape)
    else:
        side = max(int(s) for s in shape)
    if side <= 0:
        raise ConfigurationError("SAT shape must be positive")
    grain = math.lcm(tile_width, 256)
    n = max(grain, math.ceil(side / grain) * grain)
    dt = np.dtype(dtype)
    if algorithm is None:
        depth = max(concrete_depth(alg, n, tile_width)
                    for alg in TABLE1_ORDER)
    else:
        depth = concrete_depth(algorithm, n, tile_width)
    if oracle == "reference":
        depth += 2 * n
    elif oracle == "host":
        depth *= 2
    depth += int(extra_depth)
    exact = not np.issubdtype(dt, np.floating)
    g = 0.0 if exact else gamma(depth, dt)
    return Tolerance(algorithm=algorithm, dtype=dt, n=n, depth=depth,
                     eps=0.0 if exact else float(np.finfo(dt).eps),
                     gamma=g, exact=exact)


def _error_scale(want: np.ndarray, abs_input) -> np.ndarray | float:
    """The mass SAT(|a|) the relative bound multiplies.

    With ``abs_input`` (the original matrix, sign-mixed welcome) the scale is
    the elementwise float64 SAT of its absolute values — the sharp bound.
    Without it the scale falls back to ``max(1, max|want|)``: for the
    non-negative inputs every built-in harness generates, ``SAT(|a|)`` *is*
    ``want``, so its max dominates the elementwise mass and the fallback
    stays sound (just looser near the origin corner).
    """
    if abs_input is not None:
        a = np.abs(np.asarray(abs_input, dtype=np.float64))
        mass = a.cumsum(axis=0).cumsum(axis=1)
        return np.maximum(mass, np.finfo(np.float64).tiny)
    return max(1.0, float(np.abs(np.asarray(want, dtype=np.float64)).max()))


def sat_close(got: np.ndarray, want: np.ndarray, tol: Tolerance, *,
              abs_input=None) -> bool:
    """Is ``got`` within the proven rounding budget of ``want``?"""
    got = np.asarray(got)
    want = np.asarray(want)
    if got.shape != want.shape:
        return False
    if tol.exact:
        return bool(np.array_equal(got, want))
    diff = np.abs(got.astype(np.float64) - want.astype(np.float64))
    return bool(np.all(diff <= tol.gamma * _error_scale(want, abs_input)))


def assert_sat_close(got: np.ndarray, want: np.ndarray, tol: Tolerance, *,
                     abs_input=None, context: str = "") -> None:
    """Assert :func:`sat_close`, reporting the worst offender on failure."""
    got = np.asarray(got)
    want = np.asarray(want)
    prefix = f"{context}: " if context else ""
    if got.shape != want.shape:
        raise AssertionError(
            f"{prefix}shape mismatch: got {got.shape}, want {want.shape}")
    if tol.exact:
        if not np.array_equal(got, want):
            bad = int(np.argmax(np.asarray(got != want)))
            raise AssertionError(
                f"{prefix}integer-accumulator SAT differs from oracle at "
                f"flat index {bad} ({tol.describe()}) — exact match "
                f"required, rounding cannot explain any difference")
        return
    diff = np.abs(got.astype(np.float64) - want.astype(np.float64))
    budget = tol.gamma * _error_scale(want, abs_input)
    over = diff > budget
    if np.any(over):
        bad = int(np.argmax(np.where(over, diff / np.maximum(budget, 1e-300),
                                     0.0)))
        idx = tuple(int(i) for i in np.unravel_index(bad, diff.shape))
        b = budget if np.isscalar(budget) else budget[idx]
        raise AssertionError(
            f"{prefix}SAT exceeds the proven rounding budget at {idx}: "
            f"|got-want| = {diff[idx]:.6g} > {float(b):.6g} "
            f"({tol.describe()})")


__all__ = ["Tolerance", "derived_tolerance", "sat_close", "assert_sat_close"]
