"""Verification helpers used by tests, benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.complexity import table1_row
from repro.sat.base import SATResult
from repro.sat.reference import sat_reference


@dataclass(frozen=True)
class CountCheck:
    """Outcome of comparing measured launch counts to the Table I prediction."""

    algorithm: str
    ok: bool
    kernel_calls_measured: int
    kernel_calls_predicted: int
    max_threads_measured: int
    max_threads_predicted: int
    reads_measured: int
    reads_predicted: float
    writes_measured: int
    writes_predicted: float

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        flag = "OK " if self.ok else "FAIL"
        return (f"[{flag}] {self.algorithm}: kernels {self.kernel_calls_measured}"
                f"/{self.kernel_calls_predicted}, threads "
                f"{self.max_threads_measured}/{self.max_threads_predicted}, "
                f"reads {self.reads_measured}/{self.reads_predicted:.0f}, "
                f"writes {self.writes_measured}/{self.writes_predicted:.0f}")


def check_result(result: SATResult, a: np.ndarray) -> bool:
    """Does ``result.sat`` equal the reference SAT of ``a``?

    The comparison budget is not a hand-picked constant: it is the proven
    worst-case rounding bound for ``result.algorithm`` at this size and
    accumulator dtype (:func:`repro.analysis.tolerances.derived_tolerance`).
    The old fixed ``rtol=1e-9, atol=1e-6`` was unsound both ways — far too
    loose for small float64 runs and too tight for large float32 runs with
    mixed-magnitude inputs.
    """
    from repro.analysis.tolerances import derived_tolerance, sat_close

    a64 = np.asarray(a, dtype=np.float64)
    tol = derived_tolerance(result.algorithm, a64.shape, result.sat.dtype,
                            tile_width=result.params.get("tile_width", 32),
                            oracle="reference")
    return sat_close(result.sat, sat_reference(a64).astype(result.sat.dtype),
                     tol, abs_input=a64)


def check_counts(result: SATResult, *, read_slack: float | None = None,
                 write_slack: float | None = None, r: float = 0.25) -> CountCheck:
    """Compare measured kernel/thread/traffic counts against Table I.

    The numeric predictions are the paper's *leading* terms (guaranteed lower
    bounds); the slacks cover the O(n²/W) boundary vectors, status flags and
    schedule-dependent look-back/spin traffic, and default to ``8/W + 2 %``.
    Kernel-call counts must match exactly except for the hybrid (whose
    constant differs from the paper's ``+5`` by our band bookkeeping, checked
    to ±2).
    """
    assert result.report is not None, "check_counts needs a simulated result"
    W = result.params.get("tile_width", 32)
    if read_slack is None:
        read_slack = 8.0 / W + 0.02
    if write_slack is None:
        write_slack = 8.0 / W + 0.02
    row = table1_row(result.algorithm, result.n, W=W,
                     threads_per_block=result.params.get("threads_per_block",
                                                         1024), r=r)
    traffic = result.report.traffic
    kernels_ok = (abs(result.report.kernel_calls - row.kernel_calls) <= 2
                  if result.algorithm == "(1+r)R1W"
                  else result.report.kernel_calls == row.kernel_calls)
    reads_ok = (row.reads * (1 - 1e-9) <= traffic.global_read_requests
                <= row.reads * (1 + read_slack))
    writes_ok = (row.writes * (1 - 1e-9) <= traffic.global_write_requests
                 <= row.writes * (1 + write_slack))
    threads_ok = result.report.max_threads <= row.max_threads * (1 + 1e-9)
    return CountCheck(
        algorithm=result.algorithm,
        ok=bool(kernels_ok and reads_ok and writes_ok and threads_ok),
        kernel_calls_measured=result.report.kernel_calls,
        kernel_calls_predicted=row.kernel_calls,
        max_threads_measured=result.report.max_threads,
        max_threads_predicted=row.max_threads,
        reads_measured=traffic.global_read_requests,
        reads_predicted=row.reads,
        writes_measured=traffic.global_write_requests,
        writes_predicted=row.writes,
    )
