"""Dependence-parallelism profiles: *why* Table I's parallelism classes hold.

Idealized critical-path analysis of the tile dataflow, with unit-time tile
tasks and unbounded processors.  For each algorithm family the profile lists,
per dependence level, how many tiles can execute concurrently:

* **wavefront (1R1W)**: ``GSAT(I, J)`` needs its three up-left neighbours →
  level ``I + J``; widths are the anti-diagonal sizes and the critical path
  is ``2t − 1``.
* **column pipeline (1R1W-SKSS)**: one worker per column processing tiles
  top-to-bottom, and tile ``(I, J)`` additionally waits for ``(I, J-1)``'s
  row phase; completion levels are again ``I + J`` but capacity is capped at
  ``t`` workers.
* **look-back (1R1W-SKSS-LB)**: publishing *local* sums first collapses the
  chains: ``LRS/LCS`` have no dependencies (level 0); ``GRS/GCS`` need only
  local sums of earlier tiles in their row/column (level 1); ``GLS`` needs
  those (level 2); ``GS`` telescopes through ``GLS`` (level 3); ``GSAT``
  (level 4).  The critical path is a **constant 5 levels** for every matrix
  size — the quantitative content of "high parallelism" in Table I.

These are dataflow idealizations (memory bandwidth, look-back read fan-in and
residency are ignored — the cost model covers those); what they isolate is
the *dependence* structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ParallelismProfile:
    """Widths per dependence level for one algorithm's tile dataflow."""

    algorithm: str
    t: int
    widths: tuple[int, ...]

    @property
    def critical_path(self) -> int:
        return len(self.widths)

    @property
    def max_width(self) -> int:
        return max(self.widths)

    @property
    def total_tasks(self) -> int:
        return sum(self.widths)

    @property
    def mean_width(self) -> float:
        return self.total_tasks / self.critical_path


def wavefront_profile(t: int) -> ParallelismProfile:
    """1R1W / plain dataflow: one level per anti-diagonal."""
    if t <= 0:
        raise ConfigurationError("t must be positive")
    widths = tuple(t - abs(K - (t - 1)) for K in range(2 * t - 1))
    return ParallelismProfile("1R1W", t, widths)


def skss_profile(t: int) -> ParallelismProfile:
    """1R1W-SKSS: wavefront levels with concurrency capped at ``t`` columns.

    The column workers pipeline the same ``I + J`` levels, but at most ``t``
    tiles (one per column) are in flight at a level.
    """
    if t <= 0:
        raise ConfigurationError("t must be positive")
    base = wavefront_profile(t).widths
    widths = tuple(min(w, t) for w in base)
    return ParallelismProfile("1R1W-SKSS", t, widths)


def lookback_profile(t: int) -> ParallelismProfile:
    """1R1W-SKSS-LB: five constant levels, each touching every tile.

    Level 0: load + LRS/LCS of all ``t²`` tiles (no dependencies).
    Level 1: GRS and GCS (read only level-0 locals, telescoped).
    Level 2: GLS.  Level 3: GS.  Level 4: GSAT assembly + write.
    """
    if t <= 0:
        raise ConfigurationError("t must be positive")
    n_tiles = t * t
    return ParallelismProfile("1R1W-SKSS-LB", t, (n_tiles,) * 5)


PROFILES = {
    "1R1W": wavefront_profile,
    "1R1W-SKSS": skss_profile,
    "1R1W-SKSS-LB": lookback_profile,
}


def profile(algorithm: str, t: int) -> ParallelismProfile:
    try:
        return PROFILES[algorithm](t)
    except KeyError:
        raise ConfigurationError(
            f"no dependence profile for '{algorithm}'; "
            f"known: {sorted(PROFILES)}") from None


def render_profile(p: ParallelismProfile, *, width: int = 50) -> str:
    """ASCII bar per level (long profiles are middle-elided)."""
    lines = [f"{p.algorithm}: t={p.t}, critical path={p.critical_path}, "
             f"max width={p.max_width}, mean={p.mean_width:.1f}"]
    levels = list(enumerate(p.widths))
    if len(levels) > 14:
        levels = levels[:6] + [None] + levels[-6:]
    for item in levels:
        if item is None:
            lines.append("   ...")
            continue
        lvl, w = item
        bar = "#" * max(1, int(round(w / p.max_width * width)))
        lines.append(f"  L{lvl:<4} |{bar} {w}")
    return "\n".join(lines)
