"""SAT applications: the computer-vision workloads the paper's introduction
motivates (O(1) rectangle sums)."""

from repro.apps.adaptive_threshold import adaptive_threshold, global_threshold
from repro.apps.blob_detection import (Blob, detect_blobs, hessian_dxx,
                                       hessian_dxy, hessian_dyy,
                                       hessian_response, non_max_suppress)
from repro.apps.box_filter import (box_filter, box_filter_direct, window_areas,
                                   window_sums_from_sat)
from repro.apps.cascade import (CascadeStage, CascadeStats, ContrastTest,
                                Detection, SymmetryTest,
                                bright_square_cascade, detect, squares_scene)
from repro.apps.template_match import best_match, ncc_match, window_stats
from repro.apps.integral_features import (KINDS, HaarFeature, evaluate_feature,
                                          evaluate_feature_dense, feature_bank)
from repro.apps.synthetic import (checkerboard, gaussian_blobs, gradient_image,
                                  noisy_document, texture)
from repro.apps.variance_filter import (chebyshev_upper_bound,
                                        local_contrast_normalize,
                                        local_moments)
from repro.apps.video import (FrameStats, VideoSAT, process_stream,
                              synthetic_stream)

__all__ = [
    "adaptive_threshold", "global_threshold",
    "box_filter", "box_filter_direct", "window_areas", "window_sums_from_sat",
    "HaarFeature", "KINDS", "evaluate_feature", "evaluate_feature_dense",
    "feature_bank",
    "checkerboard", "gaussian_blobs", "gradient_image", "noisy_document",
    "texture",
    "chebyshev_upper_bound", "local_contrast_normalize", "local_moments",
    "Blob", "detect_blobs", "hessian_dxx", "hessian_dxy", "hessian_dyy",
    "hessian_response", "non_max_suppress",
    "best_match", "ncc_match", "window_stats",
    "CascadeStage", "CascadeStats", "ContrastTest", "Detection",
    "SymmetryTest", "bright_square_cascade", "detect", "squares_scene",
    "VideoSAT", "FrameStats", "process_stream", "synthetic_stream",
]
