"""Adaptive (local-mean) thresholding via the summed area table.

The Bradley–Roth binarization used in document processing: a pixel is
foreground when it is more than ``ratio`` darker than the mean of its local
window.  The local means come from a single SAT — the workload that makes
fast SAT construction matter in OCR pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.apps.box_filter import box_filter
from repro.errors import ConfigurationError


def adaptive_threshold(image: np.ndarray, *, radius: int | None = None,
                       ratio: float = 0.15, algorithm: str | None = None,
                       tile_width: int = 32, gpu=None) -> np.ndarray:
    """Binarize ``image``: ``True`` where the pixel is ``ratio`` below its
    local clamped-window mean.

    ``radius`` defaults to one eighth of the image side (the Bradley–Roth
    recommendation of a window about ``n/8`` wide).
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ConfigurationError("adaptive_threshold expects a 2-D image")
    if not 0.0 <= ratio < 1.0:
        raise ConfigurationError(f"ratio must be in [0, 1), got {ratio}")
    if radius is None:
        radius = max(1, image.shape[0] // 16)
    means = box_filter(image, radius, algorithm=algorithm,
                       tile_width=tile_width, gpu=gpu)
    return image < means * (1.0 - ratio)


def global_threshold(image: np.ndarray, level: float = 0.5) -> np.ndarray:
    """Naive global threshold (comparison baseline: fails under uneven
    illumination, which is the scenario the adaptive version handles)."""
    return np.asarray(image) < level
