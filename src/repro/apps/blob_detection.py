"""SURF-style blob detection: box-filter Hessian over the integral image.

SURF (Bay et al.) approximates Gaussian second derivatives with box filters
evaluated on an integral image, so the filter response at any scale costs a
fixed handful of SAT lookups.  This module implements the classic 3-lobe
``Dxx``/``Dyy`` and 4-lobe ``Dxy`` box kernels, the determinant-of-Hessian
response, and a non-maximum-suppression peak picker — a realistic downstream
consumer of fast SAT construction.

All filters use *interior* evaluation (responses are computed where the full
box fits), mirroring the usual implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference


def _box(sat: np.ndarray, top: np.ndarray, left: np.ndarray,
         bottom: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Vectorised four-corner sums (callers guarantee in-range indices)."""
    acc = (np.result_type(sat.dtype, np.int64)
           if np.issubdtype(sat.dtype, np.integer) else sat.dtype)
    total = sat[bottom, right].astype(acc, copy=True)
    m = top > 0
    total[m] -= sat[top[m] - 1, right[m]]
    m = left > 0
    total[m] -= sat[bottom[m], left[m] - 1]
    m = (top > 0) & (left > 0)
    total[m] += sat[top[m] - 1, left[m] - 1]
    return total


def _lobe_geometry(lobe: int) -> tuple[int, int]:
    """Filter half-size and full size for a given lobe length.

    SURF's 9x9 base filter has lobe 3: the full kernel is ``3·lobe`` wide.
    """
    if lobe < 1 or lobe % 2 == 0:
        raise ConfigurationError(f"lobe length must be odd and >= 1, got {lobe}")
    size = 3 * lobe
    return size // 2, size


def hessian_dyy(sat: np.ndarray, lobe: int) -> np.ndarray:
    """``Dyy`` response (second derivative across rows): three stacked boxes
    weighted +1, −2, +1, each ``lobe`` rows by ``2·lobe−1`` columns."""
    half, size = _lobe_geometry(lobe)
    rows, cols = sat.shape
    if rows < size or cols < size:
        raise ConfigurationError("image smaller than the filter")
    out = np.zeros((rows, cols))
    ii, jj = np.meshgrid(np.arange(half, rows - half),
                         np.arange(half, cols - half), indexing="ij")
    w = lobe - 1 + lobe // 2  # horizontal half-extent of the lobes
    left = jj - w
    right = jj + w
    top = ii - half
    response = _box(sat, top, left, top + lobe - 1, right)
    response -= 2.0 * _box(sat, ii - lobe // 2, left, ii + lobe // 2, right)
    response += _box(sat, ii + half - lobe + 1, left, ii + half, right)
    out[half:rows - half, half:cols - half] = response
    return out


def hessian_dxx(sat: np.ndarray, lobe: int) -> np.ndarray:
    """``Dxx`` response: the transpose geometry of :func:`hessian_dyy`."""
    return hessian_dyy(np.ascontiguousarray(sat.T), lobe).T


def hessian_dxy(sat: np.ndarray, lobe: int) -> np.ndarray:
    """``Dxy`` response: four ``lobe x lobe`` boxes in a checker pattern
    (+1 upper-left is negative quadrant convention: +, −, −, +)."""
    half, size = _lobe_geometry(lobe)
    rows, cols = sat.shape
    if rows < size or cols < size:
        raise ConfigurationError("image smaller than the filter")
    out = np.zeros((rows, cols))
    ii, jj = np.meshgrid(np.arange(half, rows - half),
                         np.arange(half, cols - half), indexing="ij")
    response = _box(sat, ii - lobe, jj - lobe, ii - 1, jj - 1)
    response -= _box(sat, ii - lobe, jj + 1, ii - 1, jj + lobe)
    response -= _box(sat, ii + 1, jj - lobe, ii + lobe, jj - 1)
    response += _box(sat, ii + 1, jj + 1, ii + lobe, jj + lobe)
    out[half:rows - half, half:cols - half] = response
    return out


def hessian_response(image: np.ndarray, lobe: int = 3) -> np.ndarray:
    """Normalized determinant-of-Hessian response map.

    ``det = Dxx·Dyy − (0.9·Dxy)²`` (SURF's 0.9 weight), normalized by the
    filter area squared so responses are comparable across scales.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ConfigurationError("hessian_response expects a 2-D image")
    sat = sat_reference(image)
    dxx = hessian_dxx(sat, lobe)
    dyy = hessian_dyy(sat, lobe)
    dxy = hessian_dxy(sat, lobe)
    norm = float(3 * lobe) ** 2
    return (dxx * dyy - (0.9 * dxy) ** 2) / (norm * norm)


@dataclass(frozen=True)
class Blob:
    """A detected blob: centre and filter scale (lobe length)."""

    row: int
    col: int
    lobe: int
    response: float


def non_max_suppress(response: np.ndarray, *, threshold: float,
                     radius: int = 2) -> list[tuple[int, int, float]]:
    """Local maxima of a response map above ``threshold``."""
    rows, cols = response.shape
    peaks = []
    for i in range(radius, rows - radius):
        for j in range(radius, cols - radius):
            v = response[i, j]
            if v <= threshold:
                continue
            window = response[i - radius:i + radius + 1,
                              j - radius:j + radius + 1]
            if v >= window.max():
                peaks.append((i, j, float(v)))
    return peaks


def detect_blobs(image: np.ndarray, *, lobes=(3, 5, 7),
                 threshold: float = 1e-4) -> list[Blob]:
    """Multi-scale blob detection: best-scale determinant-of-Hessian peaks."""
    blobs: list[Blob] = []
    for lobe in lobes:
        resp = hessian_response(image, lobe)
        for i, j, v in non_max_suppress(resp, threshold=threshold,
                                        radius=max(2, lobe // 2)):
            blobs.append(Blob(row=i, col=j, lobe=lobe, response=v))
    blobs.sort(key=lambda b: -b.response)
    return blobs
