"""Box filtering (mean blur) in O(1) per pixel via the summed area table.

The classic SAT application from Crow [7]: once the SAT is built, the mean of
any ``(2r+1)²`` window is four lookups, independent of the radius.  Windows
are clamped at the image borders (each pixel is averaged over the part of its
window that lies inside the image), so the filter is exactly a normalized
box convolution with border truncation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference
from repro.sat.registry import compute_sat, host_sat


def _window_bounds(n_rows: int, n_cols: int, radius: int):
    ii = np.arange(n_rows)[:, None]
    jj = np.arange(n_cols)[None, :]
    top = np.maximum(ii - radius, 0)
    bottom = np.minimum(ii + radius, n_rows - 1)
    left = np.maximum(jj - radius, 0)
    right = np.minimum(jj + radius, n_cols - 1)
    return (np.broadcast_to(top, (n_rows, n_cols)),
            np.broadcast_to(bottom, (n_rows, n_cols)),
            np.broadcast_to(left, (n_rows, n_cols)),
            np.broadcast_to(right, (n_rows, n_cols)))


def window_sums_from_sat(sat: np.ndarray, radius: int) -> np.ndarray:
    """Clamped-window sums for every pixel, from a prebuilt SAT (vectorised).

    The sums come back in the SAT's own dtype (widened to at least ``int64``
    for integer SATs), so integer pixel data stays exact until a caller
    divides.
    """
    if radius < 0:
        raise ConfigurationError("box-filter radius must be non-negative")
    rows, cols = sat.shape
    top, bottom, left, right = _window_bounds(rows, cols, radius)
    acc = (np.result_type(sat.dtype, np.int64)
           if np.issubdtype(sat.dtype, np.integer) else sat.dtype)
    total = sat[bottom, right].astype(acc, copy=True)
    m = top > 0
    total[m] -= sat[top[m] - 1, right[m]]
    m = left > 0
    total[m] -= sat[bottom[m], left[m] - 1]
    m = (top > 0) & (left > 0)
    total[m] += sat[top[m] - 1, left[m] - 1]
    return total


def window_areas(rows: int, cols: int, radius: int) -> np.ndarray:
    """Number of in-image pixels in each clamped window."""
    top, bottom, left, right = _window_bounds(rows, cols, radius)
    return ((bottom - top + 1) * (right - left + 1)).astype(np.float64)


def box_filter(image: np.ndarray, radius: int, *,
               algorithm: str | None = None, tile_width: int = 32,
               gpu=None, engine=None,
               workers: int | None = None) -> np.ndarray:
    """Mean-filter ``image`` with a clamped ``(2·radius+1)²`` box window.

    With ``algorithm`` given, the SAT is built by that paper algorithm (on the
    simulator when ``gpu`` is provided, host path otherwise); the default uses
    the NumPy reference SAT.  ``engine`` picks a host executor
    (:func:`~repro.sat.registry.host_sat`) and is mutually exclusive with
    ``gpu``.

    Any dtype is accepted: integer images accumulate exactly (the SAT stack's
    exact dtype policy) and only the final mean division produces floats.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ConfigurationError("box_filter expects a 2-D image")
    if engine is not None:
        if gpu is not None:
            raise ConfigurationError(
                "a host engine and a simulator GPU are mutually exclusive")
        sat = host_sat(image, algorithm=algorithm, tile_width=tile_width,
                       engine=engine, workers=workers)
    elif algorithm is None:
        sat = sat_reference(image)
    else:
        result = compute_sat(image, algorithm=algorithm, tile_width=tile_width,
                             gpu=gpu, simulate=gpu is not None)
        sat = result.sat
    sums = window_sums_from_sat(sat, radius)
    return sums / window_areas(*image.shape, radius)


def box_filter_direct(image: np.ndarray, radius: int) -> np.ndarray:
    """O(r²)-per-pixel direct convolution oracle (for tests; intentionally
    simple and slow)."""
    image = np.asarray(image)
    rows, cols = image.shape
    out = np.empty((rows, cols), dtype=np.float64)
    for i in range(rows):
        for j in range(cols):
            window = image[max(i - radius, 0):i + radius + 1,
                           max(j - radius, 0):j + radius + 1]
            out[i, j] = window.mean()
    return out
