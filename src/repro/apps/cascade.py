"""A miniature Viola–Jones-style detection cascade on integral images.

The classic consumer of fast SAT construction: a sliding-window detector
whose stages are rectangle-contrast tests evaluated with O(1) integral-image
lookups, arranged so cheap early stages reject most windows before the more
selective ones run.  There is no training data in this environment, so the
cascade here is *hand-constructed* to detect bright, roughly uniform square
objects on a darker background — enough to exercise the full pipeline:
dense stage-1 evaluation, early rejection accounting, per-survivor later
stages, and non-maximum suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.integral import integral_image, rect_sum_ii


@dataclass(frozen=True)
class ContrastTest:
    """One weak test: mean(inner rect) − mean(outer rect) >= threshold.

    Rectangles are given in window-relative coordinates ``(top, left,
    bottom, right)`` (inclusive).
    """

    inner: tuple[int, int, int, int]
    outer: tuple[int, int, int, int]
    threshold: float

    def _mean(self, ii: np.ndarray, anchors_r: np.ndarray,
              anchors_c: np.ndarray, rect) -> np.ndarray:
        t, l, b, r = rect
        area = (b - t + 1) * (r - l + 1)
        tops = anchors_r + t
        lefts = anchors_c + l
        bottoms = anchors_r + b
        rights = anchors_c + r
        total = (ii[bottoms + 1, rights + 1] - ii[tops, rights + 1]
                 - ii[bottoms + 1, lefts] + ii[tops, lefts])
        return total / area

    def evaluate(self, ii: np.ndarray, anchors_r: np.ndarray,
                 anchors_c: np.ndarray) -> np.ndarray:
        """Vectorised pass/fail over anchor positions."""
        inner = self._mean(ii, anchors_r, anchors_c, self.inner)
        outer = self._mean(ii, anchors_r, anchors_c, self.outer)
        return (inner - outer) >= self.threshold


@dataclass(frozen=True)
class SymmetryTest:
    """Passes when two window regions have similar means (|Δ| <= tolerance).

    Rejects the half-plane edges and gradients that fool pure
    centre-vs-surround contrast tests: a real compact object leaves opposite
    border strips equally dim, an edge does not.
    """

    rect_a: tuple[int, int, int, int]
    rect_b: tuple[int, int, int, int]
    tolerance: float

    def evaluate(self, ii: np.ndarray, anchors_r: np.ndarray,
                 anchors_c: np.ndarray) -> np.ndarray:
        probe = ContrastTest(self.rect_a, self.rect_b, 0.0)
        mean_a = probe._mean(ii, anchors_r, anchors_c, self.rect_a)
        mean_b = probe._mean(ii, anchors_r, anchors_c, self.rect_b)
        return np.abs(mean_a - mean_b) <= self.tolerance


@dataclass(frozen=True)
class CascadeStage:
    """A stage passes when at least ``min_votes`` of its tests pass."""

    tests: tuple = ()
    min_votes: int = 1

    def evaluate(self, ii, anchors_r, anchors_c) -> np.ndarray:
        votes = np.zeros(anchors_r.shape, dtype=int)
        for test in self.tests:
            votes += test.evaluate(ii, anchors_r, anchors_c)
        return votes >= self.min_votes


@dataclass
class Detection:
    row: int
    col: int
    window: int
    score: float


@dataclass
class CascadeStats:
    """Early-rejection accounting (the reason cascades exist)."""

    windows_total: int = 0
    survivors_per_stage: list = field(default_factory=list)

    @property
    def early_reject_fraction(self) -> float:
        if not self.windows_total or not self.survivors_per_stage:
            return 0.0
        return 1.0 - self.survivors_per_stage[0] / self.windows_total


def bright_square_cascade(window: int, *, contrast: float = 0.15) -> list[CascadeStage]:
    """Two hand-built stages for bright ``window x window`` squares.

    Stage 1 (cheap): the window centre is brighter than its frame.
    Stage 2 (selective): all four centre quadrants individually beat the
    frame *and* opposite border strips match — rejecting the half-plane
    edges and gradients that pass stage 1.
    """
    if window < 8:
        raise ConfigurationError("window must be at least 8 pixels")
    q = window // 4
    centre = (q, q, window - q - 1, window - q - 1)
    frame = (0, 0, window - 1, window - 1)
    half = window // 2
    quadrants = [
        (q, q, half - 1, half - 1),
        (q, half, half - 1, window - q - 1),
        (half, q, window - q - 1, half - 1),
        (half, half, window - q - 1, window - q - 1),
    ]
    left_strip = (0, 0, window - 1, q - 1)
    right_strip = (0, window - q, window - 1, window - 1)
    top_strip = (0, 0, q - 1, window - 1)
    bottom_strip = (window - q, 0, window - 1, window - 1)
    stage1 = CascadeStage((ContrastTest(centre, frame, contrast * 0.75),), 1)
    stage2_tests = tuple(ContrastTest(quad, frame, contrast * 0.5)
                         for quad in quadrants) + (
        SymmetryTest(left_strip, right_strip, contrast),
        SymmetryTest(top_strip, bottom_strip, contrast),
    )
    stage2 = CascadeStage(stage2_tests, min_votes=len(stage2_tests))
    return [stage1, stage2]


def detect(image: np.ndarray, *, window: int = 16,
           cascade: list[CascadeStage] | None = None,
           stride: int = 1, nms_radius: int | None = None
           ) -> tuple[list[Detection], CascadeStats]:
    """Run the cascade over all window placements; returns detections + stats.

    ``stride=1`` by default: the selective stage requires a well-centred
    window, and the cascade's early rejection makes dense evaluation cheap
    (integral-image lookups only).
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ConfigurationError("detect expects a 2-D image")
    rows, cols = image.shape
    if window > min(rows, cols):
        raise ConfigurationError("window larger than the image")
    cascade = cascade or bright_square_cascade(window)
    ii = integral_image(image)

    anchors_r, anchors_c = np.meshgrid(
        np.arange(0, rows - window + 1, stride),
        np.arange(0, cols - window + 1, stride), indexing="ij")
    anchors_r = anchors_r.ravel()
    anchors_c = anchors_c.ravel()
    stats = CascadeStats(windows_total=anchors_r.size)

    alive = np.ones(anchors_r.size, dtype=bool)
    for stage in cascade:
        idx = np.flatnonzero(alive)
        if idx.size == 0:
            stats.survivors_per_stage.append(0)
            continue
        passed = stage.evaluate(ii, anchors_r[idx], anchors_c[idx])
        alive[idx[~passed]] = False
        stats.survivors_per_stage.append(int(alive.sum()))

    detections = []
    for k in np.flatnonzero(alive):
        r, c = int(anchors_r[k]), int(anchors_c[k])
        score = float(rect_sum_ii(ii, r, c, r + window - 1, c + window - 1)
                      / window**2)
        detections.append(Detection(row=r, col=c, window=window, score=score))

    radius = nms_radius if nms_radius is not None else window // 2
    return _nms(detections, radius), stats


def _nms(detections: list[Detection], radius: int) -> list[Detection]:
    """Greedy non-maximum suppression by score."""
    kept: list[Detection] = []
    for det in sorted(detections, key=lambda d: -d.score):
        if all(abs(det.row - k.row) > radius or abs(det.col - k.col) > radius
               for k in kept):
            kept.append(det)
    return kept


def squares_scene(n: int, *, num_squares: int = 3, square: int = 14,
                  seed: int = 0) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Synthetic scene: bright squares on a darker textured background.

    Returns the image and the planted top-left corners.
    """
    rng = np.random.default_rng(seed)
    img = 0.25 + 0.05 * rng.random((n, n))
    img += 0.15 * np.linspace(0, 1, n)[None, :]      # distractor gradient
    corners = []
    attempts = 0
    while len(corners) < num_squares and attempts < 200:
        attempts += 1
        r = int(rng.integers(0, n - square))
        c = int(rng.integers(0, n - square))
        if any(abs(r - rr) < 2 * square and abs(c - cc) < 2 * square
               for rr, cc in corners):
            continue
        img[r:r + square, c:c + square] += 0.5
        corners.append((r, c))
    return np.clip(img, 0.0, 1.0), corners
