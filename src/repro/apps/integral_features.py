"""Haar-like rectangle features over the integral image (Viola–Jones style).

Face-detection cascades evaluate hundreds of thousands of rectangle-contrast
features per frame; each is a handful of SAT lookups.  This module implements
the standard two-, three- and four-rectangle features and a dense evaluator,
exercising :func:`repro.sat.reference.rect_sums` at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.reference import rect_sum, rect_sums

#: Supported feature kinds.
KINDS = ("two_h", "two_v", "three_h", "three_v", "four")


@dataclass(frozen=True)
class HaarFeature:
    """A Haar-like feature anchored at ``(top, left)`` with a base cell of
    ``height x width`` pixels (the full feature spans 2-3 cells per axis)."""

    kind: str
    top: int
    left: int
    height: int
    width: int

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown Haar feature kind '{self.kind}'")
        if self.height <= 0 or self.width <= 0:
            raise ConfigurationError("feature cells must be non-empty")

    @property
    def span(self) -> tuple[int, int]:
        """Total (rows, cols) the feature covers."""
        if self.kind == "two_h":
            return self.height, 2 * self.width
        if self.kind == "two_v":
            return 2 * self.height, self.width
        if self.kind == "three_h":
            return self.height, 3 * self.width
        if self.kind == "three_v":
            return 3 * self.height, self.width
        return 2 * self.height, 2 * self.width

    def cells(self) -> list[tuple[int, int, int, int, float]]:
        """The feature's rectangles as ``(top, left, bottom, right, weight)``."""
        t, l, h, w = self.top, self.left, self.height, self.width
        if self.kind == "two_h":
            return [(t, l, t + h - 1, l + w - 1, +1.0),
                    (t, l + w, t + h - 1, l + 2 * w - 1, -1.0)]
        if self.kind == "two_v":
            return [(t, l, t + h - 1, l + w - 1, +1.0),
                    (t + h, l, t + 2 * h - 1, l + w - 1, -1.0)]
        if self.kind == "three_h":
            return [(t, l, t + h - 1, l + w - 1, +1.0),
                    (t, l + w, t + h - 1, l + 2 * w - 1, -2.0),
                    (t, l + 2 * w, t + h - 1, l + 3 * w - 1, +1.0)]
        if self.kind == "three_v":
            return [(t, l, t + h - 1, l + w - 1, +1.0),
                    (t + h, l, t + 2 * h - 1, l + w - 1, -2.0),
                    (t + 2 * h, l, t + 3 * h - 1, l + w - 1, +1.0)]
        return [(t, l, t + h - 1, l + w - 1, +1.0),
                (t, l + w, t + h - 1, l + 2 * w - 1, -1.0),
                (t + h, l, t + 2 * h - 1, l + w - 1, -1.0),
                (t + h, l + w, t + 2 * h - 1, l + 2 * w - 1, +1.0)]


def evaluate_feature(sat: np.ndarray, feature: HaarFeature) -> float:
    """Evaluate one feature from the integral image (4-12 lookups)."""
    rows, cols = sat.shape
    span_r, span_c = feature.span
    if feature.top + span_r > rows or feature.left + span_c > cols:
        raise ConfigurationError(
            f"feature at ({feature.top},{feature.left}) spanning {span_r}x"
            f"{span_c} exceeds the {rows}x{cols} image")
    return float(sum(w * rect_sum(sat, t, l, b, r)
                     for t, l, b, r, w in feature.cells()))


def evaluate_feature_dense(sat: np.ndarray, kind: str, height: int,
                           width: int) -> np.ndarray:
    """Evaluate one feature shape at *every* valid anchor, vectorised.

    Returns an array of shape ``(rows - span_r + 1, cols - span_c + 1)``.
    This is the inner loop of a detection cascade's sliding window.
    """
    probe = HaarFeature(kind, 0, 0, height, width)
    span_r, span_c = probe.span
    rows, cols = sat.shape
    out_r, out_c = rows - span_r + 1, cols - span_c + 1
    if out_r <= 0 or out_c <= 0:
        raise ConfigurationError("feature larger than the image")
    tops, lefts = np.meshgrid(np.arange(out_r), np.arange(out_c), indexing="ij")
    total = np.zeros((out_r, out_c))
    for t, l, b, r, w in probe.cells():
        total += w * rect_sums(sat, (tops + t).ravel(), (lefts + l).ravel(),
                               (tops + b).ravel(),
                               (lefts + r).ravel()).reshape(out_r, out_c)
    return total


def feature_bank(n: int, *, seed: int = 0, count: int = 64) -> list[HaarFeature]:
    """A random bank of valid features for an ``n x n`` image (test workload)."""
    rng = np.random.default_rng(seed)
    bank: list[HaarFeature] = []
    while len(bank) < count:
        kind = KINDS[rng.integers(len(KINDS))]
        h = int(rng.integers(1, max(2, n // 6)))
        w = int(rng.integers(1, max(2, n // 6)))
        feat = HaarFeature(kind, 0, 0, h, w)
        span_r, span_c = feat.span
        if span_r >= n or span_c >= n:
            continue
        top = int(rng.integers(0, n - span_r + 1))
        left = int(rng.integers(0, n - span_c + 1))
        bank.append(HaarFeature(kind, top, left, h, w))
    return bank
