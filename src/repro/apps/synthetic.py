"""Synthetic image generators for the examples and application tests.

The paper's motivating applications operate on images; we have no image data
in this offline environment, so these generators produce deterministic
synthetic scenes (documented substitution in DESIGN.md) with enough structure
— edges, blobs, texture — to exercise the SAT applications meaningfully.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def gradient_image(n: int) -> np.ndarray:
    """A diagonal intensity ramp in [0, 1]."""
    if n <= 0:
        raise ConfigurationError("image size must be positive")
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return (ii + jj) / (2.0 * (n - 1)) if n > 1 else np.zeros((1, 1))


def checkerboard(n: int, cell: int = 8) -> np.ndarray:
    """A binary checkerboard with ``cell x cell`` squares."""
    if cell <= 0:
        raise ConfigurationError("cell size must be positive")
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return (((ii // cell) + (jj // cell)) % 2).astype(np.float64)


def gaussian_blobs(n: int, *, num_blobs: int = 5, seed: int = 0,
                   sigma_frac: float = 0.08) -> np.ndarray:
    """A field of Gaussian bumps at random centres (values roughly in [0, 1])."""
    rng = np.random.default_rng(seed)
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    img = np.zeros((n, n))
    sigma = max(1.0, sigma_frac * n)
    for _ in range(num_blobs):
        ci, cj = rng.uniform(0, n, size=2)
        amp = rng.uniform(0.5, 1.0)
        img += amp * np.exp(-((ii - ci) ** 2 + (jj - cj) ** 2) / (2 * sigma**2))
    return np.clip(img, 0.0, None)


def noisy_document(n: int, *, seed: int = 0, text_rows: int = 12) -> np.ndarray:
    """A document-like scene: dark "text" bars on a bright page with an
    illumination gradient and noise — the classic adaptive-threshold workload."""
    rng = np.random.default_rng(seed)
    # Strong illumination fall-off: the dark side's *page* is dimmer than the
    # bright side's *ink*, so no global threshold can separate both sides.
    page = 0.25 + 0.75 * gradient_image(n)
    img = page.copy()
    bar_h = max(1, n // (3 * text_rows))
    for k in range(text_rows):
        top = int((k + 0.5) * n / text_rows)
        if top + bar_h >= n:
            break
        left = int(rng.uniform(0.05, 0.2) * n)
        right = int(rng.uniform(0.6, 0.95) * n)
        img[top:top + bar_h, left:right] *= 0.3   # dark strokes
    img += rng.normal(0.0, 0.02, size=(n, n))
    return np.clip(img, 0.0, 1.0)


def texture(n: int, *, seed: int = 0) -> np.ndarray:
    """Band-limited random texture (smoothed white noise), roughly in [0, 1]."""
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(n, n))
    # Cheap separable smoothing via cumulative-sum box filters.
    k = max(1, n // 32)
    csum = np.cumsum(img, axis=0)
    img = (np.vstack([csum[k:], np.tile(csum[-1], (k, 1))]) - csum) / k
    csum = np.cumsum(img, axis=1)
    img = (np.hstack([csum[:, k:], np.tile(csum[:, -1:], (1, k))]) - csum) / k
    lo, hi = img.min(), img.max()
    return (img - lo) / (hi - lo) if hi > lo else np.zeros((n, n))
