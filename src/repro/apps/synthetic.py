"""Synthetic image generators for the examples and application tests.

The paper's motivating applications operate on images; we have no image data
in this offline environment, so these generators produce deterministic
synthetic scenes (documented substitution in DESIGN.md) with enough structure
— edges, blobs, texture — to exercise the SAT applications meaningfully.

Every generator accepts either a single side length ``n`` (square, the
paper's benchmark shape) or a ``(rows, cols)`` pair — camera-style
rectangles such as 640x480 work throughout the stack.  Float scenes are in
[0, 1]; :func:`to_uint8` quantizes them to the 8-bit representation real
image pipelines feed the SAT (exact integer accumulation downstream), and
:func:`uint8_noise` generates raw 8-bit test frames directly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _resolve_shape(shape) -> tuple[int, int]:
    """Normalize an ``n`` or ``(rows, cols)`` argument to a (rows, cols) pair."""
    if isinstance(shape, (int, np.integer)):
        rows = cols = int(shape)
    else:
        try:
            rows, cols = (int(s) for s in shape)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"shape must be an int or a (rows, cols) pair, got {shape!r}"
            ) from exc
    if rows <= 0 or cols <= 0:
        raise ConfigurationError("image size must be positive")
    return rows, cols


def gradient_image(shape) -> np.ndarray:
    """A diagonal intensity ramp in [0, 1]."""
    rows, cols = _resolve_shape(shape)
    ri = np.arange(rows) / (rows - 1) if rows > 1 else np.zeros(rows)
    cj = np.arange(cols) / (cols - 1) if cols > 1 else np.zeros(cols)
    return (ri[:, None] + cj[None, :]) / 2.0


def checkerboard(shape, cell: int = 8) -> np.ndarray:
    """A binary checkerboard with ``cell x cell`` squares."""
    if cell <= 0:
        raise ConfigurationError("cell size must be positive")
    rows, cols = _resolve_shape(shape)
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    return (((ii // cell) + (jj // cell)) % 2).astype(np.float64)


def gaussian_blobs(shape, *, num_blobs: int = 5, seed: int = 0,
                   sigma_frac: float = 0.08) -> np.ndarray:
    """A field of Gaussian bumps at random centres (values roughly in [0, 1])."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    img = np.zeros((rows, cols))
    sigma = max(1.0, sigma_frac * min(rows, cols))
    for _ in range(num_blobs):
        ci = rng.uniform(0, rows)
        cj = rng.uniform(0, cols)
        amp = rng.uniform(0.5, 1.0)
        img += amp * np.exp(-((ii - ci) ** 2 + (jj - cj) ** 2) / (2 * sigma**2))
    return np.clip(img, 0.0, None)


def noisy_document(shape, *, seed: int = 0, text_rows: int = 12) -> np.ndarray:
    """A document-like scene: dark "text" bars on a bright page with an
    illumination gradient and noise — the classic adaptive-threshold workload."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    # Strong illumination fall-off: the dark side's *page* is dimmer than the
    # bright side's *ink*, so no global threshold can separate both sides.
    page = 0.25 + 0.75 * gradient_image((rows, cols))
    img = page.copy()
    bar_h = max(1, rows // (3 * text_rows))
    for k in range(text_rows):
        top = int((k + 0.5) * rows / text_rows)
        if top + bar_h >= rows:
            break
        left = int(rng.uniform(0.05, 0.2) * cols)
        right = int(rng.uniform(0.6, 0.95) * cols)
        img[top:top + bar_h, left:right] *= 0.3   # dark strokes
    img += rng.normal(0.0, 0.02, size=(rows, cols))
    return np.clip(img, 0.0, 1.0)


def texture(shape, *, seed: int = 0) -> np.ndarray:
    """Band-limited random texture (smoothed white noise), roughly in [0, 1]."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    img = rng.normal(size=(rows, cols))
    # Cheap separable smoothing via cumulative-sum box filters.
    k = max(1, min(rows, cols) // 32)
    csum = np.cumsum(img, axis=0)
    img = (np.vstack([csum[k:], np.tile(csum[-1], (k, 1))]) - csum) / k
    csum = np.cumsum(img, axis=1)
    img = (np.hstack([csum[:, k:], np.tile(csum[:, -1:], (1, k))]) - csum) / k
    lo, hi = img.min(), img.max()
    return (img - lo) / (hi - lo) if hi > lo else np.zeros((rows, cols))


def sign_alternating(shape, *, seed: int = 0, span: float = 6.0) -> np.ndarray:
    """Mixed-magnitude values on an alternating sign lattice — the
    cancellation workload.  Partial sums swing through many magnitudes while
    every SAT entry stays small relative to the absolute mass, which is
    exactly the regime where result-relative tolerances (``rtol*|want|``)
    are unsound and the mass-relative bound of
    :mod:`repro.analysis.numcheck` is required."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    mags = 10.0 ** rng.uniform(-span / 2, span / 2, size=(rows, cols))
    ii, jj = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    signs = np.where((ii + jj) % 2 == 0, 1.0, -1.0)
    return signs * mags


def exponent_spread(shape, *, seed: int = 0, span: int = 24) -> np.ndarray:
    """Positive values spread across ``2**+-span`` binades.  All-positive
    (no cancellation), so small addends are systematically absorbed by large
    running sums — the classic worst case for long float accumulations."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    mantissa = rng.uniform(1.0, 2.0, size=(rows, cols))
    exponents = rng.integers(-span, span + 1, size=(rows, cols))
    return np.ldexp(mantissa, exponents)


def halfulp_dust(shape, *, dtype=np.float32, seed: int = 0) -> np.ndarray:
    """A dominant 1.0 at the origin plus positive "dust" just below half an
    ulp of 1.0 in ``dtype``.  Every running sum that has absorbed the
    dominant then drops each dust addend entirely (round-to-nearest), so the
    measured error tracks the *length* of the accumulation chain — the
    tightness probe for numcheck's proven per-algorithm rounding depths."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    eps = float(np.finfo(dtype).eps)
    dust = eps * rng.uniform(0.3, 0.5, size=(rows, cols))
    dust[0, 0] = 1.0
    return dust


def diag_dust(shape, *, tile: int = 32, dtype=np.float32,
              seed: int = 0) -> np.ndarray:
    """Half-ulp dust on row 0 / column 0 of each ``tile x tile`` *diagonal*
    tile, a dominant 1.0 at the origin, zeros everywhere else.

    The tightness probe for the wavefront algorithms' O(t*W) error depth:
    every off-diagonal tile is zero, so all boundary carries stay *exactly*
    zero and the dominant-bearing corner accumulator re-absorbs fresh
    sub-half-ulp dust through both prefix passes of every diagonal tile it
    chains through.  (Uniform dust cannot reach that path: its boundary
    sums grow past half an ulp after the first tile, and normal rounding
    takes over.)"""
    rows, cols = _resolve_shape(shape)
    if tile <= 0:
        raise ConfigurationError("tile size must be positive")
    rng = np.random.default_rng(seed)
    eps = float(np.finfo(dtype).eps)
    a = np.zeros((rows, cols))
    for k in range(min(rows, cols) // tile):
        r0 = k * tile
        a[r0, r0:r0 + tile] = eps * rng.uniform(0.3, 0.5, tile)
        a[r0:r0 + tile, r0] = eps * rng.uniform(0.3, 0.5, tile)
    a[0, 0] = 1.0
    return a


def to_uint8(image: np.ndarray) -> np.ndarray:
    """Quantize a [0, 1] float scene to 8-bit pixels (rounds, clips)."""
    image = np.asarray(image)
    return np.clip(np.rint(image * 255.0), 0, 255).astype(np.uint8)


def uint8_noise(shape, *, seed: int = 0) -> np.ndarray:
    """A uniform random 8-bit frame — the raw-sensor SAT workload."""
    rows, cols = _resolve_shape(shape)
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
