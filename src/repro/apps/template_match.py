"""Normalized cross-correlation template matching via summed area tables.

The NCC denominator — per-window mean and energy of the image — is the
textbook integral-image trick (Lewis, "Fast Normalized Cross-Correlation"):
two SATs (of ``x`` and ``x²``) make the normalization O(1) per window, so
only the raw correlation remains data-dependent.  The raw correlation here is
computed directly (the focus of this repository is the SAT part).
"""

from __future__ import annotations

import numpy as np

from repro.apps.variance_filter import squared_image
from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference


def window_stats(image: np.ndarray, th: int, tw: int, *,
                 engine=None,
                 workers: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-anchor window sums and sums of squares via two SATs.

    Returns arrays of shape ``(rows-th+1, cols-tw+1)`` where entry ``(i, j)``
    covers ``image[i:i+th, j:j+tw]``.  ``engine`` routes the two SAT builds
    through a host executor (:func:`~repro.sat.registry.host_sat`);
    any rectangular image works with either engine.  Integer images stay
    exact: ``x²`` is widened before summing and the returned statistics are
    integer-valued.
    """
    image = np.asarray(image)
    rows, cols = image.shape
    if th > rows or tw > cols or th <= 0 or tw <= 0:
        raise ConfigurationError("template larger than image (or empty)")
    squared = squared_image(image)
    if engine is not None:
        from repro.sat.registry import host_sat
        sat1 = host_sat(image, engine=engine, workers=workers)
        sat2 = host_sat(squared, engine=engine, workers=workers)
    else:
        sat1 = sat_reference(image)
        sat2 = sat_reference(squared)

    def sums(sat):
        padded = np.zeros((rows + 1, cols + 1), dtype=sat.dtype)
        padded[1:, 1:] = sat
        return (padded[th:, tw:] - padded[:-th or None, tw:][:rows - th + 1]
                - padded[th:, :-tw or None][:, :cols - tw + 1]
                + padded[:rows - th + 1, :cols - tw + 1])

    return sums(sat1), sums(sat2)


def ncc_match(image: np.ndarray, template: np.ndarray,
              eps: float = 1e-12, *, engine=None,
              workers: int | None = None) -> np.ndarray:
    """Normalized cross-correlation map over all template placements.

    Output in ``[-1, 1]`` (0 where the window is constant).  ``engine``
    selects the host executor for the two window-statistics SATs.
    """
    image = np.asarray(image)
    template = np.asarray(template, dtype=np.float64)
    if image.ndim != 2 or template.ndim != 2:
        raise ConfigurationError("image and template must be 2-D")
    th, tw = template.shape
    area = th * tw
    t_centered = template - template.mean()
    t_norm = np.sqrt((t_centered ** 2).sum())
    win_sum, win_sq = window_stats(image, th, tw, engine=engine,
                                   workers=workers)
    win_var = np.maximum(win_sq - win_sum**2 / area, 0.0)

    # Raw correlation with the zero-mean template (direct evaluation).
    out_r, out_c = win_sum.shape
    raw = np.empty((out_r, out_c))
    for i in range(out_r):
        for j in range(out_c):
            raw[i, j] = (image[i:i + th, j:j + tw] * t_centered).sum()

    denom = np.sqrt(win_var) * t_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        ncc = raw / np.where(denom > eps, denom, np.inf)
    return np.clip(ncc, -1.0, 1.0)


def best_match(image: np.ndarray, template: np.ndarray) -> tuple[int, int, float]:
    """Location (top, left) and score of the best NCC placement."""
    ncc = ncc_match(image, template)
    flat = int(np.argmax(ncc))
    i, j = np.unravel_index(flat, ncc.shape)
    return int(i), int(j), float(ncc[i, j])
