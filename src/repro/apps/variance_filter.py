"""Local mean/variance filtering via two SATs (variance shadow maps).

Lauritzen's summed-area variance shadow maps [8] store the SATs of ``x`` and
``x²`` so that the mean and variance of any filter rectangle are O(1); the
same trick powers local-contrast normalization and texture analysis.  This
module computes both moments for clamped square windows.
"""

from __future__ import annotations

import numpy as np

from repro.apps.box_filter import window_areas, window_sums_from_sat
from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference
from repro.sat.registry import compute_sat, host_sat


def squared_image(image: np.ndarray) -> np.ndarray:
    """``image * image`` with integer inputs widened first.

    8/16/32-bit pixels overflow when squared in their own dtype (255² alone
    exceeds uint8); widening to ``int64`` keeps the ``x²`` SAT exact.  Floats
    square in place in their own dtype.
    """
    image = np.asarray(image)
    if image.dtype == np.bool_ or np.issubdtype(image.dtype, np.integer):
        wide = image.astype(np.result_type(image.dtype, np.int64))
        return wide * wide
    return image * image


def local_moments(image: np.ndarray, radius: int, *,
                  algorithm: str | None = None, tile_width: int = 32,
                  gpu=None, engine=None,
                  workers: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Per-pixel clamped-window mean and variance via the two-SAT trick.

    Variance is computed as ``E[x²] - E[x]²`` and clipped at zero (the clip
    absorbs the float round-off that can push tiny variances negative —
    the standard caveat of the VSM formulation).

    ``engine`` routes both SAT builds through a host executor
    (:func:`~repro.sat.registry.host_sat`); with ``engine="wavefront"`` the
    two builds share one pooled engine, so the second SAT reuses the tile
    plan of the first.  Mutually exclusive with ``gpu``.

    Integer images are supported directly: both SATs accumulate exactly
    (``x²`` is widened via :func:`squared_image` before summing) and only the
    final divisions by window area produce floats.
    """
    image = np.asarray(image)
    if image.ndim != 2:
        raise ConfigurationError("local_moments expects a 2-D image")
    if radius < 0:
        raise ConfigurationError("radius must be non-negative")
    squared = squared_image(image)
    if engine is not None:
        if gpu is not None:
            raise ConfigurationError(
                "a host engine and a simulator GPU are mutually exclusive")
        sat1 = host_sat(image, algorithm=algorithm, tile_width=tile_width,
                        engine=engine, workers=workers)
        sat2 = host_sat(squared, algorithm=algorithm,
                        tile_width=tile_width, engine=engine, workers=workers)
    elif algorithm is None:
        sat1 = sat_reference(image)
        sat2 = sat_reference(squared)
    else:
        simulate = gpu is not None
        sat1 = compute_sat(image, algorithm=algorithm, tile_width=tile_width,
                           gpu=gpu, simulate=simulate).sat
        sat2 = compute_sat(squared, algorithm=algorithm,
                           tile_width=tile_width, gpu=gpu,
                           simulate=simulate).sat
    area = window_areas(*image.shape, radius)
    mean = window_sums_from_sat(sat1, radius) / area
    mean_sq = window_sums_from_sat(sat2, radius) / area
    return mean, np.clip(mean_sq - mean * mean, 0.0, None)


def chebyshev_upper_bound(mean: np.ndarray, variance: np.ndarray,
                          threshold: float) -> np.ndarray:
    """The VSM visibility estimate: ``P(x >= threshold)`` upper bound.

    One-sided Chebyshev: ``σ² / (σ² + (threshold - μ)²)`` where ``threshold >
    μ``, else 1 — exactly the shading formula of GPU Gems 3 chapter 8.
    """
    mean = np.asarray(mean, dtype=np.float64)
    variance = np.asarray(variance, dtype=np.float64)
    diff = threshold - mean  # moments are float already; cast is a no-op there
    with np.errstate(divide="ignore", invalid="ignore"):
        p = variance / (variance + diff * diff)
    return np.where(diff > 0, np.nan_to_num(p), 1.0)


def local_contrast_normalize(image: np.ndarray, radius: int,
                             eps: float = 1e-3) -> np.ndarray:
    """Normalize each pixel by its local mean and standard deviation."""
    mean, var = local_moments(image, radius)
    return (np.asarray(image) - mean) / np.sqrt(var + eps)
