"""Streaming video analytics on an incrementally-maintained SAT.

The motivating production workload for :mod:`repro.hostexec.incremental`:
video frames arrive as a stream, successive frames differ only where
something moved, and every frame needs SAT-backed statistics (box-filter
means, rectangle ROI sums).  Rebuilding the table per frame pays the full
``O((n/W)²)`` tile algebra even when one small region changed;
:class:`VideoSAT` instead feeds each frame through
:meth:`IncrementalSAT.advance <repro.hostexec.incremental.IncrementalSAT.advance>`
so a frame costs only its changed tiles' right/down repair frontier — while
staying bit-identical to a from-scratch SAT of that frame.

:func:`synthetic_stream` generates a deterministic "surveillance" sequence
(static background, a small moving block) for demos, benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.apps.box_filter import window_areas, window_sums_from_sat
from repro.errors import ConfigurationError
from repro.hostexec.incremental import IncrementalSAT
from repro.sat.reference import rect_sum


def synthetic_stream(shape: int | tuple[int, int] = 256, *, frames: int = 16,
                     block: int = 24, step: int = 8, seed: int = 0,
                     dtype=np.int32) -> Iterator[np.ndarray]:
    """Yield ``frames`` frames of a static scene with one moving block.

    The background is fixed random "texture"; a bright ``block x block``
    square walks diagonally ``step`` pixels per frame (wrapping around), so
    consecutive frames differ on at most two block-sized patches — the sparse
    inter-frame support incremental repair exploits.
    """
    rows, cols = (shape, shape) if isinstance(shape, int) else shape
    if block > min(rows, cols):
        raise ConfigurationError("moving block must fit inside the frame")
    rng = np.random.default_rng(seed)
    background = rng.integers(0, 128, size=(rows, cols)).astype(dtype)
    for t in range(frames):
        frame = background.copy()
        top = (t * step) % (rows - block + 1)
        left = (t * step) % (cols - block + 1)
        frame[top:top + block, left:left + block] = 255
        yield frame


@dataclass
class FrameStats:
    """Per-frame summary returned by :meth:`VideoSAT.process`."""

    index: int
    mean: float                 #: global frame mean (one SAT corner lookup)
    roi_sums: tuple[float, ...]  #: sum over each tracked ROI rectangle
    dirty_tiles: int            #: tiles whose input changed vs previous frame
    repaired_tiles: int         #: tiles the repair actually touched
    total_tiles: int

    @property
    def repaired_fraction(self) -> float:
        return self.repaired_tiles / self.total_tiles if self.total_tiles \
            else 0.0


class VideoSAT:
    """SAT-backed per-frame analytics over a frame stream.

    Parameters mirror :class:`~repro.hostexec.incremental.IncrementalSAT`;
    ``rois`` is an optional sequence of ``(top, left, bottom, right)``
    inclusive rectangles whose sums are reported for every frame (each is
    four SAT lookups regardless of size).
    """

    def __init__(self, first_frame: np.ndarray, *,
                 rois: Sequence[tuple[int, int, int, int]] = (),
                 algorithm: str = "1R1W-SKSS-LB", tile_width: int = 32,
                 dtype_policy=None, workers: int | None = None,
                 strategy: str = "auto") -> None:
        self._inc = IncrementalSAT(first_frame, algorithm=algorithm,
                                   tile_width=tile_width,
                                   dtype_policy=dtype_policy, workers=workers,
                                   strategy=strategy)
        for r0, c0, r1, c1 in rois:
            if not (0 <= r0 <= r1 < self._inc.rows
                    and 0 <= c0 <= c1 < self._inc.cols):
                raise ConfigurationError(
                    f"ROI ({r0}, {c0}, {r1}, {c1}) exceeds the "
                    f"{self._inc.rows}x{self._inc.cols} frame")
        self.rois = tuple(rois)
        self._index = 0

    @property
    def engine(self) -> IncrementalSAT:
        return self._inc

    @property
    def sat(self) -> np.ndarray:
        return self._inc.sat

    def close(self) -> None:
        self._inc.close()

    def __enter__(self) -> "VideoSAT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def process(self, frame: np.ndarray) -> FrameStats:
        """Absorb the next frame and return its SAT-derived statistics."""
        if self._index == 0:
            sat = self._inc.sat  # the constructor already built frame 0
            if not np.array_equal(
                    np.asarray(frame).astype(self._inc.dtype, copy=False),
                    self._inc.input):
                sat = self._inc.advance(frame)
        else:
            sat = self._inc.advance(frame)
        stats = self._inc.stats
        rows, cols = self._inc.shape
        result = FrameStats(
            index=self._index,
            mean=float(sat[-1, -1]) / (rows * cols),
            roi_sums=tuple(float(rect_sum(sat, r0, c0, r1, c1))
                           for r0, c0, r1, c1 in self.rois),
            dirty_tiles=stats.dirty_tiles,
            repaired_tiles=stats.repaired_tiles,
            total_tiles=stats.total_tiles,
        )
        self._index += 1
        return result

    def box_filter(self, radius: int) -> np.ndarray:
        """Mean-filter the *current* frame from the resident SAT — no
        rebuild; the table is already up to date."""
        sums = window_sums_from_sat(self.sat, radius)
        return sums / window_areas(self._inc.rows, self._inc.cols, radius)


def process_stream(frames: Iterable[np.ndarray], *,
                   rois: Sequence[tuple[int, int, int, int]] = (),
                   algorithm: str = "1R1W-SKSS-LB", tile_width: int = 32,
                   workers: int | None = None,
                   strategy: str = "auto") -> list[FrameStats]:
    """Run a whole frame stream through :class:`VideoSAT`; returns the
    per-frame statistics (first frame reports a full build)."""
    it = iter(frames)
    try:
        first = next(it)
    except StopIteration:
        return []
    with VideoSAT(first, rois=rois, algorithm=algorithm,
                  tile_width=tile_width, workers=workers,
                  strategy=strategy) as video:
        out = [video.process(first)]
        for frame in it:
            out.append(video.process(frame))
    return out
