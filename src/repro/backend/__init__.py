"""``repro.backend`` — one protocol over every SAT executor.

The paper's contribution is one algebra: per-tile local scans plus
LRS/LCS/GLS carry propagation.  This package gives the repo one execution
contract for it, with three explicit stages:

* ``plan(shape, dtype, algorithm=...) -> ExecutionPlan`` — all configuration
  validated up front, before any data is touched;
* ``execute(plan, image, out=...) -> sat`` — data/plan agreement checked,
  uniform ``out=`` semantics;
* ``execute_with_carries(plan, image) -> (sat, CarrySet)`` — the inter-unit
  carry state, typed by its Table II role.

All six executors (serial, wavefront, parallel, compiled, gpusim,
outofcore) register through :mod:`repro.backend.registry`, and the
conformance suite (``tests/backend/``) holds every registered backend to the
same contract.  See docs/ARCHITECTURE.md, "The backend protocol".

This package imports neither :mod:`repro.sat` nor :mod:`repro.hostexec` at
module level; executor modules load lazily on first :func:`get_backend`.
"""

from repro.backend.carries import BandCarrySet, CarrySet, TileCarrySet
from repro.backend.core import Backend, BackendSpec
from repro.backend.plan import (ExecutionPlan, check_out, finalize_output,
                                prepare_input)
from repro.backend.registry import (backend_specs, backend_table,
                                    engine_backends, get_backend, get_spec,
                                    known_backends, resolve_backend,
                                    unknown_backend_error,
                                    unknown_engine_error)

__all__ = [
    "Backend",
    "BackendSpec",
    "BandCarrySet",
    "CarrySet",
    "ExecutionPlan",
    "TileCarrySet",
    "backend_specs",
    "backend_table",
    "check_out",
    "engine_backends",
    "finalize_output",
    "get_backend",
    "get_spec",
    "known_backends",
    "prepare_input",
    "resolve_backend",
    "unknown_backend_error",
    "unknown_engine_error",
]
