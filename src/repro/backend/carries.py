"""Typed carry-state interface: the LRS/LCS/GLS algebra as data.

Every parallel decomposition in the paper communicates through the same kind
of state: aggregated sums flowing right/down between execution units.  At
tile granularity these are the Table II quantities (GRS row sums, GCS column
sums, GS corner scalars, or the GCP bottom row for the SKSS dataflow); at
band granularity (out-of-core) it is one vector of accumulated column sums —
the identical algebra one level up.

:class:`CarrySet` gives that state one typed surface: a mapping from *role*
(the Table II name) to the plane holding it, plus the dtype the carries
accumulate in.  Backends that retain state
(``BackendSpec.retains_state=True``) return one from
``execute_with_carries``; the conformance suite checks every exposed plane
against the oracle definitions in :mod:`repro.primitives.tile`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


class CarrySet(ABC):
    """Inter-unit carry state exposed by a backend after execution."""

    @property
    @abstractmethod
    def dtype(self) -> np.dtype:
        """The accumulator dtype the carries are held in."""

    @abstractmethod
    def planes(self) -> dict[str, np.ndarray]:
        """The carry planes keyed by their algebraic role (Table II names)."""

    def roles(self) -> tuple[str, ...]:
        """The role names this carry set publishes, in a stable order."""
        return tuple(self.planes())


@dataclass
class TileCarrySet(CarrySet):
    """Tile-grid carries: the Table II planes of one retained computation.

    ``_planes`` maps role names (``GRS``/``GCS``/``GS`` for the look-back
    family, ``GRS``/``GCP`` for SKSS, plus ``GS-col`` for 2R1W) to arrays of
    shape ``(tile_rows, tile_cols, W)`` for vector roles and
    ``(tile_rows, tile_cols)`` for scalar roles.
    """

    tile_rows: int
    tile_cols: int
    tile_width: int
    _planes: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def dtype(self) -> np.dtype:
        plane = next(iter(self._planes.values()))
        return plane.dtype

    def planes(self) -> dict[str, np.ndarray]:
        return dict(self._planes)


@dataclass
class BandCarrySet(CarrySet):
    """Band-streaming carries: accumulated column sums above the read frontier.

    After a full out-of-core pass, ``BCS`` (band column sums) equals the
    total per-column sum of the matrix — the quantity whose prefix scan
    stitches each band's local SAT into the global one (the GCP identity at
    band granularity).
    """

    column_sums: np.ndarray

    @property
    def dtype(self) -> np.dtype:
        return self.column_sums.dtype

    def planes(self) -> dict[str, np.ndarray]:
        return {"BCS": self.column_sums}
