"""The :class:`Backend` protocol: plan → execute → carries.

One algebra, many executors.  A backend is anything that can compute the
paper's summed area table; this module fixes the contract every one of them
satisfies:

* :meth:`Backend.plan` — validate *all* configuration (shape, dtype,
  algorithm, tile width, workers) up front and return a frozen, inspectable
  :class:`~repro.backend.plan.ExecutionPlan`.  Planning never touches input
  data; every configuration error raises
  :class:`~repro.errors.ConfigurationError` here, before any compute.
* :meth:`Backend.execute` — run a plan over a matrix that matches it,
  honoring ``out=`` uniformly.  Execution only checks that the data matches
  the plan; configuration was settled at planning time.
* :meth:`Backend.execute_with_carries` — for backends that retain state,
  additionally return the typed :class:`~repro.backend.carries.CarrySet`
  (the LRS/LCS/GLS algebra made inspectable).

:class:`BackendSpec` is the capability declaration each backend registers:
which algorithms and dtypes it supports, whether results are bit-identical
to the serial oracle, which optional dependency it needs and what it
degrades to without it.  It absorbs and replaces the ad-hoc
``hostexec.registry.EngineSpec`` (which is now an alias of this class).

This module imports nothing from :mod:`repro.sat` or :mod:`repro.hostexec`
at module level — executor modules are reached lazily, so the registry stays
cheap to import (argparse construction must not pay for Numba probing).
"""

from __future__ import annotations

import importlib.util
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.backend.carries import CarrySet
from repro.backend.plan import ExecutionPlan, check_out
from repro.errors import ConfigurationError
from repro.primitives.tile import TileGrid


def _module_available(name: str) -> bool:
    """Whether optional dependency ``name`` is importable (without importing
    it — ``find_spec`` is enough and keeps registry queries cheap)."""
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


@dataclass(frozen=True)
class BackendSpec:
    """Capability flags of one registered SAT backend.

    ``algorithms`` is ``None`` when the backend runs every registered
    algorithm, else the tuple of canonical names it supports.  ``dtypes`` is
    ``None`` when any accumulator dtype works.  ``requires`` names the
    optional import the backend needs; ``fallback`` names the backend it
    degrades to (with a warning) when that import is missing — ``None``
    means the backend is always available.

    ``engine`` marks the backends selectable through the classic
    ``engine=`` / ``--engine`` routing (the host executors); the others
    (gpusim, outofcore) are reached through their own entry points or
    :func:`repro.backend.get_backend`.  ``retains_state`` marks backends
    whose ``execute_with_carries`` returns a typed
    :class:`~repro.backend.carries.CarrySet`.  ``algorithm_agnostic`` marks
    backends that compute the same SAT regardless of ``algorithm=`` (the
    banded parallel scan) — the differential layer compares them against the
    plain reference instead of a per-algorithm oracle.
    """

    name: str
    summary: str
    #: Canonical algorithm names supported (``None`` = all algorithms).
    algorithms: tuple[str, ...] | None
    #: Accumulator dtype names supported (``None`` = any numeric dtype).
    dtypes: tuple[str, ...] | None
    #: Results are ``np.array_equal``-identical to the serial host loops.
    #: (Every registered backend is exact on integer accumulators; this flag
    #: additionally promises exactness for floats.)
    bit_identical: bool
    #: Optional dependency (import name) the backend needs, if any.
    requires: str | None = None
    #: Backend to degrade to when ``requires`` is missing (tile-based
    #: algorithms; non-tile algorithms always degrade to ``serial``).
    fallback: str | None = None
    #: Execution substrate: ``host``, ``device`` (simulator) or ``streaming``.
    kind: str = "host"
    #: Selectable via the classic ``engine=`` / ``--engine`` routing.
    engine: bool = False
    #: ``execute_with_carries`` returns a typed CarrySet.
    retains_state: bool = False
    #: Computes the same SAT whatever ``algorithm=`` says (plain scans).
    algorithm_agnostic: bool = False
    #: Canonical algorithm substituted when the caller passes ``None``
    #: (``None`` here means: run the plain reference double scan).
    default_algorithm: str | None = None

    def available(self) -> bool:
        """Whether the backend can run natively (its dependency importable)."""
        return self.requires is None or _module_available(self.requires)

    def supports_algorithm(self, name: str) -> bool:
        return self.algorithms is None or name in self.algorithms

    def supports_dtype(self, dtype) -> bool:
        return self.dtypes is None or np.dtype(dtype).name in self.dtypes

    def to_dict(self) -> dict[str, Any]:
        """JSON-able capability row (stable keys; ``repro list --json``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "summary": self.summary,
            "algorithms": list(self.algorithms)
            if self.algorithms is not None else None,
            "dtypes": list(self.dtypes) if self.dtypes is not None else None,
            "bit_identical": self.bit_identical,
            "requires": self.requires,
            "fallback": self.fallback,
            "available": self.available(),
            "engine": self.engine,
            "retains_state": self.retains_state,
            "algorithm_agnostic": self.algorithm_agnostic,
            "default_algorithm": self.default_algorithm,
        }


def _canonical_algorithm(name: str) -> tuple[str, bool]:
    """Resolve an algorithm name/alias to ``(canonical, tile_based)``."""
    # Late import: the algorithm registry pulls in every algorithm module.
    from repro.sat.registry import get_algorithm
    alg = get_algorithm(name)
    return alg.name, alg.tile_based


class Backend(ABC):
    """One executor of the SAT algebra, behind the plan/execute/carry stages.

    Subclasses set :attr:`spec` and implement :meth:`_execute` (and
    :meth:`_execute_with_carries` when ``spec.retains_state``); everything
    else — upfront validation, data/plan matching, uniform ``out=``
    fulfilment — is shared here.
    """

    spec: BackendSpec

    # -- stage 1: plan ---------------------------------------------------------

    def plan(self, shape, dtype, *, algorithm: str | None = None,
             tile_width: int = 32, dtype_policy=None,
             workers: int | None = None,
             band_rows: int | None = None,
             shards: int | None = None) -> ExecutionPlan:
        """Validate a configuration and freeze it into an ExecutionPlan.

        Raises :class:`~repro.errors.ConfigurationError` on *any* invalid
        setting — bad shape, non-numeric or unsupported dtype, unknown or
        unsupported algorithm, non-positive tile width / worker count —
        before any input data is touched (SWAMP-style fail-fast).
        """
        spec = self.spec
        if not spec.available() and spec.fallback is None:
            raise ConfigurationError(
                f"backend '{spec.name}' requires {spec.requires}, which is "
                "not installed")
        rows, cols = self._check_shape(shape)
        if not isinstance(tile_width, (int, np.integer)) \
                or isinstance(tile_width, bool) or tile_width <= 0:
            raise ConfigurationError(
                f"tile_width must be a positive integer, got {tile_width!r}")
        tile_width = int(tile_width)
        if workers is not None:
            if not isinstance(workers, (int, np.integer)) \
                    or isinstance(workers, bool) or workers <= 0:
                raise ConfigurationError("workers must be positive")
            workers = int(workers)
        band_rows = self._check_band_rows(band_rows, rows, tile_width)
        shards = self._check_shards(shards, rows)
        try:
            input_dtype = np.dtype(dtype)
        except TypeError as exc:
            raise ConfigurationError(
                f"not a valid dtype: {dtype!r}") from exc
        # Late import: dtype policies live in the sat layer.
        from repro.sat.dtypes import resolve_policy
        acc_dtype = resolve_policy(dtype_policy).accumulator(input_dtype)
        if not spec.supports_dtype(acc_dtype):
            raise ConfigurationError(
                f"the {spec.name} backend does not support accumulator "
                f"dtype {acc_dtype.name}; supported: "
                f"{', '.join(spec.dtypes or ())}")
        name = algorithm if algorithm is not None else spec.default_algorithm
        tile_based = False
        if name is not None:
            name, tile_based = _canonical_algorithm(name)
            if not spec.supports_algorithm(name):
                supported = spec.algorithms or ()
                raise ConfigurationError(
                    f"the {spec.name} backend does not support algorithm "
                    f"'{name}'; supported: {', '.join(supported)}")
        grid = TileGrid(rows=rows, cols=cols, W=tile_width) \
            if tile_based else None
        plan = ExecutionPlan(backend=spec.name, algorithm=name, rows=rows,
                             cols=cols, input_dtype=input_dtype,
                             acc_dtype=acc_dtype, tile_width=tile_width,
                             grid=grid, workers=workers, band_rows=band_rows,
                             shards=shards)
        self._validate_plan(plan)
        return plan

    def _validate_plan(self, plan: ExecutionPlan) -> None:
        """Hook for backend-specific constraints (still planning time)."""

    def _check_shape(self, shape) -> tuple[int, int]:
        try:
            rows, cols = shape
            rows, cols = int(rows), int(cols)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{self.spec.name} backend expects a 2-D shape, "
                f"got {shape!r}") from exc
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got {rows}x{cols}")
        return rows, cols

    def _check_band_rows(self, band_rows: int | None, rows: int,
                         tile_width: int) -> int | None:
        """Hook: only the streaming backend accepts/derives ``band_rows``."""
        if band_rows is not None:
            raise ConfigurationError(
                f"band_rows is not meaningful for the {self.spec.name} "
                "backend (use the outofcore backend)")
        return None

    def _check_shards(self, shards: int | None, rows: int) -> int | None:
        """Hook: only the distributed backend accepts/derives ``shards``."""
        if shards is not None:
            raise ConfigurationError(
                f"shards is not meaningful for the {self.spec.name} "
                "backend (use the distributed backend)")
        return None

    # -- stage 2: execute ------------------------------------------------------

    def execute(self, plan: ExecutionPlan, a: np.ndarray,
                out: np.ndarray | None = None) -> np.ndarray:
        """Run ``plan`` over ``a``; result in ``plan.acc_dtype``.

        Only data/plan agreement is checked here (shape, dtype, ``out=``
        buffer) — all configuration validation already happened in
        :meth:`plan`.  Mismatches raise before any element is read.
        """
        if not isinstance(plan, ExecutionPlan) \
                or plan.backend != self.spec.name:
            got = getattr(plan, "backend", type(plan).__name__)
            raise ConfigurationError(
                f"plan was made for backend {got!r}, not "
                f"'{self.spec.name}'")
        a = np.asarray(a)
        if a.ndim != 2 or a.shape != plan.shape:
            raise ConfigurationError(
                f"input shape {a.shape} does not match the plan's "
                f"{plan.shape}")
        if a.dtype != plan.input_dtype:
            raise ConfigurationError(
                f"input dtype {a.dtype.name} does not match the plan's "
                f"{plan.input_dtype.name}")
        check_out(out, plan.rows, plan.cols, plan.acc_dtype)
        result = self._execute(plan, a, out)
        if out is not None and result is not out:
            out[...] = result
            return out
        return result

    def compute(self, a: np.ndarray, *, out: np.ndarray | None = None,
                **plan_kwargs) -> np.ndarray:
        """Plan-and-execute convenience for one-shot callers."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError(
                f"{self.spec.name} backend expects a 2-D matrix, "
                f"got shape {a.shape}")
        plan = self.plan(a.shape, a.dtype, **plan_kwargs)
        return self.execute(plan, a, out=out)

    # -- stage 3: carries ------------------------------------------------------

    def execute_with_carries(self, plan: ExecutionPlan,
                             a: np.ndarray) -> tuple[np.ndarray, CarrySet]:
        """Run ``plan`` and return ``(sat, carries)``.

        Only backends declaring ``spec.retains_state`` implement this; the
        returned :class:`~repro.backend.carries.CarrySet` exposes the
        inter-unit LRS/LCS/GLS state the run communicated through.
        """
        if not self.spec.retains_state:
            raise ConfigurationError(
                f"the {self.spec.name} backend does not retain carry state")
        if not isinstance(plan, ExecutionPlan) \
                or plan.backend != self.spec.name:
            raise ConfigurationError(
                f"plan was made for backend "
                f"{getattr(plan, 'backend', type(plan).__name__)!r}, not "
                f"'{self.spec.name}'")
        a = np.asarray(a)
        if a.ndim != 2 or a.shape != plan.shape:
            raise ConfigurationError(
                f"input shape {a.shape} does not match the plan's "
                f"{plan.shape}")
        return self._execute_with_carries(plan, a)

    # -- subclass hooks --------------------------------------------------------

    @abstractmethod
    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        """Run the validated plan; may ignore ``out`` (the base class then
        copies into it) or fill it directly and return it."""

    def _execute_with_carries(self, plan: ExecutionPlan,
                              a: np.ndarray) -> tuple[np.ndarray, CarrySet]:
        raise NotImplementedError  # pragma: no cover - guarded by the spec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec.name!r}>"
