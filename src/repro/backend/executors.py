"""The six registered backends: every executor in the repo, one protocol.

Each class here is a thin adapter from the :class:`~repro.backend.Backend`
plan/execute/carry contract onto an existing executor — the algorithms' own
serial host loops, the wavefront engine, the Numba-compiled flat kernels,
the fork/join banded scan, the out-of-core band streamer and the functional
GPU simulator.  The adapters contain *no* tile-layout or dtype glue of their
own: all of that lives in the shared plan layer
(:mod:`repro.backend.plan`) and in the engines themselves.

This module is imported lazily by the registry (``get_backend``), so the
CLI and other registry consumers never pay for engine imports they don't
use.
"""

from __future__ import annotations

import numpy as np

from repro.backend.carries import BandCarrySet, CarrySet, TileCarrySet
from repro.backend.core import Backend
from repro.backend.plan import ExecutionPlan


class SerialBackend(Backend):
    """The oracle: each algorithm's own per-tile serial host loop."""

    def __init__(self) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("serial")

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        if plan.algorithm is None:
            return a.astype(plan.acc_dtype, copy=False) \
                .cumsum(axis=0).cumsum(axis=1)
        from repro.sat.registry import get_algorithm
        alg = get_algorithm(plan.algorithm, tile_width=plan.tile_width)
        return alg.run_host(a, dtype_policy=plan.acc_dtype)


class WavefrontBackend(Backend):
    """Dependency-driven tile chunks on a thread pool (bit-identical)."""

    def __init__(self, engine=None) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("wavefront")
        self._engine = engine

    def _engine_compute(self, eng, plan: ExecutionPlan, a: np.ndarray,
                        out: np.ndarray | None) -> np.ndarray:
        return eng.compute(a, algorithm=plan.algorithm,
                           tile_width=plan.tile_width,
                           dtype_policy=plan.acc_dtype, out=out)

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        from repro.hostexec.engine import WavefrontEngine, shared_engine
        if self._engine is not None:
            return self._engine_compute(self._engine, plan, a, out)
        if plan.workers is not None:
            with WavefrontEngine(workers=plan.workers) as eng:
                return self._engine_compute(eng, plan, a, out)
        return self._engine_compute(shared_engine(), plan, a, out)

    def _execute_with_carries(self, plan: ExecutionPlan,
                              a: np.ndarray) -> tuple[np.ndarray, CarrySet]:
        from repro.hostexec.engine import WavefrontEngine
        eng = self._engine
        owned = eng is None
        if owned:
            eng = WavefrontEngine(workers=plan.workers)
        try:
            sat = eng.compute(a, algorithm=plan.algorithm,
                              tile_width=plan.tile_width,
                              dtype_policy=plan.acc_dtype, retain_state=True)
            state = eng.retained_state()
            carry = TileCarrySet(tile_rows=state.grid.tile_rows,
                                 tile_cols=state.grid.tile_cols,
                                 tile_width=state.grid.W,
                                 _planes=state.planes())
        finally:
            if owned:
                eng.close()
        return sat, carry


class ParallelBackend(Backend):
    """Fork/join banded 2R2W scan — computes the same SAT whatever the
    ``algorithm=`` says (``spec.algorithm_agnostic``)."""

    def __init__(self) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("parallel")

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        from repro.sat.parallel_host import parallel_sat
        return parallel_sat(a, workers=plan.workers,
                            dtype_policy=plan.acc_dtype)


class CompiledBackend(Backend):
    """Numba-jitted flat tile kernels; degrades to wavefront/serial (with a
    single warning) when Numba is missing."""

    def __init__(self, engine=None) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("compiled")
        self._engine = engine

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        from repro.hostexec.compiled import (CompiledEngine, _warn_fallback,
                                             numba_available,
                                             shared_compiled_engine)
        if self._engine is not None:
            return self._engine.compute(a, algorithm=plan.algorithm,
                                        tile_width=plan.tile_width,
                                        dtype_policy=plan.acc_dtype, out=out)
        if numba_available():
            if plan.workers is not None and plan.workers > 1:
                with CompiledEngine(workers=plan.workers) as eng:
                    return eng.compute(a, algorithm=plan.algorithm,
                                       tile_width=plan.tile_width,
                                       dtype_policy=plan.acc_dtype, out=out)
            return shared_compiled_engine().compute(
                a, algorithm=plan.algorithm, tile_width=plan.tile_width,
                dtype_policy=plan.acc_dtype, out=out)
        _warn_fallback()
        if plan.algorithm is None:
            return a.astype(plan.acc_dtype, copy=False) \
                .cumsum(axis=0).cumsum(axis=1)
        if plan.grid is not None:   # tile dataflow: degrade to wavefront
            from repro.hostexec.engine import shared_engine
            return shared_engine().compute(a, algorithm=plan.algorithm,
                                           tile_width=plan.tile_width,
                                           dtype_policy=plan.acc_dtype,
                                           out=out)
        from repro.sat.registry import get_algorithm
        alg = get_algorithm(plan.algorithm, tile_width=plan.tile_width)
        return alg.run_host(a, dtype_policy=plan.acc_dtype)


class GpusimBackend(Backend):
    """The functional GPU simulator: device kernels behind the same seams.

    The simulator accumulates in float64 internally and casts to the plan's
    accumulator dtype on read-back — exact for integer inputs below 2**53,
    within the proven rounding budget for floats (``bit_identical=False``).
    """

    def __init__(self) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("gpusim")

    def _validate_plan(self, plan: ExecutionPlan) -> None:
        # The simulator's warp collectives reduce over W lanes, so tile-based
        # dataflows need whole 32-lane warps per tile row (the default
        # DeviceSpec's warp size).
        from repro.errors import ConfigurationError
        from repro.gpusim.device import WARP_SIZE
        if plan.tile_based and plan.tile_width % WARP_SIZE:
            raise ConfigurationError(
                f"the gpusim backend needs tile_width to be a multiple of "
                f"the {WARP_SIZE}-lane warp size, got {plan.tile_width}")

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        from repro.gpusim.kernel import GPU
        from repro.sat.registry import get_algorithm
        alg = get_algorithm(plan.algorithm, tile_width=plan.tile_width)
        return alg.run(a, GPU(), dtype_policy=plan.acc_dtype).sat


class OutOfCoreBackend(Backend):
    """Banded streaming SAT: the tile carry algebra one level up.

    Each band's SAT is stitched to the global one through a vector of
    accumulated column sums (the GCP identity at band granularity) —
    exposed as the :class:`~repro.backend.carries.BandCarrySet`.
    """

    def __init__(self) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("outofcore")

    def _check_band_rows(self, band_rows: int | None, rows: int,
                         tile_width: int) -> int | None:
        if band_rows is None:
            return min(rows, tile_width)
        if not isinstance(band_rows, (int, np.integer)) \
                or isinstance(band_rows, bool) or band_rows <= 0:
            from repro.errors import ConfigurationError
            raise ConfigurationError("band_rows must be positive")
        return int(band_rows)

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        from repro.sat.outofcore import out_of_core_sat
        return out_of_core_sat(a, band_rows=plan.band_rows,
                               algorithm=plan.algorithm,
                               tile_width=plan.tile_width,
                               dtype_policy=plan.acc_dtype)

    def _execute_with_carries(self, plan: ExecutionPlan,
                              a: np.ndarray) -> tuple[np.ndarray, CarrySet]:
        from repro.sat.outofcore import _band_engine, band_bounds
        acc = plan.acc_dtype
        sat = np.empty((plan.rows, plan.cols), dtype=acc)
        carry_cols = np.zeros(plan.cols, dtype=acc)
        for lo, hi in band_bounds(plan.rows, plan.band_rows):
            band = a[lo:hi]
            band_sat = _band_engine(band, plan.algorithm, plan.tile_width,
                                    None, None, acc)
            sat[lo:hi] = band_sat + np.cumsum(carry_cols)[None, :]
            carry_cols = carry_cols + band.sum(axis=0, dtype=acc)
        return sat, BandCarrySet(column_sums=carry_cols)


class DistributedBackend(Backend):
    """Sharded band workers behind the work-queue protocol.

    The image is split into ``shards`` contiguous band shards, fanned out
    to a pool (in-process by default; real worker processes when the plan
    asks for ``workers > 1``) and stitched with persisted
    :class:`~repro.backend.carries.BandCarrySet` column sums — see
    :mod:`repro.distsat`.  ``band_rows`` bounds each worker's chunk size
    within its shard.
    """

    def __init__(self) -> None:
        from repro.backend.registry import get_spec
        self.spec = get_spec("distributed")

    def _check_band_rows(self, band_rows: int | None, rows: int,
                         tile_width: int) -> int | None:
        if band_rows is None:
            return min(rows, tile_width)
        if not isinstance(band_rows, (int, np.integer)) \
                or isinstance(band_rows, bool) or band_rows <= 0:
            from repro.errors import ConfigurationError
            raise ConfigurationError("band_rows must be positive")
        return int(band_rows)

    def _check_shards(self, shards: int | None, rows: int) -> int | None:
        if shards is None:
            return min(rows, 2)
        if not isinstance(shards, (int, np.integer)) \
                or isinstance(shards, bool) or shards <= 0:
            from repro.errors import ConfigurationError
            raise ConfigurationError(
                f"shards must be a positive integer, got {shards!r}")
        return int(shards)

    def _run(self, plan: ExecutionPlan, a: np.ndarray):
        from repro.distsat import distributed_sat
        transport = "process" if plan.workers is not None \
            and plan.workers > 1 else "inline"
        return distributed_sat(a, shards=plan.shards or 2,
                               algorithm=plan.algorithm,
                               tile_width=plan.tile_width,
                               dtype_policy=plan.acc_dtype,
                               chunk_rows=plan.band_rows,
                               transport=transport, workers=plan.workers)

    def _execute(self, plan: ExecutionPlan, a: np.ndarray,
                 out: np.ndarray | None) -> np.ndarray:
        return self._run(plan, a).sat

    def _execute_with_carries(self, plan: ExecutionPlan,
                              a: np.ndarray) -> tuple[np.ndarray, CarrySet]:
        result = self._run(plan, a)
        return result.sat, result.carries


#: Concrete class behind each registered backend name.
BACKEND_CLASSES: dict[str, type[Backend]] = {
    "serial": SerialBackend,
    "wavefront": WavefrontBackend,
    "parallel": ParallelBackend,
    "compiled": CompiledBackend,
    "gpusim": GpusimBackend,
    "outofcore": OutOfCoreBackend,
    "distributed": DistributedBackend,
}


def backend_for_instance(engine) -> Backend:
    """Wrap a caller-managed engine instance in its backend adapter.

    The classic ``engine=`` routing accepts :class:`WavefrontEngine` /
    :class:`CompiledEngine` instances; anything else raises the canonical
    unknown-engine error.
    """
    from repro.backend.registry import unknown_engine_error
    from repro.hostexec.compiled import CompiledEngine
    from repro.hostexec.engine import WavefrontEngine
    if isinstance(engine, WavefrontEngine):
        return WavefrontBackend(engine=engine)
    if isinstance(engine, CompiledEngine):
        return CompiledBackend(engine=engine)
    raise unknown_engine_error(engine)
