"""The shared plan layer: one validated, inspectable description of a run.

Every executor in this repo ultimately does the same three things before any
arithmetic happens: resolve the accumulator dtype, lay the matrix out on a
``W x W`` tile grid (zero-padding ragged edges), and check/fulfil an optional
``out=`` buffer.  Before this module those steps were re-implemented — with
slight drift — in ``sat/base.py``, ``hostexec/engine.py`` and
``hostexec/compiled.py``.  They now live here once, as plain functions over
an :class:`ExecutionPlan`.

An :class:`ExecutionPlan` is a frozen value object produced by
:meth:`repro.backend.Backend.plan` *before* the input data is ever touched:
it captures everything a backend needs to execute (shape, dtypes, tile
geometry, worker/band parameters) and everything a caller may want to
inspect (padding, tile counts).  Planning is where all configuration errors
surface — execution never validates configuration, only that the data
matches the plan.

This module deliberately imports nothing from :mod:`repro.sat` or
:mod:`repro.hostexec`, so both of those layers can build on it without
import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.primitives.tile import TileGrid


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully validated description of one SAT computation.

    ``algorithm`` is the canonical paper name, or ``None`` for the plain
    reference double scan (the ``host_sat(algorithm=None)`` contract).
    ``grid`` is the tile geometry for tile-based execution, ``None`` when the
    backend runs the matrix flat.  ``acc_dtype`` is the accumulator dtype the
    configured policy resolved for ``input_dtype`` — results are always
    returned in it.
    """

    backend: str
    algorithm: str | None
    rows: int
    cols: int
    input_dtype: np.dtype
    acc_dtype: np.dtype
    tile_width: int
    grid: TileGrid | None = None
    workers: int | None = None
    band_rows: int | None = None
    shards: int | None = None

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def tile_based(self) -> bool:
        return self.grid is not None

    @property
    def padded(self) -> bool:
        """Whether execution pads the matrix to whole tiles internally."""
        return self.grid is not None and not self.grid.aligned

    @property
    def padded_shape(self) -> tuple[int, int]:
        """The working-buffer shape (equals ``shape`` when not padded)."""
        if self.grid is None:
            return self.shape
        return (self.grid.padded_rows, self.grid.padded_cols)

    @property
    def num_tiles(self) -> int:
        if self.grid is None:
            return 0
        return self.grid.tile_rows * self.grid.tile_cols

    def describe(self) -> dict[str, Any]:
        """A JSON-able summary (stable keys; used by tooling and tests)."""
        return {
            "backend": self.backend,
            "algorithm": self.algorithm,
            "rows": self.rows,
            "cols": self.cols,
            "input_dtype": self.input_dtype.name,
            "acc_dtype": self.acc_dtype.name,
            "tile_width": self.tile_width,
            "tile_based": self.tile_based,
            "padded": self.padded,
            "padded_shape": list(self.padded_shape),
            "num_tiles": self.num_tiles,
            "workers": self.workers,
            "band_rows": self.band_rows,
            "shards": self.shards,
        }


# -- the collapsed layout glue -------------------------------------------------
#
# These three functions are the single implementation of the cast/pad,
# out=-check and crop/fulfil steps that used to be duplicated per executor.


def prepare_input(a: np.ndarray, *, acc_dtype: np.dtype,
                  grid: TileGrid | None = None,
                  force_copy: bool = False) -> tuple[np.ndarray, bool]:
    """Cast/pad ``a`` into a working buffer; returns ``(work, copied)``.

    With a non-aligned ``grid`` the buffer is zero-padded to whole tiles
    (``(padded_rows, padded_cols)``) — zero padding provably leaves every SAT
    value in the valid region unchanged.  When ``a`` already matches the
    accumulator dtype, is C-contiguous and needs no padding, it is returned
    aliased (``copied=False``) unless ``force_copy`` demands a private buffer
    (retained-state executions edit the working matrix in place).
    """
    rows, cols = a.shape
    pad = grid is not None and not grid.aligned
    if not pad and not force_copy and a.dtype == acc_dtype \
            and a.flags.c_contiguous:
        return a, False
    if pad:
        assert grid is not None
        work = np.zeros((grid.padded_rows, grid.padded_cols), dtype=acc_dtype)
        work[:rows, :cols] = a
        return work, True
    if force_copy:
        return np.array(a, dtype=acc_dtype, order="C", copy=True), True
    return np.ascontiguousarray(a, dtype=acc_dtype), True


def check_out(out: np.ndarray | None, rows: int, cols: int,
              acc_dtype: np.dtype) -> None:
    """Validate an ``out=`` buffer (shape, dtype, contiguity) or raise."""
    if out is None:
        return
    if not isinstance(out, np.ndarray) or out.shape != (rows, cols) \
            or out.dtype != acc_dtype or not out.flags.c_contiguous:
        raise ConfigurationError(
            "out must be a C-contiguous array of the input shape in the "
            f"accumulator dtype {np.dtype(acc_dtype).name}")


def finalize_output(res: np.ndarray, rows: int, cols: int,
                    out: np.ndarray | None = None) -> np.ndarray:
    """Crop a (possibly padded) result to the valid region, honoring ``out``."""
    if res.shape != (rows, cols):
        if out is not None:
            out[...] = res[:rows, :cols]
            return out
        return np.ascontiguousarray(res[:rows, :cols])
    if out is not None and res is not out:
        out[...] = res
        return out
    return res
