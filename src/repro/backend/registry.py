"""The unified backend registry: one table every consumer derives from.

Every executor in the repo registers exactly one :class:`BackendSpec` here —
the host engines (serial / wavefront / parallel / compiled), the functional
GPU simulator and the out-of-core band streamer.  The CLI ``--engine``
choices, ``repro list`` (text and ``--json``), the fuzzer's engine pool, the
routing layers (:func:`repro.sat.registry.host_sat` / ``compute_sat``) and
every "unknown engine" error message all read from this one table, so none
of them can drift from the registered set (the conformance suite pins this).

Specs are built lazily on first access and backend *instances* lazier still
(:func:`get_backend` imports the executor modules on demand), keeping the
registry import-light: building ``--engine`` choices never touches Numba or
the simulator.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.backend.core import Backend, BackendSpec
from repro.errors import ConfigurationError


def _tile_algorithms() -> tuple[str, ...]:
    # Late import: kernels.py pulls in tile machinery the registry's cheap
    # consumers (argparse construction) should not pay for eagerly.
    from repro.hostexec.kernels import KERNELS
    return tuple(KERNELS)


def _make_specs() -> dict[str, BackendSpec]:
    tile = _tile_algorithms()
    return {
        "serial": BackendSpec(
            name="serial",
            summary="each algorithm's own per-tile host loop (the oracle)",
            algorithms=None, dtypes=None, bit_identical=True,
            kind="host", engine=True),
        "wavefront": BackendSpec(
            name="wavefront",
            summary="dependency-driven tile chunks on a thread pool",
            algorithms=tile, dtypes=None, bit_identical=True,
            kind="host", engine=True, retains_state=True,
            default_algorithm="1R1W-SKSS-LB"),
        "parallel": BackendSpec(
            name="parallel",
            summary="fork/join banded 2R2W scan (plain cumsums)",
            algorithms=None, dtypes=None, bit_identical=False,
            kind="host", engine=True, algorithm_agnostic=True),
        "compiled": BackendSpec(
            name="compiled",
            summary="Numba-jitted flat tile kernels (whole diagonals per "
                    "compiled pass)",
            algorithms=None, dtypes=None, bit_identical=True,
            requires="numba", fallback="wavefront",
            kind="host", engine=True),
        "gpusim": BackendSpec(
            name="gpusim",
            summary="functional GPU simulator (device kernels, measured "
                    "traffic)",
            algorithms=None, dtypes=None, bit_identical=False,
            kind="device", default_algorithm="1R1W-SKSS-LB"),
        "outofcore": BackendSpec(
            name="outofcore",
            summary="banded streaming SAT (column-carry stitching; the tile "
                    "algebra one level up)",
            algorithms=None, dtypes=None, bit_identical=False,
            kind="streaming", retains_state=True),
        "distributed": BackendSpec(
            name="distributed",
            summary="sharded out-of-core bands on a worker pool (persisted "
                    "carries, fault-tolerant work-queue protocol)",
            algorithms=None, dtypes=None, bit_identical=False,
            kind="streaming", engine=True, retains_state=True),
    }


_specs: dict[str, BackendSpec] | None = None
_instances: dict[str, Backend] = {}
_lock = threading.Lock()


def backend_specs() -> dict[str, BackendSpec]:
    """All registered backend specs, keyed by name (registration order)."""
    global _specs
    if _specs is None:
        with _lock:
            if _specs is None:
                _specs = _make_specs()
    return _specs


def known_backends() -> tuple[str, ...]:
    """Names of every registered backend."""
    return tuple(backend_specs())


def engine_backends() -> tuple[str, ...]:
    """Names of the backends selectable via classic ``engine=`` routing."""
    return tuple(n for n, s in backend_specs().items() if s.engine)


def get_spec(name: str) -> BackendSpec:
    """The :class:`BackendSpec` for ``name``; raises with the full dynamic
    backend list on an unknown name."""
    spec = backend_specs().get(name)
    if spec is None:
        raise unknown_backend_error(name)
    return spec


def get_backend(name: str) -> Backend:
    """The (process-wide) backend instance registered under ``name``."""
    backend = _instances.get(name)
    if backend is None:
        get_spec(name)   # raise the canonical error on unknown names
        from repro.backend.executors import BACKEND_CLASSES
        with _lock:
            backend = _instances.get(name)
            if backend is None:
                backend = _instances[name] = BACKEND_CLASSES[name]()
    return backend


def backend_table() -> list[dict[str, Any]]:
    """The capability table as stable JSON-able rows (``repro list --json``)."""
    return [spec.to_dict() for spec in backend_specs().values()]


def unknown_backend_error(name) -> ConfigurationError:
    """The canonical "unknown backend" error, listing every registered
    backend (kept in one place so the message can never drift)."""
    return ConfigurationError(
        f"unknown backend {name!r}; known backends: "
        f"{', '.join(known_backends())}")


def unknown_engine_error(engine) -> ConfigurationError:
    """The canonical "unknown engine" error for the classic ``engine=``
    routing surface, listing every backend reachable through it."""
    return ConfigurationError(
        f"unknown host engine {engine!r}; known engines: "
        f"{', '.join(engine_backends())} (or a WavefrontEngine/CompiledEngine "
        "instance)")


def resolve_backend(engine=None) -> Backend:
    """Resolve a classic ``engine=`` argument to a backend instance.

    ``None`` means the serial oracle; a string selects an engine-routable
    backend by name (``spec.engine``; the gpusim/outofcore backends are
    reached via :func:`get_backend` instead); a :class:`WavefrontEngine` /
    :class:`CompiledEngine` instance is wrapped in its adapter (preserving
    caller-managed pools and caches).
    """
    if engine is None:
        return get_backend("serial")
    if isinstance(engine, str):
        spec = backend_specs().get(engine)
        if spec is not None and spec.engine:
            return get_backend(engine)
        raise unknown_engine_error(engine)
    from repro.backend.executors import backend_for_instance
    return backend_for_instance(engine)
