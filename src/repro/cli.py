"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      compute a SAT on the simulator (or host path) and report stats
``table1``   print Table I (symbolic + numeric, optionally measured)
``table3``   print Table III (model vs paper)
``sweep-w``  per-tile-width model times for one algorithm
``sweep-r``  (1+r)R1W model times over the r grid
``trace``    run 1R1W-SKSS-LB with tracing and print the schedule timeline
``export``   write table1/table3 as CSV + JSON
``chart``    ASCII log-log chart of Table III (any device projection)
``devices``  cross-device model projections (extension)
``fuzz``     differential fuzzing of all algorithms (and edit sequences)
``sanitize`` race/protocol sanitizer + static kernel lint
``modelcheck`` exhaustive protocol model checking (deadlock freedom proof)
``costcheck`` static memory-traffic verification (Table I proof + overflow)
``numcheck`` static numerical-accuracy verification (proven error bounds)
``incremental-bench``  time incremental repair vs full recompute
``report``   write the full REPRODUCTION_REPORT.md
``list``     list algorithms and aliases

Every command is a thin veneer over the library; the CLI exists so the
tables and demos are reproducible without writing Python.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__


def _host_engines() -> list[str]:
    """CLI ``--engine`` choices, straight from the host-engine registry so
    they can never drift from what the routing actually accepts."""
    from repro.hostexec.registry import known_engines
    return list(known_engines())


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Summed-area-table reproduction (Emoto et al., 2018)")
    p.add_argument("--version", action="version", version=__version__)
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="compute a SAT and report statistics")
    run.add_argument("-a", "--algorithm", default="1R1W-SKSS-LB",
                     help="algorithm name or alias (default: the paper's)")
    run.add_argument("-n", "--size", type=int, default=128,
                     help="matrix side (default 128)")
    run.add_argument("--shape", type=int, nargs=2, metavar=("H", "W"),
                     default=None,
                     help="explicit rows x cols (overrides -n; any rectangle "
                          "works — ragged tiles are zero-padded internally)")
    run.add_argument("--dtype", default="float64",
                     help="input dtype of the random matrix (e.g. uint8, "
                          "int32, float32; default float64); the accumulator "
                          "dtype follows the exact policy")
    run.add_argument("-W", "--tile-width", type=int, default=32)
    run.add_argument("--host", action="store_true",
                     help="use the pure-NumPy host path (no simulation)")
    run.add_argument("--engine", default="serial",
                     choices=_host_engines(),
                     help="host execution engine (implies --host when not "
                          "'serial'): serial tile loop, multi-core wavefront "
                          "tile engine, fork/join banded 2R2W scan, "
                          "Numba-compiled flat tile kernels (falls back to "
                          "wavefront when numba is not installed), or the "
                          "sharded distributed executor (band shards on a "
                          "worker pool with persisted carries)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker threads for the wavefront/parallel/"
                          "compiled engines (default: REPRO_WORKERS or all "
                          "cores; 1 for compiled); for the distributed "
                          "engine, >1 uses real worker processes")
    run.add_argument("--shards", type=int, default=None,
                     help="band-shard count for --engine distributed "
                          "(default 2; rejected by other engines)")
    run.add_argument("--policy", default="random",
                     choices=["round_robin", "random", "lifo"])
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--consistency", default="relaxed",
                     choices=["relaxed", "strong"])
    run.add_argument("--detect-uninitialized", action="store_true")
    run.add_argument("--check", action="store_true",
                     help="verify against the NumPy reference (default on)")

    t1 = sub.add_parser("table1", help="print Table I")
    t1.add_argument("-n", "--size", type=int, default=1024)
    t1.add_argument("-W", "--tile-width", type=int, default=32)
    t1.add_argument("--measure", action="store_true",
                    help="also measure counts on the simulator (slower)")
    t1.add_argument("--measure-size", type=int, default=128)

    t3 = sub.add_parser("table3", help="print Table III (model vs paper)")
    t3.add_argument("--no-paper", action="store_true",
                    help="omit the paper's measured rows")
    t3.add_argument("-r", "--hybrid-r", type=float, default=0.25)

    sw = sub.add_parser("sweep-w", help="model times per tile width")
    sw.add_argument("-a", "--algorithm", default="1R1W-SKSS-LB")
    sw.add_argument("-n", "--size", type=int, default=4096)

    sr = sub.add_parser("sweep-r", help="(1+r)R1W model times over r")
    sr.add_argument("-n", "--size", type=int, default=4096)
    sr.add_argument("-W", "--tile-width", type=int, default=64)

    tr = sub.add_parser("trace", help="trace a small SKSS-LB run")
    tr.add_argument("-n", "--size", type=int, default=96)
    tr.add_argument("--residency", type=int, default=2)
    tr.add_argument("--policy", default="lifo",
                    choices=["round_robin", "random", "lifo"])
    tr.add_argument("--seed", type=int, default=0)

    ex = sub.add_parser("export", help="write table1/table3 CSV+JSON files")
    ex.add_argument("-o", "--output-dir", default="exports")
    ex.add_argument("-n", "--size", type=int, default=1024)

    ch = sub.add_parser("chart", help="ASCII log-log chart of Table III")
    ch.add_argument("--device", default="titan-v")

    dv = sub.add_parser("devices", help="cross-device model projections")
    dv.add_argument("-n", "--size", type=int, default=8192)

    fz = sub.add_parser("fuzz", help="differential fuzzing of all algorithms")
    fz.add_argument("--runs", type=int, default=50)
    fz.add_argument("--seed", type=int, default=0)
    fz.add_argument("--mode", default="simulate",
                    choices=["simulate", "incremental", "sanitize",
                             "engine", "cost", "distsat", "numeric"],
                    help="simulate: algorithms vs the reference on the "
                         "simulator; incremental: random edit sequences "
                         "through IncrementalSAT vs from-scratch recompute; "
                         "sanitize: sampled configs re-run under the "
                         "concurrency sanitizer (also the harness that "
                         "replays modelcheck counterexamples); engine: "
                         "host engines (wavefront/parallel/compiled) vs the "
                         "serial oracle over random algorithm/dtype/shape/"
                         "worker configurations; cost: replay the planted "
                         "traffic regressions through the static cost "
                         "checker (each must be rejected with its expected "
                         "finding kind); distsat: random shard counts, chunk "
                         "sizes and fault plans through the distributed "
                         "executor vs the reference scan (recovery must be "
                         "invisible in the output); numeric: replay the "
                         "planted rounding bugs through the static numeric "
                         "checker and spot-check the proven error bounds "
                         "empirically")
    fz.add_argument("--time-budget", type=float, default=None,
                    help="stop after this many seconds")
    fz.add_argument("--sanitize", action="store_true",
                    help="run every configuration under the concurrency "
                         "sanitizer (races/protocol findings fail the run)")
    fz.add_argument("--replay", metavar="CONFIG", default=None,
                    help="replay one configuration instead of fuzzing: a JSON "
                         "file path or inline JSON as printed for failures "
                         "(the config's own mode field selects the harness)")

    sz = sub.add_parser("sanitize",
                        help="happens-before race detection, protocol "
                             "checking, and static kernel lint")
    sz.add_argument("-a", "--algorithm", action="append", default=None,
                    help="algorithm to sanitize (repeatable; default: all 7)")
    sz.add_argument("-n", "--size", type=int, default=64,
                    help="matrix side per run (default 64)")
    sz.add_argument("-W", "--tile-width", type=int, default=32)
    sz.add_argument("--consistency", action="append", default=None,
                    choices=["relaxed", "strong"],
                    help="consistency mode(s) to run (default: relaxed)")
    sz.add_argument("--policy", action="append", default=None,
                    choices=["round_robin", "random", "lifo"],
                    help="scheduler policy(ies) to run (default: the "
                         "adversarial lifo)")
    sz.add_argument("--seed", type=int, default=0)
    sz.add_argument("--residency", type=int, default=None,
                    help="bound resident blocks (stresses soft sync)")
    sz.add_argument("--no-lint", action="store_true",
                    help="skip the static kernel lint pass")
    sz.add_argument("--no-dynamic", action="store_true",
                    help="skip the sanitized simulation runs (lint only)")
    sz.add_argument("--no-incremental", action="store_true",
                    help="skip the incremental state-retention check "
                         "(carry-plane oracles + recompute bit-identity "
                         "after an edit sequence)")
    sz.add_argument("--json", metavar="PATH", nargs="?", const="-",
                    default=None,
                    help="also emit all findings as JSON (stable ordering) "
                         "to PATH, or to stdout with no argument")

    mc = sub.add_parser("modelcheck",
                        help="exhaustive protocol model checking: extract "
                             "each kernel's synchronization protocol and "
                             "explore every block interleaving on a small "
                             "tile grid (proves deadlock freedom rather "
                             "than sampling schedules)")
    mc.add_argument("-a", "--algorithm", action="append", default=None,
                    help="algorithm (or bug-corpus kernel) to check "
                         "(repeatable; default: all 7 algorithms)")
    mc.add_argument("-t", "--tiles", type=int, default=2,
                    help="tile-grid side: models a t x t grid (default 2)")
    mc.add_argument("--pool", type=int, action="append", default=None,
                    help="resident-block pool size to explore (repeatable; "
                         "default: sweep 1..min(4, blocks))")
    mc.add_argument("--acquisition", default="diagonal",
                    help="tile acquisition order for 1R1W-SKSS-LB "
                         "(diagonal, rowmajor, reversed, swapped)")
    mc.add_argument("--no-por", action="store_true",
                    help="disable partial-order reduction (explores the "
                         "unreduced state graph; same verdict, many more "
                         "states — used to cross-check the reduction)")
    mc.add_argument("--max-states", type=int, default=None,
                    help="abort a pool exploration beyond this many states "
                         "(default 500000)")
    mc.add_argument("--corpus", action="store_true",
                    help="also check every planted-bug corpus kernel: each "
                         "must yield a counterexample of its expected kind "
                         "and the control must verify clean")
    mc.add_argument("--json", metavar="PATH", nargs="?", const="-",
                    default=None,
                    help="also emit all results as JSON (stable ordering) "
                         "to PATH, or to stdout with no argument")

    cc = sub.add_parser("costcheck",
                        help="static memory-traffic verification: derive "
                             "each kernel's global reads/writes/atomics/"
                             "fences from its AST, prove the Table I "
                             "classes symbolically, cross-validate "
                             "transaction predictions against the "
                             "simulator's counters, and prove the exact-int "
                             "accumulators overflow-free")
    cc.add_argument("-a", "--algorithm", action="append", default=None,
                    help="algorithm to verify (repeatable; default: all 7 "
                         "Table I rows)")
    cc.add_argument("-n", "--size", type=int, default=128,
                    help="matrix side for the simulator cross-validation "
                         "(default 128)")
    cc.add_argument("-W", "--tile-width", type=int, default=32)
    cc.add_argument("--seed", type=int, default=0)
    cc.add_argument("--no-crossval", action="store_true",
                    help="skip the simulator cross-validation (symbolic "
                         "proof, overflow and corpus only — much faster)")
    cc.add_argument("--no-corpus", action="store_true",
                    help="skip the planted-bug corpus check")
    cc.add_argument("--no-overflow", action="store_true",
                    help="skip the accumulator overflow analysis")
    cc.add_argument("--json", metavar="PATH", nargs="?", const="-",
                    default=None,
                    help="also emit the full result as JSON (stable "
                         "ordering) to PATH, or to stdout with no argument")

    nc = sub.add_parser("numcheck",
                        help="static numerical-accuracy verification: derive "
                             "each kernel's worst-path rounding depth from "
                             "its AST, prove closed-form error bounds per "
                             "algorithm and dtype, validate them against "
                             "measured errors on adversarial inputs, and "
                             "replay the planted rounding-bug corpus")
    nc.add_argument("-a", "--algorithm", action="append", default=None,
                    help="algorithm to verify (repeatable; default: all 7 "
                         "Table I rows)")
    nc.add_argument("-n", "--sizes", type=int, action="append", default=None,
                    help="matrix side for the empirical validation "
                         "(repeatable; default 256, 1024, 4096)")
    nc.add_argument("-W", "--tile-width", type=int, default=32)
    nc.add_argument("--seed", type=int, default=0)
    nc.add_argument("--no-device", action="store_true",
                    help="skip the simulator (device-leg) validation")
    nc.add_argument("--no-corpus", action="store_true",
                    help="skip the planted rounding-bug corpus check")
    nc.add_argument("--json", metavar="PATH", nargs="?", const="-",
                    default=None,
                    help="also emit the full result as JSON (stable "
                         "ordering) to PATH, or to stdout with no argument")

    ib = sub.add_parser("incremental-bench",
                        help="time incremental repair vs full wavefront "
                             "recompute")
    ib.add_argument("-n", "--size", type=int, default=2048,
                    help="matrix side (default 2048)")
    ib.add_argument("-W", "--tile-width", type=int, default=32)
    ib.add_argument("-a", "--algorithm", default="1R1W-SKSS-LB")
    ib.add_argument("--dirty-frac", type=float, default=0.1,
                    help="edited fraction of the frame area (default 0.1)")
    ib.add_argument("--edits", type=int, default=8,
                    help="edits to time, cycling corner/edge/centre patch "
                         "positions (default 8)")
    ib.add_argument("--dtype", default="int32",
                    help="input dtype (integer dtypes use the exact delta "
                         "path; floats the recompute path)")
    ib.add_argument("--strategy", default="auto",
                    choices=["auto", "delta", "recompute"])
    ib.add_argument("--workers", type=int, default=None)
    ib.add_argument("--seed", type=int, default=0)
    ib.add_argument("--json", metavar="PATH", default=None,
                    help="also write the result record as JSON")

    rp = sub.add_parser("report", help="write a full reproduction report")
    rp.add_argument("-o", "--output", default="REPRODUCTION_REPORT.md")
    rp.add_argument("--measure-size", type=int, default=128)
    rp.add_argument("--fuzz-runs", type=int, default=25)

    lp = sub.add_parser("list",
                        help="list algorithms, aliases and backends")
    lp.add_argument("--json", metavar="PATH", default=None,
                    help="write the backend capability table as JSON "
                         "('-' for stdout)")
    return p


def _cmd_run(args) -> int:
    from repro.analysis.tolerances import derived_tolerance, sat_close
    from repro.errors import ConfigurationError
    from repro.gpusim import GPU
    from repro.sat import compute_sat, resolve_policy, sat_reference

    rng = np.random.default_rng(args.seed)
    shape = tuple(args.shape) if args.shape else (args.size, args.size)
    try:
        dtype = np.dtype(args.dtype)
    except TypeError as exc:
        raise ConfigurationError(f"unknown dtype {args.dtype!r}") from exc
    # Integer-valued data in every dtype: keeps float64 runs bit-exact
    # against the reference regardless of the accumulation order.
    if np.issubdtype(dtype, np.integer):
        hi = min(100, np.iinfo(dtype).max)
        a = rng.integers(0, hi, size=shape, dtype=dtype)
    elif dtype == np.bool_:
        a = rng.integers(0, 2, size=shape).astype(bool)
    else:
        a = rng.integers(0, 100, size=shape).astype(dtype)
    if args.shards is not None and args.engine != "distributed":
        raise ConfigurationError(
            "--shards is only meaningful with --engine distributed")
    if args.host or args.engine != "serial":
        result = compute_sat(a, algorithm=args.algorithm,
                             tile_width=args.tile_width, simulate=False,
                             engine=args.engine if args.engine != "serial"
                             else None, workers=args.workers,
                             shards=args.shards)
    else:
        gpu = GPU(seed=args.seed, scheduler_policy=args.policy,
                  consistency=args.consistency,
                  detect_uninitialized=args.detect_uninitialized)
        result = compute_sat(a, algorithm=args.algorithm,
                             tile_width=args.tile_width, gpu=gpu)
    acc = resolve_policy(None).accumulator(a.dtype)
    ref = sat_reference(a.astype(acc, copy=False))
    # Budget derived from the algorithm's proven rounding depth — the old
    # fixed rtol=1e-5 was pure guesswork (and unsound for mixed magnitudes).
    tol = derived_tolerance(result.algorithm, a.shape, acc,
                            tile_width=args.tile_width, oracle="reference")
    ok = sat_close(result.sat, ref, tol, abs_input=a)
    print(result.summary())
    print(f"input {a.shape[0]}x{a.shape[1]} {a.dtype.name} -> "
          f"SAT {result.sat.dtype.name}")
    print(f"correct vs reference: {ok}")
    if result.report is not None:
        t = result.report.traffic
        n2 = a.size
        print(f"reads/element: {t.global_read_requests / n2:.3f}   "
              f"writes/element: {t.global_write_requests / n2:.3f}   "
              f"spins: {t.spin_iterations}   fences: {t.fences}   "
              f"bank-conflict cycles: {t.shared_bank_conflict_cycles}")
    return 0 if ok else 1


def _cmd_table1(args) -> int:
    from repro.analysis import check_counts, render_table1

    print(render_table1(args.size, W=args.tile_width))
    if args.measure:
        from repro.gpusim import GPU
        from repro.perfmodel.table import TABLE3_ORDER
        from repro.sat import get_algorithm
        rng = np.random.default_rng(0)
        n = args.measure_size
        a = rng.integers(0, 100, size=(n, n)).astype(np.float64)
        print(f"\nmeasured on the simulator (n={n}, W={args.tile_width}):")
        for name in TABLE3_ORDER:
            res = get_algorithm(name, tile_width=args.tile_width).run(
                a, GPU(seed=1))
            print(" ", check_counts(res))
    return 0


def _cmd_table3(args) -> int:
    from repro.perfmodel import TitanVModel, render_table3
    print(render_table3(TitanVModel(), r=args.hybrid_r,
                        compare_paper=not args.no_paper))
    return 0


def _cmd_sweep_w(args) -> int:
    from repro.perfmodel import TILE_WIDTHS, TitanVModel
    from repro.sat import get_algorithm
    name = get_algorithm(args.algorithm).name
    model = TitanVModel()
    print(f"{name} at n={args.size} (model):")
    for W in TILE_WIDTHS:
        if args.size % W or W > args.size:
            print(f"  W={W:<4} (skipped: incompatible with n)")
            continue
        bd = model.estimate(name, args.size, W=W)
        print(f"  W={W:<4} {bd.total_ms:9.4f} ms "
              f"({len(bd.kernels)} kernel(s))")
    return 0


def _cmd_sweep_r(args) -> int:
    from repro.perfmodel import TitanVModel
    model = TitanVModel()
    print(f"(1+r)R1W at n={args.size}, W={args.tile_width} (model):")
    results = {}
    for r in (0.0, 0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.8, 1.0):
        ms = model.estimate("(1+r)R1W", args.size, W=args.tile_width,
                            r=r).total_ms
        results[r] = ms
        print(f"  r={r:<5} {ms:9.4f} ms")
    best = min(results, key=results.get)
    print(f"best r: {best}")
    return 0


def _cmd_trace(args) -> int:
    from repro.gpusim import GPU, TINY_DEVICE, Tracer, render_timeline
    from repro.sat import SKSSLB1R1W, sat_reference

    rng = np.random.default_rng(args.seed)
    a = rng.integers(0, 10, size=(args.size, args.size)).astype(np.float64)
    tracer = Tracer()
    gpu = GPU(device=TINY_DEVICE, seed=args.seed,
              scheduler_policy=args.policy,
              max_resident_blocks=args.residency, tracer=tracer)
    res = SKSSLB1R1W().run(a, gpu)
    ok = np.array_equal(res.sat, sat_reference(a))
    print(f"n={args.size}, residency={args.residency}, policy={args.policy}, "
          f"correct={ok}")
    print(f"events: {dict(tracer.counts())}")
    print(render_timeline(tracer.events))
    return 0 if ok else 1


def _cmd_export(args) -> int:
    from repro.perfmodel.export import write_all
    written = write_all(args.output_dir, n=args.size)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_chart(args) -> int:
    from repro.perfmodel.charts import table3_chart
    from repro.perfmodel.devices import model_for_device
    print(table3_chart(model_for_device(args.device)))
    return 0


def _cmd_devices(args) -> int:
    from repro.perfmodel.charts import bar_chart
    from repro.perfmodel.devices import DEVICE_SPECS, cross_device_summary
    summary = cross_device_summary(args.size)
    print(f"model projections at n={args.size} "
          f"(calibration scaled by spec bandwidth):\n")
    header = f"{'device':<12} {'BW GB/s':>8} {'dup ms':>9} " \
             f"{'SKSS-LB ms':>11} {'overhead':>9}"
    print(header)
    print("-" * len(header))
    for key, row in summary.items():
        spec = DEVICE_SPECS[key]
        lb = row["1R1W-SKSS-LB"]
        dup = row["duplication"]
        print(f"{key:<12} {spec.spec_bandwidth_gbps:>8.0f} {dup:>9.3f} "
              f"{lb:>11.3f} {100 * (lb - dup) / dup:>8.1f}%")
    print()
    print(bar_chart({k: v["1R1W-SKSS-LB"] for k, v in summary.items()},
                    unit=" ms", title="1R1W-SKSS-LB time per device"))
    return 0


def _cmd_fuzz(args) -> int:
    from repro.analysis.fuzzing import fuzz, load_replay_config, run_one
    if args.replay is not None:
        config = load_replay_config(args.replay)
        error = run_one(config, sanitize=args.sanitize)
        print(f"replay {config.to_json()}")
        if error is None:
            print("replay: OK")
            return 0
        print(f"replay: FAIL {error}")
        return 1
    report = fuzz(args.runs, seed=args.seed, time_budget_s=args.time_budget,
                  sanitize=args.sanitize, mode=args.mode)
    print(report.summary())
    for config, error in report.failures:
        print(f"  FAIL {error}\n       replay: {config.to_json()}")
    return 0 if report.ok else 1


def _write_json(payload, dest: str) -> None:
    """Emit a JSON artifact to a path, or to stdout when ``dest`` is ``-``."""
    import json as _json
    text = _json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {dest}")


def _cmd_sanitize(args) -> int:
    from dataclasses import asdict

    from repro.analysis import lint_paths, sanitize_all
    rc = 0
    record = {"lint": None, "runs": None, "incremental": None}
    if not args.no_lint:
        findings = lint_paths()
        print(f"kernel lint: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        record["lint"] = [asdict(f) for f in findings]  # already line-sorted
        if findings:
            rc = 1
    if not args.no_dynamic:
        report = sanitize_all(
            args.algorithm, n=args.size, tile_width=args.tile_width,
            consistencies=tuple(args.consistency or ("relaxed",)),
            policies=tuple(args.policy or ("lifo",)),
            seed=args.seed, residency=args.residency)
        for run in report.runs:
            print(run.summary())
            for f in run.findings:
                print(f"    {f}")
        print(report.summary())
        record["runs"] = [
            {**asdict(run),
             "findings": sorted(
                 (asdict(f) for f in run.findings),
                 key=lambda d: (d["rule"], d["kernel"], d["buffer"],
                                d["index"] if d["index"] is not None else -1,
                                d["block"]))}
            for run in report.runs]
        if not report.ok:
            rc = 1
    if not args.no_incremental:
        from repro.hostexec.incremental import sanitize_incremental
        findings = sanitize_incremental(n=max(args.size, 2 * args.tile_width),
                                        tile_width=args.tile_width,
                                        seed=args.seed)
        print(f"incremental state retention: {len(findings)} finding(s)")
        for f in findings:
            print(f"  {f}")
        record["incremental"] = sorted(str(f) for f in findings)
        if findings:
            rc = 1
    if args.json:
        record["ok"] = rc == 0
        _write_json(record, args.json)
    return rc


def _cmd_modelcheck(args) -> int:
    from repro.analysis import MODEL_ALGORITHMS, check
    from repro.analysis.modelcheck import DEFAULT_MAX_STATES
    max_states = args.max_states or DEFAULT_MAX_STATES
    pools = tuple(args.pool) if args.pool else None
    rc = 0
    records = []
    for name in args.algorithm or MODEL_ALGORITHMS:
        result = check(name, args.tiles, acquisition=args.acquisition,
                       por=not args.no_por, pools=pools,
                       max_states=max_states)
        print(result.report())
        records.append(result.to_dict())
        if not result.ok:
            rc = 1
    if args.corpus:
        from repro.analysis.bugcorpus import CONTROL, CORPUS
        for spec in CORPUS + (CONTROL,):
            result = check(spec.name, por=not args.no_por,
                           max_states=max_states)
            print(result.report())
            kinds = sorted({v.kind for v in result.violations()})
            expected = spec.expected_model
            met = result.ok if not expected else expected in kinds
            verdict = ("clean as expected" if not expected and met else
                       f"counterexample '{expected}' found" if met else
                       f"expected '{expected or 'clean'}', "
                       f"got {kinds or 'none'}")
            print(f"  corpus expectation: {verdict}")
            record = result.to_dict()
            record["expectation_met"] = met
            records.append(record)
            if not met:
                rc = 1
    if args.json:
        _write_json({"ok": rc == 0, "results": records}, args.json)
    return rc


def _cmd_costcheck(args) -> int:
    from repro.analysis.costcheck import render_report, run_costcheck
    result = run_costcheck(args.algorithm, crossval=not args.no_crossval,
                           corpus=not args.no_corpus,
                           overflow=not args.no_overflow,
                           n=args.size, W=args.tile_width, seed=args.seed)
    print(render_report(result))
    if args.json:
        _write_json(result, args.json)
    return 0 if result["ok"] else 1


def _cmd_numcheck(args) -> int:
    from repro.analysis.numcheck import render_numcheck_report, run_numcheck
    result = run_numcheck(args.algorithm,
                          sizes=tuple(args.sizes) if args.sizes
                          else (256, 1024, 4096),
                          device=not args.no_device,
                          corpus=not args.no_corpus,
                          W=args.tile_width, seed=args.seed)
    print(render_numcheck_report(result))
    if args.json:
        _write_json(result, args.json)
    return 0 if result["ok"] else 1


def _cmd_incremental_bench(args) -> int:
    import json as _json

    from repro.hostexec.incremental import repair_benchmark
    result = repair_benchmark(
        args.size, dirty_frac=args.dirty_frac, edits=args.edits,
        tile_width=args.tile_width, algorithm=args.algorithm,
        dtype=args.dtype, strategy=args.strategy, workers=args.workers,
        seed=args.seed)
    print(f"n={result['n']} W={result['tile_width']} "
          f"{result['algorithm']} {result['dtype']} "
          f"(strategy={result['strategy']}, "
          f"dirty {100 * result['dirty_frac']:.0f}% = "
          f"{result['patch_side']}² patch)")
    print(f"full recompute: {1e3 * result['full_recompute_s']:8.2f} ms")
    print(f"repair mean:    {1e3 * result['repair_mean_s']:8.2f} ms   "
          f"({result['speedup_mean']:.1f}x)")
    print(f"repair worst:   {1e3 * result['repair_worst_s']:8.2f} ms   "
          f"({result['speedup_worst_case']:.1f}x)")
    print(f"repaired tiles: {100 * result['repaired_tile_fraction_mean']:.1f}% "
          f"of grid (mean over {result['edits']} edits)")
    print(f"bit-identical to from-scratch: {result['bit_identical']}")
    if args.json:
        with open(args.json, "w") as fh:
            _json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if result["bit_identical"] else 1


def _cmd_report(args) -> int:
    from repro.report import write_report
    path = write_report(args.output, measure_size=args.measure_size,
                        fuzz_runs=args.fuzz_runs)
    print(f"wrote {path}")
    return 0


def _cmd_list(args) -> int:
    from repro.analysis.numcheck import error_bound_strings
    from repro.backend.registry import backend_specs, backend_table
    from repro.sat import ALGORITHMS
    from repro.sat.registry import _ALIASES

    def _listing() -> dict:
        from repro._version import __version__ as version
        return {"version": version,
                "algorithms": {name: sorted(
                    k for k, v in _ALIASES.items() if v == name)
                    for name in ALGORITHMS},
                "error_bounds": error_bound_strings(),
                "backends": backend_table()}

    if args.json == "-":
        # JSON-to-stdout must stay pipeable: emit only the artifact.
        _write_json(_listing(), args.json)
        return 0
    print("algorithms:")
    for name, cls in ALGORITHMS.items():
        aliases = sorted(k for k, v in _ALIASES.items() if v == name)
        print(f"  {name:<14} ({cls.__name__}; aliases: {', '.join(aliases)})")
    print("\nbackends:")
    for name, spec in backend_specs().items():
        notes = [spec.kind]
        if spec.engine:
            notes.append("--engine")
        if spec.bit_identical:
            notes.append("bit-identical")
        if spec.retains_state:
            notes.append("carries")
        if spec.algorithms is not None:
            notes.append(f"{len(spec.algorithms)} tile algorithms")
        if spec.requires:
            notes.append(
                f"requires {spec.requires} "
                f"({'installed' if spec.available() else 'missing'}; "
                f"falls back to {spec.fallback})")
        print(f"  {name:<10} {spec.summary} [{'; '.join(notes)}]")
    if args.json is not None:
        _write_json(_listing(), args.json)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "table1": _cmd_table1,
    "table3": _cmd_table3,
    "sweep-w": _cmd_sweep_w,
    "sweep-r": _cmd_sweep_r,
    "trace": _cmd_trace,
    "export": _cmd_export,
    "chart": _cmd_chart,
    "devices": _cmd_devices,
    "fuzz": _cmd_fuzz,
    "sanitize": _cmd_sanitize,
    "modelcheck": _cmd_modelcheck,
    "costcheck": _cmd_costcheck,
    "numcheck": _cmd_numcheck,
    "incremental-bench": _cmd_incremental_bench,
    "report": _cmd_report,
    "list": _cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
