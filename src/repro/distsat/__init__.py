"""Sharded, fault-tolerant out-of-core SAT on a worker pool.

The SKSS look-back carries let tiles compose without a global barrier; the
same algebra composes one level up, letting band shards on separate
processes be stitched with the exact :class:`~repro.backend.carries
.BandCarrySet` column sums ``OutOfCoreSAT`` threads between bands.  This
package is that idea made operational: a coordinator
(:func:`distributed_sat`), a byte-level work-queue protocol, pluggable
transports (deterministic in-process / real ``multiprocessing``),
checkpointed carries, and a deterministic fault-injection seam
(:class:`FaultPlan`) so recovery is testable rather than anecdotal.

See ARCHITECTURE.md ("Sharded and distributed execution") for the carry
diagram, the checkpoint format and the fault seam.
"""

from repro.distsat.checkpoint import CheckpointStore
from repro.distsat.coordinator import DistributedResult, distributed_sat
from repro.distsat.protocol import FaultAction, FaultPlan, checksum, \
    shard_bounds
from repro.distsat.sources import BandSource, MatrixSource, SyntheticSource
from repro.distsat.transport import InlineTransport, ProcessTransport

__all__ = [
    "BandSource",
    "CheckpointStore",
    "DistributedResult",
    "FaultAction",
    "FaultPlan",
    "InlineTransport",
    "MatrixSource",
    "ProcessTransport",
    "SyntheticSource",
    "checksum",
    "distributed_sat",
    "shard_bounds",
]
