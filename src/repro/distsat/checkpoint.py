"""Checkpointed carry persistence for distributed runs.

After each shard's *reduce* commits, its column-sum carry vector is written
to the checkpoint directory (``carry_<k>.npy``) and the run manifest
(``manifest.json``) is atomically replaced (write-to-temp + ``os.replace``)
with the shard marked committed, its carry's CRC32, and the attempt
counters.  This gives two recovery properties the test suite pins:

* a **killed worker's** shard is retried from the task queue, and its
  *apply* re-reads the carry-in from disk (:meth:`load_carry_before`) —
  recomputation starts from the last persisted carry, not from the top of
  the image;
* a **killed coordinator** (simulated via ``FaultPlan.abort_after_shard``)
  can be replaced by a new one pointed at the same directory:
  :meth:`open_run` recognises the manifest, already-committed shards skip
  their reduce entirely, and the persisted attempt counters carry across
  the restart so the recovery tests can pin "resumed, not recomputed".

With ``directory=None`` the store keeps everything in memory — same API,
no files — which is what conformance tests and the fuzzer use.

Layout of a checkpoint directory::

    manifest.json     # run config + committed/applied shards + attempts + CRCs
    carry_0.npy       # shard 0's column sums (acc dtype, length = n_cols)
    carry_1.npy
    ...
"""

from __future__ import annotations

import json
import os
import tempfile

import numpy as np

from repro.distsat.protocol import checksum
from repro.errors import CarryChecksumError, ConfigurationError

_MANIFEST = "manifest.json"
_FORMAT = 1


class CheckpointStore:
    """Persists per-shard carries and attempt counters for one run."""

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = os.fspath(directory) if directory is not None else None
        self._config: dict | None = None
        self._carries: dict[int, np.ndarray] = {}
        self._checksums: dict[int, int] = {}
        self._applied: set[int] = set()
        self._attempts: dict[str, int] = {}
        #: shards whose reduce was skipped on resume (restart accounting)
        self.resumed_shards: tuple[int, ...] = ()

    # -- run lifecycle ---------------------------------------------------------

    def open_run(self, *, rows: int, cols: int, shards: int, acc_dtype: str,
                 algorithm: str, tile_width: int) -> None:
        """Start or resume a run with this configuration.

        A persisted manifest with a *matching* configuration is resumed
        (committed carries are loaded and checksum-verified); a manifest
        for a different configuration raises :class:`ConfigurationError`
        rather than silently mixing two runs' carries.
        """
        config = {"rows": int(rows), "cols": int(cols), "shards": int(shards),
                  "acc_dtype": str(acc_dtype), "algorithm": str(algorithm),
                  "tile_width": int(tile_width)}
        manifest = self._read_manifest()
        if manifest is not None:
            if manifest["config"] != config:
                raise ConfigurationError(
                    "checkpoint directory holds a different run "
                    f"({manifest['config']}) than requested ({config}); "
                    "point each run at its own directory")
            self._config = config
            self._checksums = {int(k): v
                               for k, v in manifest["checksums"].items()}
            self._applied = set(manifest.get("applied", []))
            self._attempts = dict(manifest.get("attempts", {}))
            self._carries = {k: self._load_carry(k) for k in self._checksums}
            self.resumed_shards = tuple(sorted(self._carries))
        else:
            self._config = config
            self._carries, self._checksums = {}, {}
            self._applied, self._attempts = set(), {}
            self.resumed_shards = ()
            self._write_manifest()

    @property
    def committed(self) -> tuple[int, ...]:
        """Shards whose reduce carry is committed, in shard order."""
        return tuple(sorted(self._carries))

    @property
    def applied(self) -> tuple[int, ...]:
        return tuple(sorted(self._applied))

    # -- attempts --------------------------------------------------------------

    def record_attempt(self, phase: str, shard: int) -> int:
        """Count one more attempt of (phase, shard); returns the 1-based total.

        Persisted with the manifest so a restarted coordinator continues the
        numbering — the fault plan's ``(shard, attempt)`` keys stay stable
        across a coordinator crash, and the recovery tests can pin counters
        that span a restart.
        """
        key = f"{phase}:{shard}"
        self._attempts[key] = self._attempts.get(key, 0) + 1
        self._write_manifest()
        return self._attempts[key]

    def attempts(self, phase: str, shard: int) -> int:
        return self._attempts.get(f"{phase}:{shard}", 0)

    # -- carries ---------------------------------------------------------------

    def commit_carry(self, shard: int, carry: np.ndarray) -> None:
        """Persist shard ``shard``'s column-sum carry (idempotent re-commit
        of identical data is allowed; conflicting data is an error)."""
        carry = np.ascontiguousarray(carry)
        crc = checksum(carry)
        if shard in self._checksums and self._checksums[shard] != crc:
            raise ConfigurationError(
                f"shard {shard} already committed a different carry")
        self._carries[shard] = carry
        self._checksums[shard] = crc
        if self.directory is not None:
            np.save(self._carry_path(shard), carry, allow_pickle=False)
        self._write_manifest()

    def mark_applied(self, shard: int) -> None:
        self._applied.add(shard)
        self._write_manifest()

    def carry_before(self, shard: int) -> np.ndarray:
        """Carry-in for shard ``shard``: the sum of every committed carry
        above it (in memory; the hot path during a healthy run)."""
        return self._sum_before(shard, self._carries)

    def load_carry_before(self, shard: int) -> np.ndarray:
        """Carry-in for shard ``shard`` re-read from the checkpoint files.

        This is the recovery seam: a retried *apply* uses this — not any
        in-memory state the dead worker might have held — so recomputation
        provably starts from what was persisted.  Each file is re-verified
        against its manifest CRC; a damaged file raises
        :class:`CarryChecksumError`.
        """
        if self.directory is None:
            return self.carry_before(shard)
        loaded = {k: self._load_carry(k)
                  for k in self._checksums if k < shard}
        return self._sum_before(shard, loaded)

    def _sum_before(self, shard: int, carries: dict[int, np.ndarray]) \
            -> np.ndarray:
        if self._config is None:
            raise ConfigurationError("open_run() has not been called")
        missing = [k for k in range(shard) if k not in carries]
        if missing:
            raise ConfigurationError(
                f"carry-in for shard {shard} needs shards {missing} "
                "committed first")
        acc = np.dtype(self._config["acc_dtype"])
        total = np.zeros(self._config["cols"], dtype=acc)
        for k in range(shard):
            total += carries[k].astype(acc, copy=False)
        return total

    # -- files -----------------------------------------------------------------

    def _carry_path(self, shard: int) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"carry_{shard}.npy")

    def _load_carry(self, shard: int) -> np.ndarray:
        if self.directory is None:
            return self._carries[shard]
        try:
            carry = np.load(self._carry_path(shard), allow_pickle=False)
        except OSError as exc:
            raise CarryChecksumError(
                f"carry file for shard {shard} is unreadable: {exc}") from None
        if checksum(carry) != self._checksums[shard]:
            raise CarryChecksumError(
                f"carry file for shard {shard} fails its manifest checksum; "
                "the checkpoint directory is damaged")
        return carry

    def _read_manifest(self) -> dict | None:
        if self.directory is None:
            return None
        path = os.path.join(self.directory, _MANIFEST)
        if not os.path.exists(path):
            return None
        with open(path, encoding="utf-8") as fh:
            manifest = json.load(fh)
        if manifest.get("format") != _FORMAT:
            raise ConfigurationError(
                f"unsupported checkpoint format {manifest.get('format')!r}")
        return manifest

    def _write_manifest(self) -> None:
        if self.directory is None or self._config is None:
            return
        manifest = {"format": _FORMAT, "config": self._config,
                    "checksums": {str(k): v
                                  for k, v in sorted(self._checksums.items())},
                    "applied": sorted(self._applied),
                    "attempts": dict(sorted(self._attempts.items()))}
        os.makedirs(self.directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=1)
            os.replace(tmp, os.path.join(self.directory, _MANIFEST))
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
