"""The distributed coordinator: shard, fan out, stitch, recover.

:func:`distributed_sat` splits the image into contiguous band shards
(:func:`~repro.distsat.protocol.shard_bounds`), fans them out to a worker
pool over a transport, and stitches the results with the same carry algebra
:class:`~repro.sat.outofcore.OutOfCoreSAT` threads between bands — the
SKSS look-back carries, one level up.  Two phases:

1. **reduce** — every shard's column sums, computed in parallel (each shard
   only needs its own rows).  Each verified carry is committed to the
   :class:`~repro.distsat.checkpoint.CheckpointStore` the moment it
   arrives, so the persisted frontier grows shard by shard.
2. **apply** — every shard's rows of the global SAT, computed in parallel
   once all carries are committed: the carry-in of shard *k* is the sum of
   carries *0..k-1* and the stitch is
   ``sat[i][j] = band_sat[i][j] + cumsum(carry_in)[j]``.

Failure handling (all deterministic under a
:class:`~repro.distsat.protocol.FaultPlan`):

* a **dead worker** loses only its in-flight task; the coordinator
  resubmits that shard with the next attempt number.  A resubmitted
  *apply* takes its carry-in from
  :meth:`~repro.distsat.checkpoint.CheckpointStore.load_carry_before` —
  re-read from the checkpoint files, not from any in-memory state — so
  recovery provably resumes from what was persisted;
* a **corrupt result** (payload fails its own checksum) is rejected and
  the shard retried, identically to a death;
* a shard that exhausts ``max_attempts`` raises
  :class:`~repro.errors.ShardFailedError`;
* ``fault_plan.abort_after_shard = k`` simulates a **coordinator crash**:
  :class:`~repro.errors.CoordinatorAborted` is raised right after shard
  *k*'s carry is persisted.  A new call pointed at the same
  ``checkpoint_dir`` resumes: committed shards skip their reduce entirely
  (pinned by ``stats["resumed_shards"]`` and the persisted attempt
  counters).
"""

from __future__ import annotations

import collections
import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend.carries import BandCarrySet
from repro.distsat.checkpoint import CheckpointStore
from repro.distsat.protocol import FaultPlan, checksum, decode_message, \
    encode_message, shard_bounds
from repro.distsat.sources import BandSource, MatrixSource, source_to_spec
from repro.distsat.transport import make_transport
from repro.errors import ConfigurationError, CoordinatorAborted, \
    DistributedError, ShardFailedError


@dataclass
class DistributedResult:
    """What one distributed run produced.

    ``sat`` is the assembled global SAT in collect mode, ``None`` in digest
    mode (the gigapixel path), where ``digests`` (per-shard CRC32 of the
    stitched rows) and ``edge_rows`` (the global SAT row at each shard's
    bottom edge) stand in for it.  ``carries`` is the run's total
    :class:`~repro.backend.carries.BandCarrySet` — the column sums of the
    whole image, exactly what ``OutOfCoreSAT`` would have accumulated.
    """

    sat: np.ndarray | None
    carries: BandCarrySet
    bounds: tuple[tuple[int, int], ...]
    stats: dict
    checkpoint: CheckpointStore
    edge_rows: dict[int, np.ndarray] = field(default_factory=dict)
    digests: dict[int, int] = field(default_factory=dict)

    def rect_sum(self, top: int, left: int, bottom: int, right: int):
        """Inclusive rectangle sum via the GCP identity.

        With a collected ``sat`` any rectangle works; in digest mode only
        rectangles whose ``top - 1`` and ``bottom`` rows are shard bottom
        edges (or ``top == 0``) are answerable — the rows the run kept.
        """
        if not (0 <= top <= bottom and 0 <= left <= right):
            raise ConfigurationError(
                f"invalid rectangle ({top},{left})..({bottom},{right})")
        if self.sat is not None:
            s = self.sat
            total = s[bottom, right]
            if top > 0:
                total = total - s[top - 1, right]
            if left > 0:
                total = total - s[bottom, left - 1]
            if top > 0 and left > 0:
                total = total + s[top - 1, left - 1]
            return total

        def row(i: int) -> np.ndarray:
            if i not in self.edge_rows:
                raise ConfigurationError(
                    f"row {i} is not a retained shard edge; digest-mode "
                    f"rect_sum needs edge-aligned rows "
                    f"(have {sorted(self.edge_rows)})")
            return self.edge_rows[i]

        lo = row(bottom)
        total = lo[right] - (lo[left - 1] if left > 0 else 0)
        if top > 0:
            hi = row(top - 1)
            total = total - hi[right] + (hi[left - 1] if left > 0 else 0)
        return total


def distributed_sat(a, *, shards: int = 2, algorithm: str | None = None,
                    tile_width: int = 32, dtype_policy=None,
                    inner_engine: str = "serial",
                    transport: str = "inline", workers: int | None = None,
                    checkpoint_dir=None, fault_plan=None,
                    chunk_rows: int | None = None, collect: bool = True,
                    max_attempts: int = 3) -> DistributedResult:
    """Compute the SAT of ``a`` across ``shards`` band shards.

    ``a`` is a 2-D array or a :class:`~repro.distsat.sources.BandSource`
    (a spec-serializable source streams: workers regenerate their own rows
    and the coordinator never holds the image).  ``inner_engine`` names the
    registered backend each worker runs its band through; ``chunk_rows``
    bounds worker memory by processing each shard that many rows at a
    time.  ``collect=False`` switches to digest mode.  Faults are injected
    via ``fault_plan`` (a :class:`~repro.distsat.protocol.FaultPlan` or its
    dict form).
    """
    if isinstance(a, BandSource):
        source = a
    else:
        source = MatrixSource(np.asarray(a))
    if not isinstance(shards, int) or isinstance(shards, bool) or shards <= 0:
        raise ConfigurationError(
            f"shards must be a positive integer, got {shards!r}")
    if not isinstance(max_attempts, int) or isinstance(max_attempts, bool) \
            or max_attempts <= 0:
        raise ConfigurationError("max_attempts must be a positive integer")
    if chunk_rows is not None and (not isinstance(chunk_rows, int)
                                   or isinstance(chunk_rows, bool)
                                   or chunk_rows <= 0):
        raise ConfigurationError(
            f"chunk_rows must be a positive integer, got {chunk_rows!r}")
    if fault_plan is None:
        plan = None
    elif isinstance(fault_plan, FaultPlan):
        plan = fault_plan
    else:
        plan = FaultPlan.from_dict(fault_plan)
    if inner_engine == "distributed":
        raise ConfigurationError(
            "the distributed executor cannot use itself as the per-band "
            "engine; pick a host engine (serial/wavefront/compiled/parallel)")
    from repro.backend.registry import resolve_backend
    inner = resolve_backend(inner_engine)  # validates the engine name
    canonical = None
    if algorithm is not None:
        from repro.sat.registry import get_algorithm
        canonical = get_algorithm(algorithm).name
    # Plan the inner configuration once up front so configuration mistakes
    # (bad tile width, unsupported dtype, ...) fail here, not inside a worker.
    inner.plan((source.n_rows, source.n_cols), source.dtype,
               algorithm=canonical, tile_width=tile_width,
               dtype_policy=dtype_policy)
    from repro.sat.dtypes import resolve_policy
    acc = resolve_policy(dtype_policy).accumulator(np.dtype(source.dtype))

    bounds = tuple(shard_bounds(source.n_rows, shards))
    n_shards = len(bounds)
    store = CheckpointStore(checkpoint_dir)
    store.open_run(rows=source.n_rows, cols=source.n_cols, shards=n_shards,
                   acc_dtype=acc.name, algorithm=canonical or "plain",
                   tile_width=tile_width)

    try:
        spec = source_to_spec(source)
        embed = False
    except ConfigurationError:
        spec, embed = None, True

    t0 = time.perf_counter()
    tx = make_transport(transport, workers)
    peak_bytes = 0
    try:
        unacked: dict[int, collections.deque] = \
            {w: collections.deque() for w in range(tx.n_workers)}
        tasks: dict[tuple[str, int], dict] = {}

        def submit(phase: str, shard: int, *, recovery: bool = False) -> None:
            attempt = store.record_attempt(phase, shard)
            if attempt > max_attempts:
                raise ShardFailedError(
                    f"shard {shard} ({phase}) failed {attempt - 1} attempts "
                    f"(budget {max_attempts})", shard=shard,
                    attempts=attempt - 1)
            lo, hi = bounds[shard]
            task = {"type": "task", "phase": phase, "shard": shard,
                    "row_lo": lo, "row_hi": hi, "attempt": attempt,
                    "algorithm": canonical, "tile_width": tile_width,
                    "acc_dtype": acc.name, "engine": inner_engine,
                    "chunk_rows": chunk_rows, "collect": collect}
            if embed:
                task["band"] = np.ascontiguousarray(source.band(lo, hi))
            else:
                task["source"] = spec
            if plan is not None:
                task["fault"] = plan.to_dict()
            if phase == "apply":
                # The recovery seam: a retried apply re-reads its carry-in
                # from the checkpoint files, never from in-memory state.
                carry = store.load_carry_before(shard) if recovery \
                    else store.carry_before(shard)
                task["carry_in"] = carry
                task["carry_checksum"] = checksum(carry)
            worker = shard % tx.n_workers
            tasks[(phase, shard)] = task
            unacked[worker].append((phase, shard))
            tx.send(worker, encode_message(task))

        def pump(want_phase: str, outstanding: set[int], on_result) -> None:
            nonlocal peak_bytes
            while outstanding:
                msg = decode_message(tx.recv())
                if msg["type"] == "died":
                    worker = msg["worker"]
                    if "shard" in msg:
                        # Precise death (inline kill, reported exception):
                        # exactly one named task was lost.
                        lost = [(msg["phase"], msg["shard"])]
                        try:
                            unacked[worker].remove(lost[0])
                        except ValueError:  # pragma: no cover - stale death
                            continue
                    else:
                        # A hard process death can lose results that were
                        # computed but never flushed to the queue, so every
                        # unacked task of that worker is resubmitted (a
                        # surviving duplicate result is simply ignored).
                        lost = list(unacked[worker])
                        unacked[worker].clear()
                        if not lost:
                            continue  # died while idle
                    for phase, shard in lost:
                        submit(phase, shard, recovery=True)
                    continue
                phase, shard = msg["phase"], msg["shard"]
                try:
                    unacked[msg["worker"]].remove((phase, shard))
                except ValueError:  # pragma: no cover - duplicate result
                    continue
                payload = msg["rows"] if "rows" in msg else \
                    msg["col_sums"] if "col_sums" in msg else msg["bottom_row"]
                if checksum(payload) != msg["checksum"]:
                    # Corrupt-then-detect: reject and retry the shard.
                    submit(phase, shard, recovery=True)
                    continue
                if phase != want_phase:  # pragma: no cover - phase mixing
                    raise DistributedError(
                        f"unexpected {phase} result during {want_phase}")
                peak_bytes = max(peak_bytes, msg.get("peak_bytes", 0))
                on_result(shard, msg)
                outstanding.discard(shard)

        # -- phase 1: reduce (skip shards whose carry is already persisted) ----
        todo = [k for k in range(n_shards) if k not in store.committed]
        for k in todo:
            submit("reduce", k)

        def commit(shard: int, msg: dict) -> None:
            store.commit_carry(shard, msg["col_sums"])
            if plan is not None and plan.abort_after_shard == shard:
                raise CoordinatorAborted(
                    f"fault plan aborted the coordinator after shard "
                    f"{shard}'s carry was persisted",
                    committed_shards=len(store.committed))

        pump("reduce", set(todo), commit)

        # -- phase 2: apply ----------------------------------------------------
        sat = np.empty((source.n_rows, source.n_cols), dtype=acc) \
            if collect else None
        edge_rows: dict[int, np.ndarray] = {}
        digests: dict[int, int] = {}

        for k in range(n_shards):
            submit("apply", k)

        def assemble(shard: int, msg: dict) -> None:
            lo, hi = bounds[shard]
            if sat is not None:
                sat[lo:hi] = msg["rows"]
            else:
                digests[shard] = msg["digest"]
            edge_rows[hi - 1] = msg["bottom_row"]
            store.mark_applied(shard)

        pump("apply", set(range(n_shards)), assemble)
    finally:
        tx.close()

    total = store.carry_before(n_shards)
    attempts = {"reduce": {k: store.attempts("reduce", k)
                           for k in range(n_shards)},
                "apply": {k: store.attempts("apply", k)
                          for k in range(n_shards)}}
    recovered = sorted({k for phase in attempts.values()
                        for k, n in phase.items() if n > 1})
    stats = {"shards": n_shards, "rows": source.n_rows,
             "cols": source.n_cols, "transport": transport,
             "workers": tx.n_workers, "attempts": attempts,
             "recovered_shards": recovered,
             "resumed_shards": list(store.resumed_shards),
             "peak_worker_bytes": int(peak_bytes),
             "elapsed_s": time.perf_counter() - t0}
    return DistributedResult(sat=sat, carries=BandCarrySet(column_sums=total),
                             bounds=bounds, stats=stats, checkpoint=store,
                             edge_rows=edge_rows, digests=digests)
