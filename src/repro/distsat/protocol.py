"""The distsat work-queue protocol: messages, checksums, fault injection.

Workers and the coordinator exchange *messages*: plain dicts with a
``"type"`` key, numpy arrays allowed as values.  Every message crosses the
transport as **bytes** (:func:`encode_message` / :func:`decode_message` — a
JSON header plus base64 ``.npy`` payloads), so the queue pair used today
(:mod:`repro.distsat.transport`) could be replaced by a socket without
touching the coordinator or the worker: neither ever sees a live Python
object from the other side.

Message vocabulary (the full protocol):

``task``
    Coordinator → worker.  One shard, one phase: ``"reduce"`` computes the
    shard's column sums (the carry contribution), ``"apply"`` computes the
    shard's globally stitched SAT rows from the carry the coordinator sends
    with the task.  Carries the shard's row range, the per-band execution
    configuration, the input (an embedded band or a band-source spec), the
    attempt number and the fault plan.
``result``
    Worker → coordinator.  Phase payload (column sums, stitched rows or a
    digest) plus a checksum over the carry-bearing arrays — the coordinator
    rejects any result whose payload does not match its checksum and
    retries the shard (the corrupt-then-detect seam).
``died``
    Synthesized by the transport when a worker is lost (an injected kill or
    a real process death); names the worker so the coordinator can re-queue
    everything it held.
``shutdown``
    Coordinator → worker: drain and exit.

:class:`FaultPlan` is the deterministic fault-injection seam.  It is data —
it rides inside ``task`` messages and JSON round-trips through the fuzzer's
replay configs — and is consulted at exactly one point in the worker
(:func:`repro.distsat.worker.handle_task`), so every injected failure is
reproducible: *kill shard k on attempt j*, delay it, or corrupt its carry
payload after the checksum is computed (which the coordinator must detect).
"""

from __future__ import annotations

import base64
import io
import json
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

#: Every message type the protocol admits.
MESSAGE_TYPES = ("task", "result", "died", "shutdown")

#: Phases of one shard's computation.  ``reduce`` produces the shard's
#: column sums (its carry contribution); ``apply`` produces the stitched
#: SAT rows once the carry from every shard above has been committed.
PHASES = ("reduce", "apply")

#: Kinds of injectable faults.
FAULT_KINDS = ("kill", "delay", "corrupt")


def checksum(a: np.ndarray) -> int:
    """CRC32 over an array's dtype, shape and bytes (carry integrity)."""
    a = np.ascontiguousarray(a)
    header = f"{a.dtype.str}|{a.shape}".encode()
    return zlib.crc32(a.tobytes(), zlib.crc32(header)) & 0xFFFFFFFF


def shard_bounds(n_rows: int, shards: int) -> list[tuple[int, int]]:
    """Half-open row ranges of each shard (near-equal contiguous bands).

    ``shards`` is clamped to ``n_rows`` so every shard owns at least one
    row; the first ``n_rows % shards`` shards get the extra row.
    """
    if n_rows <= 0:
        raise ConfigurationError("n_rows must be positive")
    if shards <= 0:
        raise ConfigurationError("shards must be positive")
    shards = min(shards, n_rows)
    base, extra = divmod(n_rows, shards)
    bounds, lo = [], 0
    for k in range(shards):
        hi = lo + base + (1 if k < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass(frozen=True)
class FaultAction:
    """One deterministic fault: fires for exactly one (shard, attempt, phase).

    ``kind`` is ``"kill"`` (the worker dies before replying), ``"delay"``
    (sleep ``seconds`` before replying) or ``"corrupt"`` (the carry payload
    is damaged *after* its checksum is computed, so the coordinator must
    detect the mismatch and retry).  ``phase`` defaults to ``"reduce"``.
    """

    kind: str
    shard: int
    attempt: int = 1
    phase: str = "reduce"
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}")
        if self.phase not in PHASES:
            raise ConfigurationError(
                f"unknown fault phase {self.phase!r}; known: {PHASES}")
        if self.shard < 0 or self.attempt < 1:
            raise ConfigurationError(
                "fault shard must be >= 0 and attempt >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of injected faults for one distributed run.

    ``actions`` fire inside workers (through the task messages);
    ``abort_after_shard`` fires in the coordinator — it raises
    :class:`~repro.errors.CoordinatorAborted` immediately after that shard's
    carry is persisted, simulating a coordinator crash that a later run must
    recover from via the checkpoint directory.
    """

    actions: tuple[FaultAction, ...] = field(default=())
    abort_after_shard: int | None = None

    def action_for(self, shard: int, attempt: int,
                   phase: str) -> FaultAction | None:
        """The single action firing for this (shard, attempt, phase), if any."""
        for action in self.actions:
            if (action.shard, action.attempt, action.phase) \
                    == (shard, attempt, phase):
                return action
        return None

    def expected_attempts(self, shard: int, phase: str) -> int:
        """How many attempts this shard's phase takes under the plan.

        Attempt ``j`` is lost exactly when a kill/corrupt action targets
        ``(shard, j, phase)``; the count grows until the first clean attempt.
        (Delays do not consume an attempt.)
        """
        attempt = 1
        while True:
            action = self.action_for(shard, attempt, phase)
            if action is None or action.kind == "delay":
                return attempt
            attempt += 1

    def to_dict(self) -> dict:
        """JSON-able form (rides in fuzz replay configs)."""
        return {
            "actions": [{"kind": a.kind, "shard": a.shard,
                         "attempt": a.attempt, "phase": a.phase,
                         "seconds": a.seconds} for a in self.actions],
            "abort_after_shard": self.abort_after_shard,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        if not isinstance(raw, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        unknown = set(raw) - {"actions", "abort_after_shard"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan field(s): {sorted(unknown)}")
        try:
            actions = tuple(FaultAction(**a) for a in raw.get("actions", ()))
        except TypeError as exc:
            raise ConfigurationError(f"invalid fault action: {exc}") from None
        return cls(actions=actions,
                   abort_after_shard=raw.get("abort_after_shard"))


# -- wire format ---------------------------------------------------------------
#
# A message dict becomes one JSON document; every ndarray value is replaced
# by {"__ndarray__": <base64 .npy>}.  Using the .npy container (instead of
# raw bytes + side-channel dtype/shape) keeps the wire format self-describing
# — the property a socket transport would need.

_ND_KEY = "__ndarray__"


def _pack(value):
    if isinstance(value, np.ndarray):
        buf = io.BytesIO()
        np.save(buf, np.ascontiguousarray(value), allow_pickle=False)
        return {_ND_KEY: base64.b64encode(buf.getvalue()).decode("ascii")}
    if isinstance(value, dict):
        if _ND_KEY in value:
            raise ConfigurationError(
                f"message dicts must not use the reserved key {_ND_KEY!r}")
        return {k: _pack(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_pack(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _unpack(value):
    if isinstance(value, dict):
        if set(value) == {_ND_KEY}:
            raw = base64.b64decode(value[_ND_KEY])
            return np.load(io.BytesIO(raw), allow_pickle=False)
        return {k: _unpack(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unpack(v) for v in value]
    return value


def encode_message(msg: dict) -> bytes:
    """Serialize a protocol message to transport bytes."""
    mtype = msg.get("type")
    if mtype not in MESSAGE_TYPES:
        raise ConfigurationError(
            f"unknown message type {mtype!r}; known: {MESSAGE_TYPES}")
    return json.dumps(_pack(msg), sort_keys=True).encode()


def decode_message(raw: bytes) -> dict:
    """Inverse of :func:`encode_message`."""
    try:
        msg = _unpack(json.loads(raw.decode()))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"undecodable message: {exc}") from None
    if not isinstance(msg, dict) or msg.get("type") not in MESSAGE_TYPES:
        raise ConfigurationError("decoded message is not a protocol message")
    return msg
