"""Band sources: where a distributed run's input rows come from.

A :class:`BandSource` hands out horizontal bands of the image on demand.
Two implementations:

:class:`MatrixSource`
    Wraps an in-memory array.  The coordinator slices the band itself and
    embeds it in the ``task`` message — fine for images that fit in RAM,
    and what the :class:`~repro.backend.executors.DistributedBackend`
    adapter uses.

:class:`SyntheticSource`
    A *spec-serializable* procedural image: ``a[i, j] = (ci*i + cj*j + c0)
    % mod`` in ``uint8``.  Because it serializes to a tiny JSON spec, a
    worker regenerates its own rows locally — the coordinator never
    materialises the image, which is how the 65536² (4-gigapixel) demo
    runs on a memory-capped worker.  :meth:`rect` regenerates arbitrary
    sub-patches, so the demo can verify sampled rectangle sums without any
    process ever holding more than a narrow strip.

Specs round-trip through :func:`source_to_spec` / :func:`source_from_spec`
(plain JSON-able dicts), which is what lets a ``task`` message reference
"rows 4096..8192 of synthetic-65536" instead of shipping the pixels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class BandSource(ABC):
    """Produces horizontal bands ``[row_lo, row_hi)`` of one fixed image."""

    #: image height / width
    n_rows: int
    n_cols: int

    @property
    @abstractmethod
    def dtype(self) -> np.dtype:
        """Element dtype of the produced bands."""

    @abstractmethod
    def band(self, row_lo: int, row_hi: int) -> np.ndarray:
        """Rows ``[row_lo, row_hi)``, shape ``(row_hi - row_lo, n_cols)``."""

    def rect(self, top: int, left: int, bottom: int, right: int) -> np.ndarray:
        """Inclusive-corner sub-patch (verification helper).

        Default implementation goes through :meth:`band`; subclasses that
        can generate narrow patches directly should override it.
        """
        self._check_range(top, bottom + 1)
        if not (0 <= left <= right < self.n_cols):
            raise ConfigurationError(
                f"columns [{left}, {right}] outside [0, {self.n_cols - 1}]")
        return self.band(top, bottom + 1)[:, left:right + 1]

    def _check_range(self, row_lo: int, row_hi: int) -> None:
        if not (0 <= row_lo < row_hi <= self.n_rows):
            raise ConfigurationError(
                f"band rows [{row_lo}, {row_hi}) outside [0, {self.n_rows})")


class MatrixSource(BandSource):
    """An in-memory array served band by band."""

    def __init__(self, a: np.ndarray) -> None:
        a = np.asarray(a)
        if a.ndim != 2 or a.size == 0:
            raise ConfigurationError(
                f"input must be a non-empty 2-D array, got shape {a.shape}")
        self._a = a
        self.n_rows, self.n_cols = a.shape

    @property
    def dtype(self) -> np.dtype:
        return self._a.dtype

    def band(self, row_lo: int, row_hi: int) -> np.ndarray:
        self._check_range(row_lo, row_hi)
        return self._a[row_lo:row_hi]

    def rect(self, top: int, left: int, bottom: int, right: int) -> np.ndarray:
        self._check_range(top, bottom + 1)
        if not (0 <= left <= right < self.n_cols):
            raise ConfigurationError(
                f"columns [{left}, {right}] outside [0, {self.n_cols - 1}]")
        return self._a[top:bottom + 1, left:right + 1]


class SyntheticSource(BandSource):
    """Procedural uint8 image ``(ci*i + cj*j + c0) % mod``; spec-serializable.

    The coefficients default to values coprime with 251 so neighbouring
    rows and columns differ — a constant image would hide stitching bugs
    (every carry would be a multiple of the same column vector).
    """

    def __init__(self, n_rows: int, n_cols: int, *, ci: int = 3, cj: int = 7,
                 c0: int = 11, mod: int = 251) -> None:
        if n_rows <= 0 or n_cols <= 0:
            raise ConfigurationError(
                f"synthetic image must be non-empty, got {n_rows}x{n_cols}")
        if not (1 < mod <= 256):
            raise ConfigurationError(
                f"mod must be in (1, 256] for a uint8 image, got {mod}")
        self.n_rows, self.n_cols = int(n_rows), int(n_cols)
        self.ci, self.cj, self.c0, self.mod = int(ci), int(cj), int(c0), int(mod)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.uint8)

    def band(self, row_lo: int, row_hi: int) -> np.ndarray:
        self._check_range(row_lo, row_hi)
        return self.rect(row_lo, 0, row_hi - 1, self.n_cols - 1)

    def rect(self, top: int, left: int, bottom: int, right: int) -> np.ndarray:
        self._check_range(top, bottom + 1)
        if not (0 <= left <= right < self.n_cols):
            raise ConfigurationError(
                f"columns [{left}, {right}] outside [0, {self.n_cols - 1}]")
        i = np.arange(top, bottom + 1, dtype=np.int64)[:, None]
        j = np.arange(left, right + 1, dtype=np.int64)[None, :]
        return ((self.ci * i + self.cj * j + self.c0) % self.mod).astype(np.uint8)


def source_to_spec(source: BandSource) -> dict:
    """JSON-able spec for sources a worker can regenerate locally.

    :class:`MatrixSource` is deliberately *not* spec-serializable — its
    pixels travel inside the task message instead.
    """
    if isinstance(source, SyntheticSource):
        return {"kind": "synthetic", "n_rows": source.n_rows,
                "n_cols": source.n_cols, "ci": source.ci, "cj": source.cj,
                "c0": source.c0, "mod": source.mod}
    raise ConfigurationError(
        f"{type(source).__name__} cannot be sent as a spec; "
        "embed its bands in the task instead")


def source_from_spec(spec: dict) -> BandSource:
    """Inverse of :func:`source_to_spec` (runs on the worker side)."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ConfigurationError("source spec must be a dict with a 'kind'")
    kind = spec["kind"]
    if kind == "synthetic":
        return SyntheticSource(
            spec["n_rows"], spec["n_cols"], ci=spec.get("ci", 3),
            cj=spec.get("cj", 7), c0=spec.get("c0", 11),
            mod=spec.get("mod", 251))
    raise ConfigurationError(f"unknown source kind {kind!r}")
