"""Transports: how coordinator and workers exchange protocol bytes.

Both transports expose the same tiny surface — ``send(worker, raw)``,
``recv(deadline) -> raw``, ``close()`` — and both carry **encoded message
bytes only** (see :mod:`repro.distsat.protocol`), so a socket-based
transport would slot in without touching the coordinator or the worker.

:class:`InlineTransport`
    Deterministic in-process execution: tasks run in submission order, one
    at a time, through the same encode/decode round trip the process
    transport pays — the wire format is always exercised.  An injected
    ``kill`` surfaces as :class:`~repro.distsat.worker.InjectedKill` and is
    converted to the same ``died`` message a real worker death produces.
    This is what tests, conformance and the fuzzer use: zero process
    overhead, fully reproducible scheduling.

:class:`ProcessTransport`
    A real ``multiprocessing`` pool: one task queue per worker (so a dead
    worker's *queued* tasks survive its death — only the in-flight task is
    lost) and one shared result queue.  Worker death — injected
    ``os._exit(17)`` or anything else — is detected by liveness polling;
    the transport synthesizes the ``died`` message and respawns a
    replacement on the same queues.
"""

from __future__ import annotations

import collections
import queue as queue_mod
import time

from repro.distsat.protocol import decode_message, encode_message
from repro.distsat.worker import InjectedKill, handle_task, worker_main
from repro.errors import ConfigurationError, DistributedError


def _check_workers(workers: int) -> int:
    if not isinstance(workers, int) or isinstance(workers, bool) \
            or workers <= 0:
        raise ConfigurationError(
            f"transport needs a positive worker count, got {workers!r}")
    return workers


class InlineTransport:
    """Deterministic in-process transport (the default)."""

    def __init__(self, workers: int = 1) -> None:
        self.n_workers = _check_workers(workers)
        self._pending: collections.deque[tuple[int, bytes]] \
            = collections.deque()

    def send(self, worker: int, raw: bytes) -> None:
        if not 0 <= worker < self.n_workers:
            raise ConfigurationError(
                f"no such worker {worker} (have {self.n_workers})")
        self._pending.append((worker, raw))

    def recv(self, deadline: float | None = None) -> bytes:
        if not self._pending:
            raise DistributedError(
                "recv() with no task in flight: the coordinator queued "
                "nothing for the inline transport")
        worker, raw = self._pending.popleft()
        task = decode_message(raw)
        if task["type"] != "task":
            raise ConfigurationError(
                f"inline transport got a {task['type']!r} message; only "
                "tasks are executable")
        task["worker"] = worker
        try:
            result = handle_task(task)
        except InjectedKill as exc:
            # Inline deaths are precise: exactly this task was in flight,
            # so the died message names it (no other work can be lost).
            return encode_message({"type": "died", "worker": worker,
                                   "phase": task["phase"],
                                   "shard": task["shard"],
                                   "reason": str(exc)})
        return encode_message(result)

    def close(self) -> None:
        self._pending.clear()


class ProcessTransport:
    """Real worker processes behind per-worker task queues."""

    #: Exit code of an injected hard kill (``os._exit`` in the worker).
    KILL_EXIT_CODE = 17

    def __init__(self, workers: int = 2) -> None:
        import multiprocessing as mp
        self.n_workers = _check_workers(workers)
        self._mp = mp
        self._result_q = mp.Queue()
        self._task_qs = [mp.Queue() for _ in range(self.n_workers)]
        self._procs = [self._spawn(w) for w in range(self.n_workers)]

    def _spawn(self, worker: int):
        proc = self._mp.Process(target=worker_main,
                                args=(worker, self._task_qs[worker],
                                      self._result_q), daemon=True)
        proc.start()
        return proc

    def send(self, worker: int, raw: bytes) -> None:
        if not 0 <= worker < self.n_workers:
            raise ConfigurationError(
                f"no such worker {worker} (have {self.n_workers})")
        self._task_qs[worker].put(raw)

    def recv(self, deadline: float | None = None) -> bytes:
        """Next result/died message; respawns any worker found dead.

        ``deadline`` is an absolute ``time.monotonic()`` bound; ``None``
        means 120 s from now.  A quiet transport past the deadline raises
        :class:`DistributedError` rather than hanging the coordinator.
        """
        if deadline is None:
            deadline = time.monotonic() + 120.0
        while True:
            try:
                raw = self._result_q.get(timeout=0.05)
            except queue_mod.Empty:
                raw = None
            if raw is not None:
                msg = decode_message(raw)
                if msg["type"] == "died":
                    # The worker announced its own death (a reported
                    # exception): its process is gone too — replace it
                    # before the coordinator resubmits anything.
                    self._replace(msg["worker"])
                return raw
            for worker, proc in enumerate(self._procs):
                if not proc.is_alive():
                    code = proc.exitcode
                    self._replace(worker)
                    return encode_message(
                        {"type": "died", "worker": worker,
                         "reason": f"worker process exited with code {code}"})
            if time.monotonic() > deadline:
                raise DistributedError(
                    "no worker produced a result before the deadline")

    def _replace(self, worker: int) -> None:
        proc = self._procs[worker]
        if proc.is_alive():  # polite 'died': give the exit a moment
            proc.join(timeout=5.0)
        self._procs[worker] = self._spawn(worker)

    def close(self) -> None:
        for worker in range(self.n_workers):
            try:
                self._task_qs[worker].put(encode_message({"type": "shutdown"}))
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        for q in (*self._task_qs, self._result_q):
            q.close()
            # Unread leftovers (e.g. results queued after an abort) must not
            # block interpreter exit on the feeder thread.
            q.cancel_join_thread()


def make_transport(name: str, workers: int | None):
    """Transport factory used by the coordinator (``inline``/``process``)."""
    if name == "inline":
        return InlineTransport(workers or 1)
    if name == "process":
        return ProcessTransport(workers or 2)
    raise ConfigurationError(
        f"unknown transport {name!r}; known: inline, process")
