"""Worker-side logic of the distributed executor.

A worker is a loop over the transport: decode a ``task`` message, run
:func:`handle_task`, encode the ``result`` back.  Tasks are fully
self-contained — the band (or a regenerable source spec), the carry-in, the
execution configuration and the fault plan all ride in the message — so a
worker holds **no** state between tasks.  That is what makes recovery
trivial to reason about: a replacement worker given the same task bytes
produces the same result bytes.

Two phases (see :mod:`repro.distsat.protocol`):

``reduce``
    Column sums of the shard's band — its carry contribution.  Chunked
    (``chunk_rows`` rows at a time) when the band comes from a source spec,
    so a memory-capped worker never materialises its whole shard.

``apply``
    The shard's rows of the *global* SAT: the band's local SAT (computed
    through any registered backend — the ``engine`` task field) stitched
    with the coordinator-supplied carry-in by the band identity
    ``sat[i][j] = band_sat[i][j] + cumsum(carry)[j]`` — the SKSS look-back
    algebra one level up.  In ``collect`` mode the stitched rows travel
    back in the result; in digest mode (the gigapixel demo) only a CRC32
    of the stitched bytes and the shard's bottom SAT row do.

The fault seam lives here and only here: :func:`handle_task` consults the
task's fault plan once, before doing any work for ``kill``/``delay`` and
after checksumming for ``corrupt`` — so every injected failure is a
deterministic function of ``(shard, attempt, phase)``.
"""

from __future__ import annotations

import time
import zlib
from typing import Callable

import numpy as np

from repro.distsat.protocol import FaultPlan, checksum, decode_message, \
    encode_message
from repro.distsat.sources import source_from_spec
from repro.errors import ConfigurationError


class InjectedKill(Exception):
    """Raised by the in-process transport's kill seam in place of a real
    worker death (the process transport calls ``os._exit`` instead)."""


def compute_band_sat(band: np.ndarray, *, algorithm: str | None,
                     tile_width: int, acc_dtype, engine: str) -> np.ndarray:
    """The band's local SAT through a registered backend."""
    from repro.backend.registry import resolve_backend
    return resolve_backend(engine).compute(
        band, algorithm=algorithm, tile_width=tile_width,
        dtype_policy=acc_dtype)


def _iter_chunks(task: dict):
    """Yield the shard's band ``chunk_rows`` rows at a time.

    An embedded band is yielded in chunks too (same code path); a source
    spec is regenerated chunk by chunk so only one chunk is ever live.
    """
    row_lo, row_hi = task["row_lo"], task["row_hi"]
    chunk = task.get("chunk_rows") or (row_hi - row_lo)
    if "band" in task:
        band = task["band"]
        if band.shape[0] != row_hi - row_lo:
            raise ConfigurationError(
                f"task band has {band.shape[0]} rows, expected "
                f"{row_hi - row_lo}")
        for lo in range(0, band.shape[0], chunk):
            yield band[lo:lo + chunk]
    elif "source" in task:
        source = source_from_spec(task["source"])
        for lo in range(row_lo, row_hi, chunk):
            yield source.band(lo, min(lo + chunk, row_hi))
    else:
        raise ConfigurationError("task carries neither a band nor a source")


def handle_task(task: dict, *,
                on_kill: Callable[[], None] | None = None) -> dict:
    """Execute one task message; returns the result message.

    ``on_kill`` is what an injected ``kill`` does — the inline transport
    leaves the default (raise :class:`InjectedKill`), the process worker
    passes a hard ``os._exit``.
    """
    phase = task["phase"]
    shard, attempt = task["shard"], task["attempt"]
    plan = FaultPlan.from_dict(task["fault"]) if task.get("fault") else None
    action = plan.action_for(shard, attempt, phase) if plan else None
    if action is not None and action.kind == "kill":
        if on_kill is not None:
            on_kill()
        raise InjectedKill(
            f"injected kill: shard {shard} attempt {attempt} ({phase})")
    if action is not None and action.kind == "delay":
        time.sleep(action.seconds)

    acc = np.dtype(task["acc_dtype"])
    result: dict = {"type": "result", "phase": phase, "shard": shard,
                    "attempt": attempt, "worker": task.get("worker", 0)}
    peak = 0
    if phase == "reduce":
        col_sums = None
        for chunk in _iter_chunks(task):
            peak = max(peak, chunk.nbytes)
            s = chunk.sum(axis=0, dtype=acc)
            col_sums = s if col_sums is None else col_sums + s
        assert col_sums is not None
        result["col_sums"] = col_sums
        result["checksum"] = checksum(col_sums)
        corruptible = col_sums
    elif phase == "apply":
        carry = task["carry_in"].astype(acc, copy=True)
        if checksum(task["carry_in"]) != task["carry_checksum"]:
            raise ConfigurationError(
                f"carry-in for shard {shard} failed its checksum in flight")
        collect = task.get("collect", True)
        pieces: list[np.ndarray] = []
        digest = 0
        bottom = None
        for chunk in _iter_chunks(task):
            local = compute_band_sat(chunk, algorithm=task["algorithm"],
                                     tile_width=task["tile_width"],
                                     acc_dtype=acc, engine=task["engine"])
            stitched = local + np.cumsum(carry, dtype=acc)[None, :]
            peak = max(peak, chunk.nbytes + local.nbytes)
            carry = carry + chunk.sum(axis=0, dtype=acc)
            bottom = stitched[-1].copy()
            if collect:
                pieces.append(stitched)
            else:
                digest = zlib.crc32(
                    np.ascontiguousarray(stitched).tobytes(), digest)
        assert bottom is not None
        result["bottom_row"] = bottom
        result["checksum"] = checksum(bottom)
        corruptible = bottom
        if collect:
            rows = pieces[0] if len(pieces) == 1 else np.concatenate(pieces)
            result["rows"] = rows
            result["checksum"] = checksum(rows)
            corruptible = rows
        else:
            result["digest"] = digest & 0xFFFFFFFF
    else:  # pragma: no cover - protocol guards phases upstream
        raise ConfigurationError(f"unknown phase {phase!r}")

    result["peak_bytes"] = peak
    if action is not None and action.kind == "corrupt":
        # Damage the payload *after* its checksum was computed: the
        # coordinator must notice the mismatch and retry the shard.  A bit
        # flip, not an add — an add can be absorbed by float rounding at
        # large magnitudes, turning the injected fault into a silent no-op.
        corruptible.reshape(-1)[:1].view(np.uint8)[0] ^= 0xFF
    return result


def worker_main(worker_id: int, task_q, result_q) -> None:
    """Entry point of one pool process: drain tasks until ``shutdown``.

    Runs in a child process: receives/sends protocol *bytes* only.  An
    injected kill hard-exits the process (exit code 17); the transport
    notices the death and synthesizes a ``died`` message for the
    coordinator.  Any other exception also ends the worker, but politely —
    it reports ``died`` with the reason first, so configuration mistakes
    surface as messages instead of silent exits.
    """
    import os
    while True:
        raw = task_q.get()
        msg = decode_message(raw)
        if msg["type"] == "shutdown":
            break
        msg["worker"] = worker_id
        try:
            result = handle_task(msg, on_kill=lambda: os._exit(17))
        except BaseException as exc:  # noqa: BLE001 - report, then die
            result_q.put(encode_message(
                {"type": "died", "worker": worker_id,
                 "phase": msg["phase"], "shard": msg["shard"],
                 "reason": f"{type(exc).__name__}: {exc}"}))
            raise SystemExit(1) from exc
        result_q.put(encode_message(result))
