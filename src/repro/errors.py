"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so callers
can catch a single base class.  Simulator-specific failures (deadlock, invalid
memory access, resource exhaustion) get their own subclasses because tests and
benchmarks assert on them individually.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A run configuration is inconsistent (e.g. W not a multiple of the warp size)."""


class SimulationError(ReproError):
    """Base class for errors raised by the GPU simulator."""


class DeadlockError(SimulationError):
    """All resident blocks are spin-waiting and no global-memory progress is possible.

    This is the failure mode single-kernel soft synchronization must avoid: if a
    block spins on a flag owned by a block that the dispatcher has not yet made
    resident, the kernel hangs on real hardware.  The simulator detects the
    condition and raises instead of looping forever.
    """

    def __init__(self, message: str, *, resident_blocks: tuple[int, ...] = (),
                 pending_blocks: int = 0) -> None:
        super().__init__(message)
        self.resident_blocks = resident_blocks
        self.pending_blocks = pending_blocks


class DeadlockSuspectedError(SimulationError):
    """A single ``wait_until`` spin-wait exceeded its configured iteration
    bound (``GPU(spin_bound=...)``).

    Unlike :class:`DeadlockError` — the scheduler's global "nobody can make
    progress" verdict — this is a *local* tripwire: one block polled one flag
    more times than any plausibly-live protocol should need.  Harnesses that
    replay suspected-hung protocols (the model checker's counterexamples, the
    sanitize-mode fuzzer) set a bound so hangs fail fast with the offending
    buffer and index instead of spinning until the global detector fires.
    """

    def __init__(self, message: str, *, block_id: int = -1,
                 buffer_name: str = "", flat_index: int = -1,
                 spins: int = 0) -> None:
        super().__init__(message)
        self.block_id = block_id
        self.buffer_name = buffer_name
        self.flat_index = flat_index
        self.spins = spins


class InvalidAccessError(SimulationError):
    """An out-of-bounds or wrongly-typed global/shared memory access."""


class AllocationError(SimulationError):
    """Global or shared memory allocation exceeded device capacity."""


class KernelLaunchError(SimulationError):
    """A kernel launch request violated device limits (threads per block, etc.)."""


class RaceConditionError(SimulationError):
    """The simulator's debug checker observed a data hazard (e.g. a non-monotone
    status flag or a read of a location with an uncommitted remote store)."""


class ProtocolError(SimulationError):
    """A publish/look-back protocol invariant was violated in-kernel (e.g. a
    status flag was written with a value that does not strictly increase the
    committed flag — statuses must be monotone for pollers to be sound)."""


class ExtractionError(ReproError):
    """Static protocol extraction failed: a kernel's AST does not match the
    protocol shape its module declares (see :mod:`repro.analysis.protomodel`).

    Raised when a kernel drifts from its declared publish/wait/walk structure
    — the extraction cross-check is itself a static gate."""


class CostModelError(ReproError):
    """Static cost verification failed: a kernel's AST-derived global-memory
    traffic disagrees with its declared ``COST_HINTS``, with Table I, or with
    the dynamic counters it is cross-validated against (see
    :mod:`repro.analysis.costcheck`).  Carries the offending source location
    in the message when one exists."""


class NumericModelError(ReproError):
    """Static numerical-accuracy verification failed: a kernel's AST-derived
    rounding-error sites disagree with its declared ``ERR_HINTS``, a proven
    bound was violated empirically, or a tolerance was requested for an
    algorithm/dtype the error model cannot cover (see
    :mod:`repro.analysis.numcheck`).  Carries the offending source location
    in the message when one exists."""


class ModelCheckError(ReproError):
    """The explicit-state explorer could not complete (e.g. the state budget
    was exhausted before the frontier emptied; see
    :mod:`repro.analysis.modelcheck`)."""


class DistributedError(ReproError):
    """Base class for runtime failures of the sharded out-of-core executor
    (:mod:`repro.distsat`).  Configuration mistakes still raise
    :class:`ConfigurationError`; these subclasses cover things that go wrong
    *during* a distributed run — worker crashes, corrupted carries, an
    aborted coordinator."""


class ShardFailedError(DistributedError):
    """One shard exhausted its retry budget: every attempt was lost to a
    worker death or a rejected (corrupt) result."""

    def __init__(self, message: str, *, shard: int = -1,
                 attempts: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


class CarryChecksumError(DistributedError):
    """A carry vector — persisted in the checkpoint directory or carried in
    a protocol message — failed its checksum.  Raised when corruption is
    detected somewhere it cannot be retried (a damaged checkpoint file);
    in-flight corruption is retried and only surfaces as
    :class:`ShardFailedError` once the budget is gone."""


class CoordinatorAborted(DistributedError):
    """The fault plan stopped the coordinator mid-run (a simulated crash).

    Everything committed so far is already persisted in the checkpoint
    directory, so a new coordinator pointed at the same directory resumes
    from the last persisted carry instead of starting over — the property
    the crash-recovery suite pins."""

    def __init__(self, message: str, *, committed_shards: int = 0) -> None:
        super().__init__(message)
        self.committed_shards = committed_shards
