"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError`, so callers
can catch a single base class.  Simulator-specific failures (deadlock, invalid
memory access, resource exhaustion) get their own subclasses because tests and
benchmarks assert on them individually.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A run configuration is inconsistent (e.g. W not a multiple of the warp size)."""


class SimulationError(ReproError):
    """Base class for errors raised by the GPU simulator."""


class DeadlockError(SimulationError):
    """All resident blocks are spin-waiting and no global-memory progress is possible.

    This is the failure mode single-kernel soft synchronization must avoid: if a
    block spins on a flag owned by a block that the dispatcher has not yet made
    resident, the kernel hangs on real hardware.  The simulator detects the
    condition and raises instead of looping forever.
    """

    def __init__(self, message: str, *, resident_blocks: tuple[int, ...] = (),
                 pending_blocks: int = 0) -> None:
        super().__init__(message)
        self.resident_blocks = resident_blocks
        self.pending_blocks = pending_blocks


class InvalidAccessError(SimulationError):
    """An out-of-bounds or wrongly-typed global/shared memory access."""


class AllocationError(SimulationError):
    """Global or shared memory allocation exceeded device capacity."""


class KernelLaunchError(SimulationError):
    """A kernel launch request violated device limits (threads per block, etc.)."""


class RaceConditionError(SimulationError):
    """The simulator's debug checker observed a data hazard (e.g. a non-monotone
    status flag or a read of a location with an uncommitted remote store)."""


class ProtocolError(SimulationError):
    """A publish/look-back protocol invariant was violated in-kernel (e.g. a
    status flag was written with a value that does not strictly increase the
    committed flag — statuses must be monotone for pollers to be sound)."""
