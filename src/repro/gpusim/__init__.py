"""A functional, CUDA-like GPU simulator (the paper's execution substrate).

The simulator reproduces the aspects of the CUDA machine the paper's
algorithms depend on for *correctness* and *accounting*:

* blocks dispatched in launch order with bounded residency per SM;
* arbitrary interleaving of resident blocks (seeded / adversarial policies);
* ``atomicAdd`` with immediate visibility;
* relaxed visibility of plain global stores until ``__threadfence()``;
* per-warp global-memory transaction (coalescing) accounting;
* shared-memory bank-conflict accounting;
* warp shuffles and the warp prefix-sum algorithm;
* deadlock detection for unsound soft-synchronization schemes.

See :class:`repro.gpusim.GPU` for the entry point.
"""

from repro.gpusim.block import SPIN, SYNC, BlockContext
from repro.gpusim.counters import KernelStats, LaunchSummary, MemoryTraffic
from repro.gpusim.device import (NUM_BANKS, SEGMENT_BYTES, TINY_DEVICE,
                                 TITAN_V, WARP_SIZE, DeviceProperties)
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import (GlobalBuffer, GlobalMemory, StoreBuffer,
                                 count_warp_transactions)
from repro.gpusim.observer import MemoryObserver
from repro.gpusim.scheduler import POLICIES, DispatchModel, Scheduler
from repro.gpusim.shared import SharedMemory, bank_conflict_cycles
from repro.gpusim.timing import DEFAULT_COSTS, CostWeights
from repro.gpusim.trace import TraceEvent, Tracer, render_timeline
from repro.gpusim.warp import (shfl_idx, shfl_up, warp_exclusive_scan,
                               warp_inclusive_scan, warp_reduce_sum)

__all__ = [
    "GPU", "BlockContext", "SPIN", "SYNC",
    "KernelStats", "LaunchSummary", "MemoryTraffic",
    "DeviceProperties", "TITAN_V", "TINY_DEVICE",
    "WARP_SIZE", "NUM_BANKS", "SEGMENT_BYTES",
    "GlobalBuffer", "GlobalMemory", "StoreBuffer", "count_warp_transactions",
    "MemoryObserver",
    "Scheduler", "POLICIES", "DispatchModel",
    "SharedMemory", "bank_conflict_cycles",
    "CostWeights", "DEFAULT_COSTS",
    "Tracer", "TraceEvent", "render_timeline",
    "shfl_up", "shfl_idx", "warp_inclusive_scan", "warp_exclusive_scan",
    "warp_reduce_sum",
]
