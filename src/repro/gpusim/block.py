"""Per-block execution context: the API simulated kernels are written against.

A kernel is a Python *generator function* ``def kern(ctx, *args)``.  Per-thread
work is expressed as NumPy operations over vectors with one element per thread
(``ctx.tids`` is the thread-index vector).  The generator must ``yield`` a
token at every point where other blocks may legally observe or interleave:

* ``yield ctx.syncthreads()`` — intra-block barrier (also a scheduling point);
* ``yield SPIN`` (usually via ``yield from ctx.wait_until(...)``) — one
  iteration of a spin-wait on a global flag.

Global stores go through the block's :class:`~repro.gpusim.memory.StoreBuffer`
(see the consistency notes there); ``ctx.threadfence()`` commits them in
program order.  All traffic is accounted into the launch's
:class:`~repro.gpusim.counters.MemoryTraffic`, and every operation accrues
cycle cost used by the scheduler's emergent clock.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError, DeadlockSuspectedError
from repro.gpusim import warp as warp_ops
from repro.gpusim.counters import MemoryTraffic
from repro.gpusim.device import DeviceProperties
from repro.gpusim.memory import GlobalBuffer, GlobalMemory, StoreBuffer, \
    count_warp_transactions
from repro.gpusim.shared import SharedMemory
from repro.gpusim.timing import DEFAULT_COSTS, CostWeights

#: Yield token: the block hit an intra-block barrier (progress was made).
SYNC = "sync"
#: Yield token: the block polled a flag and is still waiting (no progress).
SPIN = "spin"


class BlockContext:
    """Execution context handed to a kernel generator for one CUDA block."""

    def __init__(self, *, block_id: int, grid_blocks: int, nthreads: int,
                 device: DeviceProperties, memory: GlobalMemory,
                 store_buffer: StoreBuffer, traffic: MemoryTraffic,
                 costs: CostWeights = DEFAULT_COSTS,
                 spin_bound: int | None = None) -> None:
        if nthreads % device.warp_size:
            raise ConfigurationError(
                f"block of {nthreads} threads is not a whole number of warps")
        self.block_id = block_id
        self.grid_blocks = grid_blocks
        self.nthreads = nthreads
        self.device = device
        self.memory = memory
        self.traffic = traffic
        self.costs = costs
        self._store_buffer = store_buffer
        self.spin_bound = spin_bound
        self.shared = SharedMemory(device, traffic)
        #: Thread-index vector, one entry per thread in the block.
        self.tids = np.arange(nthreads)
        self._cycles = 0.0

    # -- cycle accounting -----------------------------------------------------

    def charge(self, cycles: float) -> None:
        """Accrue explicit compute cost (rarely needed by kernels directly)."""
        self._cycles += cycles

    def take_cycles(self) -> float:
        """Return and reset cycles accrued since the last scheduler step."""
        c = self._cycles
        self._cycles = 0.0
        return c

    def _warps(self, n_accesses: int) -> int:
        w = self.device.warp_size
        return (n_accesses + w - 1) // w

    # -- global memory ---------------------------------------------------------

    def gload(self, buf: GlobalBuffer, flat_indices) -> np.ndarray:
        """Vectorised global load at flat element indices (any shape).

        Reads observe committed memory patched with this block's own pending
        stores.  Transactions are counted per warp in thread order.
        """
        idx = np.asarray(flat_indices, dtype=np.int64)
        flat = idx.ravel()
        values = self._store_buffer.overlay_read(buf, flat)
        ntx = count_warp_transactions(buf.byte_addresses(flat), self.device.warp_size)
        self.traffic.global_read_requests += int(flat.size)
        self.traffic.global_read_transactions += ntx
        self._cycles += ntx * self.costs.global_transaction \
            + self._warps(flat.size) * self.costs.global_issue
        return values.reshape(idx.shape)

    def gload_scalar(self, buf: GlobalBuffer, flat_index: int):
        """Single-element global load (e.g. one thread polling a status flag)."""
        return self.gload(buf, np.asarray([flat_index]))[0]

    def gstore(self, buf: GlobalBuffer, flat_indices, values) -> None:
        """Vectorised global store; buffered under relaxed consistency."""
        idx = np.asarray(flat_indices, dtype=np.int64).ravel()
        ntx = count_warp_transactions(buf.byte_addresses(idx), self.device.warp_size)
        self.traffic.global_write_requests += int(idx.size)
        self.traffic.global_write_transactions += ntx
        self._cycles += ntx * self.costs.global_transaction \
            + self._warps(idx.size) * self.costs.global_issue
        self._store_buffer.store(buf, idx, np.asarray(values))

    def gstore_scalar(self, buf: GlobalBuffer, flat_index: int, value) -> None:
        self.gstore(buf, np.asarray([flat_index]), np.asarray([value]))

    def atomic_add(self, buf: GlobalBuffer, flat_index: int, value=1):
        """CUDA ``atomicAdd``: immediately visible; returns the old value."""
        self._cycles += self.costs.atomic
        old = self.memory.atomic_add(buf, flat_index, value, self.traffic)
        if self.memory.observer is not None:
            self.memory.observer.on_atomic(self.block_id, buf, flat_index,
                                           old, value)
        return old

    def threadfence(self) -> None:
        """``__threadfence()``: commit this block's stores in program order."""
        self.traffic.fences += 1
        self._cycles += self.costs.global_issue
        self._store_buffer.fence()

    # -- shared memory ----------------------------------------------------------

    def salloc(self, name: str, num_words: int, dtype=np.float64) -> np.ndarray:
        return self.shared.alloc(name, num_words, dtype)

    def sload(self, name: str, offsets) -> np.ndarray:
        before = self.traffic.shared_bank_conflict_cycles
        out = self.shared.load(name, np.asarray(offsets))
        conflicts = self.traffic.shared_bank_conflict_cycles - before
        n = np.asarray(offsets).size
        self._cycles += self._warps(n) * self.costs.shared_access \
            + conflicts * self.costs.bank_conflict
        return out

    def sstore(self, name: str, offsets, values) -> None:
        before = self.traffic.shared_bank_conflict_cycles
        self.shared.store(name, np.asarray(offsets), values)
        conflicts = self.traffic.shared_bank_conflict_cycles - before
        n = np.asarray(offsets).size
        self._cycles += self._warps(n) * self.costs.shared_access \
            + conflicts * self.costs.bank_conflict

    # -- warp primitives ---------------------------------------------------------

    def warp_inclusive_scan(self, values: np.ndarray) -> np.ndarray:
        before = self.traffic.shuffle_ops
        out = warp_ops.warp_inclusive_scan(values, self.traffic, self.device.warp_size)
        self._cycles += (self.traffic.shuffle_ops - before) / self.device.warp_size \
            * self.costs.shuffle
        return out

    def warp_exclusive_scan(self, values: np.ndarray) -> np.ndarray:
        before = self.traffic.shuffle_ops
        out = warp_ops.warp_exclusive_scan(values, self.traffic, self.device.warp_size)
        self._cycles += (self.traffic.shuffle_ops - before) / self.device.warp_size \
            * self.costs.shuffle
        return out

    def warp_reduce_sum(self, values: np.ndarray) -> np.ndarray:
        before = self.traffic.shuffle_ops
        out = warp_ops.warp_reduce_sum(values, self.traffic, self.device.warp_size)
        self._cycles += (self.traffic.shuffle_ops - before) / self.device.warp_size \
            * self.costs.shuffle
        return out

    # -- synchronization tokens ---------------------------------------------------

    def syncthreads(self) -> str:
        """Account a ``__syncthreads()`` and return the yield token."""
        self.traffic.syncthreads += 1
        self._cycles += self.costs.sync
        return SYNC

    def wait_until(self, buf: GlobalBuffer, flat_index: int,
                   predicate: Callable[[float], bool]) -> Iterator[str]:
        """Spin-wait on ``buf[flat_index]`` until ``predicate(value)`` holds.

        Use as ``value = yield from ctx.wait_until(...)``.  Each unsuccessful
        poll yields :data:`SPIN`, letting the scheduler run other blocks (and
        detect deadlock if nobody can make progress).

        Polling a location declares it a synchronization flag: the sanitizer
        treats it as a protocol variable (monotone, exempt from data-race
        checks, a source of fence-justified happens-before edges) rather than
        ordinary data.
        """
        if buf.kind == "data":
            buf.kind = "status"
        if self.memory.observer is not None:
            self.memory.observer.on_spin_poll(self.block_id, buf, flat_index)
        spins = 0
        while True:
            value = self.gload_scalar(buf, flat_index)
            if predicate(value):
                return value
            spins += 1
            if self.spin_bound is not None and spins > self.spin_bound:
                raise DeadlockSuspectedError(
                    f"block {self.block_id} spun {spins} times on "
                    f"{buf.name}[{flat_index}] (last value {value!r}) without "
                    f"the wait predicate holding; spin_bound="
                    f"{self.spin_bound} exceeded",
                    block_id=self.block_id, buffer_name=buf.name,
                    flat_index=flat_index, spins=spins)
            self.traffic.spin_iterations += 1
            self._cycles += self.costs.spin_poll
            yield SPIN
