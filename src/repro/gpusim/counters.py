"""Traffic and event counters for the functional GPU simulator.

The counters are the simulator's measurement surface: Table I of the paper
(global reads/writes, kernel calls, thread counts) is *measured* from these
rather than asserted, and the performance model consumes them to predict
running times.

Counting conventions
--------------------
* ``*_requests`` count individual element accesses (one per thread per access),
  matching the paper's "read/write operations per element" accounting.
* ``*_transactions`` count 32-byte global-memory sectors touched per warp
  access, the quantity actual DRAM bandwidth is spent on.  A fully coalesced
  float32 warp access costs 4 transactions; a fully strided one costs 32.
* ``shared_bank_conflict_cycles`` counts the *extra* serialized cycles caused
  by bank conflicts (0 for a conflict-free access; degree-1 for an access where
  some bank is hit by ``degree`` distinct addresses).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields


@dataclass
class MemoryTraffic:
    """Mutable bundle of traffic counters for one kernel launch (or aggregate)."""

    global_read_requests: int = 0
    global_write_requests: int = 0
    global_read_transactions: int = 0
    global_write_transactions: int = 0
    atomic_ops: int = 0
    shared_read_requests: int = 0
    shared_write_requests: int = 0
    shared_bank_conflict_cycles: int = 0
    shuffle_ops: int = 0
    spin_iterations: int = 0
    fences: int = 0
    syncthreads: int = 0

    def merge(self, other: "MemoryTraffic") -> None:
        """Accumulate ``other`` into this counter bundle in place."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "MemoryTraffic":
        return MemoryTraffic(**{f.name: getattr(self, f.name) for f in fields(self)})

    @property
    def global_bytes_read(self) -> int:
        """Bytes actually moved from DRAM for reads (transaction granularity)."""
        from repro.gpusim.device import SEGMENT_BYTES
        return self.global_read_transactions * SEGMENT_BYTES

    @property
    def global_bytes_written(self) -> int:
        """Bytes actually moved to DRAM for writes (transaction granularity)."""
        from repro.gpusim.device import SEGMENT_BYTES
        return self.global_write_transactions * SEGMENT_BYTES

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{k}={v}" for k, v in self.as_dict().items() if v]
        return "MemoryTraffic(" + ", ".join(parts) + ")"


@dataclass
class KernelStats:
    """Statistics of a single simulated kernel launch."""

    name: str
    grid_blocks: int
    threads_per_block: int
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)
    #: Number of scheduler steps executed (a step runs a block to its next yield).
    scheduler_steps: int = 0
    #: Number of blocks that ran (== grid_blocks unless the kernel early-exits).
    blocks_executed: int = 0
    #: Peak number of simultaneously resident blocks (occupancy actually used).
    max_resident_observed: int = 0
    #: Emergent makespan estimate in model cycles (see gpusim.timing).
    sim_cycles: float = 0.0

    @property
    def total_threads(self) -> int:
        """Total number of threads the launch requested (grid x block)."""
        return self.grid_blocks * self.threads_per_block


@dataclass
class KernelBreakdown:
    """Merged statistics of every launch sharing one (normalized) kernel name.

    Wavefront algorithms launch the same kernel once per anti-diagonal with
    names like ``1r1w_wave_0``, ``1r1w_wave_1``, ...; the breakdown strips
    the trailing ``_<digits>`` so static per-kernel traffic predictions (see
    :mod:`repro.analysis.costcheck`) can be cross-validated against one
    aggregate per kernel."""

    name: str
    launches: int = 0
    grid_blocks: int = 0
    traffic: MemoryTraffic = field(default_factory=MemoryTraffic)


@dataclass
class LaunchSummary:
    """Aggregate statistics over a sequence of kernel launches (one algorithm run)."""

    kernels: list[KernelStats] = field(default_factory=list)

    def add(self, stats: KernelStats) -> None:
        self.kernels.append(stats)

    @property
    def kernel_calls(self) -> int:
        return len(self.kernels)

    @property
    def max_threads(self) -> int:
        """Maximum number of threads over all kernel calls (paper Table I metric)."""
        return max((k.total_threads for k in self.kernels), default=0)

    @property
    def traffic(self) -> MemoryTraffic:
        total = MemoryTraffic()
        for k in self.kernels:
            total.merge(k.traffic)
        return total

    @property
    def global_read_requests(self) -> int:
        return self.traffic.global_read_requests

    @property
    def global_write_requests(self) -> int:
        return self.traffic.global_write_requests

    def per_kernel(self) -> dict[str, KernelBreakdown]:
        """Traffic per *kernel* rather than per launch.

        Launch names are normalized by stripping a trailing ``_<digits>``
        suffix (per-diagonal wavefront launches, per-band hybrid launches
        keep their band letter), and all launches mapping to the same name
        are merged."""
        out: dict[str, KernelBreakdown] = {}
        for k in self.kernels:
            name = re.sub(r"_\d+$", "", k.name)
            entry = out.setdefault(name, KernelBreakdown(name=name))
            entry.launches += 1
            entry.grid_blocks += k.grid_blocks
            entry.traffic.merge(k.traffic)
        return out

    def reset(self) -> None:
        self.kernels.clear()
