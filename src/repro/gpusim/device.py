"""Device descriptions for the functional GPU simulator.

A :class:`DeviceProperties` instance captures the static resources of a GPU:
streaming multiprocessor (SM) count, warp width, per-block limits, memory
capacities and the raw speeds used by the cost model.  The constants for the
paper's testbed (NVIDIA TITAN V) are provided as :data:`TITAN_V`; a deliberately
tiny device (:data:`TINY_DEVICE`) is provided for tests that need to exercise
low-residency corner cases such as soft-synchronization deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Number of threads in a warp on every CUDA-capable device the paper considers.
WARP_SIZE = 32

#: Number of shared-memory banks (one 4-byte word wide each).
NUM_BANKS = 32

#: Width in bytes of one global-memory transaction segment.  Modern NVIDIA
#: hardware services global loads/stores in 32-byte sectors; a fully coalesced
#: warp access to consecutive 4-byte words therefore costs 4 sectors, while a
#: fully strided access costs 32.
SEGMENT_BYTES = 32


@dataclass(frozen=True)
class DeviceProperties:
    """Static description of a simulated GPU.

    Attributes mirror the CUDA device-properties fields the paper's algorithms
    care about.  ``mem_bandwidth_gbps`` and the latency fields feed the
    performance model (:mod:`repro.perfmodel`); the functional simulator only
    uses the structural fields.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int = WARP_SIZE
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    shared_mem_per_block: int = 96 * 1024
    shared_mem_per_sm: int = 96 * 1024
    global_mem_bytes: int = 12 * 1024**3
    #: Peak global-memory bandwidth in GB/s (HBM2 for the TITAN V).
    mem_bandwidth_gbps: float = 652.8
    #: Host-side overhead of one kernel launch, in microseconds.
    kernel_launch_overhead_us: float = 5.0
    #: Latency of one global-memory access, in cycles (used for latency-hiding
    #: estimates in the performance model).
    global_latency_cycles: float = 400.0
    #: Core clock in GHz.
    clock_ghz: float = 1.455

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.warp_size & (self.warp_size - 1):
            raise ConfigurationError(
                f"warp_size must be a positive power of two, got {self.warp_size}")
        if self.max_threads_per_block % self.warp_size:
            raise ConfigurationError(
                "max_threads_per_block must be a multiple of the warp size")

    @property
    def total_cores(self) -> int:
        """Total number of processor cores across all SMs."""
        return self.num_sms * self.cores_per_sm

    def max_resident_blocks(self, threads_per_block: int,
                            shared_bytes_per_block: int = 0) -> int:
        """Number of blocks that can be simultaneously resident on the device.

        Mirrors the CUDA occupancy calculation along the three axes the paper's
        algorithms are sensitive to: the per-SM block-slot limit, the per-SM
        thread limit, and the per-SM shared-memory capacity.
        """
        if threads_per_block <= 0:
            raise ConfigurationError("threads_per_block must be positive")
        if threads_per_block > self.max_threads_per_block:
            raise ConfigurationError(
                f"threads_per_block={threads_per_block} exceeds the device limit "
                f"of {self.max_threads_per_block}")
        per_sm = min(self.max_blocks_per_sm,
                     self.max_threads_per_sm // threads_per_block)
        if shared_bytes_per_block > 0:
            if shared_bytes_per_block > self.shared_mem_per_block:
                raise ConfigurationError(
                    f"a block requests {shared_bytes_per_block} bytes of shared "
                    f"memory but the device allows {self.shared_mem_per_block}")
            per_sm = min(per_sm, self.shared_mem_per_sm // shared_bytes_per_block)
        return max(1, per_sm) * self.num_sms

    def with_overrides(self, **kwargs) -> "DeviceProperties":
        """Return a copy with the given fields replaced (for experiments)."""
        return replace(self, **kwargs)


#: The paper's testbed: NVIDIA TITAN V (Volta GV100), 80 SMs x 64 cores,
#: 12 GB HBM2.  Bandwidth is calibrated in :mod:`repro.perfmodel.calibration`
#: from the paper's own cudaMemcpy row; the figure here is the spec number.
TITAN_V = DeviceProperties(
    name="NVIDIA TITAN V",
    num_sms=80,
    cores_per_sm=64,
    global_mem_bytes=12 * 1024**3,
    mem_bandwidth_gbps=652.8,
    shared_mem_per_block=96 * 1024,
    shared_mem_per_sm=96 * 1024,
)

#: A deliberately tiny device: 2 SMs and a single resident block per SM.  Used
#: by tests that must show soft synchronization remains deadlock-free (or, for
#: buggy tile-assignment schemes, that the simulator detects the deadlock).
TINY_DEVICE = DeviceProperties(
    name="tiny-test-device",
    num_sms=2,
    cores_per_sm=8,
    max_threads_per_sm=1024,
    max_blocks_per_sm=1,
    shared_mem_per_block=96 * 1024,
    shared_mem_per_sm=96 * 1024,
    global_mem_bytes=256 * 1024**2,
)
