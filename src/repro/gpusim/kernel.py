"""The :class:`GPU` facade: allocation, kernel launches, statistics.

This is the object user code holds.  It owns a global memory instance, a
scheduler configuration, and a log of kernel launches
(:class:`~repro.gpusim.counters.LaunchSummary`) from which Table I quantities
are read off.

Example
-------
>>> import numpy as np
>>> from repro.gpusim import GPU, TITAN_V
>>> gpu = GPU(device=TITAN_V, seed=1)
>>> src = gpu.alloc("src", (4, 4), np.float64, fill=np.arange(16.0).reshape(4, 4))
>>> dst = gpu.alloc("dst", (4, 4), np.float64)
>>> def copy_kernel(ctx, src, dst, n):
...     base = ctx.block_id * ctx.nthreads
...     idx = base + ctx.tids
...     idx = idx[idx < n]
...     ctx.gstore(dst, idx, ctx.gload(src, idx))
>>> _ = gpu.launch(copy_kernel, grid_blocks=1, threads_per_block=32,
...                args=(src, dst, 16))
>>> bool((gpu.read("dst") == gpu.read("src")).all())
True
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.gpusim.counters import KernelStats, LaunchSummary
from repro.gpusim.device import TITAN_V, DeviceProperties
from repro.gpusim.memory import GlobalBuffer, GlobalMemory
from repro.gpusim.scheduler import Scheduler
from repro.gpusim.timing import DEFAULT_COSTS, CostWeights
from repro.gpusim.trace import KERNEL_DONE, LAUNCH, Tracer


class GPU:
    """A simulated GPU: global memory + a block scheduler + launch statistics.

    Parameters
    ----------
    device:
        Static device description (defaults to the paper's TITAN V).
    consistency:
        ``"relaxed"`` (default; store buffers, adversarial flush order) or
        ``"strong"`` (stores commit immediately — debugging aid).
    scheduler_policy:
        ``"round_robin"``, ``"random"`` or ``"lifo"`` interleaving of resident
        blocks.
    seed:
        Seed for the scheduler's and store buffers' randomness; a fixed seed
        makes every simulation exactly reproducible.
    max_resident_blocks:
        Optional override of the occupancy-derived residency bound; tests use
        tiny values to stress soft synchronization.
    spin_bound:
        Optional per-wait spin iteration bound; a single ``wait_until`` that
        polls more than this many times raises
        :class:`~repro.errors.DeadlockSuspectedError` instead of relying on
        the scheduler's global deadlock detector.  ``None`` (default) leaves
        spins unbounded.
    sanitizer:
        Optional concurrency sanitizer (any
        :class:`~repro.gpusim.observer.MemoryObserver`); it receives every
        memory-model event of every launch (see
        :mod:`repro.analysis.sanitizer`).
    """

    def __init__(self, *, device: DeviceProperties = TITAN_V,
                 consistency: str = "relaxed",
                 scheduler_policy: str = "round_robin",
                 seed: int = 0,
                 costs: CostWeights = DEFAULT_COSTS,
                 max_resident_blocks: int | None = None,
                 tracer: Tracer | None = None,
                 detect_uninitialized: bool = False,
                 sanitizer=None,
                 spin_bound: int | None = None) -> None:
        self.device = device
        self.memory = GlobalMemory(device,
                                   detect_uninitialized=detect_uninitialized)
        self.launches = LaunchSummary()
        self.tracer = tracer
        self.sanitizer = sanitizer
        self.memory.observer = sanitizer
        self._scheduler = Scheduler(device=device, policy=scheduler_policy,
                                    seed=seed, consistency=consistency,
                                    costs=costs,
                                    max_resident_blocks=max_resident_blocks,
                                    tracer=tracer, spin_bound=spin_bound)

    def attach_sanitizer(self, sanitizer) -> None:
        """Attach (or replace) the memory-model observer for later launches."""
        self.sanitizer = sanitizer
        self.memory.observer = sanitizer

    # -- memory -----------------------------------------------------------------

    def alloc(self, name: str, shape, dtype=np.float64, fill=None, *,
              kind: str = "data",
              status_values: tuple[int, ...] | None = None) -> GlobalBuffer:
        """Allocate a named global buffer (optionally copying host data in).

        ``kind``/``status_values`` annotate the buffer's protocol role for
        the sanitizer (see :class:`~repro.gpusim.memory.GlobalBuffer`).
        """
        return self.memory.alloc(name, shape, dtype, fill, kind=kind,
                                 status_values=status_values)

    def free(self, name: str) -> None:
        self.memory.free(name)

    def buffer(self, name: str) -> GlobalBuffer:
        return self.memory[name]

    def read(self, buf: GlobalBuffer | str) -> np.ndarray:
        """Copy a buffer's committed contents back to the host."""
        if isinstance(buf, str):
            buf = self.memory[buf]
        return buf.array.copy()

    def write(self, buf: GlobalBuffer | str, values: np.ndarray) -> None:
        """Host-side upload into an existing buffer (cudaMemcpy H2D analogue)."""
        if isinstance(buf, str):
            buf = self.memory[buf]
        buf.array[...] = np.asarray(values, dtype=buf.dtype).reshape(buf.shape)

    # -- launches ---------------------------------------------------------------

    def launch(self, kernel_fn: Callable, *, grid_blocks: int,
               threads_per_block: int, args: Sequence = (),
               name: str | None = None,
               shared_bytes_hint: int = 0) -> KernelStats:
        """Launch a kernel and run it to completion; returns its statistics."""
        stats = KernelStats(name=name or kernel_fn.__name__,
                            grid_blocks=grid_blocks,
                            threads_per_block=threads_per_block)
        if self.tracer is not None:
            self.tracer.emit(LAUNCH, -1, stats.name)
        if self.memory.observer is not None:
            self.memory.observer.on_launch(stats.name, grid_blocks)
        self._scheduler.run(kernel_fn, grid_blocks=grid_blocks,
                            threads_per_block=threads_per_block, args=args,
                            memory=self.memory, stats=stats,
                            shared_bytes_hint=shared_bytes_hint)
        if self.memory.observer is not None:
            self.memory.observer.on_kernel_done(stats.name)
        if self.tracer is not None:
            self.tracer.emit(KERNEL_DONE, -1, stats.name)
        self.launches.add(stats)
        return stats

    def reset_stats(self) -> None:
        """Forget launch statistics (memory contents are preserved)."""
        self.launches.reset()
