"""Global-memory model: buffers, transaction accounting, atomics, consistency.

The global memory is a set of named, NumPy-backed buffers with disjoint byte
address ranges.  All traffic is accounted at two granularities (see
:mod:`repro.gpusim.counters`): element requests and 32-byte transactions.

Consistency model
-----------------
Real CUDA gives no ordering guarantees between plain global stores of one block
as observed by another block; ``__threadfence()`` must be issued before setting
a flag that publishes earlier stores.  The simulator reproduces this with a
per-block :class:`StoreBuffer`:

* ``strong`` mode commits every store immediately (useful for debugging).
* ``relaxed`` mode holds plain stores in the block's store buffer.  The buffer
  is flushed *in program order* by ``threadfence()`` and at block retirement.
  At ordinary yield points an adversarial policy may commit an arbitrary
  *suffix* of the pending stores first (a legal reordering), so a flag written
  without a fence can become visible before the data it is meant to publish —
  exactly the hazard that breaks naive look-back implementations on hardware.

Atomics always act directly on committed state and are immediately visible,
matching CUDA atomics (which bypass the write path modelled by the buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gpusim.observer import MemoryObserver

from repro.errors import AllocationError, InvalidAccessError
from repro.gpusim.counters import MemoryTraffic
from repro.gpusim.device import SEGMENT_BYTES, WARP_SIZE, DeviceProperties


def count_warp_transactions(byte_addresses: np.ndarray,
                            warp_size: int = WARP_SIZE) -> int:
    """Count 32-byte transactions needed to service the given element accesses.

    ``byte_addresses`` holds the absolute byte address of each element access,
    in thread order.  Accesses are grouped into warps of ``warp_size`` threads
    (the trailing partial warp counts too); each warp costs one transaction per
    distinct 32-byte segment it touches, which is how coalescing hardware
    behaves.
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64).ravel()
    if addrs.size == 0:
        return 0
    segments = addrs // SEGMENT_BYTES
    total = 0
    for start in range(0, segments.size, warp_size):
        chunk = segments[start:start + warp_size]
        total += int(np.unique(chunk).size)
    return total


@dataclass
class GlobalBuffer:
    """A named allocation in simulated global memory.

    The backing :class:`numpy.ndarray` is the *committed* state; blocks access
    it only through their :class:`~repro.gpusim.block.BlockContext`, which
    layers the store buffer on top.  ``base_address`` makes transaction
    accounting independent of buffer boundaries.

    ``initialized`` is ``None`` when the buffer's full contents are defined
    (allocated with ``fill=...`` — the cudaMemcpy/cudaMemset analogue) or when
    uninitialized-read detection is off; otherwise it is a boolean mask that
    device stores progressively set.

    ``kind`` annotates the buffer's role in inter-block protocols for the
    concurrency sanitizer (:mod:`repro.analysis.sanitizer`): ``"data"``
    (default), ``"status"`` (a publish/look-back flag array — monotone values,
    polled by spinners) or ``"counter"`` (a ticket counter that must only be
    accessed atomically).  ``status_values`` optionally restricts a status
    buffer to a legal value domain (e.g. ``(0, 1, 2, 3, 4)`` for the paper's
    ``R`` byte).
    """

    name: str
    array: np.ndarray
    base_address: int
    initialized: np.ndarray | None = None
    kind: str = "data"
    status_values: tuple[int, ...] | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def size(self) -> int:
        return self.array.size

    @property
    def itemsize(self) -> int:
        return self.array.itemsize

    @property
    def nbytes(self) -> int:
        return self.array.nbytes

    def flat_view(self) -> np.ndarray:
        return self.array.reshape(-1)

    def byte_addresses(self, flat_indices: np.ndarray) -> np.ndarray:
        return self.base_address + np.asarray(flat_indices, dtype=np.int64) * self.itemsize

    def check_bounds(self, flat_indices: np.ndarray) -> None:
        idx = np.asarray(flat_indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.size):
            raise InvalidAccessError(
                f"buffer '{self.name}' (size {self.size}): flat index out of "
                f"range [{idx.min()}, {idx.max()}]")


class GlobalMemory:
    """The device's global memory: a registry of :class:`GlobalBuffer` objects.

    ``commit_epoch`` increments on every committed store or atomic; the
    scheduler uses it as its progress signal for deadlock detection.
    """

    #: Alignment of buffer base addresses (matches cudaMalloc's 256B alignment).
    ALIGNMENT = 256

    def __init__(self, device: DeviceProperties,
                 detect_uninitialized: bool = False) -> None:
        self.device = device
        self.detect_uninitialized = detect_uninitialized
        self._buffers: dict[str, GlobalBuffer] = {}
        self._next_address = 0
        self._allocated_bytes = 0
        self.commit_epoch = 0
        #: Optional instrumentation sink (see :mod:`repro.gpusim.observer`).
        self.observer: MemoryObserver | None = None

    # -- allocation ---------------------------------------------------------

    def alloc(self, name: str, shape, dtype, fill=None, *,
              kind: str = "data",
              status_values: tuple[int, ...] | None = None) -> GlobalBuffer:
        """Allocate a named buffer; ``fill`` may be a scalar or an array to copy.

        ``kind``/``status_values`` annotate the buffer's protocol role for the
        concurrency sanitizer (see :class:`GlobalBuffer`).
        """
        if name in self._buffers:
            raise AllocationError(f"buffer '{name}' already allocated")
        dtype = np.dtype(dtype)
        if fill is not None and isinstance(fill, np.ndarray):
            array = np.ascontiguousarray(fill, dtype=dtype).reshape(shape).copy()
        else:
            array = np.zeros(shape, dtype=dtype)
            if fill is not None and not isinstance(fill, np.ndarray):
                array.fill(fill)
        if self._allocated_bytes + array.nbytes > self.device.global_mem_bytes:
            raise AllocationError(
                f"allocating '{name}' ({array.nbytes} bytes) exceeds device "
                f"capacity {self.device.global_mem_bytes}")
        init_mask = None
        if self.detect_uninitialized and fill is None:
            init_mask = np.zeros(array.size, dtype=bool)
        buf = GlobalBuffer(name=name, array=array,
                           base_address=self._next_address,
                           initialized=init_mask, kind=kind,
                           status_values=status_values)
        pad = (-array.nbytes) % self.ALIGNMENT
        self._next_address += array.nbytes + pad
        self._allocated_bytes += array.nbytes
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        buf = self._buffers.pop(name, None)
        if buf is None:
            raise InvalidAccessError(f"cannot free unknown buffer '{name}'")
        self._allocated_bytes -= buf.nbytes

    def __getitem__(self, name: str) -> GlobalBuffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise InvalidAccessError(f"unknown buffer '{name}'") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def buffers(self) -> Iterator[GlobalBuffer]:
        return iter(self._buffers.values())

    @property
    def allocated_bytes(self) -> int:
        return self._allocated_bytes

    # -- committed-state access (used by store buffers and atomics) ----------

    def committed_read(self, buf: GlobalBuffer, flat_indices: np.ndarray) -> np.ndarray:
        buf.check_bounds(flat_indices)
        return buf.flat_view()[np.asarray(flat_indices, dtype=np.int64)]

    def check_initialized(self, buf: GlobalBuffer,
                          flat_indices: np.ndarray) -> None:
        """Raise if any of the locations was never stored to (device global
        memory is not zeroed on real hardware)."""
        if buf.initialized is None:
            return
        idx = np.asarray(flat_indices, dtype=np.int64).ravel()
        bad = idx[~buf.initialized[idx]]
        if bad.size:
            from repro.errors import RaceConditionError
            raise RaceConditionError(
                f"read of uninitialized global memory: buffer '{buf.name}', "
                f"flat indices {bad[:8].tolist()}"
                + ("..." if bad.size > 8 else ""))

    def commit_store(self, buf: GlobalBuffer, flat_indices: np.ndarray,
                     values: np.ndarray) -> None:
        buf.check_bounds(flat_indices)
        idx = np.asarray(flat_indices, dtype=np.int64)
        buf.flat_view()[idx] = values
        if buf.initialized is not None:
            buf.initialized[idx.ravel()] = True
        self.commit_epoch += 1

    def atomic_add(self, buf: GlobalBuffer, flat_index: int, value,
                   traffic: MemoryTraffic | None = None) -> int | float:
        """Atomically add ``value`` at ``flat_index``; returns the *old* value.

        Matches CUDA ``atomicAdd``: globally visible immediately, returns the
        pre-add value that tile-assignment counters rely on.
        """
        buf.check_bounds(np.asarray([flat_index]))
        self.check_initialized(buf, np.asarray([flat_index]))
        flat = buf.flat_view()
        old = flat[flat_index]
        flat[flat_index] = old + value
        self.commit_epoch += 1
        if traffic is not None:
            traffic.atomic_ops += 1
        return old.item() if hasattr(old, "item") else old


@dataclass
class _PendingStore:
    """One program-order entry in a block's store buffer."""

    buf: GlobalBuffer
    flat_indices: np.ndarray
    values: np.ndarray
    seq: int = 0


@dataclass
class StoreBuffer:
    """Per-block buffer of uncommitted global stores (relaxed consistency).

    ``mode`` is either ``"strong"`` (stores commit immediately) or
    ``"relaxed"``.  In relaxed mode, ``drain_at_yield`` lets the scheduler
    commit a *suffix* of pending stores at yield points — a legal reordering
    that publishes later stores (e.g. a status flag) before earlier ones (the
    data), which is precisely what a missing ``__threadfence()`` risks on real
    hardware.  ``max_age_yields`` bounds staleness so stores are eventually
    visible even without a fence.
    """

    memory: GlobalMemory
    mode: str = "relaxed"
    block_id: int = -1
    rng: np.random.Generator | None = None
    max_age_yields: int = 4
    _pending: list[_PendingStore] = field(default_factory=list)
    _seq: int = 0
    _age: int = 0

    def store(self, buf: GlobalBuffer, flat_indices: np.ndarray,
              values: np.ndarray) -> None:
        flat_indices = np.asarray(flat_indices, dtype=np.int64).ravel()
        values = np.asarray(values).ravel()
        if values.size == 1 and flat_indices.size > 1:
            values = np.broadcast_to(values, flat_indices.shape)
        observer = self.memory.observer
        if observer is not None:
            observer.on_store_issue(self.block_id, buf, flat_indices, values,
                                    len(self._pending))
        if self.mode == "strong":
            self._commit(buf, flat_indices, values, "store")
            return
        buf.check_bounds(flat_indices)
        self._pending.append(_PendingStore(buf, flat_indices, np.array(values),
                                           seq=self._seq))
        self._seq += 1

    def _commit(self, buf: GlobalBuffer, flat_indices: np.ndarray,
                values: np.ndarray, reason: str) -> None:
        """Make stores globally visible (observer notified with old state)."""
        observer = self.memory.observer
        if observer is not None:
            observer.on_commit(self.block_id, buf, flat_indices, values, reason)
        self.memory.commit_store(buf, flat_indices, values)

    def has_pending(self, buf: GlobalBuffer, flat_indices: np.ndarray) -> np.ndarray:
        """Mask of ``flat_indices`` with an uncommitted store in this buffer."""
        idx = np.asarray(flat_indices, dtype=np.int64).ravel()
        mask = np.zeros(idx.size, dtype=bool)
        for entry in self._pending:
            if entry.buf is buf and entry.flat_indices.size:
                mask |= np.isin(idx, entry.flat_indices)
        return mask

    def overlay_read(self, buf: GlobalBuffer, flat_indices: np.ndarray) -> np.ndarray:
        """Read committed state patched with this block's own pending stores.

        A block always observes its own writes in program order (CUDA guarantees
        intra-thread read-after-write through the memory hierarchy).
        """
        flat_indices = np.asarray(flat_indices, dtype=np.int64).ravel()
        values = self.memory.committed_read(buf, flat_indices).copy()
        patched = np.zeros(flat_indices.size, dtype=bool)
        for entry in self._pending:
            if entry.buf is not buf:
                continue
            # Later entries overwrite earlier ones because we iterate in order.
            pos = {int(i): k for k, i in enumerate(entry.flat_indices)}
            for out_k, want in enumerate(flat_indices):
                hit = pos.get(int(want))
                if hit is not None:
                    values[out_k] = entry.values[hit]
                    patched[out_k] = True
        observer = self.memory.observer
        if observer is not None:
            observer.on_load(self.block_id, buf, flat_indices, patched)
        if not patched.all():
            # Locations served from committed state must actually have been
            # written by someone (global memory is not zeroed on hardware).
            self.memory.check_initialized(buf, flat_indices[~patched])
        return values

    def fence(self) -> None:
        """Commit all pending stores in program order (``__threadfence()``)."""
        for entry in self._pending:
            self._commit(entry.buf, entry.flat_indices, entry.values, "fence")
        self._pending.clear()
        self._age = 0
        observer = self.memory.observer
        if observer is not None:
            observer.on_release(self.block_id)

    def _drain_all(self) -> None:
        """Commit everything because the age bound expired.

        Unlike :meth:`fence` this carries *no ordering guarantee* — the stores
        merely became visible eventually — so no release is reported to the
        observer (a flag published this way must not justify earlier data).
        """
        for entry in self._pending:
            self._commit(entry.buf, entry.flat_indices, entry.values, "drain")
        self._pending.clear()
        self._age = 0

    def drain_at_yield(self) -> None:
        """Adversarially commit some pending stores at a scheduler yield point.

        Without ordering constraints the hardware may retire stores in any
        order; we model the worst legal behaviour for flag protocols by
        committing the *newest* stores first, holding older ones back until the
        age bound forces them out.
        """
        if self.mode == "strong" or not self._pending:
            return
        self._age += 1
        if self._age >= self.max_age_yields:
            self._drain_all()
            return
        # Commit the newest half (at least one entry), newest-first.
        ncommit = max(1, len(self._pending) // 2)
        if self.rng is not None and len(self._pending) > 1:
            ncommit = int(self.rng.integers(1, len(self._pending) + 1))
        tail = self._pending[-ncommit:]
        del self._pending[-ncommit:]
        # Committing newest-first must not let an older write to the same
        # address land after (and clobber) a newer one: track the addresses
        # already committed in this drain and mask them out of every older
        # entry — both the ones still pending and the older tail entries.
        committed: dict[int, set[int]] = {}
        for entry in reversed(tail):
            seen = committed.setdefault(id(entry.buf), set())
            if seen:
                keep = np.asarray([int(i) not in seen
                                   for i in entry.flat_indices])
                entry.flat_indices = entry.flat_indices[keep]
                entry.values = entry.values[keep]
            if entry.flat_indices.size:
                self._commit(entry.buf, entry.flat_indices, entry.values,
                             "drain")
                seen.update(int(i) for i in entry.flat_indices)
        for older in self._pending:
            seen = committed.get(id(older.buf))
            if not seen or older.flat_indices.size == 0:
                continue
            keep = np.asarray([int(i) not in seen for i in older.flat_indices])
            if not keep.all():
                older.flat_indices = older.flat_indices[keep]
                older.values = older.values[keep]
        self._pending = [e for e in self._pending if e.flat_indices.size]

    def retire(self) -> None:
        """Block finished: everything must become visible (kernel-exit fence)."""
        self.fence()

    @property
    def pending_count(self) -> int:
        return len(self._pending)
