"""Instrumentation hook interface for the simulator.

The scheduler, the per-block store buffers and the block contexts report
memory-model-relevant events to an optional *observer* attached to the
:class:`~repro.gpusim.memory.GlobalMemory` (``memory.observer``).  The
concurrency sanitizer (:mod:`repro.analysis.sanitizer`) is the main
implementation; :class:`MemoryObserver` is the no-op base class so the
simulator pays a single ``is not None`` check per event when nothing is
attached and implementations only override what they need.

Event vocabulary (all indices are flat element indices into the buffer):

========================  ====================================================
``on_launch``             a kernel launch begins
``on_dispatch``           a block became resident (its store buffer attached)
``on_store_issue``        a plain global store entered program order
``on_commit``             buffered stores became globally visible
``on_release``            a ``__threadfence()`` committed the store buffer in
                          program order (kernel exit / retirement included)
``on_load``               a global load (with the mask of elements served
                          from the block's own store buffer)
``on_atomic``             an ``atomicAdd`` (immediately visible)
``on_spin_poll``          a block entered a spin-wait on a global flag
``on_retire``             a block finished (exit fence already performed)
``on_kernel_done``        the launch completed
========================  ====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.gpusim.memory import GlobalBuffer, StoreBuffer


class MemoryObserver:
    """No-op base class for simulator instrumentation hooks."""

    def on_launch(self, name: str, grid_blocks: int) -> None:
        """A kernel launch named ``name`` with ``grid_blocks`` blocks begins."""

    def on_dispatch(self, block_id: int, store_buffer: "StoreBuffer") -> None:
        """Block ``block_id`` became resident with the given store buffer."""

    def on_store_issue(self, block_id: int, buf: "GlobalBuffer",
                       flat_indices: np.ndarray, values: np.ndarray,
                       pending_before: int) -> None:
        """Block ``block_id`` issued a plain store (program order).

        ``pending_before`` is the number of store-buffer entries that were
        still uncommitted when this store was issued (always 0 under strong
        consistency, where stores commit immediately).
        """

    def on_commit(self, block_id: int, buf: "GlobalBuffer",
                  flat_indices: np.ndarray, values: np.ndarray,
                  reason: str) -> None:
        """Stores by ``block_id`` are about to become globally visible.

        ``reason`` is ``"store"`` (strong mode), ``"fence"`` (program-order
        commit by ``__threadfence()`` or block retirement) or ``"drain"``
        (adversarial partial commit at a yield point, or the staleness age
        bound forcing visibility — neither implies any ordering).  Called
        *before* the committed state is updated so implementations can compare
        against the old values.
        """

    def on_release(self, block_id: int) -> None:
        """Block ``block_id`` executed a full program-order fence."""

    def on_load(self, block_id: int, buf: "GlobalBuffer",
                flat_indices: np.ndarray, from_own_buffer: np.ndarray) -> None:
        """Block ``block_id`` loaded ``flat_indices``; ``from_own_buffer``
        masks the elements served from its own (uncommitted) stores."""

    def on_atomic(self, block_id: int, buf: "GlobalBuffer", flat_index: int,
                  old_value, added) -> None:
        """Block ``block_id`` performed an ``atomicAdd`` at ``flat_index``."""

    def on_spin_poll(self, block_id: int, buf: "GlobalBuffer",
                     flat_index: int) -> None:
        """Block ``block_id`` entered a spin-wait polling ``buf[flat_index]``."""

    def on_retire(self, block_id: int) -> None:
        """Block ``block_id`` retired (its exit fence has already run)."""

    def on_kernel_done(self, name: str) -> None:
        """The launch named ``name`` ran to completion."""
