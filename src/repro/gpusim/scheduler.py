"""Cooperative block scheduler with bounded residency and deadlock detection.

The scheduler models the part of CUDA the paper's correctness argument lives
in: CUDA blocks are dispatched to SMs *in launch order but with bounded
residency*, there is no guaranteed assignment of blocks to SMs, and blocks that
are not yet resident make no progress.  Single-kernel soft synchronization is
only sound if every inter-block wait targets a block that is already resident
or retired — which the paper achieves by acquiring tiles through an
``atomicAdd`` counter in diagonal-major order.

Scheduling *within* the resident set is a free parameter of real hardware, so
it is a policy here: ``round_robin``, ``random`` (seeded), or ``lifo``
(adversarially favours the most recently dispatched block).  Correct kernels
must produce identical results under all of them; tests exploit this.

If every resident block spin-waits for several consecutive rounds while no
global-memory commit happens and no new block can be dispatched, the scheduler
raises :class:`~repro.errors.DeadlockError` instead of hanging — turning the
paper's "this scheme would deadlock" remarks into testable behaviour.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError, DeadlockError, KernelLaunchError
from repro.gpusim.block import SPIN, BlockContext
from repro.gpusim.counters import KernelStats
from repro.gpusim.device import DeviceProperties
from repro.gpusim.memory import GlobalMemory, StoreBuffer
from repro.gpusim.timing import DEFAULT_COSTS, CostWeights
from repro.gpusim import trace as trace_mod

#: Consecutive all-spinning, no-progress rounds before declaring deadlock.
DEADLOCK_ROUNDS = 3

POLICIES = ("round_robin", "random", "lifo")


@dataclass(frozen=True)
class DispatchModel:
    """The dispatcher contract the model checker assumes about this scheduler.

    :mod:`repro.analysis.modelcheck` enumerates interleavings under exactly
    these rules; if the scheduler's dispatch semantics ever change, this hook
    changes with it and the checker's assumptions stay honest.

    * ``in_order`` — blocks become resident in launch order (block ``k`` never
      dispatches before block ``k-1``).
    * ``bounded_residency`` — at most ``max_resident`` blocks are resident at
      once; a slot frees only when a resident block retires.
    * ``eager`` — a free slot is filled immediately (the dispatcher never
      idles while work is pending and a slot is open).
    * ``intra_residency_free`` — scheduling *within* the resident set is
      unconstrained (the checker must explore all interleavings; ``policy`` is
      not a correctness lever).
    """

    in_order: bool = True
    bounded_residency: bool = True
    eager: bool = True
    intra_residency_free: bool = True


@dataclass
class _ResidentBlock:
    block_id: int
    sm_id: int
    gen: Iterator | None
    ctx: BlockContext
    store_buffer: StoreBuffer
    last_token: str | None = None
    done: bool = False


@dataclass
class Scheduler:
    """Runs one kernel launch to completion over a simulated device."""

    device: DeviceProperties
    policy: str = "round_robin"
    seed: int = 0
    consistency: str = "relaxed"
    costs: CostWeights = field(default_factory=lambda: DEFAULT_COSTS)
    #: Override the occupancy-derived residency bound (tests use small values).
    max_resident_blocks: int | None = None
    deadlock_rounds: int = DEADLOCK_ROUNDS
    #: Optional event tracer (see :mod:`repro.gpusim.trace`).
    tracer: "trace_mod.Tracer | None" = None
    #: Per-wait spin iteration bound (None = unbounded; see
    #: :class:`~repro.errors.DeadlockSuspectedError`).
    spin_bound: int | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown scheduling policy '{self.policy}'; choose from {POLICIES}")
        if self.consistency not in ("strong", "relaxed"):
            raise ConfigurationError(
                f"consistency must be 'strong' or 'relaxed', got '{self.consistency}'")
        self._rng = np.random.default_rng(self.seed)

    # -- public API -------------------------------------------------------------

    def dispatch_model(self) -> DispatchModel:
        """Return the dispatch contract :meth:`run` implements.

        The ``dispatch()`` closure in :meth:`run` dispatches in launch order,
        caps residency at the occupancy limit, and refills slots in the same
        round a block retires — matching the defaults of
        :class:`DispatchModel` for every policy.
        """
        return DispatchModel()

    def run(self, kernel_fn: Callable, *, grid_blocks: int, threads_per_block: int,
            args: Sequence, memory: GlobalMemory, stats: KernelStats,
            shared_bytes_hint: int = 0) -> None:
        """Execute ``grid_blocks`` instances of ``kernel_fn`` to completion."""
        if grid_blocks <= 0:
            raise KernelLaunchError("grid must contain at least one block")
        if threads_per_block <= 0 or threads_per_block > self.device.max_threads_per_block:
            raise KernelLaunchError(
                f"threads_per_block={threads_per_block} outside device limits "
                f"(1..{self.device.max_threads_per_block})")
        limit = self.max_resident_blocks
        if limit is None:
            limit = self.device.max_resident_blocks(threads_per_block,
                                                    shared_bytes_hint)
        limit = max(1, limit)

        resident: list[_ResidentBlock] = []
        next_block = 0
        sm_cycles = np.zeros(self.device.num_sms)
        no_progress_rounds = 0
        epoch_at_stall = -1

        def dispatch() -> None:
            nonlocal next_block
            while next_block < grid_blocks and len(resident) < limit:
                sb = StoreBuffer(memory=memory, mode=self.consistency,
                                 block_id=next_block, rng=self._rng)
                ctx = BlockContext(block_id=next_block, grid_blocks=grid_blocks,
                                   nthreads=threads_per_block, device=self.device,
                                   memory=memory, store_buffer=sb,
                                   traffic=stats.traffic, costs=self.costs,
                                   spin_bound=self.spin_bound)
                if memory.observer is not None:
                    memory.observer.on_dispatch(next_block, sb)
                gen = self._start(kernel_fn, ctx, args)
                resident.append(_ResidentBlock(block_id=next_block,
                                               sm_id=next_block % self.device.num_sms,
                                               gen=gen, ctx=ctx, store_buffer=sb))
                if self.tracer is not None:
                    self.tracer.emit(trace_mod.DISPATCH, next_block)
                next_block += 1

        dispatch()
        while resident:
            stats.max_resident_observed = max(stats.max_resident_observed,
                                              len(resident))
            order = self._round_order(resident)
            all_spinning = True
            for blk in order:
                if blk.done:
                    continue
                token = self._advance(blk, stats)
                sm_cycles[blk.sm_id] += blk.ctx.take_cycles()
                blk.store_buffer.drain_at_yield()
                if token is not SPIN:
                    all_spinning = False
                if self.tracer is not None and not blk.done:
                    self.tracer.emit(
                        trace_mod.SPIN if token is SPIN else trace_mod.STEP,
                        blk.block_id)
            retired = [b for b in resident if b.done]
            for blk in retired:
                blk.store_buffer.retire()
                stats.blocks_executed += 1
                if memory.observer is not None:
                    memory.observer.on_retire(blk.block_id)
                if self.tracer is not None:
                    self.tracer.emit(trace_mod.RETIRE, blk.block_id)
            if retired:
                resident[:] = [b for b in resident if not b.done]
                all_spinning = False
            dispatch()

            if resident and all_spinning:
                if memory.commit_epoch != epoch_at_stall:
                    epoch_at_stall = memory.commit_epoch
                    no_progress_rounds = 1
                else:
                    no_progress_rounds += 1
                if no_progress_rounds >= self.deadlock_rounds:
                    ids = tuple(sorted(b.block_id for b in resident))
                    if self.tracer is not None:
                        self.tracer.emit(trace_mod.DEADLOCK, -1,
                                         f"resident={ids}")
                    raise DeadlockError(
                        f"all {len(resident)} resident blocks are spin-waiting "
                        f"with no global-memory progress for "
                        f"{no_progress_rounds} rounds "
                        f"(resident={ids}, pending={grid_blocks - next_block}, "
                        f"residency limit={limit})",
                        resident_blocks=ids,
                        pending_blocks=grid_blocks - next_block)
            else:
                no_progress_rounds = 0
                epoch_at_stall = -1

        stats.sim_cycles += float(sm_cycles.max()) if sm_cycles.size else 0.0

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _start(kernel_fn: Callable, ctx: BlockContext, args: Sequence):
        """Instantiate one block: a generator, or None for a plain function."""
        if inspect.isgeneratorfunction(kernel_fn):
            return kernel_fn(ctx, *args)
        result = kernel_fn(ctx, *args)
        if inspect.isgenerator(result):
            return result
        return None

    def _advance(self, blk: _ResidentBlock, stats: KernelStats) -> str | None:
        stats.scheduler_steps += 1
        if blk.gen is None:
            blk.done = True
            blk.last_token = None
            return None
        try:
            token = next(blk.gen)
        except StopIteration:
            blk.done = True
            blk.last_token = None
            return None
        blk.last_token = token
        return token

    def _round_order(self, resident: list[_ResidentBlock]) -> list[_ResidentBlock]:
        if self.policy == "round_robin":
            return list(resident)
        if self.policy == "lifo":
            return list(reversed(resident))
        order = list(resident)
        self._rng.shuffle(order)  # type: ignore[arg-type]
        return order
