"""Shared-memory model with bank-conflict accounting.

Each simulated CUDA block owns one :class:`SharedMemory` instance.  Arrays are
allocated by name inside the block's shared address space; accesses are made
with *element offsets* into a flat 4-byte-word address space so that the bank a
word lands in — ``offset mod 32`` — is explicit.  This is what makes the
paper's diagonal arrangement (Section II, Figure 3) a measurable property
rather than an assertion: storing a tile row-major and accessing a column hits
one bank 32 times; storing it diagonally makes both row and column accesses
conflict-free, and the counters show it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import AllocationError, InvalidAccessError
from repro.gpusim.counters import MemoryTraffic
from repro.gpusim.device import NUM_BANKS, WARP_SIZE, DeviceProperties


def bank_conflict_cycles(offsets: np.ndarray, warp_size: int = WARP_SIZE,
                         num_banks: int = NUM_BANKS) -> int:
    """Extra serialized cycles caused by bank conflicts for the given access.

    ``offsets`` are word offsets of each thread's access, in thread order.
    For each warp, the access is replayed once per additional *distinct*
    address that maps to the same bank (threads reading the very same address
    are served by the broadcast mechanism and do not conflict).  A
    conflict-free warp access contributes 0.
    """
    offs = np.asarray(offsets, dtype=np.int64).ravel()
    extra = 0
    for start in range(0, offs.size, warp_size):
        chunk = np.unique(offs[start:start + warp_size])
        if chunk.size == 0:
            continue
        banks = chunk % num_banks
        counts = np.bincount(banks, minlength=num_banks)
        extra += int(counts.max()) - 1
    return extra


class SharedMemory:
    """One block's shared memory: named word-addressed arrays plus accounting."""

    WORD_BYTES = 4

    def __init__(self, device: DeviceProperties, traffic: MemoryTraffic) -> None:
        self.device = device
        self.traffic = traffic
        self._arrays: dict[str, np.ndarray] = {}
        self._bases: dict[str, int] = {}
        self._next_word = 0

    @property
    def allocated_bytes(self) -> int:
        return self._next_word * self.WORD_BYTES

    def alloc(self, name: str, num_words: int, dtype=np.float64) -> np.ndarray:
        """Allocate ``num_words`` 4-byte-word slots holding values of ``dtype``.

        The *addressing* granularity is always one word (that is what banks are
        made of); the *value* dtype may be wider for numerical convenience —
        the paper's data is float32, but tests use int64 for exactness.  Bank
        accounting intentionally keys off word offsets either way.
        """
        if name in self._arrays:
            raise AllocationError(f"shared array '{name}' already allocated")
        nbytes = num_words * self.WORD_BYTES
        if self.allocated_bytes + nbytes > self.device.shared_mem_per_block:
            raise AllocationError(
                f"shared allocation '{name}' ({nbytes} bytes) exceeds the "
                f"per-block limit of {self.device.shared_mem_per_block} bytes "
                f"(already allocated: {self.allocated_bytes})")
        arr = np.zeros(num_words, dtype=dtype)
        self._arrays[name] = arr
        self._bases[name] = self._next_word
        self._next_word += num_words
        return arr

    def _resolve(self, name: str) -> tuple[np.ndarray, int]:
        try:
            return self._arrays[name], self._bases[name]
        except KeyError:
            raise InvalidAccessError(f"unknown shared array '{name}'") from None

    def load(self, name: str, offsets: np.ndarray) -> np.ndarray:
        """Read ``arr[offsets]`` with request + bank-conflict accounting."""
        arr, base = self._resolve(name)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size and (offsets.min() < 0 or offsets.max() >= arr.size):
            raise InvalidAccessError(
                f"shared array '{name}' (size {arr.size}): offset out of range")
        self.traffic.shared_read_requests += int(offsets.size)
        self.traffic.shared_bank_conflict_cycles += bank_conflict_cycles(
            base + offsets.ravel(), self.device.warp_size)
        return arr[offsets]

    def store(self, name: str, offsets: np.ndarray, values) -> None:
        """Write ``arr[offsets] = values`` with request + bank-conflict accounting."""
        arr, base = self._resolve(name)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size and (offsets.min() < 0 or offsets.max() >= arr.size):
            raise InvalidAccessError(
                f"shared array '{name}' (size {arr.size}): offset out of range")
        self.traffic.shared_write_requests += int(offsets.size)
        self.traffic.shared_bank_conflict_cycles += bank_conflict_cycles(
            base + offsets.ravel(), self.device.warp_size)
        arr[offsets] = values

    def raw(self, name: str) -> np.ndarray:
        """Unaccounted access to the backing array (test/debug use only)."""
        return self._resolve(name)[0]
