"""Cycle-cost weights for the emergent (event-driven) timing of the simulator.

The functional simulator attributes a cycle cost to every operation a block
performs; the scheduler accumulates these per SM and reports the makespan.
This emergent clock is deliberately coarse — the calibrated analytic model in
:mod:`repro.perfmodel` is the primary timing source for Table III — but it
captures first-order effects (traffic, conflicts, serial spinning) well enough
to rank algorithms at simulatable sizes, and it provides an independent check
on the analytic model's trends.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostWeights:
    """Cycle costs charged by the :class:`~repro.gpusim.block.BlockContext`.

    Defaults approximate a Volta-class SM: one 32-byte global transaction
    occupies the memory pipe for a handful of cycles; shared memory moves one
    conflict-free warp access per cycle; each bank-conflict replay adds a
    cycle; shuffles are one instruction per warp.
    """

    #: Cycles of memory-pipe occupancy per 32-byte global transaction.
    global_transaction: float = 4.0
    #: Fixed latency charged once per global access *instruction* (per warp).
    global_issue: float = 2.0
    #: Cycles per conflict-free shared-memory warp access.
    shared_access: float = 1.0
    #: Cycles per bank-conflict replay.
    bank_conflict: float = 1.0
    #: Cycles per warp-wide shuffle instruction.
    shuffle: float = 1.0
    #: Cycles per atomic operation.
    atomic: float = 8.0
    #: Cycles a block burns per spin-wait poll iteration.
    spin_poll: float = 20.0
    #: Cycles per __syncthreads().
    sync: float = 8.0
    #: Baseline cycles per arithmetic step over a block-sized vector.
    compute_step: float = 1.0


DEFAULT_COSTS = CostWeights()
