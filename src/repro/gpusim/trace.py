"""Structured event tracing for the simulator.

A :class:`Tracer` attached to a :class:`~repro.gpusim.kernel.GPU` records a
compact event stream — block dispatch/step/retire, spins, fences, atomics,
deadlock diagnostics — that tests and examples can query, and that
:func:`render_timeline` turns into a human-readable schedule view.  Tracing is
opt-in and costs nothing when absent.

Event record: ``TraceEvent(step, kind, block_id, detail)`` where ``step`` is a
global monotonically increasing scheduler step counter.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

#: Event kinds emitted by the scheduler.
DISPATCH = "dispatch"
STEP = "step"
SPIN = "spin"
RETIRE = "retire"
LAUNCH = "launch"
KERNEL_DONE = "kernel_done"
DEADLOCK = "deadlock"

KINDS = (DISPATCH, STEP, SPIN, RETIRE, LAUNCH, KERNEL_DONE, DEADLOCK)


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler event."""

    step: int
    kind: str
    block_id: int
    detail: str = ""

    def __str__(self) -> str:
        tail = f" {self.detail}" if self.detail else ""
        return f"[{self.step:>6}] {self.kind:<11} block={self.block_id}{tail}"


@dataclass
class Tracer:
    """Collects scheduler events (optionally filtered by kind).

    Parameters
    ----------
    kinds:
        Event kinds to record; ``None`` records everything.
    max_events:
        Hard cap to bound memory; recording stops (silently) past it.
    """

    kinds: tuple[str, ...] | None = None
    max_events: int = 200_000
    events: list[TraceEvent] = field(default_factory=list)
    _step: int = 0

    def emit(self, kind: str, block_id: int, detail: str = "") -> None:
        self._step += 1
        if self.kinds is not None and kind not in self.kinds:
            return
        if len(self.events) >= self.max_events:
            return
        self.events.append(TraceEvent(self._step, kind, block_id, detail))

    # -- queries ---------------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_block(self, block_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.block_id == block_id]

    def counts(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def dispatch_order(self) -> list[int]:
        """Block ids in the order they became resident."""
        return [e.block_id for e in self.events if e.kind == DISPATCH]

    def retire_order(self) -> list[int]:
        return [e.block_id for e in self.events if e.kind == RETIRE]

    def spin_profile(self) -> dict[int, int]:
        """Spin-poll count per block (who waited how much)."""
        prof: dict[int, int] = {}
        for e in self.events:
            if e.kind == SPIN:
                prof[e.block_id] = prof.get(e.block_id, 0) + 1
        return prof

    def clear(self) -> None:
        self.events.clear()
        self._step = 0


def render_timeline(events: Iterable[TraceEvent], *, max_blocks: int = 16,
                    max_cols: int = 100) -> str:
    """ASCII schedule: one row per block, one column per scheduler step.

    Glyphs: ``D`` dispatch, ``.`` productive step, ``s`` spin, ``R`` retire.
    Useful for eyeballing how soft synchronization pipelines tiles.
    """
    events = list(events)
    blocks = sorted({e.block_id for e in events if e.block_id >= 0})[:max_blocks]
    if not blocks:
        return "(no events)"
    glyph = {DISPATCH: "D", STEP: ".", SPIN: "s", RETIRE: "R"}
    per_block_events = {b: [] for b in blocks}
    for e in events:
        if e.block_id in per_block_events and e.kind in glyph:
            per_block_events[e.block_id].append(e)
    # Column = rank among traced steps, compressed to fit.
    traced_steps = sorted({e.step for b in blocks for e in per_block_events[b]})
    col_of = {s: i for i, s in enumerate(traced_steps)}
    ncols = min(len(traced_steps), max_cols)
    lines = []
    for b in blocks:
        row = [" "] * ncols
        for e in per_block_events[b]:
            col = col_of[e.step]
            if col < ncols:
                row[col] = glyph[e.kind]
        lines.append(f"block {b:>4} |" + "".join(row))
    legend = "legend: D dispatch, . step, s spin, R retire"
    return "\n".join(lines + [legend])
