"""Warp-level primitives: shuffles, scans, reductions.

These mirror CUDA's ``__shfl_up_sync`` family and the register-level
Hillis–Steele scan from Section II of the paper (Figure 4).  Values live in
"registers": a NumPy vector with one lane per thread.  Inputs may cover several
warps; each warp of 32 lanes is independent, exactly as on hardware.

Every shuffle is counted in the supplied :class:`MemoryTraffic` so the cost
model can charge for them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.counters import MemoryTraffic
from repro.gpusim.device import WARP_SIZE


def _as_lanes(values: np.ndarray, warp_size: int) -> np.ndarray:
    lanes = np.asarray(values)
    if lanes.ndim != 1:
        raise ConfigurationError("warp primitives take a 1-D lane vector")
    if lanes.size % warp_size:
        raise ConfigurationError(
            f"lane vector of size {lanes.size} is not a whole number of "
            f"{warp_size}-lane warps")
    return lanes


def shfl_up(values: np.ndarray, delta: int,
            traffic: MemoryTraffic | None = None,
            warp_size: int = WARP_SIZE) -> np.ndarray:
    """``__shfl_up_sync``: lane ``i`` receives lane ``i - delta``'s value.

    Lanes ``i < delta`` receive their own value unchanged (CUDA semantics).
    """
    lanes = _as_lanes(values, warp_size)
    out = lanes.copy()
    per_warp = lanes.reshape(-1, warp_size)
    out_w = out.reshape(-1, warp_size)
    if delta > 0:
        out_w[:, delta:] = per_warp[:, :warp_size - delta]
    if traffic is not None:
        traffic.shuffle_ops += lanes.size
    return out


def shfl_idx(values: np.ndarray, src_lane: int,
             traffic: MemoryTraffic | None = None,
             warp_size: int = WARP_SIZE) -> np.ndarray:
    """``__shfl_sync``: every lane receives the value of ``src_lane`` in its warp."""
    lanes = _as_lanes(values, warp_size)
    per_warp = lanes.reshape(-1, warp_size)
    out = np.repeat(per_warp[:, src_lane % warp_size], warp_size)
    if traffic is not None:
        traffic.shuffle_ops += lanes.size
    return out.astype(lanes.dtype, copy=False)


def warp_inclusive_scan(values: np.ndarray,
                        traffic: MemoryTraffic | None = None,
                        warp_size: int = WARP_SIZE) -> np.ndarray:
    """Per-warp inclusive prefix sums via the paper's warp prefix-sum algorithm.

    Implements Figure 4 literally: ``log2(w)`` rounds, in round ``j`` every
    lane ``i >= 2**j`` adds the value shuffled up by ``2**j``.  The result for
    lane ``i`` is ``v[0] + ... + v[i]`` within its warp; lane ``w-1`` therefore
    holds the warp sum.
    """
    lanes = _as_lanes(values, warp_size).copy()
    steps = int(np.log2(warp_size))
    if 1 << steps != warp_size:
        raise ConfigurationError("warp size must be a power of two")
    lane_ids = np.tile(np.arange(warp_size), lanes.size // warp_size)
    for j in range(steps):
        delta = 1 << j
        shifted = shfl_up(lanes, delta, traffic, warp_size)
        lanes = np.where(lane_ids >= delta, lanes + shifted, lanes)
    return lanes


def warp_exclusive_scan(values: np.ndarray,
                        traffic: MemoryTraffic | None = None,
                        warp_size: int = WARP_SIZE) -> np.ndarray:
    """Per-warp exclusive prefix sums (lane ``i`` gets ``v[0]+...+v[i-1]``, lane 0 gets 0)."""
    inc = warp_inclusive_scan(values, traffic, warp_size)
    return inc - _as_lanes(values, warp_size)


def warp_reduce_sum(values: np.ndarray,
                    traffic: MemoryTraffic | None = None,
                    warp_size: int = WARP_SIZE) -> np.ndarray:
    """Per-warp sum, broadcast to every lane of the warp.

    The paper computes sums with the warp prefix-sum algorithm and takes the
    last lane; we follow that (the shuffle count matches) and broadcast.
    """
    inc = warp_inclusive_scan(values, traffic, warp_size)
    return shfl_idx(inc, warp_size - 1, traffic, warp_size)
