"""Wavefront-parallel tiled host execution engine (CPU realization of the
paper's look-back dataflow).

The tile-based SAT algorithms' host paths were serial Python loops over all
``(n/W)²`` tiles.  This package executes the same dataflow — identical
published quantities, bit-identical float64 results — as a dependency-driven
wavefront over a persistent thread pool, with each anti-diagonal's tiles
processed in batched NumPy chunks.  See :mod:`repro.hostexec.engine` for the
execution model and :mod:`repro.hostexec.kernels` for the per-algorithm tile
algebra.

>>> import numpy as np
>>> from repro.hostexec import wavefront_sat
>>> a = np.arange(64.0).reshape(8, 8)
>>> bool(np.array_equal(wavefront_sat(a, tile_width=4),
...                     a.cumsum(axis=0).cumsum(axis=1)))
True
"""

from repro.hostexec.compiled import (FLAT_KERNELS, CompiledEngine,
                                     FlatKernel, compiled_sat,
                                     flat_kernel_for, host_compiled_sat,
                                     is_compiled_engine, numba_available,
                                     shared_compiled_engine)
from repro.hostexec.engine import (RetainedState, WavefrontEngine,
                                   default_workers, resolve_engine,
                                   shared_engine, wavefront_sat)
from repro.hostexec.incremental import (STRATEGIES, IncrementalSAT,
                                        RepairStats, repair_benchmark,
                                        sanitize_incremental, verify_state)
from repro.hostexec.kernels import (KERNELS, CarrySet, KernelSpec,
                                    gather_left_up, gather_left_up_corner,
                                    kernel_for)
from repro.hostexec.plan import (DEPS_LEFT_UP, DEPS_LEFT_UP_CORNER,
                                 TILE_DONE, TILE_PENDING, TILE_READY,
                                 Chunk, WavefrontPlan, build_plan,
                                 split_diagonal)
from repro.hostexec.registry import (ENGINES, EngineSpec,
                                     engines_for_algorithm, get_engine_spec,
                                     known_engines, unknown_engine_error)

__all__ = [
    "WavefrontEngine", "wavefront_sat", "shared_engine", "resolve_engine",
    "default_workers", "RetainedState",
    "CompiledEngine", "compiled_sat", "shared_compiled_engine",
    "host_compiled_sat", "is_compiled_engine", "numba_available",
    "FlatKernel", "FLAT_KERNELS", "flat_kernel_for",
    "EngineSpec", "ENGINES", "known_engines", "get_engine_spec",
    "engines_for_algorithm", "unknown_engine_error",
    "IncrementalSAT", "RepairStats", "STRATEGIES", "verify_state",
    "sanitize_incremental", "repair_benchmark",
    "KERNELS", "KernelSpec", "CarrySet", "kernel_for",
    "gather_left_up", "gather_left_up_corner",
    "WavefrontPlan", "Chunk", "build_plan", "split_diagonal",
    "DEPS_LEFT_UP", "DEPS_LEFT_UP_CORNER",
    "TILE_PENDING", "TILE_READY", "TILE_DONE",
]
