"""Compiled host backend: Numba-jitted flat tile kernels (``engine="compiled"``).

The wavefront engine already removed the per-tile interpreter trips by
batching each anti-diagonal chunk into a handful of NumPy calls, but it still
pays for what those calls *are*: an advanced-indexing gather that copies the
chunk into a ``(k, W, W)`` stack, several full-stack temporaries for the
local sums, and a symmetric scatter back.  This module removes that layer
too.  Each tile algorithm gets a *flat kernel* — a single compiled pass that
walks the padded input and output matrices in place, doing gather, tile
algebra, carry update and scatter per tile with no stack copies and no
temporaries beyond two ``W``-element scratch vectors.  The kernels are plain
Python functions compiled on demand with ``numba.njit(cache=True)`` (and a
``parallel=True`` + ``prange`` variant for multi-threaded diagonals, which is
safe because tiles on one anti-diagonal are mutually independent).

Bit-identity — the same ``np.array_equal`` contract the wavefront engine
satisfies — is preserved by replicating NumPy's reduction orders exactly:

* ``stack.sum(axis=2)`` / ``(k, W).sum(axis=1)`` reduce a contiguous last
  axis, which NumPy computes with its pairwise (blocked, 8-way unrolled)
  summation tree.  :func:`_pairwise` is a faithful reimplementation of that
  tree (same block size, same unroll, same combination order), so flat row
  sums produce the identical float, not merely a close one.
* ``stack.sum(axis=1)`` reduces a strided axis, which NumPy computes as a
  strictly sequential per-lane recurrence — the flat kernels accumulate
  column sums row by row with the accumulator on the left operand.
* ``np.cumsum`` is the sequential recurrence ``out[i] = out[i-1] + a[i]``;
  the flat scans keep the accumulator on the left operand likewise.

Because the wavefront chunk kernels are themselves bit-identical to the
serial ``_run_host`` loops, matching them makes the compiled engine
transitively bit-identical to the serial reference for every algorithm and
dtype — the equivalence tests assert exact equality, never ``allclose``.

Numba is an *optional* dependency (install extra ``repro[compiled]``).  The
module imports without it: :class:`CompiledEngine` can run its kernels as
pure Python (``jit=False``, used by the equivalence tests so the contract is
checked even on Numba-free hosts), and the ``engine="compiled"`` routing
degrades gracefully — tile-based algorithms fall back to the wavefront
engine, the plain-scan algorithms to the serial host path, with a single
process-wide warning (see :func:`compiled_engine_for`).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.backend.plan import check_out, finalize_output, prepare_input
from repro.errors import ConfigurationError
from repro.hostexec.kernels import (KERNELS, CarrySet, _gather_scal,
                                    gather_left_up, gather_left_up_corner)
from repro.hostexec.registry import _module_available
from repro.primitives.tile import TileGrid
from repro.sat.dtypes import resolve_policy

#: Algorithms with no tile dataflow: the compiled engine runs them as one
#: fused flat double scan over the whole (unpadded) matrix instead.
NON_TILE_ALGORITHMS = ("2R2W", "2R2W-optimal")

# --------------------------------------------------------------------------
# Numba availability and lazy compilation
# --------------------------------------------------------------------------

#: Rebound to ``numba.prange`` before kernels are jitted; as plain ``range``
#: the same source runs pure-Python (and ``numba.prange`` called from the
#: interpreter *returns* a range, so already-rebound kernels still run pure).
prange = range

_numba_ok: bool | None = None
_helpers_jitted = False
_warned_fallback = False
_jitted: dict[tuple[str, bool], Callable] = {}
_compile_lock = threading.Lock()


def numba_available() -> bool:
    """Whether the optional ``numba`` dependency is importable (cached)."""
    global _numba_ok
    if _numba_ok is None:
        _numba_ok = _module_available("numba")
    return _numba_ok


def _reset_numba_probe() -> None:
    """Test hook: forget the cached availability probe and warning state."""
    global _numba_ok, _warned_fallback
    _numba_ok = None
    _warned_fallback = False


def _warn_fallback() -> None:
    """Warn (once per process) that ``engine="compiled"`` is degrading."""
    global _warned_fallback
    if not _warned_fallback:
        _warned_fallback = True
        warnings.warn(
            "numba is not installed; engine='compiled' falls back to the "
            "wavefront engine (serial host path for the plain-scan "
            "algorithms). Install the extra: pip install repro[compiled]",
            RuntimeWarning, stacklevel=3)


def _jit_helpers(numba) -> None:
    """Jit the shared helpers and swap ``prange`` in, exactly once."""
    global _helpers_jitted, prange, _pairwise, _assemble_flat
    if not _helpers_jitted:
        prange = numba.prange
        _pairwise = numba.njit(cache=True)(_pairwise)
        _assemble_flat = numba.njit(cache=True)(_assemble_flat)
        _helpers_jitted = True


def _get_kernel(name: str, py_fn: Callable, *, parallel: bool,
                jit: bool) -> Callable:
    """The executable form of flat kernel ``name``: the pure-Python function
    itself (``jit=False``) or its cached njit-compiled variant."""
    if not jit:
        return py_fn
    key = (name, parallel)
    fn = _jitted.get(key)
    if fn is None:
        with _compile_lock:
            fn = _jitted.get(key)
            if fn is None:
                import numba
                _jit_helpers(numba)
                fn = numba.njit(cache=True, parallel=parallel)(py_fn)
                _jitted[key] = fn
    return fn


# --------------------------------------------------------------------------
# Flat scan primitives (single source: pure Python and njit target alike)
# --------------------------------------------------------------------------


def _pairwise(a):
    """NumPy's pairwise summation of a contiguous 1-D array, bit-for-bit.

    Replicates the C implementation behind ``ndarray.sum`` on a contiguous
    last axis: sequential below 8 elements; an 8-accumulator unrolled block
    loop with the fixed combination tree ``((r0+r1)+(r2+r3))+((r4+r5)+(r6+r7))``
    up to 128 elements; above that, recursive halving to a multiple of 8.
    """
    n = a.shape[0]
    if n < 8:
        res = a[0]
        for i in range(1, n):
            res = res + a[i]
        return res
    if n <= 128:
        r0 = a[0]
        r1 = a[1]
        r2 = a[2]
        r3 = a[3]
        r4 = a[4]
        r5 = a[5]
        r6 = a[6]
        r7 = a[7]
        i = 8
        stop = n - (n % 8)
        while i < stop:
            r0 = r0 + a[i]
            r1 = r1 + a[i + 1]
            r2 = r2 + a[i + 2]
            r3 = r3 + a[i + 3]
            r4 = r4 + a[i + 4]
            r5 = r5 + a[i + 5]
            r6 = r6 + a[i + 6]
            r7 = r7 + a[i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res = res + a[i]
            i += 1
        return res
    n2 = n // 2
    n2 = n2 - (n2 % 8)
    return _pairwise(a[:n2]) + _pairwise(a[n2:])


def _assemble_flat(work, out, r0, c0, W, grs_left, gcs_above, gs_corner):
    """Flat ``assemble_gsat_tile``: carry injection fused into the row scan,
    then the column scan — the exact operation order of the stacked
    ``stack[:, :, 0] += grs_left; stack[:, 0, :] += gcs_above;
    stack[0, 0] += gs; cumsum(axis=2); cumsum(axis=1)`` sequence."""
    v = work[r0, c0] + grs_left[0]
    v = v + gcs_above[0]
    v = v + gs_corner
    out[r0, c0] = v
    acc = v
    for c in range(1, W):
        acc = acc + (work[r0, c0 + c] + gcs_above[c])
        out[r0, c0 + c] = acc
    for r in range(1, W):
        acc = work[r0 + r, c0] + grs_left[r]
        out[r0 + r, c0] = acc
        for c in range(1, W):
            acc = acc + work[r0 + r, c0 + c]
            out[r0 + r, c0 + c] = acc
    for r in range(1, W):
        for c in range(W):
            out[r0 + r, c0 + c] = out[r0 + r - 1, c0 + c] + out[r0 + r, c0 + c]


# --------------------------------------------------------------------------
# Flat tile kernels (one compiled pass per anti-diagonal)
# --------------------------------------------------------------------------


def _flat_skss_lb(work, out, grs, gcs, gs, grs_left, gcs_above, gs_corner,
                  Is, Js, W):
    """1R1W-SKSS-LB: GS built from the corner plus the gnomon GLS."""
    for idx in prange(Is.shape[0]):
        I = Is[idx]
        J = Js[idx]
        r0 = I * W
        c0 = J * W
        lrs = np.empty_like(work[r0, c0:c0 + W])
        lcs = np.empty_like(lrs)
        for c in range(W):
            lcs[c] = work[r0, c0 + c]
        for r in range(W):
            lrs[r] = _pairwise(work[r0 + r, c0:c0 + W])
            if r > 0:
                for c in range(W):
                    lcs[c] = lcs[c] + work[r0 + r, c0 + c]
        for r in range(W):
            grs[I, J, r] = grs_left[idx, r] + lrs[r]
        for c in range(W):
            gcs[I, J, c] = gcs_above[idx, c] + lcs[c]
        gls = (_pairwise(grs_left[idx]) + _pairwise(gcs_above[idx])) \
            + _pairwise(lrs)
        gs[I, J] = gs_corner[idx] + gls
        _assemble_flat(work, out, r0, c0, W, grs_left[idx], gcs_above[idx],
                       gs_corner[idx])


def _flat_corner(work, out, grs, gcs, gs, grs_left, gcs_above, gs_corner,
                 Is, Js, W):
    """1R1W / (1+r)R1W: GS read off the assembled GSAT corner."""
    for idx in prange(Is.shape[0]):
        I = Is[idx]
        J = Js[idx]
        r0 = I * W
        c0 = J * W
        lrs = np.empty_like(work[r0, c0:c0 + W])
        lcs = np.empty_like(lrs)
        for c in range(W):
            lcs[c] = work[r0, c0 + c]
        for r in range(W):
            lrs[r] = _pairwise(work[r0 + r, c0:c0 + W])
            if r > 0:
                for c in range(W):
                    lcs[c] = lcs[c] + work[r0 + r, c0 + c]
        for r in range(W):
            grs[I, J, r] = grs_left[idx, r] + lrs[r]
        for c in range(W):
            gcs[I, J, c] = gcs_above[idx, c] + lcs[c]
        _assemble_flat(work, out, r0, c0, W, grs_left[idx], gcs_above[idx],
                       gs_corner[idx])
        gs[I, J] = out[r0 + W - 1, c0 + W - 1]


def _flat_skss(work, out, grs, gcp, grs_left, gcp_above, Is, Js, W):
    """1R1W-SKSS: GRS hand-off left, GCP (GSAT bottom row) down.  The GCP row
    is injected *after* the row scan, matching the serial dataflow."""
    for idx in prange(Is.shape[0]):
        I = Is[idx]
        J = Js[idx]
        r0 = I * W
        c0 = J * W
        for r in range(W):
            acc = work[r0 + r, c0] + grs_left[idx, r]
            out[r0 + r, c0] = acc
            for c in range(1, W):
                acc = acc + work[r0 + r, c0 + c]
                out[r0 + r, c0 + c] = acc
        for c in range(W):
            out[r0, c0 + c] = out[r0, c0 + c] + gcp_above[idx, c]
        for r in range(1, W):
            for c in range(W):
                out[r0 + r, c0 + c] = out[r0 + r - 1, c0 + c] \
                    + out[r0 + r, c0 + c]
        for r in range(W):
            grs[I, J, r] = grs_left[idx, r] \
                + _pairwise(work[r0 + r, c0:c0 + W])
        for c in range(W):
            gcp[I, J, c] = out[r0 + W - 1, c0 + c]


def _flat_nehab(work, out, grs, gcs, gs, gs_col, grs_left, gcs_above,
                gs_corner, col_above, gs_left, Is, Js, W):
    """2R1W, cumsum-faithful: the serial path builds the carry chains with
    whole-array ``cumsum`` calls whose first element is a *copy* (no ``0 + x``
    add), so border tiles store their local sums verbatim here too."""
    for idx in prange(Is.shape[0]):
        I = Is[idx]
        J = Js[idx]
        r0 = I * W
        c0 = J * W
        lrs = np.empty_like(work[r0, c0:c0 + W])
        lcs = np.empty_like(lrs)
        for c in range(W):
            lcs[c] = work[r0, c0 + c]
        for r in range(W):
            lrs[r] = _pairwise(work[r0 + r, c0:c0 + W])
            if r > 0:
                for c in range(W):
                    lcs[c] = lcs[c] + work[r0 + r, c0 + c]
        ls = _pairwise(lcs)
        if J == 0:
            for r in range(W):
                grs[I, J, r] = lrs[r]
        else:
            for r in range(W):
                grs[I, J, r] = grs_left[idx, r] + lrs[r]
        if I == 0:
            for c in range(W):
                gcs[I, J, c] = lcs[c]
        else:
            for c in range(W):
                gcs[I, J, c] = gcs_above[idx, c] + lcs[c]
        col = ls if I == 0 else col_above[idx] + ls
        gs_col[I, J] = col
        gs[I, J] = col if J == 0 else gs_left[idx] + col
        _assemble_flat(work, out, r0, c0, W, grs_left[idx], gcs_above[idx],
                       gs_corner[idx])


def _flat_double_scan(work, out):
    """Fused flat ``cumsum(axis=0).cumsum(axis=1)`` (the 2R2W host path and
    the NumPy reference), with a rolling column-sum row buffer.  Strictly
    sequential — banding the row loop would change float reduction order."""
    R = work.shape[0]
    C = work.shape[1]
    if R == 0 or C == 0:
        return
    col = np.empty_like(work[0])
    for c in range(C):
        col[c] = work[0, c]
    acc = col[0]
    out[0, 0] = acc
    for c in range(1, C):
        acc = acc + col[c]
        out[0, c] = acc
    for r in range(1, R):
        for c in range(C):
            col[c] = col[c] + work[r, c]
        acc = col[0]
        out[r, 0] = acc
        for c in range(1, C):
            acc = acc + col[c]
            out[r, c] = acc


# --------------------------------------------------------------------------
# Kernel table and carry-gather wrappers
# --------------------------------------------------------------------------


def _run_left_up_corner(kern, work, out, carry, Is, Js, W):
    grs_left, gcs_above, gs_corner = gather_left_up_corner(carry, Is, Js, W)
    kern(work, out, carry.vec_row, carry.vec_col, carry.scal,
         grs_left, gcs_above, gs_corner, Is, Js, W)


def _run_skss(kern, work, out, carry, Is, Js, W):
    grs_left, gcp_above = gather_left_up(carry, Is, Js, W)
    kern(work, out, carry.vec_row, carry.vec_col, grs_left, gcp_above,
         Is, Js, W)


def _run_nehab(kern, work, out, carry, Is, Js, W):
    grs_left, gcs_above, gs_corner = gather_left_up_corner(carry, Is, Js, W)
    col_above = _gather_scal(carry.scal2, Is - 1, Js)
    gs_left = _gather_scal(carry.scal, Is, Js - 1)
    kern(work, out, carry.vec_row, carry.vec_col, carry.scal, carry.scal2,
         grs_left, gcs_above, gs_corner, col_above, gs_left, Is, Js, W)


@dataclass(frozen=True)
class FlatKernel:
    """A flat tile kernel plus the wrapper that feeds it gathered carries.

    ``kernel`` is the single-source loop function (pure Python, njit-able);
    ``run`` gathers the chunk's carry inputs with the same
    :func:`~repro.hostexec.kernels.gather_left_up_corner` /
    :func:`~repro.hostexec.kernels.gather_left_up` primitives the batched
    NumPy kernels use, then hands everything to the (possibly compiled)
    kernel in one call.
    """

    name: str
    kernel: Callable
    run: Callable


#: Flat kernels by canonical algorithm name (the tile-based five — the
#: plain-scan algorithms run through :func:`_flat_double_scan` instead).
FLAT_KERNELS: dict[str, FlatKernel] = {
    "2R1W": FlatKernel("2R1W", _flat_nehab, _run_nehab),
    "1R1W": FlatKernel("1R1W", _flat_corner, _run_left_up_corner),
    "(1+r)R1W": FlatKernel("(1+r)R1W", _flat_corner, _run_left_up_corner),
    "1R1W-SKSS": FlatKernel("1R1W-SKSS", _flat_skss, _run_skss),
    "1R1W-SKSS-LB": FlatKernel("1R1W-SKSS-LB", _flat_skss_lb,
                               _run_left_up_corner),
}


def _canonical_algorithm(algorithm) -> str:
    """Canonical algorithm name; ``None`` means the plain reference scan."""
    if algorithm is None:
        return "2R2W"
    if algorithm in FLAT_KERNELS or algorithm in NON_TILE_ALGORITHMS:
        return algorithm
    from repro.sat.registry import get_algorithm
    return get_algorithm(algorithm).name


def flat_kernel_for(algorithm: str) -> FlatKernel:
    """Resolve an algorithm name (or registry alias) to its flat kernel."""
    name = _canonical_algorithm(algorithm)
    spec = FLAT_KERNELS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"algorithm '{algorithm}' has no tile dataflow; the compiled "
            f"engine runs it as a flat double scan")
    return spec


# --------------------------------------------------------------------------
# The engine
# --------------------------------------------------------------------------


class CompiledEngine:
    """Compiled flat-kernel executor for every SAT algorithm.

    Parameters
    ----------
    workers:
        ``1`` (the default) runs the serial njit variant of each kernel;
        ``> 1`` compiles the ``parallel=True`` / ``prange`` variant and asks
        Numba for that many threads.  Either way results are bit-identical:
        tiles on one anti-diagonal are independent, so the thread split
        never reorders a floating-point reduction.
    jit:
        ``False`` executes the same kernel source as pure Python — orders of
        magnitude slower, but dependency-free; the equivalence tests use it
        to pin the bit-identity contract on Numba-free hosts.  ``True``
        (default) requires Numba and raises :class:`ConfigurationError`
        without it (the string routing ``engine="compiled"`` degrades
        gracefully instead; see :func:`compiled_engine_for`).
    """

    def __init__(self, *, workers: int | None = None,
                 jit: bool = True) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("workers must be positive")
        if jit and not numba_available():
            raise ConfigurationError(
                "CompiledEngine(jit=True) requires numba; install the "
                "extra (pip install repro[compiled]), pass jit=False for "
                "the pure-Python kernels, or route through "
                "engine='compiled', which falls back to the wavefront "
                "engine automatically")
        self.workers = workers or 1
        self.jit = jit
        self._carries: dict[tuple, CarrySet] = {}
        self._diags: dict[tuple[int, int], list] = {}
        self._lock = threading.Lock()   # one compute at a time per engine
        self._closed = False

    # -- resource management ------------------------------------------------

    def close(self) -> None:
        """Release cached carry planes and diagonal index arrays."""
        self._closed = True
        self._carries.clear()
        self._diags.clear()

    def __enter__(self) -> "CompiledEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _carry(self, grid: TileGrid, dtype: np.dtype) -> CarrySet:
        key = (grid.tile_rows, grid.tile_cols, grid.W, dtype)
        carry = self._carries.get(key)
        if carry is None:
            carry = self._carries[key] = CarrySet(
                tr=grid.tile_rows, tc=grid.tile_cols, W=grid.W, dtype=dtype)
        return carry

    def _diagonals(self, grid: TileGrid) -> list:
        """Cached ``(Is, Js)`` index arrays for each anti-diagonal."""
        key = (grid.tile_rows, grid.tile_cols)
        diags = self._diags.get(key)
        if diags is None:
            diags = []
            for K in range(grid.num_diagonals):
                tiles = grid.tiles_on_diagonal(K)
                Is = np.fromiter((I for I, _ in tiles), dtype=np.intp)
                Js = np.fromiter((J for _, J in tiles), dtype=np.intp)
                diags.append((Is, Js))
            self._diags[key] = diags
        return diags

    def _threads(self) -> None:
        if self.workers > 1 and self.jit:
            import numba
            try:
                numba.set_num_threads(
                    min(self.workers, numba.config.NUMBA_NUM_THREADS))
            except ValueError:  # pragma: no cover - host-dependent limits
                pass

    # -- execution -----------------------------------------------------------

    def compute(self, a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                tile_width: int = 32, out: np.ndarray | None = None,
                dtype_policy=None) -> np.ndarray:
        """Compute one SAT through the compiled flat kernels.

        Mirrors :meth:`WavefrontEngine.compute`: any 2-D matrix, ragged
        edges zero-padded to tile multiples internally and cropped on
        output, ``dtype_policy`` resolving the accumulator dtype the same
        way, optional ``out`` buffer recycling.  Additionally accepts the
        plain-scan algorithms (``2R2W`` / ``2R2W-optimal`` / ``None``),
        which run as one fused flat double scan with no padding at all.
        """
        if self._closed:
            raise ConfigurationError("engine is closed")
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError(
                f"compiled engine expects a 2-D matrix, got shape {a.shape}")
        name = _canonical_algorithm(algorithm)
        rows, cols = a.shape
        acc = resolve_policy(dtype_policy).accumulator(a.dtype)
        check_out(out, rows, cols, acc)
        if name in NON_TILE_ALGORITHMS:
            work, _ = prepare_input(a, acc_dtype=acc)
            res = out if out is not None else np.empty_like(work)
            kern = _get_kernel("double-scan", _flat_double_scan,
                               parallel=False, jit=self.jit)
            kern(work, res)
            return res
        spec = flat_kernel_for(name)
        grid = TileGrid(rows=rows, cols=cols, W=tile_width)
        W = grid.W
        work, _ = prepare_input(a, acc_dtype=acc, grid=grid)
        res = out if (out is not None and grid.aligned) \
            else np.empty_like(work)
        kern = _get_kernel(spec.name, spec.kernel,
                           parallel=self.workers > 1, jit=self.jit)
        with self._lock:
            self._threads()
            carry = self._carry(grid, work.dtype)
            for Is, Js in self._diagonals(grid):
                spec.run(kern, work, res, carry, Is, Js, W)
        return finalize_output(res, rows, cols, out)


#: Lazily-created process-wide engine used by ``engine="compiled"`` call
#: sites that do not manage their own instance.
_shared: CompiledEngine | None = None
_shared_lock = threading.Lock()


def shared_compiled_engine() -> CompiledEngine:
    """The process-wide default :class:`CompiledEngine` (created on demand;
    requires Numba — callers wanting graceful degradation go through
    :func:`compiled_engine_for` instead)."""
    global _shared
    with _shared_lock:
        if _shared is None or _shared._closed:
            _shared = CompiledEngine()
        return _shared


def is_compiled_engine(engine) -> bool:
    """Whether an ``engine=`` argument selects the compiled backend."""
    return isinstance(engine, CompiledEngine) or engine == "compiled"


def compiled_engine_for(algorithm: str | None):
    """The executor behind ``engine="compiled"`` for one algorithm.

    Returns the shared :class:`CompiledEngine` when Numba is importable.
    Otherwise warns once and returns the degradation target recorded in the
    engine registry: the shared wavefront engine for tile-based algorithms,
    or ``None`` — meaning "use the serial host path" — for the plain-scan
    algorithms the wavefront engine cannot run.
    """
    if numba_available():
        return shared_compiled_engine()
    _warn_fallback()
    if algorithm is not None and _canonical_algorithm(algorithm) in KERNELS:
        from repro.hostexec.engine import shared_engine
        return shared_engine()
    return None


def host_compiled_sat(a: np.ndarray, *, algorithm: str | None = None,
                      tile_width: int = 32, workers: int | None = None,
                      dtype_policy=None, engine=None) -> np.ndarray:
    """``host_sat`` / ``out_of_core_sat`` entry for ``engine="compiled"``.

    ``algorithm=None`` keeps ``host_sat``'s reference-scan contract: the
    fused flat double scan, bit-identical to
    ``cumsum(axis=0).cumsum(axis=1)`` — so out-of-core bands and apps can
    route their default scans through the compiled backend too.  Degrades
    exactly like :func:`compiled_engine_for` when Numba is missing.
    """
    a = np.asarray(a)
    if isinstance(engine, CompiledEngine):
        return engine.compute(a, algorithm=algorithm, tile_width=tile_width,
                              dtype_policy=dtype_policy)
    if algorithm is None:
        if numba_available():
            eng = CompiledEngine(workers=workers) if workers and workers > 1 \
                else shared_compiled_engine()
            return eng.compute(a, algorithm=None, dtype_policy=dtype_policy)
        _warn_fallback()
        acc = resolve_policy(dtype_policy).accumulator(a.dtype)
        return a.astype(acc, copy=False).cumsum(axis=0).cumsum(axis=1)
    from repro.sat.registry import get_algorithm
    alg = get_algorithm(algorithm, tile_width=tile_width)
    if numba_available() and workers and workers > 1:
        return alg.run_host(a, engine=CompiledEngine(workers=workers),
                            dtype_policy=dtype_policy)
    return alg.run_host(a, engine="compiled", dtype_policy=dtype_policy)


def compiled_sat(a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                 tile_width: int = 32, workers: int | None = None,
                 dtype_policy=None) -> np.ndarray:
    """One-shot compiled SAT (uses the shared engine unless ``workers`` set).

    Requires Numba (use ``host_sat(..., engine="compiled")`` for the
    gracefully-degrading form).
    """
    if workers is None:
        return shared_compiled_engine().compute(
            a, algorithm=algorithm, tile_width=tile_width,
            dtype_policy=dtype_policy)
    with CompiledEngine(workers=workers) as engine:
        return engine.compute(a, algorithm=algorithm, tile_width=tile_width,
                              dtype_policy=dtype_policy)
