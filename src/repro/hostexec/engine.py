"""The wavefront host engine: dependency-driven tiled SAT execution on a
persistent thread pool.

This is the CPU realization of the paper's look-back structure.  Where the
GPU algorithm lets CUDA blocks acquire tiles in diagonal-major serial order
and spin on per-tile status bytes, the host engine dispatches *chunks* of an
anti-diagonal to pool workers the moment their left/up/up-left producer tiles
retire — per-tile status words and dependency counters replace the full
diagonal barrier of the 1R1W algorithm, so a fast chunk of diagonal ``K+1``
overlaps the still-running remainder of diagonal ``K``.  NumPy releases the
GIL inside the batched tile kernels, so chunks genuinely overlap on
multi-core hosts; on any host the batching itself (one NumPy call sequence
per chunk instead of per tile) is a large constant-factor win over the serial
``_run_host`` loops.

Two usage shapes:

* :func:`wavefront_sat` — one-shot convenience;
* :class:`WavefrontEngine` — persistent: pool, tile-slice plans and carry
  planes are built once and reused, which is what makes the batched API
  (:meth:`~WavefrontEngine.compute_many`, :meth:`~WavefrontEngine.stream`)
  cheap for video-style repeated same-shape SATs.

Results are bit-identical to each algorithm's serial host path (in the same
accumulator dtype) and independent of the worker count and of scheduling
order: chunk kernels only gather values from tiles whose status word is DONE,
and each tile's algebra is a pure function of those values.

Rectangular inputs follow the virtual zero-padding convention of
:mod:`repro.sat.base`: the matrix is padded to tile multiples with zeros
(which leave every valid-region SAT value unchanged) and the result is
cropped back on output.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.backend.plan import check_out, finalize_output, prepare_input
from repro.errors import ConfigurationError
from repro.hostexec.kernels import CarrySet, KernelSpec, kernel_for
from repro.hostexec.plan import (DEPS_LEFT_UP, TILE_DONE, TILE_READY,
                                 WavefrontPlan, build_plan)
from repro.primitives.tile import TileGrid
from repro.sat.dtypes import resolve_policy


@dataclass
class RetainedState:
    """The resident tile-grid state of one ``retain_state=True`` computation.

    Everything the incremental engine (:mod:`repro.hostexec.incremental`)
    needs to *repair* a SAT instead of recomputing it: the padded working
    matrix, the committed (padded) SAT, and the inter-tile carry planes — all
    privately owned (never shared with the engine's cross-call caches), so
    they stay valid between calls and may be edited in place.
    """

    spec: KernelSpec
    grid: TileGrid
    #: Padded working matrix in the accumulator dtype (the current input).
    work: np.ndarray
    #: Padded committed SAT of :attr:`work`.
    out: np.ndarray
    #: Private inter-tile carry planes (GRS/GCS/GS family or GRS/GCP).
    carry: CarrySet

    @property
    def a4(self) -> np.ndarray:
        """``(tr, W, tc, W)`` tile view of the working matrix."""
        g = self.grid
        return self.work.reshape(g.tile_rows, g.W, g.tile_cols, g.W)

    @property
    def out4(self) -> np.ndarray:
        """``(tr, W, tc, W)`` tile view of the committed SAT."""
        g = self.grid
        return self.out.reshape(g.tile_rows, g.W, g.tile_cols, g.W)

    def planes(self) -> dict[str, np.ndarray]:
        """The carry planes keyed by their role for this kernel's dataflow.

        The GRS/GCS/GS family publishes row sums, column sums and the corner
        scalar; 1R1W-SKSS publishes row sums and the GCP bottom row instead
        (``2R1W`` additionally carries its column-accumulated scalar chain).
        """
        if self.spec.deps == DEPS_LEFT_UP:
            return {"GRS": self.carry.vec_row, "GCP": self.carry.vec_col}
        planes = {"GRS": self.carry.vec_row, "GCS": self.carry.vec_col,
                  "GS": self.carry.scal}
        if self.spec.name == "2R1W":
            planes["GS-col"] = self.carry.scal2
        return planes


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else the full CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer, got {env!r}") from exc
        if value <= 0:
            raise ConfigurationError("REPRO_WORKERS must be positive")
        return value
    return max(1, os.cpu_count() or 1)


class WavefrontEngine:
    """Persistent wavefront executor for tile-based SAT dataflows.

    Parameters
    ----------
    workers:
        Pool size (defaults to :func:`default_workers`).  ``workers=1``
        degenerates to a batched serial diagonal sweep with no pool overhead
        — still much faster than the per-tile serial loops.
    """

    def __init__(self, *, workers: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("workers must be positive")
        self.workers = workers or default_workers()
        self._pool: ThreadPoolExecutor | None = None
        self._plans: dict[tuple, WavefrontPlan] = {}
        self._carries: dict[tuple, CarrySet] = {}
        self._lock = threading.Lock()   # one compute at a time per engine
        self._closed = False
        self._retained: RetainedState | None = None

    # -- resource management ---------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise ConfigurationError("engine is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-wavefront")
        return self._pool

    def plan(self, grid: TileGrid,
             deps: tuple[tuple[int, int], ...]) -> WavefrontPlan:
        """The cached chunked-wavefront plan for one grid geometry."""
        key = (grid.tile_rows, grid.tile_cols, grid.W, deps, self.workers)
        plan = self._plans.get(key)
        if plan is None:
            plan = self._plans[key] = build_plan(grid, deps, self.workers)
        return plan

    def _carry(self, grid: TileGrid, dtype: np.dtype) -> CarrySet:
        key = (grid.tile_rows, grid.tile_cols, grid.W, dtype)
        carry = self._carries.get(key)
        if carry is None:
            carry = self._carries[key] = CarrySet(
                tr=grid.tile_rows, tc=grid.tile_cols, W=grid.W, dtype=dtype)
        return carry

    def close(self) -> None:
        """Shut the pool down; cached plans/carries are released."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._plans.clear()
        self._carries.clear()
        self._retained = None

    def __enter__(self) -> "WavefrontEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- execution --------------------------------------------------------------

    def compute(self, a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                tile_width: int = 32, out: np.ndarray | None = None,
                dtype_policy=None, retain_state: bool = False) -> np.ndarray:
        """Compute one SAT through the wavefront schedule.

        ``a`` may be any 2-D ``rows x cols`` matrix; ragged edges are padded
        with zeros to tile multiples internally and cropped on output.
        ``dtype_policy`` resolves the accumulator dtype exactly as
        ``SATAlgorithm.run_host`` does (a policy, a policy name, a fixed
        dtype, or ``None`` for the exact default).

        ``out`` (optional, ``(rows, cols)`` C-contiguous, accumulator dtype)
        receives the result in place — callers streaming many frames can
        recycle a buffer.

        With ``retain_state=True`` the call keeps the padded working matrix,
        the committed SAT and a *private* set of carry planes resident after
        it returns (:meth:`retained_state`) — the raw material of incremental
        repair (:class:`~repro.hostexec.incremental.IncrementalSAT`).  For an
        aligned input the returned array aliases the retained SAT.
        """
        spec = kernel_for(algorithm)
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError(
                f"wavefront engine expects a 2-D matrix, got shape {a.shape}")
        if retain_state and out is not None:
            raise ConfigurationError(
                "retain_state=True owns its output buffer; out= is not "
                "supported")
        rows, cols = a.shape
        acc = resolve_policy(dtype_policy).accumulator(a.dtype)
        grid = TileGrid(rows=rows, cols=cols, W=tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        # The retained state owns (and later edits) the working matrix, so
        # the no-copy aliasing fast path must not be taken for it.
        work, _ = prepare_input(a, acc_dtype=acc, grid=grid,
                                force_copy=retain_state)
        check_out(out, rows, cols, acc)
        # The kernels run over the padded geometry; reuse ``out`` directly
        # when no padding is involved, otherwise crop afterwards.
        res = out if (out is not None and grid.aligned) \
            else np.empty_like(work)
        with self._lock:
            plan = self.plan(grid, spec.deps)
            carry = CarrySet(tr=tr, tc=tc, W=W, dtype=work.dtype) \
                if retain_state else self._carry(grid, work.dtype)
            a4 = work.reshape(tr, W, tc, W)
            out4 = res.reshape(tr, W, tc, W)
            if self.workers == 1 or plan.num_chunks == 1:
                for chunk in plan.chunks:   # diagonal order is topological
                    spec.run(a4, out4, carry, chunk, W)
            else:
                self._run_parallel(plan, spec, a4, out4, carry, W)
            if retain_state:
                self._retained = RetainedState(spec=spec, grid=grid,
                                               work=work, out=res,
                                               carry=carry)
        return finalize_output(res, rows, cols, out)

    def retained_state(self) -> RetainedState | None:
        """The state kept by the most recent ``retain_state=True`` compute.

        Each ``retain_state=True`` call replaces the previous state; callers
        interleaving retained computations on a shared engine should take the
        state immediately (or use a private engine, as
        :class:`~repro.hostexec.incremental.IncrementalSAT` does).
        """
        return self._retained

    def _run_parallel(self, plan: WavefrontPlan, spec: KernelSpec,
                      a4: np.ndarray, out4: np.ndarray, carry: CarrySet,
                      W: int) -> None:
        """Dependency-driven dispatch over the persistent pool."""
        pool = self._ensure_pool()
        pending = [c.num_predecessors for c in plan.chunks]
        status = plan.initial_status()
        state_lock = threading.Lock()
        all_done = threading.Event()
        errors: list[BaseException] = []
        remaining = plan.num_chunks

        def retire(chunk) -> int | None:
            """Mark ``chunk`` done; hand one unblocked chunk back to the
            retiring worker (continuation chaining — no pool round-trip for
            the common single-successor case) and submit any others.

            Readiness is tracked on the plan's chunk-level DAG (plain integer
            counters — cheap under the lock); the per-tile status words are
            advanced alongside as the observable protocol state.
            """
            nonlocal remaining
            newly_ready: list[int] = []
            with state_lock:
                status[chunk.Is, chunk.Js] = TILE_DONE
                for sid in chunk.successors:
                    pending[sid] -= 1
                    if pending[sid] == 0:
                        newly_ready.append(sid)
                remaining -= 1
                if remaining == 0:
                    all_done.set()
                for sid in newly_ready:
                    ready = plan.chunks[sid]
                    status[ready.Is, ready.Js] = TILE_READY
            cont = newly_ready.pop() if newly_ready else None
            for cid in newly_ready:
                pool.submit(run, cid)
            return cont

        def run(cid: int | None) -> None:
            while cid is not None:
                chunk = plan.chunks[cid]
                if not errors:
                    try:
                        spec.run(a4, out4, carry, chunk, W)
                    except BaseException as exc:  # propagate to the caller
                        with state_lock:
                            errors.append(exc)
                cid = retire(chunk)

        roots = plan.roots()
        if not roots:
            raise ConfigurationError("wavefront plan has no dispatchable root")
        for cid in roots:
            pool.submit(run, cid)
        all_done.wait()
        if errors:
            raise errors[0]

    # -- batched API -------------------------------------------------------------

    def compute_many(self, arrays: Iterable[np.ndarray], *,
                     algorithm: str = "1R1W-SKSS-LB", tile_width: int = 32,
                     dtype_policy=None) -> list[np.ndarray]:
        """SATs of many same-shape matrices, amortizing pool/plan/carries."""
        return [self.compute(a, algorithm=algorithm, tile_width=tile_width,
                             dtype_policy=dtype_policy)
                for a in arrays]

    def stream(self, arrays: Iterable[np.ndarray], *,
               algorithm: str = "1R1W-SKSS-LB", tile_width: int = 32,
               reuse_output: bool = False,
               dtype_policy=None) -> Iterator[np.ndarray]:
        """Streaming iterator over SATs (video-style pipelines).

        With ``reuse_output=True`` every yield returns the *same* buffer,
        overwritten per frame — zero allocation per frame, but the consumer
        must finish with (or copy) a frame before advancing.
        """
        out: np.ndarray | None = None
        for a in arrays:
            result = self.compute(a, algorithm=algorithm,
                                  tile_width=tile_width,
                                  out=out if reuse_output else None,
                                  dtype_policy=dtype_policy)
            if reuse_output:
                out = result
            yield result


#: Lazily-created process-wide engine used by ``engine="wavefront"`` call
#: sites that do not manage their own instance.
_shared: WavefrontEngine | None = None
_shared_lock = threading.Lock()


def shared_engine() -> WavefrontEngine:
    """The process-wide default :class:`WavefrontEngine` (created on demand)."""
    global _shared
    with _shared_lock:
        if _shared is None or _shared._closed:
            _shared = WavefrontEngine()
        return _shared


def resolve_engine(engine) -> WavefrontEngine:
    """Map an ``engine=`` argument to a usable :class:`WavefrontEngine`.

    Accepts a :class:`WavefrontEngine` instance or the string ``"wavefront"``
    (the shared default engine).
    """
    if isinstance(engine, WavefrontEngine):
        return engine
    if engine == "wavefront":
        return shared_engine()
    from repro.hostexec.registry import unknown_engine_error
    raise unknown_engine_error(engine)


def wavefront_sat(a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                  tile_width: int = 32, workers: int | None = None,
                  dtype_policy=None) -> np.ndarray:
    """One-shot wavefront SAT (uses the shared engine unless ``workers`` set)."""
    if workers is None:
        return shared_engine().compute(a, algorithm=algorithm,
                                       tile_width=tile_width,
                                       dtype_policy=dtype_policy)
    with WavefrontEngine(workers=workers) as engine:
        return engine.compute(a, algorithm=algorithm, tile_width=tile_width,
                              dtype_policy=dtype_policy)
