"""Incremental SAT maintenance: dirty-tile invalidation and carry repair.

The paper's look-back decomposition makes the summed area table *repairable*:
every tile publishes a small set of aggregates (LRS/LCS feeding GRS/GCS/GS,
or the GCP chain), and each published value is a pure function of the tile's
own elements plus its left/up/up-left producers.  When an edit touches only a
few tiles, every aggregate outside the edit's influence region is still
valid, so a service handling video-style or interactive-edit traffic never
needs to recompute the full table — it repairs the *dirty tiles plus the
right/down carry frontier they invalidate*.

:class:`IncrementalSAT` keeps one frame's tile-grid state resident between
calls (via :meth:`WavefrontEngine.compute(..., retain_state=True)
<repro.hostexec.engine.WavefrontEngine.compute>`): the padded working matrix,
the committed SAT, and the kernel's carry planes.  Edits arrive as
rectangle writes (:meth:`IncrementalSAT.update`), tile writes
(:meth:`IncrementalSAT.update_tiles`), whole-frame additive deltas
(:meth:`IncrementalSAT.delta`) or successive frames
(:meth:`IncrementalSAT.advance`), and are repaired by one of two strategies:

``delta`` (integer accumulators)
    The SAT is linear in its input, so ``SAT(a + d) = SAT(a) + SAT(d)`` —
    and in a fixed-width integer dtype this identity is *exact* (including
    wrap-around: addition mod 2^k is a commutative ring, so the repaired
    table is bit-identical to a from-scratch recomputation).  ``SAT(d)`` of a
    ``h x w`` dirty rectangle is one small double cumsum plus three
    broadcast adds over the down-right quadrant, and the carry planes take
    the matching row/column/corner prefix deltas.  Cost: one pass over the
    quadrant instead of the full tile algebra over the whole matrix.

``recompute`` (float accumulators, or forced)
    Floating-point addition does not associate, so delta repair would change
    low bits.  Instead the engine re-executes the wavefront chunk kernels
    (:mod:`repro.hostexec.kernels`) over exactly the *closure* of the dirty
    tiles — the down-right staircase ``Q = {(I, J) : some dirty (I₀, J₀) has
    I₀ ≤ I, J₀ ≤ J}`` — in anti-diagonal order.  Every recomputed tile reads
    either retained (still valid) or freshly recomputed producer values, so
    the repaired table is bit-identical to a full recompute for every dtype,
    and trivially independent of the worker count.

Both strategies maintain the invariant checked by :func:`verify_state`: after
every edit the resident carry planes equal the Table II oracles of the
current working matrix, and the committed SAT equals a from-scratch
computation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hostexec.engine import RetainedState, WavefrontEngine
from repro.hostexec.kernels import kernel_for
from repro.hostexec.plan import DEPS_LEFT_UP, Chunk
from repro.sat.dtypes import resolve_policy

#: Repair strategies accepted by :class:`IncrementalSAT`.
STRATEGIES = ("auto", "delta", "recompute")


@dataclass
class RepairStats:
    """What the last repair did (and the running totals).

    ``repaired_tiles`` counts tiles whose committed SAT block was touched —
    for the ``delta`` strategy that is the whole down-right quadrant (the SAT
    value itself changes there), for ``recompute`` the dirty-closure
    staircase.  ``dirty_tiles`` counts tiles whose *input* changed.
    """

    strategy: str = "none"
    dirty_tiles: int = 0
    repaired_tiles: int = 0
    total_tiles: int = 0
    edits: int = 0
    full_rebuilds: int = 0
    tiles_repaired_total: int = 0
    tiles_if_recomputed_total: int = 0

    @property
    def repaired_fraction(self) -> float:
        """Repaired share of the grid in the last repair (0 for a no-op)."""
        return self.repaired_tiles / self.total_tiles if self.total_tiles \
            else 0.0

    @property
    def savings(self) -> float:
        """Lifetime fraction of tile work avoided vs full recomputes."""
        if not self.tiles_if_recomputed_total:
            return 0.0
        return 1.0 - (self.tiles_repaired_total
                      / self.tiles_if_recomputed_total)


class IncrementalSAT:
    """A resident SAT that absorbs edits by repairing only what they dirty.

    Parameters
    ----------
    a:
        The initial 2-D frame (any rectangle; ragged tile edges follow the
        zero-padding convention).
    algorithm:
        Tile-based algorithm whose dataflow maintains the carries (any of the
        wavefront engine's five; default the paper's 1R1W-SKSS-LB).
    tile_width, dtype_policy:
        As in :func:`~repro.sat.registry.compute_sat`.
    workers:
        Pool size for the initial full computation (repairs are batched
        serial NumPy and worker-independent by construction).
    engine:
        An existing :class:`~repro.hostexec.engine.WavefrontEngine` to borrow
        for full computations; by default a private engine is created (and
        closed with :meth:`close`).
    strategy:
        ``"auto"`` (default) picks exact ``delta`` repair for integer
        accumulator dtypes and bit-faithful ``recompute`` for floats;
        ``"recompute"`` forces the chunk-kernel path; ``"delta"`` is only
        accepted for integer accumulators (float delta repair would not be
        bit-identical to a from-scratch computation).
    """

    def __init__(self, a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                 tile_width: int = 32, dtype_policy=None,
                 workers: int | None = None,
                 engine: WavefrontEngine | None = None,
                 strategy: str = "auto") -> None:
        if strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown repair strategy {strategy!r}; known: {STRATEGIES}")
        self._spec = kernel_for(algorithm)
        self.algorithm = self._spec.name
        self.tile_width = tile_width
        self._policy = resolve_policy(dtype_policy)
        if engine is not None:
            self._engine, self._owns_engine = engine, False
        else:
            self._engine = WavefrontEngine(workers=workers)
            self._owns_engine = True
        self._requested_strategy = strategy
        self._state: RetainedState | None = None
        self.stats = RepairStats()
        self.rebuild(a)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release the resident state (and the private engine, if owned)."""
        self._state = None
        if self._owns_engine:
            self._engine.close()

    def __enter__(self) -> "IncrementalSAT":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        return (self.rows, self.cols)

    @property
    def dtype(self) -> np.dtype:
        """The accumulator dtype the SAT is maintained in."""
        return self._required_state().work.dtype

    @property
    def strategy(self) -> str:
        """The resolved repair strategy (``delta`` or ``recompute``)."""
        return self._strategy

    @property
    def grid(self):
        return self._required_state().grid

    @property
    def sat(self) -> np.ndarray:
        """The current SAT (read-only view of the resident table, cropped)."""
        view = self._required_state().out[:self.rows, :self.cols]
        view.setflags(write=False)
        return view

    @property
    def input(self) -> np.ndarray:
        """The current input frame in the accumulator dtype (read-only view)."""
        view = self._required_state().work[:self.rows, :self.cols]
        view.setflags(write=False)
        return view

    def carry_planes(self) -> dict[str, np.ndarray]:
        """The resident carry planes, keyed by role (GRS/GCS/GS or GRS/GCP)."""
        return self._required_state().planes()

    def _required_state(self) -> RetainedState:
        if self._state is None:
            raise ConfigurationError("incremental engine is closed")
        return self._state

    # -- full (re)builds ---------------------------------------------------------

    def rebuild(self, a: np.ndarray | None = None) -> np.ndarray:
        """Recompute everything from scratch (a new frame, or ``None`` to
        rebuild from the current input — useful to re-verify the state)."""
        if a is None:
            a = self._required_state().work[:self.rows, :self.cols]
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError(
                f"IncrementalSAT expects a 2-D matrix, got shape {a.shape}")
        self.rows, self.cols = a.shape
        acc = self._policy.accumulator(a.dtype)
        if self._requested_strategy == "delta" \
                and not np.issubdtype(acc, np.integer):
            raise ConfigurationError(
                f"strategy='delta' requires an integer accumulator dtype "
                f"(got {acc.name}); float repair must recompute to stay "
                "bit-identical")
        self._strategy = self._requested_strategy
        if self._strategy == "auto":
            self._strategy = "delta" if np.issubdtype(acc, np.integer) \
                else "recompute"
        self._engine.compute(a, algorithm=self.algorithm,
                             tile_width=self.tile_width, dtype_policy=acc,
                             retain_state=True)
        self._state = self._engine.retained_state()
        self.stats.full_rebuilds += 1
        self.stats.total_tiles = self._state.grid.num_tiles
        self._record(self._state.grid.num_tiles, self._state.grid.num_tiles,
                     "rebuild")
        return self.sat

    def _record(self, dirty: int, repaired: int, strategy: str) -> None:
        s = self.stats
        s.strategy = strategy
        s.dirty_tiles = dirty
        s.repaired_tiles = repaired
        s.edits += 1
        s.tiles_repaired_total += repaired
        s.tiles_if_recomputed_total += s.total_tiles

    # -- edits -------------------------------------------------------------------

    def update(self, top: int, left: int, values: np.ndarray) -> np.ndarray:
        """Overwrite the rectangle at ``(top, left)`` and repair the SAT.

        ``values`` may be any 2-D block (cast to the accumulator dtype) that
        lies inside the frame.  Returns the repaired SAT view.
        """
        state = self._required_state()
        values = np.asarray(values)
        if values.ndim != 2:
            raise ConfigurationError(
                f"update expects a 2-D block, got shape {values.shape}")
        h, w = values.shape
        if not (0 <= top and 0 <= left and top + h <= self.rows
                and left + w <= self.cols):
            raise ConfigurationError(
                f"edit block {h}x{w} at ({top}, {left}) exceeds the "
                f"{self.rows}x{self.cols} frame")
        if h == 0 or w == 0:
            return self.sat
        if self._strategy == "delta":
            d = values.astype(state.work.dtype, copy=False) \
                - state.work[top:top + h, left:left + w]
            self._repair_rect(top, left, d)
        else:
            state.work[top:top + h, left:left + w] = \
                values.astype(state.work.dtype, copy=False)
            grid = state.grid
            W = grid.W
            mask = np.zeros((grid.tile_rows, grid.tile_cols), dtype=bool)
            mask[top // W:(top + h - 1) // W + 1,
                 left // W:(left + w - 1) // W + 1] = True
            self._repair_recompute(mask)
        return self.sat

    def update_tiles(self, edits: Iterable[tuple[int, int, np.ndarray]]
                     ) -> np.ndarray:
        """Overwrite whole tiles and repair once for the combined dirty set.

        ``edits`` yields ``(I, J, values)`` triples; ``values`` covers the
        tile's *valid* extent (``tile_height(I) x tile_width_at(J)``, which
        is ``W x W`` away from ragged edges).  Duplicate tiles are allowed —
        the last write wins.  A k-tile edit costs one combined repair of the
        union frontier, not k repairs.
        """
        state = self._required_state()
        grid = state.grid
        W = grid.W
        dedup: dict[tuple[int, int], np.ndarray] = {}
        for I, J, values in edits:
            grid.check_tile(I, J)
            values = np.asarray(values)
            want = (grid.tile_height(I), grid.tile_width_at(J))
            if values.shape != want:
                raise ConfigurationError(
                    f"tile ({I}, {J}) edit must have the tile's valid shape "
                    f"{want}, got {values.shape}")
            dedup[(int(I), int(J))] = values
        items = [(I, J, values) for (I, J), values in dedup.items()]
        if not items:
            return self.sat
        if self._strategy == "delta":
            # Combine all tile deltas into one bounding-rectangle delta so a
            # k-tile edit pays one quadrant repair.
            r0 = min(W * I for I, _, _ in items)
            c0 = min(W * J for _, J, _ in items)
            r1 = max(W * I + v.shape[0] for I, _, v in items)
            c1 = max(W * J + v.shape[1] for _, J, v in items)
            d = np.zeros((r1 - r0, c1 - c0), dtype=state.work.dtype)
            for I, J, values in items:
                rr, cc = W * I - r0, W * J - c0
                block = d[rr:rr + values.shape[0], cc:cc + values.shape[1]]
                block += values.astype(state.work.dtype, copy=False)
                block -= state.work[W * I:W * I + values.shape[0],
                                    W * J:W * J + values.shape[1]]
            self._repair_rect(r0, c0, d, dirty_tiles=len(items))
        else:
            # Write each tile's values directly: reconstructing them as
            # work += (values - work) would perturb float low bits, breaking
            # the overwrite semantics and bit-identity to a from-scratch SAT
            # of the intended input.
            mask = np.zeros((grid.tile_rows, grid.tile_cols), dtype=bool)
            for I, J, values in items:
                state.work[W * I:W * I + values.shape[0],
                           W * J:W * J + values.shape[1]] = \
                    values.astype(state.work.dtype, copy=False)
                mask[I, J] = True
            self._repair_recompute(mask)
        return self.sat

    def delta(self, d: np.ndarray) -> np.ndarray:
        """Whole-frame additive fast path: apply ``a += d`` and repair.

        The sparsity of ``d`` is exploited: nothing outside its nonzero
        support is dirtied (``delta`` strategy repairs the bounding
        rectangle's quadrant; ``recompute`` repairs the exact closure of the
        nonzero tiles).  An all-zero delta is a no-op.
        """
        state = self._required_state()
        d = np.asarray(d)
        if d.shape != (self.rows, self.cols):
            raise ConfigurationError(
                f"frame delta must have the frame shape {self.shape}, "
                f"got {d.shape}")
        d = d.astype(state.work.dtype, copy=False)
        nz_rows = np.flatnonzero(d.any(axis=1))
        if nz_rows.size == 0:
            self._record(0, 0, self._strategy)
            return self.sat
        nz_cols = np.flatnonzero(d.any(axis=0))
        r0, r1 = int(nz_rows[0]), int(nz_rows[-1])
        c0, c1 = int(nz_cols[0]), int(nz_cols[-1])
        if self._strategy == "delta":
            self._repair_rect(r0, c0, d[r0:r1 + 1, c0:c1 + 1])
        else:
            state.work[:self.rows, :self.cols] += d
            self._repair_recompute(self._tile_mask(d != 0))
        return self.sat

    def advance(self, frame: np.ndarray) -> np.ndarray:
        """Replace the whole input with ``frame``, repairing only what moved.

        The video entry point: successive frames usually differ on a small
        support, and the repair cost scales with that support's frontier, not
        with the frame.  The supplied frame becomes the resident input
        *bit-exactly*: integer accumulators route through the exact additive
        delta, while float accumulators assign the frame directly — the
        subtract-then-re-add round trip ``work += (frame - work)`` would
        perturb low bits (and with cancellation, e.g. ``work=1e16,
        frame=1.0``, whole bits), so the difference is used only to locate
        the dirty tiles.
        """
        state = self._required_state()
        frame = np.asarray(frame)
        if frame.shape != self.shape:
            raise ConfigurationError(
                f"frame must have shape {self.shape}, got {frame.shape}")
        frame = frame.astype(state.work.dtype, copy=False)
        resident = state.work[:self.rows, :self.cols]
        d = frame - resident
        if self._strategy == "delta":
            return self.delta(d)
        changed = d != 0
        if not changed.any():
            self._record(0, 0, self._strategy)
            return self.sat
        resident[...] = frame
        self._repair_recompute(self._tile_mask(changed))
        return self.sat

    # -- repair strategies -------------------------------------------------------

    def _tile_mask(self, changed: np.ndarray) -> np.ndarray:
        """Collapse an element-level changed mask to a dirty-tile mask."""
        grid = self._required_state().grid
        pad = np.zeros((grid.padded_rows, grid.padded_cols), dtype=bool)
        pad[:self.rows, :self.cols] = changed
        W = grid.W
        return pad.reshape(grid.tile_rows, W, grid.tile_cols, W) \
            .any(axis=(1, 3))

    def _repair_rect(self, r0: int, c0: int, d: np.ndarray,
                     dirty_tiles: int | None = None) -> None:
        """Exact additive repair (integer accumulators only).

        ``d`` is the not-yet-applied delta of the rectangle at ``(r0, c0)``.
        ``SAT(a + d) - SAT(a) = SAT(d)`` is constant along rows right of the
        rectangle and along columns below it, so the committed table takes
        one small double cumsum plus three broadcast adds, and each carry
        plane takes the matching prefix deltas on its dirty strips.
        """
        state = self._required_state()
        grid, W = state.grid, state.grid.W
        work, out, carry = state.work, state.out, state.carry
        h, w = d.shape
        r1, c1 = r0 + h - 1, c0 + w - 1
        work[r0:r1 + 1, c0:c1 + 1] += d

        # Committed SAT: the quadrant update.
        A = d.cumsum(axis=0).cumsum(axis=1)
        out[r0:r1 + 1, c0:c1 + 1] += A
        out[r0:r1 + 1, c1 + 1:] += A[:, -1:]
        out[r1 + 1:, c0:c1 + 1] += A[-1:, :]
        out[r1 + 1:, c1 + 1:] += A[-1, -1]

        # Tile-aligned embedding of the delta for the carry-plane prefixes.
        I0, I1 = r0 // W, r1 // W
        J0, J1 = c0 // W, c1 // W
        tI, tJ = I1 - I0 + 1, J1 - J0 + 1
        P = np.zeros((tI * W, tJ * W), dtype=work.dtype)
        P[r0 - I0 * W:r0 - I0 * W + h, c0 - J0 * W:c0 - J0 * W + w] = d
        # Per-row prefixes at each tile's right edge -> GRS deltas.
        dgrs = P.cumsum(axis=1)[:, W - 1::W].reshape(tI, W, tJ) \
            .transpose(0, 2, 1)                       # (tI, tJ, W)
        grs = carry.vec_row
        grs[I0:I1 + 1, J0:J1 + 1] += dgrs
        grs[I0:I1 + 1, J1 + 1:] += dgrs[:, -1][:, None, :]
        # Per-tile delta totals -> GS (and 2R1W column-chain) deltas.
        ts = P.reshape(tI, W, tJ, W).sum(axis=(1, 3))
        cs = ts.cumsum(axis=0).cumsum(axis=1)
        if self._spec.deps == DEPS_LEFT_UP:
            # 1R1W-SKSS: vec_col holds GCP — the bottom row of each tile's
            # GSAT, which the quadrant update above just repaired; refresh it
            # from the committed table.
            out4 = state.out4
            carry.vec_col[I0:, J0:] = out4[I0:, W - 1, J0:, :]
        else:
            dgcs = P.cumsum(axis=0)[W - 1::W, :].reshape(tI, tJ, W)
            gcs = carry.vec_col
            gcs[I0:I1 + 1, J0:J1 + 1] += dgcs
            gcs[I1 + 1:, J0:J1 + 1] += dgcs[-1][None, :, :]
            gs = carry.scal
            gs[I0:I1 + 1, J0:J1 + 1] += cs
            gs[I0:I1 + 1, J1 + 1:] += cs[:, -1:]
            gs[I1 + 1:, J0:J1 + 1] += cs[-1:, :]
            gs[I1 + 1:, J1 + 1:] += cs[-1, -1]
            if self._spec.name == "2R1W":
                dcol = ts.cumsum(axis=0)
                carry.scal2[I0:I1 + 1, J0:J1 + 1] += dcol
                carry.scal2[I1 + 1:, J0:J1 + 1] += dcol[-1:, :]
        repaired = (grid.tile_rows - I0) * (grid.tile_cols - J0)
        self._record(tI * tJ if dirty_tiles is None else dirty_tiles,
                     repaired, "delta")

    def _repair_recompute(self, dirty_mask: np.ndarray) -> None:
        """Bit-faithful repair: re-run the chunk kernels on the dirty closure.

        ``dirty_mask`` marks tiles whose input has already been written into
        the working matrix.  The closure (down-right staircase) is executed
        in anti-diagonal order — each recomputed tile gathers either retained
        or just-recomputed producer values, so every published quantity comes
        out of the exact same floating-point operation sequence as a full
        recompute.
        """
        state = self._required_state()
        grid, W = state.grid, state.grid.W
        closure = np.logical_or.accumulate(
            np.logical_or.accumulate(dirty_mask, axis=0), axis=1)
        Is, Js = np.nonzero(closure)
        if Is.size == 0:
            self._record(0, 0, "recompute")
            return
        a4, out4 = state.a4, state.out4
        diag = Is + Js
        order = np.argsort(diag, kind="stable")
        Is, Js, diag = Is[order], Js[order], diag[order]
        starts = np.flatnonzero(np.r_[True, diag[1:] != diag[:-1]])
        bounds = np.r_[starts, Is.size]
        for k in range(starts.size):
            lo, hi = bounds[k], bounds[k + 1]
            chunk = Chunk(index=k, diagonal=int(diag[lo]),
                          Is=Is[lo:hi], Js=Js[lo:hi])
            self._spec.run(a4, out4, state.carry, chunk, W)
        self._record(int(dirty_mask.sum()), int(Is.size), "recompute")


# -- state verification (used by tests and ``repro sanitize``) -----------------


def verify_state(inc: IncrementalSAT, *, check_sat: bool = True) -> list[str]:
    """Check the resident state against the Table II oracles.

    Returns a list of human-readable findings (empty = clean):

    * every carry plane must equal its region-sum oracle on the *current*
      working matrix (exact for integer accumulators; floats are held to the
      proven rounding budget of :mod:`repro.analysis.tolerances` — the
      oracles sum in a different order);
    * with ``check_sat=True``, the committed table must be **bit-identical**
      to a from-scratch wavefront computation of the current input.
    """
    from repro.primitives.tile import (global_col_prefixes, global_col_sums,
                                       global_row_sums, global_sum)

    state = inc._required_state()
    grid, work = state.grid, state.work
    exact = np.issubdtype(work.dtype, np.integer)
    if not exact:
        # Derived budget: the planes were accumulated by the algorithm's
        # dataflow and the oracles re-reduce the same regions in a different
        # order, so both legs carry the algorithm-depth rounding bound from
        # the static error model (a fixed 1e-6 would flag healthy float32
        # states at larger sizes).  Every addend of every plane entry flows
        # through |work|, so gamma times the total absolute mass bounds any
        # legitimate discrepancy elementwise.
        from repro.analysis.tolerances import derived_tolerance

        tol = derived_tolerance(inc.algorithm,
                                (grid.padded_rows, grid.padded_cols),
                                work.dtype, tile_width=inc.tile_width,
                                oracle="reference")
        budget = tol.gamma * max(1.0, float(np.sum(np.abs(
            np.asarray(work, dtype=np.float64)))))

    def close(got, want) -> bool:
        if exact:
            return np.array_equal(got, want)
        diff = np.abs(np.asarray(got, dtype=np.float64)
                      - np.asarray(want, dtype=np.float64))
        return bool(np.all(diff <= budget))

    findings: list[str] = []
    planes = state.planes()
    for I in range(grid.tile_rows):
        for J in range(grid.tile_cols):
            checks = [("GRS", planes["GRS"][I, J],
                       global_row_sums(work, grid, I, J))]
            if "GCP" in planes:
                checks.append(("GCP", planes["GCP"][I, J],
                               global_col_prefixes(work, grid, I, J)))
            else:
                checks.append(("GCS", planes["GCS"][I, J],
                               global_col_sums(work, grid, I, J)))
                checks.append(("GS", planes["GS"][I, J],
                               global_sum(work, grid, I, J)))
            for name, got, want in checks:
                if not close(got, want):
                    findings.append(
                        f"carry-plane {name} stale at tile ({I}, {J})")
    if check_sat:
        with WavefrontEngine(workers=1) as eng:
            fresh = eng.compute(work, algorithm=inc.algorithm,
                                tile_width=inc.tile_width,
                                dtype_policy=work.dtype)
        if not np.array_equal(state.out, fresh):
            bad = int(np.argmax(state.out != fresh))
            findings.append(
                f"committed SAT diverges from full recompute "
                f"(first mismatch at flat index {bad})")
    return findings


def sanitize_incremental(*, n: int = 96, tile_width: int = 32,
                         edits: int = 6, seed: int = 0) -> list[str]:
    """State-retention smoke for ``repro sanitize``: run a deterministic edit
    sequence under both repair strategies and both carry families, verifying
    the plane invariants and full-recompute bit-identity after every edit."""
    findings: list[str] = []
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 100, size=(n, n - tile_width // 2)).astype(np.int64)
    for algorithm in ("1R1W-SKSS-LB", "1R1W-SKSS"):
        for strategy in ("delta", "recompute"):
            with IncrementalSAT(base, algorithm=algorithm, workers=1,
                                tile_width=tile_width,
                                strategy=strategy) as inc:
                for e in range(edits):
                    h = int(rng.integers(1, n // 2))
                    w = int(rng.integers(1, n // 2))
                    top = int(rng.integers(0, inc.rows - h + 1))
                    left = int(rng.integers(0, inc.cols - w + 1))
                    inc.update(top, left,
                               rng.integers(-50, 50, size=(h, w)))
                    for f in verify_state(inc):
                        findings.append(
                            f"{algorithm}/{strategy} edit {e}: {f}")
    return findings


# -- repair benchmark (used by the CLI and ``benchmarks/bench_incremental``) ---


def repair_benchmark(n: int = 1024, *, dirty_frac: float = 0.1,
                     edits: int = 8, tile_width: int = 32,
                     algorithm: str = "1R1W-SKSS-LB", dtype: str = "int32",
                     strategy: str = "auto", workers: int | None = None,
                     seed: int = 0, repeats: int = 3,
                     positions: Sequence[tuple[float, float]] | None = None,
                     ) -> dict:
    """Time incremental repair against full wavefront recompute.

    Each edit overwrites a square patch of ``dirty_frac`` of the frame area
    at a position cycling through ``positions`` (fractions of the free range;
    default spans corners, edges and the centre, so the reported mean covers
    best and worst frontier placements).  Repairs are verified bit-identical
    to a serial from-scratch recompute on the final state.
    """
    if not 0.0 < dirty_frac <= 1.0:
        raise ConfigurationError("dirty_frac must be in (0, 1]")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(n, n)).astype(np.dtype(dtype))
    side = max(1, int(round(n * np.sqrt(dirty_frac))))
    if positions is None:
        positions = ((0.0, 0.0), (1.0, 1.0), (0.5, 0.5), (0.0, 1.0),
                     (1.0, 0.0), (0.25, 0.75), (0.75, 0.25), (0.5, 0.0))
    patches = []
    for e in range(edits):
        fy, fx = positions[e % len(positions)]
        top = int(round(fy * (n - side)))
        left = int(round(fx * (n - side)))
        patches.append((top, left,
                        rng.integers(0, 100, size=(side, side))
                        .astype(a.dtype)))

    inc = IncrementalSAT(a, algorithm=algorithm, tile_width=tile_width,
                         strategy=strategy, workers=workers)
    # Warm full-recompute baseline on the same engine (plan + pool are hot).
    acc = inc.dtype
    t_full = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        inc._engine.compute(a, algorithm=inc.algorithm, tile_width=tile_width,
                            dtype_policy=acc)
        t_full.append(time.perf_counter() - t0)
    full_s = min(t_full)

    per_edit = []
    repaired_fracs = []
    for top, left, values in patches:
        t0 = time.perf_counter()
        inc.update(top, left, values)
        per_edit.append(time.perf_counter() - t0)
        repaired_fracs.append(inc.stats.repaired_fraction)

    # Differential gate: the final repaired table vs a from-scratch compute.
    final = a.copy()
    for top, left, values in patches:
        final[top:top + side, left:left + side] = values
    from repro.sat.registry import get_algorithm
    ok = bool(np.array_equal(
        inc.sat, get_algorithm(algorithm, tile_width=tile_width)
        .run_host(final, dtype_policy=acc)))
    result = {
        "n": n, "tile_width": tile_width, "algorithm": inc.algorithm,
        "dtype": str(np.dtype(dtype)), "accumulator": acc.name,
        "strategy": inc.strategy, "dirty_frac": dirty_frac,
        "patch_side": side, "edits": edits,
        "full_recompute_s": full_s,
        "repair_mean_s": float(np.mean(per_edit)),
        "repair_worst_s": float(np.max(per_edit)),
        "repair_best_s": float(np.min(per_edit)),
        "speedup_mean": full_s / float(np.mean(per_edit)),
        "speedup_worst_case": full_s / float(np.max(per_edit)),
        "repaired_tile_fraction_mean": float(np.mean(repaired_fracs)),
        "bit_identical": ok,
    }
    inc.close()
    return result
