"""Batched chunk kernels: the tile algebra of each algorithm over tile stacks.

Each kernel executes one :class:`~repro.hostexec.plan.Chunk` — a run of tiles
on a single anti-diagonal — for its algorithm, producing exactly the same
published quantities (and in exactly the same floating-point order) as that
algorithm's serial ``_run_host`` loop, but over a ``(k, W, W)`` *stack* of
tiles in a handful of NumPy calls instead of ``k`` trips through the
interpreter.  That batching is where the engine's single-core speedup comes
from; bit-identity is what lets the wavefront engine replace the serial path
under the tests.

Bit-identity holds because every per-tile operation maps to an elementwise or
per-lane stacked operation with an unchanged reduction order: ``cumsum`` is a
strictly sequential recurrence per lane on either shape, and NumPy's pairwise
``sum`` reduction tree depends only on the reduced length ``W``, not on the
strides or the number of stacked tiles.  The equivalence tests assert
``np.array_equal`` (not ``allclose``) against the serial path for every
algorithm.

Matrix access is via ``(t, W, t, W)`` reshaped views: gathering a chunk's
tiles is one advanced-indexing expression ``a4[Is, :, Js, :]`` (a fresh
C-contiguous ``(k, W, W)`` stack) and scattering the finished GSAT tiles back
is the symmetric assignment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.hostexec.plan import DEPS_LEFT_UP, DEPS_LEFT_UP_CORNER, Chunk
from repro.primitives.tile import TileGrid


@dataclass
class CarrySet:
    """Preallocated inter-tile carry planes, reused across repeated calls.

    ``vec_row``/``vec_col`` hold the GRS / GCS planes (``vec_col`` doubles as
    the GCP plane for 1R1W-SKSS); ``scal`` holds GS and ``scal2`` the 2R1W
    column-carry of the tile-sum SAT.  Planes are allocated in the run's
    accumulator dtype so carries never round-trip through a wider type.
    Planes are never cleared between calls: the wavefront order guarantees
    every gathered entry was written earlier in the *same* call, and border
    gathers synthesise zeros instead of reading the planes.
    """

    tr: int
    tc: int
    W: int
    dtype: np.dtype = np.dtype(np.float64)
    vec_row: np.ndarray = field(init=False)
    vec_col: np.ndarray = field(init=False)
    scal: np.ndarray = field(init=False)
    scal2: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.vec_row = np.empty((self.tr, self.tc, self.W), dtype=self.dtype)
        self.vec_col = np.empty((self.tr, self.tc, self.W), dtype=self.dtype)
        self.scal = np.empty((self.tr, self.tc), dtype=self.dtype)
        self.scal2 = np.empty((self.tr, self.tc), dtype=self.dtype)


def _gather_vec(plane: np.ndarray, Is: np.ndarray, Js: np.ndarray,
                W: int) -> np.ndarray:
    """Stack ``plane[I, J]`` vectors, zeros where an index is out of range."""
    m = (Is >= 0) & (Js >= 0)
    if m.all():
        return plane[Is, Js]
    out = np.zeros((len(Is), W), dtype=plane.dtype)
    if m.any():
        out[m] = plane[Is[m], Js[m]]
    return out


def _gather_scal(plane: np.ndarray, Is: np.ndarray,
                 Js: np.ndarray) -> np.ndarray:
    m = (Is >= 0) & (Js >= 0)
    if m.all():
        return plane[Is, Js]
    out = np.zeros(len(Is), dtype=plane.dtype)
    if m.any():
        out[m] = plane[Is[m], Js[m]]
    return out


def gather_left_up_corner(carry: CarrySet, Is: np.ndarray, Js: np.ndarray,
                          W: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Stacked carry inputs of the GRS/GCS/GS dataflow family for one chunk:
    ``(grs_left, gcs_above, gs_corner)``, zeros synthesised at the borders.

    Shared by the batched NumPy chunk kernels below and the compiled flat
    kernels (:mod:`repro.hostexec.compiled`) — the gather stage is identical
    for both executors; only the tile algebra differs in form.
    """
    return (_gather_vec(carry.vec_row, Is, Js - 1, W),
            _gather_vec(carry.vec_col, Is - 1, Js, W),
            _gather_scal(carry.scal, Is - 1, Js - 1))


def gather_left_up(carry: CarrySet, Is: np.ndarray, Js: np.ndarray,
                   W: int) -> tuple[np.ndarray, np.ndarray]:
    """Stacked carry inputs of the 1R1W-SKSS (GRS + GCP) dataflow for one
    chunk: ``(grs_left, gcp_above)``, zeros synthesised at the borders."""
    return (_gather_vec(carry.vec_row, Is, Js - 1, W),
            _gather_vec(carry.vec_col, Is - 1, Js, W))


def _assemble_stack(stack: np.ndarray, grs_left: np.ndarray,
                    gcs_above: np.ndarray, gs_corner: np.ndarray) -> None:
    """In-place stacked :func:`~repro.primitives.tile.assemble_gsat_tile`."""
    stack[:, :, 0] += grs_left
    stack[:, 0, :] += gcs_above
    stack[:, 0, 0] += gs_corner
    np.cumsum(stack, axis=2, out=stack)
    np.cumsum(stack, axis=1, out=stack)


def chunk_skss_lb(a4: np.ndarray, out4: np.ndarray, carry: CarrySet,
                  chunk: Chunk, W: int) -> None:
    """1R1W-SKSS-LB dataflow: GS built from the corner plus the gnomon GLS."""
    Is, Js = chunk.Is, chunk.Js
    grs, gcs, gs = carry.vec_row, carry.vec_col, carry.scal
    stack = a4[Is, :, Js, :]
    lrs = stack.sum(axis=2)
    lcs = stack.sum(axis=1)
    grs_left = _gather_vec(grs, Is, Js - 1, W)
    gcs_above = _gather_vec(gcs, Is - 1, Js, W)
    gs_corner = _gather_scal(gs, Is - 1, Js - 1)
    grs[Is, Js] = grs_left + lrs
    gcs[Is, Js] = gcs_above + lcs
    gls = grs_left.sum(axis=1) + gcs_above.sum(axis=1) + lrs.sum(axis=1)
    gs[Is, Js] = gs_corner + gls
    _assemble_stack(stack, grs_left, gcs_above, gs_corner)
    out4[Is, :, Js, :] = stack


def chunk_wavefront_corner(a4: np.ndarray, out4: np.ndarray, carry: CarrySet,
                           chunk: Chunk, W: int) -> None:
    """1R1W / (1+r)R1W dataflow: GS read off the assembled GSAT corner."""
    Is, Js = chunk.Is, chunk.Js
    grs, gcs, gs = carry.vec_row, carry.vec_col, carry.scal
    stack = a4[Is, :, Js, :]
    lrs = stack.sum(axis=2)
    lcs = stack.sum(axis=1)
    grs_left = _gather_vec(grs, Is, Js - 1, W)
    gcs_above = _gather_vec(gcs, Is - 1, Js, W)
    gs_corner = _gather_scal(gs, Is - 1, Js - 1)
    grs[Is, Js] = grs_left + lrs
    gcs[Is, Js] = gcs_above + lcs
    _assemble_stack(stack, grs_left, gcs_above, gs_corner)
    gs[Is, Js] = stack[:, -1, -1]
    out4[Is, :, Js, :] = stack


def chunk_skss(a4: np.ndarray, out4: np.ndarray, carry: CarrySet,
               chunk: Chunk, W: int) -> None:
    """1R1W-SKSS dataflow: GRS hand-off left, GCP (GSAT bottom row) down."""
    Is, Js = chunk.Is, chunk.Js
    grs, gcp = carry.vec_row, carry.vec_col
    stack = a4[Is, :, Js, :]
    lrs = stack.sum(axis=2)
    grs_left = _gather_vec(grs, Is, Js - 1, W)
    gcp_above = _gather_vec(gcp, Is - 1, Js, W)
    stack[:, :, 0] += grs_left
    np.cumsum(stack, axis=2, out=stack)
    stack[:, 0, :] += gcp_above
    np.cumsum(stack, axis=1, out=stack)
    grs[Is, Js] = grs_left + lrs
    gcp[Is, Js] = stack[:, -1, :]
    out4[Is, :, Js, :] = stack


def chunk_nehab(a4: np.ndarray, out4: np.ndarray, carry: CarrySet,
                chunk: Chunk, W: int) -> None:
    """2R1W dataflow, cumsum-faithful: the serial path builds GRS/GCS/GS with
    whole-array ``cumsum`` calls whose *first* element is a copy (no ``0 + x``
    add), so border tiles store their local sums verbatim here too."""
    Is, Js = chunk.Is, chunk.Js
    grs, gcs, gs, gs_col = carry.vec_row, carry.vec_col, carry.scal, carry.scal2
    stack = a4[Is, :, Js, :]
    lrs = stack.sum(axis=2)
    lcs = stack.sum(axis=1)
    ls = lcs.sum(axis=1)
    left_edge, top_edge = Js == 0, Is == 0
    grs_left = _gather_vec(grs, Is, Js - 1, W)
    gcs_above = _gather_vec(gcs, Is - 1, Js, W)
    gs_corner = _gather_scal(gs, Is - 1, Js - 1)

    grs_now = grs_left + lrs
    grs_now[left_edge] = lrs[left_edge]
    grs[Is, Js] = grs_now
    gcs_now = gcs_above + lcs
    gcs_now[top_edge] = lcs[top_edge]
    gcs[Is, Js] = gcs_now
    col = _gather_scal(gs_col, Is - 1, Js) + ls
    col[top_edge] = ls[top_edge]
    gs_col[Is, Js] = col
    gs_now = _gather_scal(gs, Is, Js - 1) + col
    gs_now[left_edge] = col[left_edge]
    gs[Is, Js] = gs_now

    _assemble_stack(stack, grs_left, gcs_above, gs_corner)
    out4[Is, :, Js, :] = stack


@dataclass(frozen=True)
class KernelSpec:
    """A chunk kernel plus the dependency offsets its gathers rely on."""

    name: str
    run: Callable[[np.ndarray, np.ndarray, CarrySet, Chunk, int], None]
    deps: tuple[tuple[int, int], ...]


#: Chunk kernels by canonical algorithm name (the tile-based five).
KERNELS: dict[str, KernelSpec] = {
    "2R1W": KernelSpec("2R1W", chunk_nehab, DEPS_LEFT_UP_CORNER),
    "1R1W": KernelSpec("1R1W", chunk_wavefront_corner, DEPS_LEFT_UP_CORNER),
    "(1+r)R1W": KernelSpec("(1+r)R1W", chunk_wavefront_corner,
                           DEPS_LEFT_UP_CORNER),
    "1R1W-SKSS": KernelSpec("1R1W-SKSS", chunk_skss, DEPS_LEFT_UP),
    "1R1W-SKSS-LB": KernelSpec("1R1W-SKSS-LB", chunk_skss_lb,
                               DEPS_LEFT_UP_CORNER),
}


def kernel_for(algorithm: str) -> KernelSpec:
    """Resolve an algorithm name (or registry alias) to its chunk kernel."""
    from repro.sat.registry import get_algorithm
    canonical = get_algorithm(algorithm).name \
        if algorithm not in KERNELS else algorithm
    spec = KERNELS.get(canonical)
    if spec is None:
        raise ConfigurationError(
            f"algorithm '{algorithm}' has no tile dataflow; the wavefront "
            f"engine supports {sorted(KERNELS)}")
    return spec
