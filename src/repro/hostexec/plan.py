"""Wavefront tile plans: the reusable scheduling structure of the host engine.

The tile-based SAT algorithms all share the same dependency skeleton: tile
``T(I, J)`` consumes values published by its *left* (``T(I, J-1)``), *up*
(``T(I-1, J)``) and (for the corner term) *up-left* (``T(I-1, J-1)``)
neighbours — every producer lies on an anti-diagonal with a smaller index,
which is exactly why the paper's diagonal-major serials are deadlock-free.
On the CPU the same structure means an entire anti-diagonal of tiles can run
concurrently, and a tile of diagonal ``K+1`` may start as soon as its own
producers retire, without waiting for the rest of diagonal ``K``.

A :class:`WavefrontPlan` captures everything about that dataflow that does
not depend on the matrix *values*, so repeated same-shape SATs (video
pipelines) pay for it once:

* the anti-diagonals, each split into up to ``workers`` contiguous *chunks*
  (a chunk is the unit of dispatch; within a chunk the tile algebra is
  executed batched over a ``(k, W, W)`` tile stack);
* per-tile dependency counts and the per-tile **status words** the scheduler
  advances (``PENDING -> READY -> DONE`` — the CPU analogue of the SKSS-LB
  ``R``/``C`` protocol bytes);
* per-chunk consumer index arrays, so retiring a chunk decrements its
  dependents' counters with vectorised scatter updates.

Plans are immutable after construction; all mutable run state lives in the
engine (one fresh copy of the counters per call), so a cached plan can be
reused across calls and engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.primitives.tile import TileGrid

#: Per-tile status words (the host analogue of the SKSS-LB protocol bytes).
TILE_PENDING = 0   #: producers not yet retired
TILE_READY = 1     #: all producers retired; tile may execute
TILE_DONE = 2      #: tile's published values committed

#: Producer offsets ``(dI, dJ)`` relative to the consuming tile.
DEPS_LEFT_UP = ((0, -1), (-1, 0))                 # 1R1W-SKSS (GRS + GCP chain)
DEPS_LEFT_UP_CORNER = ((0, -1), (-1, 0), (-1, -1))  # the GRS/GCS/GS family

#: Minimum tiles per chunk when splitting a diagonal for dispatch.  Shredding
#: short diagonals into one-tile chunks costs more in pool dispatch and
#: un-batched NumPy calls than the extra concurrency recovers, so a diagonal
#: is split into at most ``len(tiles) // MIN_CHUNK_TILES`` parts (capped at
#: the worker count, and never zero).  Cross-diagonal overlap — a chunk of
#: diagonal ``K+1`` starting while ``K`` still runs — keeps the pool busy
#: even when short diagonals stay whole.
MIN_CHUNK_TILES = 16


@dataclass(frozen=True)
class Chunk:
    """A contiguous run of tiles on one anti-diagonal (the dispatch unit)."""

    index: int
    diagonal: int
    #: Tile coordinates, parallel arrays (diagonal order: ``I`` ascending).
    Is: np.ndarray
    Js: np.ndarray
    #: Chunks holding consumer tiles of this chunk (always later diagonals:
    #: retiring this chunk decrements each successor's predecessor counter).
    successors: tuple[int, ...] = ()
    #: Number of distinct chunks holding producer tiles of this chunk.
    num_predecessors: int = 0

    @property
    def num_tiles(self) -> int:
        return len(self.Is)


@dataclass(frozen=True)
class WavefrontPlan:
    """Immutable chunked-wavefront schedule for one tile-grid geometry."""

    grid: TileGrid
    deps: tuple[tuple[int, int], ...]
    workers: int
    chunks: tuple[Chunk, ...]
    #: ``(tr, tc)`` chunk index owning each tile.
    chunk_id: np.ndarray
    #: ``(tr, tc)`` number of in-bounds producers per tile.
    deps_init: np.ndarray
    #: Per-chunk count of predecessor chunks (0 = dispatchable at once).
    #: Because chunks retire atomically, chunk readiness reduces to this
    #: chunk-level DAG — the scheduler's hot path decrements plain integers
    #: while the per-tile status words track the fine-grained protocol state.
    pending_init: np.ndarray

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    def initial_status(self) -> np.ndarray:
        """Fresh per-tile status words for one execution."""
        status = np.full((self.grid.tile_rows, self.grid.tile_cols),
                         TILE_PENDING, dtype=np.int8)
        status[self.deps_init == 0] = TILE_READY
        return status

    def roots(self) -> list[int]:
        """Chunks dispatchable before any tile has retired."""
        return [c.index for c in self.chunks if c.num_predecessors == 0]


def split_diagonal(tiles: list[tuple[int, int]], parts: int,
                   min_tiles: int = 1) -> list[list[tuple[int, int]]]:
    """Split one diagonal's tiles into at most ``parts`` contiguous chunks,
    each at least ``min_tiles`` long (except when the diagonal itself is
    shorter)."""
    if parts <= 0:
        raise ConfigurationError("chunk count must be positive")
    if min_tiles > 1:
        parts = min(parts, max(1, len(tiles) // min_tiles))
    parts = min(parts, len(tiles))
    size, extra = divmod(len(tiles), parts)
    out, lo = [], 0
    for p in range(parts):
        hi = lo + size + (1 if p < extra else 0)
        out.append(tiles[lo:hi])
        lo = hi
    return out


def build_plan(grid: TileGrid, deps: tuple[tuple[int, int], ...],
               workers: int) -> WavefrontPlan:
    """Construct the chunked wavefront plan for one tile grid."""
    if workers <= 0:
        raise ConfigurationError("workers must be positive")
    tr, tc = grid.tile_rows, grid.tile_cols
    chunk_id = np.full((tr, tc), -1, dtype=np.int32)
    chunks: list[Chunk] = []
    for K in range(grid.num_diagonals):
        for part in split_diagonal(grid.tiles_on_diagonal(K), workers,
                                   MIN_CHUNK_TILES):
            Is = np.fromiter((I for I, _ in part), dtype=np.intp)
            Js = np.fromiter((J for _, J in part), dtype=np.intp)
            chunk_id[Is, Js] = len(chunks)
            chunks.append(Chunk(index=len(chunks), diagonal=K, Is=Is, Js=Js))

    deps_init = np.zeros((tr, tc), dtype=np.int8)
    for dI, dJ in deps:
        # Tiles whose producer (I+dI, J+dJ) is in bounds gain one dependency.
        lo_i, lo_j = max(0, -dI), max(0, -dJ)
        deps_init[lo_i:, lo_j:] += 1

    # Collapse the tile dependencies onto the chunk DAG: chunk ``c`` precedes
    # chunk ``s`` when some tile of ``s`` consumes a tile of ``c``.  Producers
    # always lie on earlier diagonals, hence in other chunks — no self-edges.
    predecessors: list[set[int]] = [set() for _ in chunks]
    for c in chunks:
        for dI, dJ in deps:
            pIs, pJs = c.Is + dI, c.Js + dJ
            m = (pIs >= 0) & (pJs >= 0)
            if m.any():
                predecessors[c.index].update(
                    int(p) for p in chunk_id[pIs[m], pJs[m]])
    successors: list[set[int]] = [set() for _ in chunks]
    for c in chunks:
        for p in predecessors[c.index]:
            successors[p].add(c.index)

    finished = [Chunk(index=c.index, diagonal=c.diagonal, Is=c.Is, Js=c.Js,
                      successors=tuple(sorted(successors[c.index])),
                      num_predecessors=len(predecessors[c.index]))
                for c in chunks]
    pending_init = np.array([c.num_predecessors for c in finished],
                            dtype=np.int64)
    return WavefrontPlan(grid=grid, deps=tuple(deps), workers=workers,
                         chunks=tuple(finished), chunk_id=chunk_id,
                         deps_init=deps_init, pending_init=pending_init)
