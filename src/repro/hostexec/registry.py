"""Host-engine registry view: the classic ``engine=`` routing surface.

This module used to own the ad-hoc ``EngineSpec`` table.  The capability
specs now live in the unified backend registry
(:mod:`repro.backend.registry` — which also registers the gpusim and
out-of-core backends the ``engine=`` routing does not expose); everything
here *derives* from that one table, so the CLI ``--engine`` choices, the
fuzzer and the "unknown engine" error messages can never drift from the
registered set.  ``EngineSpec`` is an alias of
:class:`repro.backend.core.BackendSpec` for backward compatibility.
"""

from __future__ import annotations

from repro.backend.core import BackendSpec as EngineSpec
from repro.backend.core import _module_available  # noqa: F401  (re-export)
from repro.backend.registry import backend_specs as _backend_specs
from repro.backend.registry import unknown_engine_error  # noqa: F401

#: The engine-routable backends, keyed by the ``engine=`` string.  Each value
#: *is* the spec object registered in :mod:`repro.backend.registry` (pinned
#: by the conformance suite).
ENGINES: dict[str, EngineSpec] = {
    name: spec for name, spec in _backend_specs().items() if spec.engine}


def known_engines() -> tuple[str, ...]:
    """Names of every engine-routable backend (CLI choices, error messages)."""
    return tuple(ENGINES)


def get_engine_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` for ``name``; raises with the full dynamic
    engine list on an unknown name."""
    spec = ENGINES.get(name)
    if spec is None:
        raise unknown_engine_error(name)
    return spec


def engines_for_algorithm(name: str) -> tuple[str, ...]:
    """Engines whose capability flags admit algorithm ``name``."""
    return tuple(e for e, spec in ENGINES.items()
                 if spec.supports_algorithm(name))
