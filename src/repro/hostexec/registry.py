"""Host-engine registry: every executor the host path can route through.

Before this module existed the engine names lived in a hand-maintained tuple
(``repro.sat.registry.HOST_ENGINES``) that the CLI ``--engine`` choices and
the "unknown engine" error message could silently drift from.  Now each
executor registers one :class:`EngineSpec` here, and every consumer — routing
(:func:`repro.sat.registry.host_sat` / ``compute_sat``), the CLI, the fuzzer
and the error paths — derives its engine list from the same table.

An :class:`EngineSpec` is *capability metadata*, not an executor: it records
which algorithms an engine can run, whether its results are bit-identical to
the serial reference loops, which accumulator dtypes it supports, and which
optional dependency (if any) it needs plus the engine it degrades to when
that dependency is absent.  The executors themselves live in their own
modules (:mod:`repro.hostexec.engine`, :mod:`repro.hostexec.compiled`,
:mod:`repro.sat.parallel_host`); keeping the registry import-light means the
CLI can build ``--engine`` choices without touching Numba.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass

from repro.errors import ConfigurationError


def _module_available(name: str) -> bool:
    """Whether optional dependency ``name`` is importable (without importing
    it — ``find_spec`` is enough and keeps registry queries cheap)."""
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ValueError):
        return False


@dataclass(frozen=True)
class EngineSpec:
    """Capability flags of one host execution engine.

    ``algorithms`` is ``None`` when the engine runs every registered
    algorithm, else the tuple of canonical names it supports.  ``dtypes`` is
    ``None`` when any accumulator dtype works (all current engines — the flag
    exists so a future engine with, say, float-only kernels can declare it).
    ``requires`` names the optional import the engine needs; ``fallback``
    names the engine it degrades to (with a warning) when that import is
    missing — ``None`` means the engine is always available.
    """

    name: str
    summary: str
    #: Canonical algorithm names supported (``None`` = all algorithms).
    algorithms: tuple[str, ...] | None
    #: Accumulator dtype names supported (``None`` = any numeric dtype).
    dtypes: tuple[str, ...] | None
    #: Results are ``np.array_equal``-identical to the serial host loops.
    bit_identical: bool
    #: Optional dependency (import name) the engine needs, if any.
    requires: str | None = None
    #: Engine to degrade to when ``requires`` is missing (tile-based
    #: algorithms; non-tile algorithms always degrade to ``serial``).
    fallback: str | None = None

    def available(self) -> bool:
        """Whether the engine can run natively (its dependency importable)."""
        return self.requires is None or _module_available(self.requires)

    def supports_algorithm(self, name: str) -> bool:
        return self.algorithms is None or name in self.algorithms

    def supports_dtype(self, dtype) -> bool:
        import numpy as np
        return self.dtypes is None or np.dtype(dtype).name in self.dtypes


def _tile_algorithms() -> tuple[str, ...]:
    # Late import: kernels.py imports plan/tile machinery the registry's
    # consumers (argparse construction) should not pay for eagerly.
    from repro.hostexec.kernels import KERNELS
    return tuple(KERNELS)


def _make_engines() -> dict[str, EngineSpec]:
    tile = _tile_algorithms()
    return {
        "serial": EngineSpec(
            name="serial",
            summary="each algorithm's own per-tile host loop (the oracle)",
            algorithms=None, dtypes=None, bit_identical=True),
        "wavefront": EngineSpec(
            name="wavefront",
            summary="dependency-driven tile chunks on a thread pool",
            algorithms=tile, dtypes=None, bit_identical=True),
        "parallel": EngineSpec(
            name="parallel",
            summary="fork/join banded 2R2W scan (plain cumsums)",
            algorithms=None, dtypes=None, bit_identical=False),
        "compiled": EngineSpec(
            name="compiled",
            summary="Numba-jitted flat tile kernels (whole diagonals per "
                    "compiled pass)",
            algorithms=None, dtypes=None, bit_identical=True,
            requires="numba", fallback="wavefront"),
    }


#: All registered host engines, keyed by the ``engine=`` string.
ENGINES: dict[str, EngineSpec] = _make_engines()


def known_engines() -> tuple[str, ...]:
    """Names of every registered engine (CLI choices, error messages)."""
    return tuple(ENGINES)


def get_engine_spec(name: str) -> EngineSpec:
    """The :class:`EngineSpec` for ``name``; raises with the full dynamic
    engine list on an unknown name."""
    spec = ENGINES.get(name)
    if spec is None:
        raise unknown_engine_error(name)
    return spec


def unknown_engine_error(engine) -> ConfigurationError:
    """The canonical "unknown engine" error, listing every registered engine
    (kept in one place so the message can never drift from the registry)."""
    return ConfigurationError(
        f"unknown host engine {engine!r}; known engines: "
        f"{', '.join(known_engines())} (or a WavefrontEngine/CompiledEngine "
        "instance)")


def engines_for_algorithm(name: str) -> tuple[str, ...]:
    """Engines whose capability flags admit algorithm ``name``."""
    return tuple(e for e, spec in ENGINES.items()
                 if spec.supports_algorithm(name))
