"""Calibrated TITAN V performance model (regenerates the paper's Table III)."""

from repro.perfmodel.calibration import (DEFAULT_CALIBRATION, Calibration,
                                         fit_duplication)
from repro.perfmodel.charts import bar_chart, log_chart, table3_chart
from repro.perfmodel.costs import (CostBreakdown, KernelCost, TitanVModel,
                                   kernel_costs)
from repro.perfmodel.devices import (DEVICE_SPECS, DeviceSpec,
                                     cross_device_summary, get_device_spec,
                                     model_for_device)
from repro.perfmodel.export import (table1_records, table3_records, to_csv,
                                    to_json, write_all)
from repro.perfmodel.table import (TABLE3_ORDER, model_table3, overhead_row,
                                   render_table3)
from repro.perfmodel.titanv import (DEFAULT_CONSTANTS, ELEMENT_BYTES,
                                    PAPER_DUPLICATION_MS, PAPER_TABLE3,
                                    SIZE_LABELS, SIZES, TILE_WIDTHS,
                                    ModelConstants, paper_best_ms,
                                    paper_overhead_pct)

__all__ = [
    "Calibration", "DEFAULT_CALIBRATION", "fit_duplication",
    "CostBreakdown", "KernelCost", "TitanVModel", "kernel_costs",
    "TABLE3_ORDER", "model_table3", "overhead_row", "render_table3",
    "ModelConstants", "DEFAULT_CONSTANTS", "ELEMENT_BYTES",
    "PAPER_DUPLICATION_MS", "PAPER_TABLE3", "SIZES", "SIZE_LABELS",
    "TILE_WIDTHS", "paper_best_ms", "paper_overhead_pct",
    "bar_chart", "log_chart", "table3_chart",
    "DEVICE_SPECS", "DeviceSpec", "cross_device_summary", "get_device_spec",
    "model_for_device",
    "table1_records", "table3_records", "to_csv", "to_json", "write_all",
]
