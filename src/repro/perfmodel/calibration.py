"""Calibration of the two free parameters of the performance model.

The model has exactly two fitted constants — the kernel-launch/driver fixed
cost ``t0`` and the effective peak bandwidth ``B`` — and both are fitted *only*
to the paper's ``cudaMemcpy`` duplication row via the linear model

    D(n) = t0 + 2 · 4 · n² / B.

Every algorithm row of Table III is then a prediction.  The fit minimises
*relative* error so the microsecond-scale small sizes constrain ``t0`` as
strongly as the multi-millisecond large sizes constrain ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.perfmodel.titanv import ELEMENT_BYTES, PAPER_DUPLICATION_MS, SIZES


@dataclass(frozen=True)
class Calibration:
    """Fitted device parameters."""

    #: Fixed per-launch overhead, microseconds.
    t0_us: float
    #: Effective copy bandwidth, GB/s.
    bandwidth_gbps: float

    def duplication_us(self, n: int) -> float:
        """Modelled cudaMemcpy duplication time for an n x n float32 matrix."""
        tx_bytes = 2.0 * ELEMENT_BYTES * n * n
        return self.t0_us + tx_bytes / (self.bandwidth_gbps * 1e9) * 1e6

    def bytes_us(self, nbytes: float) -> float:
        """Time to move ``nbytes`` at full effective bandwidth, microseconds."""
        return nbytes / (self.bandwidth_gbps * 1e9) * 1e6


def fit_duplication(sizes=SIZES, times_ms=PAPER_DUPLICATION_MS) -> Calibration:
    """Weighted least squares of ``t0 + bytes/B`` against the duplication row.

    Rows are weighted by ``1/time`` so residuals are relative; this keeps the
    5 µs small-copy times from being drowned by the 14.7 ms one.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    times_us = np.asarray(times_ms, dtype=np.float64) * 1e3
    tx_bytes = 2.0 * ELEMENT_BYTES * sizes**2
    weights = 1.0 / times_us
    design = np.column_stack([np.ones_like(tx_bytes), tx_bytes])
    lhs = design * weights[:, None]
    rhs = times_us * weights
    coef, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
    t0_us, us_per_byte = coef
    bandwidth_gbps = 1.0 / us_per_byte * 1e6 / 1e9
    return Calibration(t0_us=float(max(t0_us, 0.0)),
                       bandwidth_gbps=float(bandwidth_gbps))


#: The default calibration every model instance uses.
DEFAULT_CALIBRATION = fit_duplication()
