"""Terminal charts for the reproduced results (no plotting dependencies).

The paper presents Table III as a table; for eyeballing trends an ASCII
log-log chart of running time vs matrix size (one series per algorithm) and
a horizontal bar chart of overheads are often clearer.  Used by
``examples/performance_table.py`` and the ``table3`` CLI output.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigurationError

#: Glyphs assigned to series in order.
SERIES_GLYPHS = "ox+*#@%&"


def log_chart(series: Mapping[str, Sequence[float]], xs: Sequence[float], *,
              height: int = 16, width: int = 64,
              title: str = "") -> str:
    """Log-log scatter chart: one glyph per series, columns spread over xs.

    ``series`` maps label -> y values (same length as ``xs``); NaNs are
    skipped.  Collisions print the later series' glyph.
    """
    if not series:
        raise ConfigurationError("no series to chart")
    pts = [v for ys in series.values() for v in ys
           if v == v and v > 0]
    if not pts:
        raise ConfigurationError("no positive finite data to chart")
    lo, hi = math.log10(min(pts)), math.log10(max(pts))
    if hi == lo:
        hi = lo + 1.0
    xlo, xhi = math.log10(xs[0]), math.log10(xs[-1])

    grid = [[" "] * width for _ in range(height)]
    for si, (label, ys) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[si % len(SERIES_GLYPHS)]
        for x, y in zip(xs, ys):
            if y != y or y <= 0:
                continue
            col = int((math.log10(x) - xlo) / (xhi - xlo) * (width - 1))
            row = int((math.log10(y) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{10 ** hi:.3g}"
    bottom_label = f"{10 ** lo:.3g}"
    for r, row in enumerate(grid):
        label = top_label if r == 0 else (bottom_label if r == height - 1
                                          else "")
        lines.append(f"{label:>9} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(f"{'':>10} {xs[0]:<10g}{'':>{max(0, width - 24)}}{xs[-1]:>10g}")
    legend = "  ".join(f"{SERIES_GLYPHS[i % len(SERIES_GLYPHS)]}={label}"
                       for i, label in enumerate(series))
    lines.append("legend: " + legend)
    return "\n".join(lines)


def bar_chart(values: Mapping[str, float], *, width: int = 50,
              unit: str = "", title: str = "") -> str:
    """Horizontal bar chart (linear scale, bars normalized to the max)."""
    if not values:
        raise ConfigurationError("no values to chart")
    vmax = max(values.values())
    if vmax <= 0:
        raise ConfigurationError("bar chart needs a positive maximum")
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, v in values.items():
        bar = "#" * max(0, int(round(v / vmax * width)))
        lines.append(f"{key:<{label_w}} |{bar} {v:.3g}{unit}")
    return "\n".join(lines)


def table3_chart(model=None, *, sizes=None) -> str:
    """Best-W time vs size for every algorithm, as a log-log chart."""
    import numpy as np

    from repro.perfmodel.costs import TitanVModel
    from repro.perfmodel.table import TABLE3_ORDER, model_table3
    from repro.perfmodel.titanv import SIZES
    model = model or TitanVModel()
    sizes = sizes or SIZES
    table = model_table3(model, sizes=sizes)
    series = {"duplication": table["duplication"][None]}
    for name in TABLE3_ORDER:
        series[name] = [
            min(v[k] for v in table[name].values() if v[k] == v[k])
            for k in range(len(sizes))]
    return log_chart(series, sizes, title="Table III (model): ms vs n, log-log")
