"""Analytic per-algorithm cost model for the TITAN V (regenerates Table III).

Every algorithm run is described as a sequence of :class:`KernelCost` records
(blocks, threads, coalesced bytes, strided bytes, same-address atomics, serial
chain latency).  The traffic terms are the closed forms validated against the
functional simulator's measured counters (``tests/analysis``); the timing map

    kernel_time = t0 + max(serial_chain, bytes_eff / (B · occupancy)) + atomics

uses the calibrated ``t0``/``B`` (duplication row only) plus the physically
motivated constants of :class:`~repro.perfmodel.titanv.ModelConstants`:

* ``occupancy``: fraction of peak bandwidth reachable with the launch's
  resident threads (Little's law saturation point);
* strided accesses cost ``strided_factor`` x once the footprint spills L2;
* a same-address ``atomicAdd`` serializes at one L2 round trip — this is what
  makes 1R1W-SKSS-LB with W=32 collapse at 32K² (a million tile acquisitions),
  exactly as the paper's Table III shows;
* SKSS's column hand-off forms a ``2t-1``-step serial chain of spin-wait
  latencies; look-back shortens the per-step latency by an order of magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.perfmodel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.perfmodel.titanv import (DEFAULT_CONSTANTS, ELEMENT_BYTES,
                                    ModelConstants)
from repro.sat.hybrid_1r1w import band_limits


@dataclass(frozen=True)
class KernelCost:
    """Cost-relevant description of one kernel launch."""

    name: str
    blocks: float
    threads_per_block: float
    coalesced_bytes: float = 0.0
    strided_bytes: float = 0.0
    #: Working-set size governing the L2 discount on strided traffic; when 0
    #: the strided byte count itself is used.
    footprint_bytes: float = 0.0
    atomics: float = 0.0
    chain_us: float = 0.0


@dataclass
class CostBreakdown:
    """Modelled run time with its per-kernel decomposition."""

    algorithm: str
    n: int
    W: int | None
    kernels: list[KernelCost] = field(default_factory=list)
    kernel_times_us: list[float] = field(default_factory=list)

    @property
    def total_us(self) -> float:
        return float(sum(self.kernel_times_us))

    @property
    def total_ms(self) -> float:
        return self.total_us / 1e3


class TitanVModel:
    """Maps kernel cost records to microseconds on the calibrated TITAN V."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION,
                 constants: ModelConstants = DEFAULT_CONSTANTS) -> None:
        self.calibration = calibration
        self.constants = constants

    # -- timing --------------------------------------------------------------

    def occupancy(self, blocks: float, threads_per_block: float) -> float:
        """Fraction of peak bandwidth the launch can draw."""
        c = self.constants
        resident = min(blocks * threads_per_block, c.resident_threads_cap)
        return min(1.0, resident / c.saturation_threads)

    def strided_multiplier(self, footprint_bytes: float) -> float:
        """Effective amplification of strided traffic given L2 caching."""
        c = self.constants
        if footprint_bytes <= 0:
            return 1.0
        hit = min(1.0, c.l2_bytes / footprint_bytes)
        return 1.0 + (c.strided_factor - 1.0) * (1.0 - hit)

    def kernel_time_us(self, k: KernelCost) -> float:
        c = self.constants
        occ = self.occupancy(k.blocks, k.threads_per_block)
        footprint = k.footprint_bytes or k.strided_bytes
        eff_bytes = k.coalesced_bytes + k.strided_bytes * self.strided_multiplier(
            footprint)
        mem_us = self.calibration.bytes_us(eff_bytes) / max(occ, 1e-9)
        atomic_us = k.atomics * c.atomic_ns * 1e-3
        # Spin-stall chains are serial with the memory work, not overlapped.
        return self.calibration.t0_us + mem_us + k.chain_us + atomic_us

    def estimate(self, algorithm: str, n: int, *, W: int = 32,
                 threads_per_block: int = 1024, r: float = 0.25) -> CostBreakdown:
        """Predicted running time of ``algorithm`` on an n x n float32 matrix."""
        kernels = kernel_costs(algorithm, n, W=W,
                               threads_per_block=threads_per_block, r=r,
                               constants=self.constants)
        bd = CostBreakdown(algorithm=algorithm, n=n,
                           W=None if algorithm.startswith("2R2W") else W,
                           kernels=kernels)
        bd.kernel_times_us = [self.kernel_time_us(k) for k in kernels]
        return bd

    def duplication_us(self, n: int) -> float:
        return self.calibration.duplication_us(n)

    def best_estimate(self, algorithm: str, n: int, *,
                      tile_widths=(32, 64, 128),
                      threads_per_block: int = 1024,
                      r: float = 0.25) -> CostBreakdown:
        """Best predicted time over the paper's W sweep (2R2W rows have no W)."""
        if algorithm.startswith("2R2W"):
            return self.estimate(algorithm, n, threads_per_block=threads_per_block)
        candidates = [self.estimate(algorithm, n, W=w,
                                    threads_per_block=threads_per_block, r=r)
                      for w in tile_widths if n % w == 0 and w <= n]
        if not candidates:
            raise ConfigurationError(f"no valid tile width for n={n}")
        return min(candidates, key=lambda b: b.total_us)


# -- per-algorithm kernel cost specifications -----------------------------------


def leading_bytes(algorithm: str, n: int) -> tuple[float, float]:
    """Leading-term global (read, write) bytes for one ``n x n`` run.

    Straight from the deduplicated Table I
    (:func:`repro.analysis.table1.leading_traffic`), so the cost model can
    never drift from the row the static verifier proves.  Imported lazily:
    ``analysis`` imports ``perfmodel`` for Table III rendering, so a
    module-level import here would be circular.
    """
    from repro.analysis.table1 import leading_traffic
    reads, writes = leading_traffic(algorithm, n)
    return reads * ELEMENT_BYTES, writes * ELEMENT_BYTES


def _tile_geometry(n: int, W: int, threads_per_block: int) -> tuple[int, int, float, float]:
    if n % W:
        raise ConfigurationError(f"n={n} is not a multiple of W={W}")
    t = n // W
    tpb = min(threads_per_block, W * W)
    vec_bytes = float(t * t * W * ELEMENT_BYTES)   # one length-W vector per tile
    sca_bytes = float(t * t * ELEMENT_BYTES)       # one scalar/flag per tile
    return t, tpb, vec_bytes, sca_bytes


def kernel_costs(algorithm: str, n: int, *, W: int = 32,
                 threads_per_block: int = 1024, r: float = 0.25,
                 constants: ModelConstants = DEFAULT_CONSTANTS) -> list[KernelCost]:
    """Closed-form kernel cost records for one algorithm run.

    The ``n²``-term byte volumes derive from :func:`leading_bytes` (the
    shared Table I); only the lower-order metadata terms (boundary vectors,
    flags, look-back) are spelled out here.
    """
    n2b = float(n) * n * ELEMENT_BYTES
    read_b, write_b = leading_bytes(algorithm, n)

    if algorithm == "2R2W":
        # Each pass reads and writes the full matrix once: half the Table I
        # traffic per kernel.
        blocks = max(1, n // 256)
        return [
            KernelCost("column_scan", blocks, 256,
                       coalesced_bytes=(read_b + write_b) / 2),
            KernelCost("row_scan", blocks, 256,
                       strided_bytes=(read_b + write_b) / 2,
                       footprint_bytes=n2b),
        ]

    if algorithm == "2R2W-optimal":
        panel = 256
        col_blocks = (n // 32) * max(1, n // panel)
        row_blocks = n * max(1, n // threads_per_block)
        strip_meta = 2 * (n // 32) * max(1, n // panel) * 32 * ELEMENT_BYTES
        row_meta = 3 * row_blocks * ELEMENT_BYTES
        return [
            KernelCost("tokura_col_scan", col_blocks, threads_per_block,
                       coalesced_bytes=(read_b + write_b) / 2
                       + 2 * strip_meta),
            KernelCost("mg_row_scan", row_blocks, threads_per_block,
                       coalesced_bytes=(read_b + write_b) / 2 + 2 * row_meta),
        ]

    t, tpb, vec, sca = _tile_geometry(n, W, threads_per_block)

    if algorithm == "2R1W":
        # Reads split evenly: the input read in local_sums, the LSAT re-read
        # in gsat (which also carries the single n² write).
        lane_blocks = max(1, (t * W) // tpb)
        return [
            KernelCost("local_sums", t * t, tpb,
                       coalesced_bytes=read_b / 2 + 2 * vec + sca),
            KernelCost("global_sums", 2 * lane_blocks + 1, tpb,
                       coalesced_bytes=2 * (2 * vec) + 4 * sca),
            KernelCost("gsat", t * t, tpb,
                       coalesced_bytes=read_b / 2 + write_b + 2 * vec + sca),
        ]

    if algorithm == "1R1W":
        out = []
        per_tile = (read_b + write_b) / (t * t) + 9 * W * ELEMENT_BYTES
        for K in range(2 * t - 1):
            d = t - abs(K - (t - 1))
            out.append(KernelCost(f"wave_{K}", d, tpb,
                                  coalesced_bytes=d * per_tile))
        return out

    if algorithm == "(1+r)R1W":
        # Structural per-band accounting: the model supports arbitrary r
        # while Table I's hybrid row is pinned at r = 1/4; the drift-pin test
        # checks the r = 1/4 leading term against leading_bytes.
        Ka, Kc = band_limits(r, t)
        band_a = sum(min(k + 1, t) for k in range(Ka))
        band_c = sum(t - abs(k - (t - 1)) for k in range(Kc + 1, 2 * t - 1))
        lane_blocks = max(1, (t * W) // tpb)
        out: list[KernelCost] = []
        for band, count in (("A", band_a), ("C", band_c)):
            if not count:
                continue
            tile_bytes = count * W * W * ELEMENT_BYTES
            bvec = count * W * ELEMENT_BYTES
            out.append(KernelCost(f"{band}_local", count, tpb,
                                  coalesced_bytes=tile_bytes + 2 * bvec))
            out.append(KernelCost(f"{band}_global", 2 * lane_blocks + 1, tpb,
                                  coalesced_bytes=4 * bvec + 4 * count * ELEMENT_BYTES))
            out.append(KernelCost(f"{band}_gsat", count, tpb,
                                  coalesced_bytes=2 * tile_bytes + 2 * bvec))
        for K in range(Ka, min(Kc, 2 * t - 2) + 1):
            d = t - abs(K - (t - 1))
            per_tile = 2 * W * W * ELEMENT_BYTES + 9 * W * ELEMENT_BYTES
            out.append(KernelCost(f"wave_{K}", d, tpb,
                                  coalesced_bytes=d * per_tile))
        return out

    if algorithm == "1R1W-SKSS":
        handoff_us = W * constants.skss_handoff_ns_per_width * 1e-3
        return [KernelCost(
            "skss", t, tpb,
            coalesced_bytes=read_b + write_b + 2 * vec + 2 * sca,
            atomics=t,
            chain_us=(2 * t - 1) * handoff_us)]

    if algorithm == "1R1W-SKSS-LB":
        # Beyond the 2n² matrix traffic: writes of LRS/LCS/GRS/GCS (4 vec) and
        # GLS/GS + six status updates (scalars); look-back reads of roughly
        # one GRS and one GCS vector per tile plus flag polls.
        return [KernelCost(
            "skss_lb", t * t, tpb,
            coalesced_bytes=read_b + write_b + 6 * vec + 12 * sca,
            atomics=t * t,
            chain_us=(2 * t - 1) * constants.lb_chain_step_us)]

    raise ConfigurationError(f"no cost model for algorithm '{algorithm}'")
