"""Cross-device projections: what Table III would look like on other GPUs.

The paper evaluates on a TITAN V only.  The cost model, however, consumes a
small set of device characteristics (bandwidth, SM count, launch overhead),
so projecting the comparison onto other GPUs is a one-line calibration swap.
These presets use public spec numbers with the effective-bandwidth derating
observed on the TITAN V (the fitted 591 GB/s is ~0.91x of its 652.8 GB/s
spec); launch overhead is kept at the fitted 3.5 µs, which is dominated by
the driver rather than the GPU.

This is an *extension* (clearly beyond the paper): the prediction of interest
is that the ranking — SKSS-LB fastest everywhere — is bandwidth-ratio
invariant, while the crossover sizes shift with the bandwidth/latency
balance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.perfmodel.calibration import DEFAULT_CALIBRATION, Calibration

#: Effective/spec bandwidth derating fitted on the TITAN V.
_DERATE = DEFAULT_CALIBRATION.bandwidth_gbps / 652.8


@dataclass(frozen=True)
class DeviceSpec:
    """Public spec numbers needed by the performance model."""

    name: str
    spec_bandwidth_gbps: float
    num_sms: int
    mem_bytes: int

    @property
    def effective_bandwidth_gbps(self) -> float:
        return self.spec_bandwidth_gbps * _DERATE

    def calibration(self, t0_us: float | None = None) -> Calibration:
        """Calibration for this device (launch overhead defaults to the
        TITAN V fit — it is a host/driver property)."""
        return Calibration(
            t0_us=DEFAULT_CALIBRATION.t0_us if t0_us is None else t0_us,
            bandwidth_gbps=self.effective_bandwidth_gbps)


#: Same-generation and nearby GPUs (public spec sheets).
DEVICE_SPECS = {
    "titan-v": DeviceSpec("NVIDIA TITAN V", 652.8, 80, 12 * 1024**3),
    "gtx-1080ti": DeviceSpec("NVIDIA GTX 1080 Ti", 484.4, 28, 11 * 1024**3),
    "p100": DeviceSpec("NVIDIA Tesla P100", 732.2, 56, 16 * 1024**3),
    "v100": DeviceSpec("NVIDIA Tesla V100 (SXM2)", 897.0, 80, 16 * 1024**3),
    "rtx-2080ti": DeviceSpec("NVIDIA RTX 2080 Ti", 616.0, 68, 11 * 1024**3),
    "a100": DeviceSpec("NVIDIA A100 (40GB)", 1555.0, 108, 40 * 1024**3),
}


def get_device_spec(key: str) -> DeviceSpec:
    try:
        return DEVICE_SPECS[key.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown device '{key}'; known: {sorted(DEVICE_SPECS)}") from None


def model_for_device(key: str):
    """A :class:`~repro.perfmodel.costs.TitanVModel` recalibrated for ``key``.

    (The class name is historical; only the calibration is device-specific.)
    """
    from repro.perfmodel.costs import TitanVModel
    return TitanVModel(calibration=get_device_spec(key).calibration())


def cross_device_summary(n: int = 8192, *, algorithms=None) -> dict:
    """Best-W model times (ms) per device at one size, plus duplication."""
    from repro.perfmodel.table import TABLE3_ORDER
    algorithms = algorithms or TABLE3_ORDER
    out: dict = {}
    for key in DEVICE_SPECS:
        model = model_for_device(key)
        row = {"duplication": model.duplication_us(n) / 1e3}
        for name in algorithms:
            row[name] = model.best_estimate(name, n).total_ms
        out[key] = row
    return out
