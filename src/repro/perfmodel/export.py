"""Machine-readable exports of the reproduced tables (CSV / JSON).

The text renderers in :mod:`repro.perfmodel.table` are for humans; these
exporters emit the same data for plotting or regression-tracking pipelines.
"""

from __future__ import annotations

import csv
import io
import json

from repro.analysis.complexity import TABLE1_ORDER, table1_row
from repro.perfmodel.costs import TitanVModel
from repro.perfmodel.table import TABLE3_ORDER, model_table3
from repro.perfmodel.titanv import (PAPER_DUPLICATION_MS, PAPER_TABLE3, SIZES)


def table1_records(n: int, *, W: int = 32, threads_per_block: int = 1024,
                   r: float = 0.25) -> list[dict]:
    """Table I as a list of flat records (one per algorithm)."""
    out = []
    for name in TABLE1_ORDER:
        row = table1_row(name, n, W=W, threads_per_block=threads_per_block,
                         r=r)
        out.append({
            "algorithm": row.algorithm,
            "kernel_calls_symbolic": row.kernel_calls_sym,
            "kernel_calls": row.kernel_calls,
            "threads_symbolic": row.threads_sym,
            "max_threads": row.max_threads,
            "parallelism": row.parallelism,
            "reads_symbolic": row.reads_sym,
            "reads": row.reads,
            "writes_symbolic": row.writes_sym,
            "writes": row.writes,
        })
    return out


def table3_records(model: TitanVModel | None = None, *,
                   r: float = 0.25) -> list[dict]:
    """Table III as flat records: one per (algorithm, W, size) cell, with the
    paper's measured value attached where it exists."""
    model = model or TitanVModel()
    table = model_table3(model, r=r)
    records: list[dict] = []
    for k, n in enumerate(SIZES):
        records.append({
            "algorithm": "duplication", "W": None, "n": n,
            "model_ms": table["duplication"][None][k],
            "paper_ms": PAPER_DUPLICATION_MS[k],
        })
    for name in TABLE3_ORDER:
        for W, times in table[name].items():
            paper_row = PAPER_TABLE3[name][W if W in PAPER_TABLE3[name]
                                           else None]
            for k, n in enumerate(SIZES):
                model_ms = times[k]
                records.append({
                    "algorithm": name, "W": W, "n": n,
                    "model_ms": None if model_ms != model_ms else model_ms,
                    "paper_ms": paper_row[k],
                })
    return records


def to_csv(records: list[dict]) -> str:
    """Serialize records to CSV text (header from the first record)."""
    if not records:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()


def to_json(records: list[dict], *, indent: int = 2) -> str:
    return json.dumps(records, indent=indent)


def write_all(directory, *, n: int = 1024, model: TitanVModel | None = None) -> list[str]:
    """Write table1/table3 CSV and JSON files into ``directory``.

    Returns the list of file paths written.
    """
    from pathlib import Path
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    outputs = {
        "table1.csv": to_csv(table1_records(n)),
        "table1.json": to_json(table1_records(n)),
        "table3.csv": to_csv(table3_records(model)),
        "table3.json": to_json(table3_records(model)),
    }
    written = []
    for fname, text in outputs.items():
        path = directory / fname
        path.write_text(text)
        written.append(str(path))
    return written
