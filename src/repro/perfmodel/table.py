"""Table III renderer: the paper's evaluation table from the cost model.

Produces the same rows the paper reports — per-W running times with the best
W highlighted, plus the overhead-over-duplication row — and, on request, a
side-by-side comparison with the paper's measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.costs import TitanVModel
from repro.perfmodel.titanv import (PAPER_DUPLICATION_MS, PAPER_TABLE3,
                                    SIZE_LABELS, SIZES, TILE_WIDTHS,
                                    paper_best_ms)

#: Table III algorithm order.
TABLE3_ORDER = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                "1R1W-SKSS", "1R1W-SKSS-LB")


def _fmt_ms(v: float) -> str:
    if v < 0.1:
        return f"{v:.4f}"
    if v < 1:
        return f"{v:.3f}"
    if v < 10:
        return f"{v:.2f}"
    return f"{v:.1f}"


@dataclass
class Table3Cell:
    """One (algorithm, W, size) prediction with its paper counterpart."""

    algorithm: str
    W: int | None
    n: int
    model_ms: float
    paper_ms: float | None

    @property
    def ratio(self) -> float | None:
        if self.paper_ms is None or self.paper_ms == 0:
            return None
        return self.model_ms / self.paper_ms


def model_table3(model: TitanVModel | None = None, *, sizes=SIZES,
                 r: float = 0.25) -> dict:
    """All Table III predictions: ``{algorithm: {W: [ms per size]}}``.

    2R2W rows use ``W = None``; tile widths larger than the matrix are skipped
    (reported as ``nan``), matching the paper's table where every listed size
    admits all three widths.
    """
    model = model or TitanVModel()
    out: dict = {"duplication": {None: [model.duplication_us(n) / 1e3
                                        for n in sizes]}}
    for name in TABLE3_ORDER:
        if name.startswith("2R2W"):
            out[name] = {None: [model.estimate(name, n, r=r).total_ms
                                for n in sizes]}
            continue
        out[name] = {}
        for W in TILE_WIDTHS:
            row = []
            for n in sizes:
                if n % W or W > n:
                    row.append(float("nan"))
                else:
                    row.append(model.estimate(name, n, W=W, r=r).total_ms)
            out[name][W] = row
    return out


def overhead_row(times_ms: list[float], dup_ms: list[float]) -> list[float]:
    """Overhead in percent of the best time over duplication, per size."""
    return [(t - d) / d * 100.0 for t, d in zip(times_ms, dup_ms)]


def render_table3(model: TitanVModel | None = None, *, sizes=SIZES,
                  r: float = 0.25, compare_paper: bool = True) -> str:
    """Render the model's Table III in the paper's format.

    Every tile-based algorithm gets one line per W (best W marked ``*``) and
    an ``overhead`` line; with ``compare_paper`` the paper's measured ms
    follow each prediction in brackets.
    """
    model = model or TitanVModel()
    table = model_table3(model, sizes=sizes, r=r)
    dup = table["duplication"][None]
    size_idx = [SIZES.index(n) for n in sizes]

    header = ["Parallel algorithms", "W^2"] + [SIZE_LABELS[i] for i in size_idx]
    rows: list[list[str]] = [header]

    def add_row(label: str, wlabel: str, values: list[str]) -> None:
        rows.append([label, wlabel] + values)

    add_row("matrix duplication (model)", "-",
            [_fmt_ms(v) for v in dup])
    if compare_paper:
        add_row("matrix duplication (paper)", "-",
                [_fmt_ms(PAPER_DUPLICATION_MS[i]) for i in size_idx])

    for name in TABLE3_ORDER:
        by_w = table[name]
        best = [min(vals[k] for vals in by_w.values()) for k in range(len(sizes))]
        for W, vals in by_w.items():
            marked = [
                (_fmt_ms(v) + ("*" if v == best[k] and len(by_w) > 1 else ""))
                for k, v in enumerate(vals)]
            add_row(name, "-" if W is None else f"{W}^2", marked)
            if compare_paper:
                paper_by_w = PAPER_TABLE3[name]
                key = W if W in paper_by_w else None
                add_row(f"  (paper)", "-" if W is None else f"{W}^2",
                        [_fmt_ms(paper_by_w[key][i]) for i in size_idx])
        oh = overhead_row(best, dup)
        add_row(name, "overhead", [f"{v:.1f}%" for v in oh])
        if compare_paper:
            paper_oh = [
                (paper_best_ms(name, i) - PAPER_DUPLICATION_MS[i])
                / PAPER_DUPLICATION_MS[i] * 100.0 for i in size_idx]
            add_row("  (paper)", "overhead", [f"{v:.1f}%" for v in paper_oh])

    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    for i, cells in enumerate(rows):
        lines.append("  ".join(c.rjust(w) if j >= 2 else c.ljust(w)
                               for j, (c, w) in enumerate(zip(cells, widths))))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
