"""The paper's Table III data and TITAN V model constants.

``PAPER_TABLE3`` embeds every measured cell of the paper's Table III (running
time in milliseconds on an NVIDIA TITAN V, float32 matrices).  The performance
model is calibrated **only** against the ``cudaMemcpy`` duplication row; the
other rows are used exclusively as the ground truth that EXPERIMENTS.md and
the shape tests compare our predictions to.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Matrix sides of Table III: 256 .. 32768.
SIZES = (256, 512, 1024, 2048, 4096, 8192, 16384, 32768)

#: Human labels used by the paper's column headers.
SIZE_LABELS = ("256^2", "512^2", "1K^2", "2K^2", "4K^2", "8K^2", "16K^2", "32K^2")

#: cudaMemcpy duplication times in ms (the calibration row).
PAPER_DUPLICATION_MS = (0.00512, 0.00614, 0.0165, 0.0645, 0.237, 0.927, 3.69, 14.7)

#: Running times in ms; tile-based algorithms keyed by W in {32, 64, 128}.
PAPER_TABLE3 = {
    "2R2W": {None: (0.0901, 0.167, 0.338, 1.01, 2.57, 8.47, 24.4, 87.1)},
    "2R2W-optimal": {None: (0.0224, 0.0224, 0.0467, 0.136, 0.478, 1.86, 7.52, 30.0)},
    "2R1W": {
        32: (0.0191, 0.0272, 0.0669, 0.182, 0.577, 2.04, 7.88, 30.9),
        64: (0.0161, 0.0191, 0.0489, 0.141, 0.434, 1.53, 5.81, 22.8),
        128: (0.0271, 0.0284, 0.0489, 0.155, 0.459, 1.65, 6.35, 25.1),
    },
    "1R1W": {
        32: (0.059, 0.108, 0.249, 0.524, 1.13, 2.97, 8.47, 27.9),
        64: (0.0363, 0.0829, 0.194, 0.402, 0.866, 2.03, 6.32, 21.7),
        128: (0.0301, 0.0653, 0.195, 0.417, 0.890, 2.02, 6.23, 21.0),
    },
    "(1+r)R1W": {
        32: (0.0453, 0.0555, 0.118, 0.302, 0.862, 2.45, 7.47, 25.4),
        64: (0.0464, 0.0582, 0.0809, 0.197, 0.539, 1.67, 5.95, 21.2),
        128: (0.0638, 0.0709, 0.0871, 0.188, 0.517, 1.60, 5.81, 20.6),
    },
    "1R1W-SKSS": {
        32: (0.0298, 0.0476, 0.0692, 0.128, 0.387, 1.20, 4.55, 17.5),
        64: (0.0298, 0.0356, 0.0606, 0.136, 0.330, 1.15, 4.26, 16.4),
        128: (0.0409, 0.0398, 0.0753, 0.124, 0.319, 1.14, 4.18, 16.2),
    },
    "1R1W-SKSS-LB": {
        32: (0.0146, 0.0209, 0.0444, 0.147, 0.542, 2.16, 8.64, 37.5),
        64: (0.0126, 0.0156, 0.0266, 0.0790, 0.266, 1.06, 4.28, 17.4),
        128: (0.0132, 0.0136, 0.0208, 0.0753, 0.258, 0.980, 3.92, 15.8),
    },
}

#: Tile widths the paper sweeps.
TILE_WIDTHS = (32, 64, 128)

#: Bytes per element of the paper's matrices (float32).
ELEMENT_BYTES = 4


def paper_best_ms(algorithm: str, size_index: int) -> float:
    """Best (over W) paper time for an algorithm at a size index."""
    by_w = PAPER_TABLE3[algorithm]
    return min(times[size_index] for times in by_w.values())


def paper_overhead_pct(algorithm: str, size_index: int) -> float:
    """Paper overhead of the best-W time over duplication, in percent."""
    dup = PAPER_DUPLICATION_MS[size_index]
    return (paper_best_ms(algorithm, size_index) - dup) / dup * 100.0


@dataclass(frozen=True)
class ModelConstants:
    """Non-calibrated constants of the performance model.

    All are physically motivated and documented in DESIGN.md; none are fitted
    to algorithm rows of Table III.
    """

    #: Threads needed to keep the HBM2 pipeline full (Little's law at ~275 ns
    #: latency and ~600 GB/s: ~160 KB in flight / 8 B per thread ≈ 2·10^4; we
    #: use 10^4 because each simulated thread sustains ~2 loads in flight).
    saturation_threads: float = 10_000.0
    #: Resident-thread ceiling of the device (80 SMs x 2048 threads).
    resident_threads_cap: float = 163_840.0
    #: Effective traffic multiplier of fully strided (one element per 32-byte
    #: sector) access once the footprint spills L2; below 8 because L2 merges
    #: some sectors in practice.
    strided_factor: float = 5.0
    #: L2 capacity: strided penalties vanish while the working set fits.
    l2_bytes: float = 4.5 * 1024**2
    #: Same-address atomicAdd serialization cost (L2 round trip).
    atomic_ns: float = 12.0
    #: Serial hand-off cost per wavefront step of 1R1W-SKSS, per element of
    #: tile width: each step serializes a spin-wait plus the tile's W-long
    #: row-prefix before the next column can proceed, so the step cost is
    #: ~W x 20 ns.  These stalls sit *in series* with the memory work.
    skss_handoff_ns_per_width: float = 20.0
    #: Per-diagonal publish latency of the look-back algorithm (much shorter:
    #: consumers read locals without waiting for neighbours to finish).
    lb_chain_step_us: float = 0.3


DEFAULT_CONSTANTS = ModelConstants()
