"""Primitive building blocks: scans, the diagonal arrangement, tile algebra,
decoupled look-back, and kernel-side shared-memory tile operations."""

from repro.primitives.blockscan import block_inclusive_scan, block_reduce_sum
from repro.primitives.colscan import ColScanLayout, col_scan_kernel, run_col_scan
from repro.primitives.diagonal import (check_tile_width, col_offsets,
                                       diag_inverse, diag_offset,
                                       full_tile_offsets, row_offsets,
                                       rowmajor_offset)
from repro.primitives.lookback import lookback_walk, publish
from repro.primitives.prefix_sum import (exclusive_scan, inclusive_scan,
                                         num_partitions, partition_bounds,
                                         sequential_inclusive_scan)
from repro.primitives.scan1d import (STATUS_AGGREGATE, STATUS_INVALID,
                                     STATUS_PREFIX, RowScanLayout,
                                     row_scan_kernel, run_row_scan)
from repro.primitives.tile import (TileGrid, assemble_gsat_tile,
                                   assemble_gsat_tile_skss,
                                   global_col_prefixes, global_col_sums,
                                   global_l_sum, global_row_sums, global_sat_tile,
                                   global_sum, local_col_sums, local_row_sums,
                                   local_sum, tile_view)

__all__ = [
    "block_inclusive_scan", "block_reduce_sum",
    "ColScanLayout", "col_scan_kernel", "run_col_scan",
    "check_tile_width", "col_offsets", "diag_inverse", "diag_offset",
    "full_tile_offsets", "row_offsets", "rowmajor_offset",
    "lookback_walk", "publish",
    "exclusive_scan", "inclusive_scan", "num_partitions", "partition_bounds",
    "sequential_inclusive_scan",
    "STATUS_AGGREGATE", "STATUS_INVALID", "STATUS_PREFIX", "RowScanLayout",
    "row_scan_kernel", "run_row_scan",
    "TileGrid", "assemble_gsat_tile", "assemble_gsat_tile_skss",
    "global_col_prefixes", "global_col_sums", "global_l_sum",
    "global_row_sums", "global_sat_tile", "global_sum", "local_col_sums",
    "local_row_sums", "local_sum", "tile_view",
]
