"""Block-level inclusive scan built from warp scans (GPU Gems 3, ch. 39).

Used by the Merrill–Garland single-pass scan blocks: each warp scans its 32
values with the warp prefix-sum algorithm (Figure 4 of the paper), warp totals
are exchanged through shared memory, scanned by the first warp, and the
exclusive warp offsets are added back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext

#: Name of the shared scratch array used for warp-total exchange.
_SCRATCH = "_blockscan_warp_totals"


def ensure_scratch(ctx: BlockContext) -> None:
    """Allocate the warp-totals scratch (idempotent per block)."""
    w = ctx.device.warp_size
    try:
        ctx.shared.raw(_SCRATCH)
    except Exception:
        ctx.salloc(_SCRATCH, w, np.float64)


def block_inclusive_scan(ctx: BlockContext, values: np.ndarray) -> np.ndarray:
    """Inclusive prefix sums of one value per thread across the whole block.

    ``values`` must have one lane per thread (``ctx.nthreads``).  Requires at
    most ``warp_size`` warps per block (1024 threads for warp size 32), like
    the classic two-level scheme.
    """
    w = ctx.device.warp_size
    values = np.asarray(values, dtype=np.float64)
    if values.shape != (ctx.nthreads,):
        raise ConfigurationError(
            f"block scan needs one value per thread ({ctx.nthreads}), "
            f"got shape {values.shape}")
    nwarps = ctx.nthreads // w
    if nwarps > w:
        raise ConfigurationError(
            f"{nwarps} warps exceed the two-level scan limit of {w}")
    ensure_scratch(ctx)

    inc = ctx.warp_inclusive_scan(values)
    warp_totals = inc[w - 1::w]
    # Last lane of each warp stores its total; the first warp scans them.
    ctx.sstore(_SCRATCH, np.arange(nwarps), warp_totals)
    padded = np.zeros(w)
    padded[:nwarps] = ctx.sload(_SCRATCH, np.arange(nwarps))
    scanned = ctx.warp_inclusive_scan(padded)
    offsets = np.concatenate(([0.0], scanned[:nwarps - 1])) if nwarps else np.zeros(0)
    return inc + np.repeat(offsets, w)


def block_reduce_sum(ctx: BlockContext, values: np.ndarray) -> float:
    """Sum one value per thread across the block (scan + take last)."""
    return float(block_inclusive_scan(ctx, values)[-1])
