"""Column-wise prefix sums with full coalescing (Tokura et al. [12]).

The naive column scan (one thread per column walking down) is coalesced but
offers only ``n`` threads of parallelism.  Tokura's algorithm splits the
matrix into column *strips* one warp wide and row *panels*, assigns a block to
every (strip, panel) pair, and stitches panels with decoupled look-back down
each strip:

1. the block copies its ``H x 32`` panel into shared memory with coalesced
   reads, accumulating the panel's per-column sums on the way;
2. it publishes the panel column sums (aggregate status), looks back up the
   strip for the exclusive per-column prefix, and publishes the inclusive
   prefix;
3. each of 32 threads then walks its column down the shared panel, adding the
   running sum to the exclusive prefix and writing results out.

Shared storage uses a ``+1`` pad per row so the column walk is bank-conflict
free.  Blocks acquire (strip, panel) pairs via an atomic counter in
panel-major order, so look-back predecessors always hold smaller serials and
in-order dispatch cannot deadlock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.lookback import lookback_walk, publish
from repro.primitives.scan1d import STATUS_AGGREGATE, STATUS_PREFIX


@dataclass(frozen=True, init=False)
class ColScanLayout:
    """Geometry of the column scan: ``rows x cols`` matrix, warp-wide strips,
    ``panel_rows``-row panels.

    Construct with ``rows=``/``cols=`` for rectangles or the legacy square
    form ``ColScanLayout(n=..., panel_rows=...)``.
    """

    rows: int
    cols: int
    panel_rows: int
    strip_width: int = 32

    def __init__(self, rows: int | None = None, cols: int | None = None,
                 panel_rows: int | None = None, strip_width: int = 32, *,
                 n: int | None = None) -> None:
        if n is not None:
            if rows is not None or cols is not None:
                raise ConfigurationError(
                    "pass either n= (square) or rows=/cols=, not both")
            rows = cols = n
        if rows is None or panel_rows is None:
            raise ConfigurationError(
                "ColScanLayout needs rows (or n=) and panel_rows")
        if cols is None:
            cols = rows
        object.__setattr__(self, "rows", int(rows))
        object.__setattr__(self, "cols", int(cols))
        object.__setattr__(self, "panel_rows", int(panel_rows))
        object.__setattr__(self, "strip_width", int(strip_width))
        if self.cols % self.strip_width:
            raise ConfigurationError(
                f"matrix width {self.cols} is not a multiple of the strip "
                f"width {self.strip_width}")
        if self.rows % self.panel_rows:
            raise ConfigurationError(
                f"matrix height {self.rows} is not a multiple of the panel "
                f"height {self.panel_rows}")

    @property
    def n(self) -> int:
        """Side length of a square layout (legacy accessor)."""
        if self.rows != self.cols:
            raise ConfigurationError(
                f"layout is {self.rows}x{self.cols}; use rows/cols")
        return self.rows

    @property
    def num_strips(self) -> int:
        return self.cols // self.strip_width

    @property
    def num_panels(self) -> int:
        return self.rows // self.panel_rows

    @property
    def total_tiles(self) -> int:
        return self.num_strips * self.num_panels

    def serial_to_tile(self, serial: int) -> tuple[int, int]:
        """Panel-major: all panel-0 strips first, then panel 1, ..."""
        panel, strip = divmod(serial, self.num_strips)
        return strip, panel

    def status_index(self, strip: int, panel: int) -> int:
        return strip * self.num_panels + panel


def col_scan_kernel(ctx: BlockContext, src: GlobalBuffer, dst: GlobalBuffer,
                    counter: GlobalBuffer, status: GlobalBuffer,
                    aggregates: GlobalBuffer, prefixes: GlobalBuffer,
                    layout: ColScanLayout):
    """One block of the Tokura column scan (generator kernel)."""
    C = layout.strip_width
    H = layout.panel_rows
    pad = C + 1  # padded row stride -> conflict-free column walk
    ctx.salloc("panel", H * pad, np.float64)
    rows_per_pass = max(1, ctx.nthreads // C)

    while True:
        serial = ctx.atomic_add(counter, 0, 1)
        if serial >= layout.total_tiles:
            return
        strip, panel = layout.serial_to_tile(serial)
        col0 = strip * C
        row0 = panel * H
        cols = col0 + np.arange(C)

        # Step 1: coalesced copy into shared, fused per-column partial sums.
        col_sums = np.zeros(C)
        for r in range(0, H, rows_per_pass):
            nrows = min(rows_per_pass, H - r)
            rr = (row0 + r + np.arange(nrows))[:, None]
            gidx = (rr * layout.cols + cols[None, :]).ravel()
            values = ctx.gload(src, gidx)
            soff = ((r + np.arange(nrows))[:, None] * pad + np.arange(C)[None, :])
            ctx.sstore("panel", soff.ravel(), values)
            col_sums += values.reshape(nrows, C).sum(axis=0)
            ctx.charge(nrows * ctx.costs.compute_step)
        yield ctx.syncthreads()

        # Step 2: publish aggregate, look back up the strip, publish prefix.
        sidx = layout.status_index(strip, panel)
        vec_idx = sidx * C + np.arange(C)
        publish(ctx, [(aggregates, vec_idx, col_sums)], status, sidx,
                STATUS_AGGREGATE)

        def _vec(buf):
            def read(p):
                vidx = layout.status_index(strip, p) * C + np.arange(C)
                return ctx.gload(buf, vidx)
            return read

        exclusive = yield from lookback_walk(
            ctx,
            steps=range(panel - 1, -1, -1),
            status_buf=status,
            status_index=lambda p: layout.status_index(strip, p),
            local_threshold=STATUS_AGGREGATE,
            global_threshold=STATUS_PREFIX,
            read_local=_vec(aggregates),
            read_global=_vec(prefixes),
            zero=np.zeros(C))

        publish(ctx, [(prefixes, vec_idx, exclusive + col_sums)], status, sidx,
                STATUS_PREFIX)

        # Step 3: 32 threads walk their columns down the panel; running sums
        # start from the exclusive prefix; writes go out row by row.
        running = np.array(exclusive)
        for r in range(H):
            soff = r * pad + np.arange(C)
            running = running + ctx.sload("panel", soff)
            gidx = (row0 + r) * layout.cols + cols
            ctx.gstore(dst, gidx, running)
        yield ctx.syncthreads()


def run_col_scan(gpu: GPU, src: GlobalBuffer, dst: GlobalBuffer, *,
                 n: int | None = None, rows: int | None = None,
                 cols: int | None = None,
                 panel_rows: int | None = None, strip_width: int = 32,
                 threads_per_block: int = 1024,
                 grid_blocks: int | None = None,
                 name: str = "tokura_col_scan"):
    """Launch the column-wise scan over a ``rows x cols`` matrix.

    ``n`` is the legacy square shorthand for ``rows == cols``.
    ``panel_rows`` defaults to a panel of about ``threads_per_block`` elements
    per pass times 8 (bounded by the height), a reasonable trade between
    look-back chain length and per-block shared usage.
    """
    if n is not None:
        rows = cols = n
    if rows is None:
        raise ConfigurationError("run_col_scan needs rows (or n=)")
    if cols is None:
        cols = rows
    if panel_rows is None:
        panel_rows = min(rows, max(strip_width,
                                   8 * threads_per_block // strip_width))
        while rows % panel_rows:
            panel_rows //= 2
    layout = ColScanLayout(rows=rows, cols=cols, panel_rows=panel_rows,
                           strip_width=strip_width)
    tag = f"_{name}_{id(src):x}"
    counter = gpu.alloc(tag + "_counter", (1,), np.int64, fill=0,
                        kind="counter")
    status = gpu.alloc(tag + "_status", (layout.total_tiles,), np.int64,
                       fill=0, kind="status",
                       status_values=(0, STATUS_AGGREGATE, STATUS_PREFIX))
    aggregates = gpu.alloc(tag + "_agg", (layout.total_tiles * strip_width,),
                           np.float64)
    prefixes = gpu.alloc(tag + "_pref", (layout.total_tiles * strip_width,),
                         np.float64)
    try:
        stats = gpu.launch(
            col_scan_kernel,
            grid_blocks=grid_blocks or layout.total_tiles,
            threads_per_block=threads_per_block,
            args=(src, dst, counter, status, aggregates, prefixes, layout),
            name=name,
            shared_bytes_hint=panel_rows * (strip_width + 1) * 4)
    finally:
        for suffix in ("_counter", "_status", "_agg", "_pref"):
            gpu.free(tag + suffix)
    return stats


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: synchronization structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "col_scan_kernel": {
        "ticket": True,
        "publishes": (("aggregates", "status", STATUS_AGGREGATE),
                      ("prefixes", "status", STATUS_PREFIX)),
        "walks": (("status", STATUS_AGGREGATE, STATUS_PREFIX,
                   "aggregates", "prefixes"),),
        "waits": (),
        "stores": ("dst",),
        "loads": ("src",),
    },
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: repro/sat/naive_2r2w.py for the convention).  ``cs_tiles`` (strip, panel)
#: pairs of ``cs_tile_elems = cs_panel_rows x cs_C`` elements each; the
#: panel copy is modelled as one whole-tile access (its per-pass row
#: segments are 32-byte aligned, so requests and transactions agree), the
#: output walk stores one ``cs_C``-wide row per panel row.  The look-back
#: executes at least ``cs_tiles - cs_strips`` steps (every non-first panel
#: terminates at its immediate predecessor).
COST_HINTS = {
    "col_scan_kernel": {
        "ctx.atomic_add(counter, 0, 1)": {
            "count": lambda g: g.cs_atomics},
        "ctx.gload(src, gidx)": {
            "count": lambda g: g.cs_tiles, "width": lambda g: g.cs_tile_elems,
            "pattern": "coalesced"},
        "publish(ctx, [(aggregates, vec_idx, col_sums)], status, sidx, "
        "STATUS_AGGREGATE)": {
            "count": lambda g: g.cs_tiles, "width": lambda g: g.cs_C,
            "pattern": "coalesced"},
        "lookback_walk(ctx, steps=range(panel - 1, -1, -1), "
        "status_buf=status, status_index=lambda p: "
        "layout.status_index(strip, p), local_threshold=STATUS_AGGREGATE, "
        "global_threshold=STATUS_PREFIX, read_local=_vec(aggregates), "
        "read_global=_vec(prefixes), zero=np.zeros(C))": {
            "steps_lo": lambda g: g.cs_walk_lo,
            "steps_hi": lambda g: g.cs_walk_hi,
            "width": lambda g: g.cs_C, "pattern": "coalesced"},
        "publish(ctx, [(prefixes, vec_idx, exclusive + col_sums)], status, "
        "sidx, STATUS_PREFIX)": {
            "count": lambda g: g.cs_tiles, "width": lambda g: g.cs_C,
            "pattern": "coalesced"},
        "ctx.gstore(dst, gidx, running)": {
            "count": lambda g: g.cs_tiles * g.cs_panel_rows,
            "width": lambda g: g.cs_C, "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  A column element passes through one
#: panel's strip accumulation (<= panel_rows serial adds), the look-back
#: chain over earlier panels (one add per walked panel), the single
#: exclusive+aggregate carry add, and the in-panel running replay.
ERR_HINTS = {
    "col_scan_kernel": {
        "col_sums += values.reshape(nrows, C).sum(axis=0)": {
            "depth": lambda g: g.cs_panel_rows},
        "lookback_walk(ctx, steps=range(panel - 1, -1, -1), "
        "status_buf=status, status_index=lambda p: "
        "layout.status_index(strip, p), local_threshold=STATUS_AGGREGATE, "
        "global_threshold=STATUS_PREFIX, read_local=_vec(aggregates), "
        "read_global=_vec(prefixes), zero=np.zeros(C))": {
            "depth": lambda g: g.cs_panels},
        "publish(ctx, [(prefixes, vec_idx, exclusive + col_sums)], "
        "status, sidx, STATUS_PREFIX)": {"depth": 1},
        "running = running + ctx.sload('panel', soff)": {
            "depth": lambda g: g.cs_panel_rows},
    },
}
