"""The diagonal shared-memory arrangement (paper Section II, Figure 3).

A ``W x W`` tile stored row-major in shared memory puts element ``(i, j)`` at
word offset ``i*W + j``; all elements of column ``j`` then live in bank
``j mod 32`` and a column access by a warp is fully serialized.  The diagonal
arrangement instead places ``(i, j)`` at offset ``i*W + (i + j) mod W``.  For
``W`` a multiple of the warp size this makes *both* row-wise and column-wise
warp accesses conflict-free, which the paper's shared-memory SAT steps rely
on.  (:func:`repro.gpusim.shared.bank_conflict_cycles` measures it.)
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.device import WARP_SIZE


def check_tile_width(W: int, warp_size: int = WARP_SIZE) -> None:
    """Validate a tile width for the diagonal arrangement.

    The paper uses ``W`` equal to the warp size or a small multiple of it; the
    conflict-freedom argument needs ``W`` to be a positive multiple of the
    warp size.  Tests also use small powers of two with a reduced warp size.
    """
    if W <= 0:
        raise ConfigurationError(f"tile width must be positive, got {W}")
    if W % warp_size:
        raise ConfigurationError(
            f"tile width {W} is not a multiple of the warp size {warp_size}; "
            "the diagonal arrangement would not be conflict-free")


def diag_offset(i, j, W: int):
    """Word offset of tile element ``(i, j)`` under the diagonal arrangement.

    Accepts scalars or broadcastable arrays.  ``offset = i*W + (i + j) mod W``.
    """
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    return i * W + (i + j) % W


def diag_inverse(offset, W: int):
    """Map a word offset back to tile coordinates ``(i, j)``."""
    offset = np.asarray(offset, dtype=np.int64)
    i = offset // W
    j = (offset % W - i) % W
    return i, j


def row_offsets(i: int, W: int) -> np.ndarray:
    """Offsets of the whole tile row ``i`` in element order ``j = 0..W-1``."""
    return diag_offset(i, np.arange(W), W)


def col_offsets(j: int, W: int) -> np.ndarray:
    """Offsets of the whole tile column ``j`` in element order ``i = 0..W-1``."""
    return diag_offset(np.arange(W), j, W)


def rowmajor_offset(i, j, W: int):
    """Word offset under the naive row-major arrangement (for ablation)."""
    i = np.asarray(i, dtype=np.int64)
    j = np.asarray(j, dtype=np.int64)
    return i * W + j


def full_tile_offsets(W: int, layout: str = "diagonal") -> np.ndarray:
    """Offsets of all ``W*W`` elements in row-major element order ``(i, j)``.

    ``layout`` is ``"diagonal"`` or ``"rowmajor"``; the result is shaped
    ``(W, W)`` with entry ``[i, j]`` giving element ``(i, j)``'s word offset.
    """
    ii, jj = np.meshgrid(np.arange(W), np.arange(W), indexing="ij")
    if layout == "diagonal":
        return diag_offset(ii, jj, W)
    if layout == "rowmajor":
        return rowmajor_offset(ii, jj, W)
    raise ConfigurationError(f"unknown shared-memory layout '{layout}'")
