"""Decoupled look-back: the publish/walk protocol shared by the paper's
1R1W-SKSS-LB algorithm and the Merrill–Garland single-pass scan.

A producer *publishes* a value by writing the data, issuing a
``__threadfence()``, and only then raising a per-partition status flag
(:func:`publish`).  A consumer needing an aggregate *walks back* over
predecessors (:func:`lookback_walk`): for each one it spins until the status
reaches the "local value available" threshold; if the status already reached
the "global value available" threshold it reads the global value and stops,
otherwise it accumulates the local value and keeps walking.  Summing the
collected values yields the consumer's global aggregate without waiting for
its immediate predecessor to finish its own look-back — the key to the high
parallelism of the paper's algorithm (Figures 10 and 11).

The walker is generic over the direction (left along a tile row, up along a
tile column, up-left along the diagonal, back along 1-D scan partitions) via
an iterable of steps and value-reader callables.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.errors import ProtocolError
from repro.gpusim.block import BlockContext
from repro.gpusim.memory import GlobalBuffer


def publish(ctx: BlockContext, stores: Sequence[tuple[GlobalBuffer, np.ndarray, np.ndarray]],
            status_buf: GlobalBuffer, status_index: int, status_value: int) -> None:
    """Write data, fence, then raise the status flag.

    The fence commits the data stores before the flag can become visible;
    omitting it is the classic look-back bug, which the simulator's relaxed
    consistency mode turns into an observable wrong result (see
    ``tests/gpusim/test_hazards.py``).

    Statuses must be *strictly monotone*: a walker that already observed value
    ``v`` is allowed to act on it, so re-publishing ``v`` (or lower) could
    retract a decision another block has taken.  The fence issued just before
    the flag store has committed this block's own earlier flag stores, so the
    committed byte is exactly the protocol state every poller may have seen.
    """
    for buf, idx, values in stores:
        ctx.gstore(buf, idx, values)
    ctx.threadfence()
    committed = status_buf.flat_view()[status_index]
    if not status_value > committed:
        raise ProtocolError(
            f"publish to '{status_buf.name}'[{status_index}] with status "
            f"{status_value} does not strictly increase the committed flag "
            f"{int(committed)} (statuses must be strictly monotone; block "
            f"{ctx.block_id})")
    ctx.gstore_scalar(status_buf, status_index, status_value)


def lookback_walk(ctx: BlockContext, *, steps: Sequence,
                  status_buf: GlobalBuffer,
                  status_index: Callable[[object], int],
                  local_threshold: int,
                  global_threshold: int,
                  read_local: Callable[[object], np.ndarray],
                  read_global: Callable[[object], np.ndarray],
                  zero) -> Iterator:
    """Generic decoupled look-back accumulation (use with ``yield from``).

    Parameters
    ----------
    steps:
        Predecessors in walk order (nearest first).  For tile ``T(I, J)``'s
        row walk this is ``J-1, J-2, ..., 0``.
    status_index:
        Maps a step to the flat index of its status byte.
    local_threshold / global_threshold:
        Status values meaning "local aggregate readable" / "global aggregate
        readable".  Statuses are monotone non-decreasing, so a poll may
        observe any value >= the one awaited.
    read_local / read_global:
        Callables performing the accounted global loads for a step.
    zero:
        Additive identity of the accumulated quantity (vector or scalar).

    Returns (via ``yield from``) the accumulated *global* aggregate over all
    predecessors: if the walk exhausts ``steps`` without meeting a global
    status, the sum of the locals over every predecessor is itself the global
    aggregate (the walk reached the boundary).
    """
    acc = zero
    for step in steps:
        status = yield from ctx.wait_until(status_buf, status_index(step),
                                           lambda v: v >= local_threshold)
        if status >= global_threshold:
            return acc + read_global(step)
        acc = acc + read_local(step)
    return acc
