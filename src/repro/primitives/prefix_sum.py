"""Host-side prefix-sum references and partition helpers.

These are the golden models the simulated kernels are tested against, plus the
partitioning arithmetic shared by the 1-D decoupled look-back scan
(:mod:`repro.primitives.scan1d`) and the column-wise scan
(:mod:`repro.primitives.colscan`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def inclusive_scan(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Inclusive prefix sums (``out[i] = v[0] + ... + v[i]``)."""
    values = np.asarray(values)
    if axis is None:
        if values.ndim != 1:
            raise ConfigurationError("axis is required for multi-dimensional input")
        axis = 0
    return np.cumsum(values, axis=axis)


def exclusive_scan(values: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Exclusive prefix sums (``out[0] = 0``, ``out[i] = v[0] + ... + v[i-1]``)."""
    values = np.asarray(values)
    if axis is None:
        if values.ndim != 1:
            raise ConfigurationError("axis is required for multi-dimensional input")
        axis = 0
    inc = np.cumsum(values, axis=axis)
    out = np.empty_like(inc)
    lead = [slice(None)] * values.ndim
    rest = [slice(None)] * values.ndim
    lead[axis] = slice(0, 1)
    rest[axis] = slice(0, -1)
    shifted = [slice(None)] * values.ndim
    shifted[axis] = slice(1, None)
    out[tuple(lead)] = 0
    out[tuple(shifted)] = inc[tuple(rest)]
    return out


def sequential_inclusive_scan(values: np.ndarray) -> np.ndarray:
    """Literal ``p[i] <- p[i-1] + p[i]`` loop from the paper's Section I.

    Kept as an independent oracle for :func:`inclusive_scan` (and to make the
    paper's sequential baseline runnable); intentionally unvectorised.
    """
    out = np.array(values, copy=True)
    for i in range(1, out.shape[0]):
        out[i] = out[i - 1] + out[i]
    return out


def num_partitions(n: int, partition_size: int) -> int:
    """Number of fixed-size partitions covering ``n`` elements (last may be short)."""
    if partition_size <= 0:
        raise ConfigurationError("partition size must be positive")
    return (n + partition_size - 1) // partition_size


def partition_bounds(p: int, partition_size: int, n: int) -> tuple[int, int]:
    """Half-open element range ``[lo, hi)`` of partition ``p``."""
    lo = p * partition_size
    hi = min(n, lo + partition_size)
    if lo >= n:
        raise ConfigurationError(
            f"partition {p} is out of range for n={n}, size={partition_size}")
    return lo, hi
