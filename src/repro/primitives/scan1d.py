"""Single-pass row-wise prefix sums with decoupled look-back.

This is the Merrill–Garland scan [10, 11] applied to every row of an
``n x n`` matrix in one kernel launch, as required by the 2R2W-optimal SAT
algorithm: blocks acquire (row, partition) pairs through an atomic counter in
partition-major order, scan their partition locally, publish the partition
aggregate (status ``A = 1``), look back over earlier partitions of the same
row to obtain their exclusive prefix, publish the inclusive prefix (status
``P = 2``), and write the final values.

Status protocol (per partition): ``0`` = invalid, ``1`` = aggregate
available, ``2`` = inclusive prefix available — a direct specialisation of
:mod:`repro.primitives.lookback`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.block import BlockContext
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.blockscan import block_inclusive_scan
from repro.primitives.lookback import lookback_walk, publish
from repro.primitives.prefix_sum import num_partitions

#: Status values of the Merrill–Garland protocol.
STATUS_INVALID = 0
STATUS_AGGREGATE = 1
STATUS_PREFIX = 2


@dataclass(frozen=True)
class RowScanLayout:
    """Geometry of the row-wise scan: ``rows`` rows of ``n`` elements split
    into partitions of ``partition_size`` elements each."""

    rows: int
    n: int
    partition_size: int

    @property
    def parts_per_row(self) -> int:
        return num_partitions(self.n, self.partition_size)

    @property
    def total_parts(self) -> int:
        return self.rows * self.parts_per_row

    def serial_to_tile(self, serial: int) -> tuple[int, int]:
        """Partition-major order: all partition-0 tiles first, then partition 1, ...

        Look-back predecessors (same row, smaller partition) always have
        smaller serials, so in-order block dispatch cannot deadlock.
        """
        part, row = divmod(serial, self.rows)
        return row, part

    def status_index(self, row: int, part: int) -> int:
        return row * self.parts_per_row + part


def row_scan_kernel(ctx: BlockContext, src: GlobalBuffer, dst: GlobalBuffer,
                    counter: GlobalBuffer, status: GlobalBuffer,
                    aggregates: GlobalBuffer, prefixes: GlobalBuffer,
                    layout: RowScanLayout):
    """One CUDA block of the single-pass row scan (generator kernel).

    ``aggregates``/``prefixes`` are per-partition scalars; ``src`` and ``dst``
    are the ``rows x n`` matrices (``dst`` may alias ``src``'s role in the SAT
    pipeline but is a distinct buffer here).
    """
    while True:
        serial = ctx.atomic_add(counter, 0, 1)
        if serial >= layout.total_parts:
            return
        row, part = layout.serial_to_tile(serial)
        lo = part * layout.partition_size
        hi = min(layout.n, lo + layout.partition_size)
        width = hi - lo

        lane_vals = np.zeros(ctx.nthreads)
        idx = row * layout.n + lo + np.arange(width)
        lane_vals[:width] = ctx.gload(src, idx)
        scanned = block_inclusive_scan(ctx, lane_vals)
        yield ctx.syncthreads()

        aggregate = scanned[ctx.nthreads - 1] if width else 0.0
        sidx = layout.status_index(row, part)
        publish(ctx, [(aggregates, np.asarray([sidx]), np.asarray([aggregate]))],
                status, sidx, STATUS_AGGREGATE)

        exclusive = yield from lookback_walk(
            ctx,
            steps=range(part - 1, -1, -1),
            status_buf=status,
            status_index=lambda p: layout.status_index(row, p),
            local_threshold=STATUS_AGGREGATE,
            global_threshold=STATUS_PREFIX,
            read_local=lambda p: ctx.gload_scalar(aggregates,
                                                  layout.status_index(row, p)),
            read_global=lambda p: ctx.gload_scalar(prefixes,
                                                   layout.status_index(row, p)),
            zero=0.0)

        publish(ctx, [(prefixes, np.asarray([sidx]),
                       np.asarray([exclusive + aggregate]))],
                status, sidx, STATUS_PREFIX)

        ctx.gstore(dst, idx, scanned[:width] + exclusive)
        yield ctx.syncthreads()


def run_row_scan(gpu: GPU, src: GlobalBuffer, dst: GlobalBuffer, *,
                 rows: int, n: int, partition_size: int | None = None,
                 threads_per_block: int = 1024,
                 grid_blocks: int | None = None, name: str = "mg_row_scan"):
    """Launch the single-pass row scan over ``rows x n`` matrices.

    ``partition_size`` defaults to one element per thread.  Returns the
    :class:`~repro.gpusim.counters.KernelStats` of the launch; scratch buffers
    are allocated under unique names and freed afterwards.
    """
    partition_size = partition_size or threads_per_block
    layout = RowScanLayout(rows=rows, n=n, partition_size=partition_size)
    tag = f"_{name}_{id(src):x}"
    # Counter and statuses are memset; aggregates/prefixes are published
    # (written, fenced, flagged) before any consumer may read them.
    counter = gpu.alloc(tag + "_counter", (1,), np.int64, fill=0,
                        kind="counter")
    status = gpu.alloc(tag + "_status", (layout.total_parts,), np.int64,
                       fill=0, kind="status",
                       status_values=(STATUS_INVALID, STATUS_AGGREGATE,
                                      STATUS_PREFIX))
    aggregates = gpu.alloc(tag + "_agg", (layout.total_parts,), np.float64)
    prefixes = gpu.alloc(tag + "_pref", (layout.total_parts,), np.float64)
    try:
        stats = gpu.launch(
            row_scan_kernel,
            grid_blocks=grid_blocks or layout.total_parts,
            threads_per_block=threads_per_block,
            args=(src, dst, counter, status, aggregates, prefixes, layout),
            name=name)
    finally:
        for suffix in ("_counter", "_status", "_agg", "_pref"):
            gpu.free(tag + suffix)
    return stats


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: synchronization structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "row_scan_kernel": {
        "ticket": True,
        "publishes": (("aggregates", "status", STATUS_AGGREGATE),
                      ("prefixes", "status", STATUS_PREFIX)),
        "walks": (("status", STATUS_AGGREGATE, STATUS_PREFIX,
                   "aggregates", "prefixes"),),
        "waits": (),
        "stores": ("dst",),
        "loads": ("src",),
    },
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: repro/sat/naive_2r2w.py for the convention).  ``rs_parts`` partitions of
#: ``rs_P`` contiguous elements each; aggregates/prefixes are per-partition
#: scalars.  The walk executes at least ``rs_parts - rs_rows`` steps (one
#: per non-first partition) and its payload reads are scalar.
COST_HINTS = {
    "row_scan_kernel": {
        "ctx.atomic_add(counter, 0, 1)": {
            "count": lambda g: g.rs_atomics},
        "ctx.gload(src, idx)": {
            "count": lambda g: g.rs_parts, "width": lambda g: g.rs_P,
            "pattern": "coalesced"},
        "publish(ctx, [(aggregates, np.asarray([sidx]), "
        "np.asarray([aggregate]))], status, sidx, STATUS_AGGREGATE)": {
            "count": lambda g: g.rs_parts},
        "lookback_walk(ctx, steps=range(part - 1, -1, -1), "
        "status_buf=status, status_index=lambda p: "
        "layout.status_index(row, p), local_threshold=STATUS_AGGREGATE, "
        "global_threshold=STATUS_PREFIX, read_local=lambda p: "
        "ctx.gload_scalar(aggregates, layout.status_index(row, p)), "
        "read_global=lambda p: ctx.gload_scalar(prefixes, "
        "layout.status_index(row, p)), zero=0.0)": {
            "steps_lo": lambda g: g.rs_walk_lo,
            "steps_hi": lambda g: g.rs_walk_hi,
            "width": 1, "pattern": "scalar"},
        "publish(ctx, [(prefixes, np.asarray([sidx]), np.asarray([exclusive "
        "+ aggregate]))], status, sidx, STATUS_PREFIX)": {
            "count": lambda g: g.rs_parts},
        "ctx.gstore(dst, idx, scanned[:width] + exclusive)": {
            "count": lambda g: g.rs_parts, "width": lambda g: g.rs_P,
            "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  The block scan is bounded by the
#: partition size (its actual warp-tree depth is ~2 log W + P/W, but P is
#: the sound static bound); the look-back walks one add per earlier
#: partition in the row; the two carry applications are one add each.
ERR_HINTS = {
    "row_scan_kernel": {
        "block_inclusive_scan(ctx, lane_vals)": {"depth": lambda g: g.rs_P},
        "lookback_walk(ctx, steps=range(part - 1, -1, -1), "
        "status_buf=status, status_index=lambda p: "
        "layout.status_index(row, p), local_threshold=STATUS_AGGREGATE, "
        "global_threshold=STATUS_PREFIX, read_local=lambda p: "
        "ctx.gload_scalar(aggregates, layout.status_index(row, p)), "
        "read_global=lambda p: ctx.gload_scalar(prefixes, "
        "layout.status_index(row, p)), zero=0.0)": {
            "depth": lambda g: g.rs_parts_per_row},
        "publish(ctx, [(prefixes, np.asarray([sidx]), "
        "np.asarray([exclusive + aggregate]))], status, sidx, "
        "STATUS_PREFIX)": {"depth": 1},
        "ctx.gstore(dst, idx, scanned[:width] + exclusive)": {"depth": 1},
    },
}
