"""Kernel-side shared-memory tile operations (paper Section II).

These helpers implement, against a :class:`~repro.gpusim.block.BlockContext`,
the building blocks every tile-based SAT algorithm uses:

* copying a ``W x W`` tile between global memory and shared memory in the
  diagonal arrangement, in row-panels of ``nthreads`` elements (the paper's
  ``W²/m``-thread copy with ``m`` elements per thread);
* the shared-memory SAT steps — row-wise then column-wise prefix sums, each
  performed by ``W`` threads scanning sequentially (conflict-free thanks to
  the diagonal arrangement);
* tile row/column sums, including the fused copy+column-sum of the
  "shared memory column-wise/row-wise sum algorithm";
* boundary updates (add a vector to the leftmost column / topmost row, add a
  scalar to the corner) used when assembling ``GSAT`` tiles.

All helpers are plain functions (no yields); callers insert
``yield ctx.syncthreads()`` between phases exactly where the paper requires
barriers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.diagonal import full_tile_offsets


def tile_words(W: int) -> int:
    """Shared-memory words needed for one ``W x W`` tile."""
    return W * W


def global_flat_indices(n: int, W: int, I: int, J: int) -> np.ndarray:
    """Row-major flat indices of tile ``T(I, J)`` in an ``n x n`` buffer,
    shaped ``(W, W)`` in tile coordinates."""
    rows = (W * I + np.arange(W))[:, None]
    cols = (W * J + np.arange(W))[None, :]
    return rows * n + cols


def alloc_tile(ctx: BlockContext, name: str, W: int, dtype=np.float64) -> None:
    """Allocate shared storage for one tile."""
    ctx.salloc(name, tile_words(W), dtype)


def load_tile(ctx: BlockContext, a: GlobalBuffer, n: int, W: int, I: int,
              J: int, name: str, layout: str = "diagonal") -> None:
    """Copy tile ``T(I, J)`` from global memory into shared memory.

    The copy proceeds in chunks of ``nthreads`` consecutive elements (whole
    row-panels), so global reads are fully coalesced; shared stores use the
    requested layout.
    """
    offs = full_tile_offsets(W, layout).ravel()
    gidx = global_flat_indices(n, W, I, J).ravel()
    chunk = min(ctx.nthreads, W * W)
    for lo in range(0, W * W, chunk):
        sel = slice(lo, lo + chunk)
        ctx.sstore(name, offs[sel], ctx.gload(a, gidx[sel]))


def store_tile(ctx: BlockContext, b: GlobalBuffer, n: int, W: int, I: int,
               J: int, name: str, layout: str = "diagonal") -> None:
    """Copy a tile from shared memory back to global memory (coalesced writes)."""
    offs = full_tile_offsets(W, layout).ravel()
    gidx = global_flat_indices(n, W, I, J).ravel()
    chunk = min(ctx.nthreads, W * W)
    for lo in range(0, W * W, chunk):
        sel = slice(lo, lo + chunk)
        ctx.gstore(b, gidx[sel], ctx.sload(name, offs[sel]))


def load_tile_with_col_sums(ctx: BlockContext, a: GlobalBuffer, n: int, W: int,
                            I: int, J: int, name: str,
                            layout: str = "diagonal") -> np.ndarray:
    """Copy a tile in while computing its column sums (fused Step 1).

    Implements the "shared memory column-wise/row-wise sum algorithm": each
    group of ``W`` threads accumulates the column sums of its row-panel during
    the copy; the per-panel partials are then reduced.  Returns ``LCS(I, J)``
    as a length-``W`` vector in registers.
    """
    offs = full_tile_offsets(W, layout).ravel()
    gidx = global_flat_indices(n, W, I, J).ravel()
    chunk = min(ctx.nthreads, W * W)
    if chunk % W:
        raise ConfigurationError(
            f"block of {ctx.nthreads} threads cannot copy whole {W}-wide rows")
    col_sums = np.zeros(W)
    for lo in range(0, W * W, chunk):
        sel = slice(lo, lo + chunk)
        values = ctx.gload(a, gidx[sel])
        ctx.sstore(name, offs[sel], values)
        # Each W-thread group folds its rows into per-column partials; one
        # register add per element.
        panel = values.reshape(-1, W)
        col_sums += panel.sum(axis=0)
        ctx.charge(panel.shape[0] * ctx.costs.compute_step)
    return col_sums


def read_row(ctx: BlockContext, name: str, W: int, i: int,
             layout: str = "diagonal") -> np.ndarray:
    """Read tile row ``i`` (a warp-wide access; conflict-free when diagonal)."""
    offs = full_tile_offsets(W, layout)[i, :]
    return ctx.sload(name, offs)


def read_col(ctx: BlockContext, name: str, W: int, j: int,
             layout: str = "diagonal") -> np.ndarray:
    """Read tile column ``j``."""
    offs = full_tile_offsets(W, layout)[:, j]
    return ctx.sload(name, offs)


def write_row(ctx: BlockContext, name: str, W: int, i: int, values,
              layout: str = "diagonal") -> None:
    offs = full_tile_offsets(W, layout)[i, :]
    ctx.sstore(name, offs, values)


def write_col(ctx: BlockContext, name: str, W: int, j: int, values,
              layout: str = "diagonal") -> None:
    offs = full_tile_offsets(W, layout)[:, j]
    ctx.sstore(name, offs, values)


def add_to_col(ctx: BlockContext, name: str, W: int, j: int, values,
               layout: str = "diagonal") -> None:
    """Add a length-``W`` vector to tile column ``j`` in shared memory."""
    write_col(ctx, name, W, j, read_col(ctx, name, W, j, layout) + values, layout)


def add_to_row(ctx: BlockContext, name: str, W: int, i: int, values,
               layout: str = "diagonal") -> None:
    """Add a length-``W`` vector to tile row ``i`` in shared memory."""
    write_row(ctx, name, W, i, read_row(ctx, name, W, i, layout) + values, layout)


def add_to_element(ctx: BlockContext, name: str, W: int, i: int, j: int,
                   value, layout: str = "diagonal") -> None:
    """Add a scalar to one tile element (corner update)."""
    offs = full_tile_offsets(W, layout)[i:i + 1, j]
    ctx.sstore(name, offs, ctx.sload(name, offs) + value)


def tile_row_prefix_sums(ctx: BlockContext, name: str, W: int,
                         layout: str = "diagonal") -> None:
    """Row-wise prefix sums in shared memory (Step 2 of the shared-memory SAT).

    ``W`` threads, thread ``i`` scanning row ``i`` sequentially; at step ``j``
    all threads touch column ``j`` — conflict-free in the diagonal layout,
    fully serialized in the row-major layout (the ablation measures this).
    """
    offs = full_tile_offsets(W, layout)
    for j in range(1, W):
        prev = ctx.sload(name, offs[:, j - 1])
        cur = ctx.sload(name, offs[:, j])
        ctx.sstore(name, offs[:, j], prev + cur)


def tile_col_prefix_sums(ctx: BlockContext, name: str, W: int,
                         layout: str = "diagonal") -> None:
    """Column-wise prefix sums in shared memory (Step 3 of the shared-memory SAT)."""
    offs = full_tile_offsets(W, layout)
    for i in range(1, W):
        prev = ctx.sload(name, offs[i - 1, :])
        cur = ctx.sload(name, offs[i, :])
        ctx.sstore(name, offs[i, :], prev + cur)


def tile_row_sums(ctx: BlockContext, name: str, W: int,
                  layout: str = "diagonal") -> np.ndarray:
    """``LRS``: tile row sums computed by ``W`` threads scanning sequentially."""
    offs = full_tile_offsets(W, layout)
    sums = np.zeros(W)
    for j in range(W):
        sums += ctx.sload(name, offs[:, j])
    return sums


def tile_col_sums(ctx: BlockContext, name: str, W: int,
                  layout: str = "diagonal") -> np.ndarray:
    """``LCS``: tile column sums computed by ``W`` threads scanning sequentially."""
    offs = full_tile_offsets(W, layout)
    sums = np.zeros(W)
    for i in range(W):
        sums += ctx.sload(name, offs[i, :])
    return sums
