"""Tile region-sum algebra (paper Table II and Figure 5).

A ``rows x cols`` matrix is partitioned into ``⌈rows/W⌉ x ⌈cols/W⌉`` tiles
``T(I, J)`` of ``W x W`` elements, ``T(I, J)`` holding ``a[W*I + i][W*J + j]``
for ``0 <= i, j < W``.  The paper assumes ``rows == cols == n`` with ``n`` a
multiple of ``W``; :class:`TileGrid` generalizes this to arbitrary rectangles
via the *virtual zero-padding convention*: a ragged edge tile is treated as a
full ``W x W`` tile whose out-of-matrix elements are zero.  Padding the
bottom/right with zeros changes no SAT value inside the valid region, so the
execution layers physically pad to ``(padded_rows, padded_cols)``, run the
unchanged tile algebra, and crop the output.

The paper's algorithms communicate through sums of regions anchored at tiles;
this module defines every one of them as a directly testable NumPy function,
used both as test oracles and as the host-path implementation of the
algorithms' dataflow.

Region glossary (all for tile ``T(I, J)``; vectors are length ``W``):

========= ==================================================================
``LRS``   local row sums — ``LRS[i]`` = sum of tile row ``i``
``LCS``   local column sums — ``LCS[j]`` = sum of tile column ``j``
``LS``    local sum — total of the tile (scalar)
``GRS``   global row sums — ``GRS[i]`` = sum of matrix row ``W*I+i`` over
          columns ``0 .. W*(J+1)-1`` (the tile row-strip up to and including
          tile column ``J``)
``GCS``   global column sums — ``GCS[j]`` = sum of matrix column ``W*J+j``
          over rows ``0 .. W*(I+1)-1``
``GS``    global sum — ``S[0 : W*(I+1)-1][0 : W*(J+1)-1]`` (scalar)
``GLS``   global L-shaped (gnomon) sum — ``GS(I, J) - GS(I-1, J-1)``
``GCP``   global column prefixes — bottom row of ``GSAT(I, J)``:
          ``GCP[j] = S[0 : W*(I+1)-1][0 : W*J+j]``
``GSAT``  the ``W x W`` block of the full SAT covering the tile
========= ==================================================================

Out-of-range tile indices (``I < 0`` or ``J < 0``) denote empty regions and
yield zeros, matching the boundary conventions of the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True, init=False)
class TileGrid:
    """Geometry of the tile decomposition of a ``rows x cols`` matrix.

    Construct with ``TileGrid(rows=..., cols=..., W=...)`` for rectangles or
    the legacy square form ``TileGrid(n=..., W=...)``.  Ragged shapes (sides
    not multiples of ``W``) are allowed: the grid covers the matrix with full
    ``W x W`` tiles under the zero-padding convention, and
    :meth:`tile_height` / :meth:`tile_width_at` report each tile's *valid*
    (in-matrix) extent.
    """

    rows: int
    cols: int
    W: int

    def __init__(self, rows: int | None = None, cols: int | None = None,
                 W: int | None = None, *, n: int | None = None) -> None:
        if n is not None:
            if rows is not None or cols is not None:
                raise ConfigurationError(
                    "pass either n= (square) or rows=/cols=, not both")
            rows = cols = n
        if rows is None or W is None:
            raise ConfigurationError("TileGrid needs rows (or n=) and W")
        if cols is None:
            cols = rows
        object.__setattr__(self, "rows", int(rows))
        object.__setattr__(self, "cols", int(cols))
        object.__setattr__(self, "W", int(W))
        if self.rows <= 0 or self.cols <= 0 or self.W <= 0:
            raise ConfigurationError("matrix and tile sizes must be positive")

    # -- geometry ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Side length of a square grid (legacy accessor)."""
        if self.rows != self.cols:
            raise ConfigurationError(
                f"grid is {self.rows}x{self.cols}; use rows/cols")
        return self.rows

    @property
    def tile_rows(self) -> int:
        """Number of tile rows (``⌈rows/W⌉``)."""
        return -(-self.rows // self.W)

    @property
    def tile_cols(self) -> int:
        """Number of tile columns (``⌈cols/W⌉``)."""
        return -(-self.cols // self.W)

    @property
    def padded_rows(self) -> int:
        """Row count after zero-padding to a whole number of tiles."""
        return self.tile_rows * self.W

    @property
    def padded_cols(self) -> int:
        return self.tile_cols * self.W

    @property
    def aligned(self) -> bool:
        """Whether both sides are already multiples of ``W`` (no padding)."""
        return self.rows == self.padded_rows and self.cols == self.padded_cols

    @property
    def tiles_per_side(self) -> int:
        """Tiles per side of a *square* grid (legacy accessor)."""
        if self.tile_rows != self.tile_cols:
            raise ConfigurationError(
                f"grid is {self.tile_rows}x{self.tile_cols} tiles; "
                "use tile_rows/tile_cols")
        return self.tile_rows

    @property
    def num_tiles(self) -> int:
        return self.tile_rows * self.tile_cols

    @property
    def num_diagonals(self) -> int:
        """Number of anti-diagonals of tiles (``tile_rows + tile_cols - 1``)."""
        return self.tile_rows + self.tile_cols - 1

    def tile_height(self, I: int) -> int:
        """Valid (in-matrix) height of the tiles in tile row ``I``."""
        self.check_tile(I, 0)
        return min(self.W, self.rows - self.W * I)

    def tile_width_at(self, J: int) -> int:
        """Valid (in-matrix) width of the tiles in tile column ``J``."""
        self.check_tile(0, J)
        return min(self.W, self.cols - self.W * J)

    def tile_slice(self, I: int, J: int) -> tuple[slice, slice]:
        """Array slices selecting tile ``T(I, J)`` from the (padded) matrix."""
        self.check_tile(I, J)
        return (slice(self.W * I, self.W * (I + 1)),
                slice(self.W * J, self.W * (J + 1)))

    def check_tile(self, I: int, J: int) -> None:
        if not (0 <= I < self.tile_rows and 0 <= J < self.tile_cols):
            raise ConfigurationError(
                f"tile ({I}, {J}) out of range for a "
                f"{self.tile_rows}x{self.tile_cols} tile grid")

    def tiles_on_diagonal(self, K: int) -> list[tuple[int, int]]:
        """Tiles ``T(I, J)`` with ``I + J == K`` (the wavefront of kernel K in 1R1W)."""
        tr, tc = self.tile_rows, self.tile_cols
        if not (0 <= K < self.num_diagonals):
            raise ConfigurationError(f"diagonal {K} out of range")
        return [(I, K - I)
                for I in range(max(0, K - tc + 1), min(tr - 1, K) + 1)]

    def all_tiles(self) -> list[tuple[int, int]]:
        return [(I, J) for I in range(self.tile_rows)
                for J in range(self.tile_cols)]


def tile_view(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """View of tile ``T(I, J)`` in the matrix (no copy)."""
    return a[grid.tile_slice(I, J)]


# -- Table II region sums (oracles / host dataflow) ---------------------------


def local_row_sums(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``LRS(I, J)``: length-``W`` vector of tile-row sums."""
    return tile_view(a, grid, I, J).sum(axis=1)


def local_col_sums(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``LCS(I, J)``: length-``W`` vector of tile-column sums."""
    return tile_view(a, grid, I, J).sum(axis=0)


def local_sum(a: np.ndarray, grid: TileGrid, I: int, J: int):
    """``LS(I, J)``: scalar sum of the tile."""
    return tile_view(a, grid, I, J).sum()


def global_row_sums(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``GRS(I, J)``: row sums over columns ``0 .. W*(J+1)-1`` for the tile's rows.

    ``J < 0`` yields zeros (empty strip), so ``GRS(I, J) = GRS(I, J-1) +
    LRS(I, J)`` holds for every ``J >= 0`` — the pairwise-sum recurrence the
    look-back walks (Figure 10).
    """
    if J < 0:
        return np.zeros(grid.W, dtype=a.dtype)
    grid.check_tile(I, J)
    rows = slice(grid.W * I, grid.W * (I + 1))
    return a[rows, : grid.W * (J + 1)].sum(axis=1)


def global_col_sums(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``GCS(I, J)``: column sums over rows ``0 .. W*(I+1)-1`` for the tile's columns."""
    if I < 0:
        return np.zeros(grid.W, dtype=a.dtype)
    grid.check_tile(I, J)
    cols = slice(grid.W * J, grid.W * (J + 1))
    return a[: grid.W * (I + 1), cols].sum(axis=0)


def global_sum(a: np.ndarray, grid: TileGrid, I: int, J: int):
    """``GS(I, J)``: total of the rectangle of tiles up to and including ``(I, J)``."""
    if I < 0 or J < 0:
        return a.dtype.type(0)
    grid.check_tile(I, J)
    return a[: grid.W * (I + 1), : grid.W * (J + 1)].sum()


def global_l_sum(a: np.ndarray, grid: TileGrid, I: int, J: int):
    """``GLS(I, J)``: gnomon sum, ``GS(I, J) - GS(I-1, J-1)``.

    Equals the sum of the three Step-3.1 vectors of the SKSS-LB algorithm:
    ``sum(GRS(I, J-1)) + sum(GCS(I-1, J)) + sum(LRS(I, J))`` (Figure 11).
    """
    return global_sum(a, grid, I, J) - global_sum(a, grid, I - 1, J - 1)


def global_col_prefixes(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``GCP(I, J)``: bottom row of ``GSAT(I, J)``.

    ``GCP[j] = S[0 : W*(I+1)-1][0 : W*J+j]``.  ``I < 0`` yields zeros.
    """
    if I < 0:
        return np.zeros(grid.W, dtype=a.dtype)
    grid.check_tile(I, J)
    block = a[: grid.W * (I + 1), : grid.W * (J + 1)]
    return block.sum(axis=0).cumsum()[grid.W * J:]


def global_sat_tile(a: np.ndarray, grid: TileGrid, I: int, J: int) -> np.ndarray:
    """``GSAT(I, J)``: the ``W x W`` block of the full SAT covering ``T(I, J)``."""
    grid.check_tile(I, J)
    block = a[: grid.W * (I + 1), : grid.W * (J + 1)]
    sat = block.cumsum(axis=0).cumsum(axis=1)
    return sat[grid.W * I:, grid.W * J:]


def assemble_gsat_tile(tile: np.ndarray, grs_left: np.ndarray,
                       gcs_above: np.ndarray, gs_corner) -> np.ndarray:
    """Compute ``GSAT(I, J)`` from the tile and its three boundary terms.

    This is the shared-memory SAT step of the 1R1W family (Section III.B,
    reused in SKSS-LB Step 4): ``GRS(I, J-1)`` is added to the leftmost
    column, ``GCS(I-1, J)`` to the topmost row, and ``GS(I-1, J-1)`` to the
    top-left element, *before* the row-wise then column-wise prefix sums.
    """
    work = np.array(tile, copy=True)
    work[:, 0] += grs_left
    work[0, :] += gcs_above
    work[0, 0] += gs_corner
    return work.cumsum(axis=1).cumsum(axis=0)


def assemble_gsat_tile_skss(tile: np.ndarray, grs_left: np.ndarray,
                            gcp_above: np.ndarray) -> np.ndarray:
    """``GSAT(I, J)`` the 1R1W-SKSS way (Section III.C).

    ``GRS(I, J-1)`` is added to the leftmost column, the row-wise prefix sums
    are computed, ``GCP(I-1, J)`` (the bottom row of the tile above's GSAT,
    which the same block just produced) is added to the topmost row of the
    *result*, and finally the column-wise prefix sums are computed.
    """
    work = np.array(tile, copy=True)
    work[:, 0] += grs_left
    work = work.cumsum(axis=1)
    work[0, :] += gcp_above
    return work.cumsum(axis=0)
