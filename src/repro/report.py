"""One-shot reproduction report generator (``repro report``).

Assembles everything the reproduction produces — measured Table I, modelled
Table III with the paper comparison, the log-log chart, dependence profiles,
a fuzzing pass, and the precision analysis — into a single Markdown document.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout

import numpy as np

from repro._version import __version__


def generate_report(*, measure_size: int = 128, fuzz_runs: int = 25,
                    seed: int = 0) -> str:
    """Build the full report as a Markdown string.

    ``measure_size`` controls the simulated Table I matrix (kept small: the
    simulator pays ~10³x wall-clock); ``fuzz_runs`` bounds the differential
    fuzzing pass.
    """
    from repro.analysis import (MODEL_ALGORITHMS, TABLE1_ORDER, check,
                                check_counts, fuzz, precision_report,
                                prove_table1, render_profile, render_table1,
                                table1_sym)
    from repro.analysis.waves import PROFILES
    from repro.gpusim import GPU
    from repro.perfmodel import TitanVModel, render_table3
    from repro.perfmodel.charts import table3_chart
    from repro.perfmodel.devices import cross_device_summary
    from repro.perfmodel.table import TABLE3_ORDER
    from repro.sat import get_algorithm

    start = time.perf_counter()
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(f"repro version {__version__}; generated in-process; "
              "see EXPERIMENTS.md for the curated comparison.\n\n")

    # -- Table I (measured) ---------------------------------------------------
    out.write("## Table I (closed forms + measured counts)\n\n```\n")
    out.write(render_table1(measure_size))
    out.write(f"\n\nmeasured on the simulator (n={measure_size}, W=32):\n")
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 100, size=(measure_size, measure_size)).astype(float)
    for name in TABLE3_ORDER:
        res = get_algorithm(name).run(a, GPU(seed=seed))
        out.write(f"  {check_counts(res)}\n")
    out.write("```\n\n")

    # -- Table I — verified -----------------------------------------------------
    out.write("## Table I — verified\n\n")
    out.write("Each row's traffic class is *proven* from the kernel ASTs by "
              "the static cost verifier (`python -m repro costcheck`): the "
              "symbolically derived per-run read/write request polynomials "
              "must have exactly the Table I leading `n²` coefficients, "
              "with every lower-order term inside the declared remainder "
              "class.\n\n")
    out.write("| algorithm | global reads | global writes | verified |\n")
    out.write("|---|---|---|---|\n")
    for name in TABLE1_ORDER:
        proof = prove_table1(name)
        sym = table1_sym(name)
        verdict = "proven" if proof["ok"] else "**FAILED**"
        out.write(f"| {name} | {sym.reads} | {sym.writes} | {verdict} "
                  f"(leads {proof['read_lead']}R / {proof['write_lead']}W) "
                  f"|\n")
    out.write("\n")

    # -- Table III (model vs paper) --------------------------------------------
    model = TitanVModel()
    out.write("## Table III (model vs paper, ms)\n\n```\n")
    out.write(render_table3(model))
    out.write("\n```\n\n```\n")
    out.write(table3_chart(model))
    out.write("\n```\n\n")

    # -- dependence profiles -----------------------------------------------------
    out.write("## Dependence-parallelism profiles (t = 16 tiles per side)\n\n```\n")
    for name in PROFILES:
        out.write(render_profile(PROFILES[name](16)) + "\n\n")
    out.write("```\n\n")

    # -- cross-device projection --------------------------------------------------
    out.write("## Cross-device projection (extension; best-W SKSS-LB at 8K²)\n\n")
    out.write("| device | duplication ms | SKSS-LB ms | overhead |\n")
    out.write("|---|---|---|---|\n")
    for key, row in cross_device_summary(8192).items():
        dup, lb = row["duplication"], row["1R1W-SKSS-LB"]
        out.write(f"| {key} | {dup:.3f} | {lb:.3f} | "
                  f"{100 * (lb - dup) / dup:.1f}% |\n")
    out.write("\n")

    # -- fuzzing ---------------------------------------------------------------
    out.write("## Differential fuzzing\n\n```\n")
    report = fuzz(fuzz_runs, seed=seed)
    out.write(report.summary() + "\n")
    for config, error in report.failures:
        out.write(f"FAIL {error}: {config}\n")
    out.write("```\n\n")

    # -- protocol model checking ----------------------------------------------
    out.write("## Protocol model checking (exhaustive, 2x2 tile grid)\n\n")
    out.write("Every block interleaving of each algorithm's extracted "
              "synchronization protocol, over resident-block pools 1-4 "
              "(deadlock freedom is proved, not sampled; see "
              "`python -m repro modelcheck`):\n\n```\n")
    for name in MODEL_ALGORITHMS:
        res = check(name, 2)
        verdict = "VERIFIED" if res.ok else "VIOLATIONS FOUND"
        out.write(f"{name:<14} {verdict:<16} {res.states:>6} states, "
                  f"{res.transitions:>6} transitions\n")
    out.write("```\n\n")

    # -- precision ---------------------------------------------------------------
    out.write("## float32 precision (paper dtype)\n\n")
    out.write("| n | max rel. error (float32) | with Kahan scans |\n")
    out.write("|---|---|---|\n")
    for row in precision_report((64, 256, 1024), seed=seed):
        out.write(f"| {row.n} | {row.err_float32:.2e} | "
                  f"{row.err_kahan:.2e} |\n")

    # -- proven error bounds ------------------------------------------------------
    from repro.analysis.numcheck import symbolic_depth, validate_bounds
    out.write("\n## Proven rounding-error bounds vs measured "
              "(`python -m repro numcheck`)\n\n")
    out.write("Worst-case depth `D` proven from the kernel ASTs "
              "(`|err| <= gamma_D * SAT(|a|)`), against the worst measured "
              "depth over the adversarial generators at "
              f"n={measure_size} (host leg). The paper's 1R1W-SKSS-LB is "
              "`O(t + W)` deep where plain 1R1W is `O(t*W)`: numerically "
              "superior as well as traffic-optimal.\n\n")
    out.write("| algorithm | proven D(t, W) | dtype | proven depth "
              "| measured | bound holds |\n")
    out.write("|---|---|---|---|---|---|\n")
    rows = validate_bounds(sizes=(measure_size,),
                           dtypes=("float32", "float64"), device=False,
                           seed=seed)
    for row in rows:
        verdict = "yes" if row["ok"] else "**NO**"
        out.write(f"| {row['algorithm']} | "
                  f"`{symbolic_depth(row['algorithm'])}` | {row['dtype']} "
                  f"| {row['proven_depth']} | {row['measured_depth']:.1f} "
                  f"| {verdict} |\n")

    out.write(f"\n*report generated in "
              f"{time.perf_counter() - start:.1f} s*\n")
    return out.getvalue()


def write_report(path: str, **kwargs) -> str:
    """Generate the report and write it to ``path``; returns the path."""
    text = generate_report(**kwargs)
    with open(path, "w") as fh:
        fh.write(text)
    return path
