"""The seven SAT algorithms of the paper plus the reference implementation.

``compute_sat`` is the one-call entry point; the algorithm classes are
exported for callers who want to configure and reuse them.
"""

from repro.sat.base import SATAlgorithm, SATResult
from repro.sat.dtypes import (EXACT, LEGACY_FLOAT64, POLICIES, WIDEN_FLOAT,
                              DTypePolicy, accumulator_dtype, fixed_policy,
                              resolve_policy)
from repro.sat.hybrid_1r1w import Hybrid1R1W, band_limits, band_tiles
from repro.sat.kasagi_1r1w import Kasagi1R1W
from repro.sat.naive_2r2w import Naive2R2W
from repro.sat.nehab_2r1w import Nehab2R1W
from repro.sat.integral import (exclusive_sat, integral_image, rect_sum_ii,
                                tilted_integral)
from repro.sat.outofcore import OutOfCoreSAT, out_of_core_sat
from repro.sat.parallel_host import ParallelSATEngine, parallel_sat
from repro.sat.optimal_2r2w import Optimal2R2W
from repro.sat.reference import (rect_sum, rect_sums, sat_reference,
                                 sat_sequential)
from repro.sat.registry import (ALGORITHMS, compute_sat, get_algorithm,
                                incremental_sat)
from repro.sat.skss import SKSS1R1W
from repro.sat.skss_lb import SKSSLB1R1W, serial_to_tile, tile_serial_number

__all__ = [
    "SATAlgorithm", "SATResult",
    "Naive2R2W", "Optimal2R2W", "Nehab2R1W", "Kasagi1R1W", "Hybrid1R1W",
    "SKSS1R1W", "SKSSLB1R1W",
    "band_limits", "band_tiles",
    "sat_reference", "sat_sequential", "rect_sum", "rect_sums",
    "ALGORITHMS", "compute_sat", "get_algorithm", "incremental_sat",
    "OutOfCoreSAT", "out_of_core_sat",
    "integral_image", "exclusive_sat", "rect_sum_ii", "tilted_integral",
    "ParallelSATEngine", "parallel_sat",
    "tile_serial_number", "serial_to_tile",
    "DTypePolicy", "EXACT", "WIDEN_FLOAT", "LEGACY_FLOAT64", "POLICIES",
    "fixed_policy", "resolve_policy", "accumulator_dtype",
]
