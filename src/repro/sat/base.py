"""Common machinery for the seven SAT algorithms.

Every algorithm is a :class:`SATAlgorithm` subclass with two execution paths:

* :meth:`SATAlgorithm.run` — the real thing: kernels on the functional GPU
  simulator, returning a :class:`SATResult` whose ``report`` carries measured
  kernel calls, thread counts and global traffic (the Table I quantities);
* :meth:`SATAlgorithm.run_host` — a dataflow-equivalent pure-NumPy execution
  of the same tile decomposition (same intermediate quantities, no scheduling),
  used by property tests at sizes the simulator would be slow at and by the
  applications layer.

Construction takes the paper's tuning parameters: ``tile_width`` (W) and
``threads_per_block`` (W²/m for tile-based algorithms).

Both paths accept arbitrary ``rows x cols`` rectangles and a ``dtype_policy``
(:mod:`repro.sat.dtypes`).  Ragged shapes are handled by the zero-padding
convention: the input is physically padded (bottom/right) to whole tiles in
the accumulator dtype, the unchanged tile algebra runs on the padded matrix,
and the output is cropped back — zero padding provably leaves every SAT value
in the valid region unchanged.  When the input already matches the resolved
accumulator dtype, is C-contiguous and needs no padding, it is used without
copying.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.backend.plan import prepare_input
from repro.errors import ConfigurationError
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.tile import TileGrid
from repro.sat.dtypes import resolve_policy


@dataclass
class SATResult:
    """Output of one SAT computation.

    ``report`` is ``None`` for the host path; for simulated runs it holds the
    per-kernel statistics from which Table I rows are measured.  ``n`` is the
    row count (equal to the side length for the paper's square matrices);
    ``shape`` gives the full output shape.
    """

    sat: np.ndarray
    algorithm: str
    n: int
    params: dict[str, Any] = field(default_factory=dict)
    report: LaunchSummary | None = None

    @property
    def shape(self) -> tuple[int, ...]:
        return self.sat.shape

    @property
    def kernel_calls(self) -> int:
        if self.report is None:
            raise ConfigurationError("host-path results carry no launch report")
        return self.report.kernel_calls

    @property
    def max_threads(self) -> int:
        if self.report is None:
            raise ConfigurationError("host-path results carry no launch report")
        return self.report.max_threads

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        rows, cols = self.sat.shape
        size = f"n={rows}" if rows == cols else f"shape={rows}x{cols}"
        if self.report is None:
            return f"{self.algorithm}: {size} (host path)"
        t = self.report.traffic
        return (f"{self.algorithm}: {size}, kernels={self.report.kernel_calls}, "
                f"max_threads={self.report.max_threads}, "
                f"reads={t.global_read_requests}, writes={t.global_write_requests}")


@dataclass
class PreparedInput:
    """A validated input: accumulator dtype, C-contiguous, padded to tiles.

    ``array`` has shape ``(grid.padded_rows, grid.padded_cols)`` for
    tile-based algorithms (``(rows, cols)`` otherwise); ``rows``/``cols`` is
    the original valid shape the output is cropped to.  ``copied`` records
    whether preparation had to materialize a new array (the no-copy fast path
    leaves the caller's array untouched and aliased).
    """

    array: np.ndarray
    grid: TileGrid
    rows: int
    cols: int
    acc_dtype: np.dtype
    copied: bool

    @property
    def padded(self) -> bool:
        return self.array.shape != (self.rows, self.cols)

    def crop(self, sat: np.ndarray) -> np.ndarray:
        """Crop a (possibly padded) SAT back to the valid region."""
        if sat.shape == (self.rows, self.cols):
            return sat
        return np.ascontiguousarray(sat[:self.rows, :self.cols])


class SATAlgorithm(ABC):
    """Base class: validation, buffer management, launch bookkeeping."""

    #: Paper name of the algorithm (e.g. ``"1R1W-SKSS-LB"``); set by subclasses.
    name: str = "?"
    #: Whether the algorithm partitions the matrix into W x W tiles.
    tile_based: bool = True

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None) -> None:
        self.tile_width = tile_width
        self.threads_per_block = threads_per_block

    # -- parameters ------------------------------------------------------------

    def block_threads(self, device_max: int = 1024) -> int:
        """Threads per CUDA block: the paper uses 1024 (``m = W²/1024``),
        capped at one thread per tile element for small tiles."""
        if self.threads_per_block is not None:
            return self.threads_per_block
        if not self.tile_based:
            return min(256, device_max)
        return min(device_max, max(32, self.tile_width * self.tile_width))

    def params(self) -> dict[str, Any]:
        p: dict[str, Any] = {"threads_per_block": self.block_threads()}
        if self.tile_based:
            p["tile_width"] = self.tile_width
        return p

    def _validate(self, a: np.ndarray, dtype_policy=None) -> PreparedInput:
        """Validate ``a`` and prepare it for execution (cast / pad / no-copy).

        The resolved accumulator dtype comes from ``dtype_policy``
        (:func:`repro.sat.dtypes.resolve_policy`).  When the input already
        matches it, is C-contiguous and tile-aligned, no copy is made.
        """
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError(
                f"{self.name} expects a 2-D matrix, got shape {a.shape}")
        rows, cols = a.shape
        acc = resolve_policy(dtype_policy).accumulator(a.dtype)
        grid = TileGrid(rows=rows, cols=cols, W=self.tile_width)
        buf, copied = prepare_input(
            a, acc_dtype=acc, grid=grid if self.tile_based else None)
        return PreparedInput(array=buf, grid=grid, rows=rows, cols=cols,
                             acc_dtype=acc, copied=copied)

    def grid(self, n: int) -> TileGrid:
        return TileGrid(n=n, W=self.tile_width)

    # -- the two execution paths -------------------------------------------------

    def run(self, a: np.ndarray, gpu: GPU | None = None, *,
            dtype_policy=None) -> SATResult:
        """Compute the SAT on the simulator; ``gpu`` may carry a custom device,
        scheduling policy, seed or consistency mode.

        The simulator's internal buffers are float64 (its shared-memory and
        scan primitives model one machine word); the result is cast to the
        policy's accumulator dtype on read-back.  This is exact for integer
        inputs whose SAT stays below 2**53 — the host paths accumulate in the
        integer dtype itself.
        """
        prep = self._validate(a, dtype_policy)
        grid = prep.grid
        gpu = gpu or GPU()
        report = LaunchSummary()
        a_buf = gpu.alloc("_sat_a", prep.array.shape, np.float64,
                          fill=prep.array.astype(np.float64, copy=False))
        b_buf = gpu.alloc("_sat_b", prep.array.shape, np.float64)
        try:
            self._run_device(gpu, a_buf, b_buf, grid, report)
            sat = gpu.read(b_buf)
        finally:
            self._cleanup(gpu)
            gpu.free("_sat_a")
            gpu.free("_sat_b")
        sat = prep.crop(sat)
        if sat.dtype != prep.acc_dtype:
            sat = sat.astype(prep.acc_dtype)
        return SATResult(sat=sat, algorithm=self.name, n=prep.rows,
                         params=self.params(), report=report)

    def run_host(self, a: np.ndarray, *, engine=None,
                 dtype_policy=None) -> np.ndarray:
        """Dataflow-equivalent host execution (same tile algebra, no simulator).

        ``engine`` selects the host executor: ``None``/``"serial"`` runs the
        algorithm's own serial tile loop (the default — deterministic and
        dependency-free); any other value resolves through the unified
        backend registry (:mod:`repro.backend.registry`) — ``"wavefront"``
        or a :class:`~repro.hostexec.WavefrontEngine` instance routes the
        same dataflow through the multi-core wavefront engine (tile-based
        algorithms only); ``"compiled"`` or a
        :class:`~repro.hostexec.CompiledEngine` instance through the
        Numba-jitted flat kernels (any algorithm; degrades to wavefront /
        serial with a warning when Numba is missing).  Both engines are
        bit-identical to the serial path for every shape and dtype.
        """
        if engine is None or engine == "serial":
            prep = self._validate(a, dtype_policy)
            return prep.crop(self._run_host(prep.array))
        from repro.backend.registry import resolve_backend
        return resolve_backend(engine).compute(
            np.asarray(a), algorithm=self.name, tile_width=self.tile_width,
            dtype_policy=dtype_policy)

    # -- subclass hooks ------------------------------------------------------------

    @abstractmethod
    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        """Launch the algorithm's kernels; append every launch's stats to ``report``.

        ``grid`` describes the (already padded) buffer geometry: the buffers
        are ``(grid.padded_rows, grid.padded_cols)`` for tile-based
        algorithms and ``(grid.rows, grid.cols)`` otherwise.
        """

    @abstractmethod
    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Pure-NumPy execution of the same dataflow.

        ``a`` is prepared: accumulator dtype, C-contiguous, tile-aligned
        (padded) for tile-based algorithms.  The result must have ``a``'s
        shape and dtype; cropping happens in :meth:`run_host`.
        """

    def _cleanup(self, gpu: GPU) -> None:
        """Free any scratch buffers the subclass allocated (prefix ``_sat_s_``)."""
        for buf in list(gpu.memory.buffers()):
            if buf.name.startswith("_sat_s_"):
                gpu.free(buf.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} W={self.tile_width}>"
