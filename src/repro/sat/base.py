"""Common machinery for the seven SAT algorithms.

Every algorithm is a :class:`SATAlgorithm` subclass with two execution paths:

* :meth:`SATAlgorithm.run` — the real thing: kernels on the functional GPU
  simulator, returning a :class:`SATResult` whose ``report`` carries measured
  kernel calls, thread counts and global traffic (the Table I quantities);
* :meth:`SATAlgorithm.run_host` — a dataflow-equivalent pure-NumPy execution
  of the same tile decomposition (same intermediate quantities, no scheduling),
  used by property tests at sizes the simulator would be slow at and by the
  applications layer.

Construction takes the paper's tuning parameters: ``tile_width`` (W) and
``threads_per_block`` (W²/m for tile-based algorithms).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.tile import TileGrid


@dataclass
class SATResult:
    """Output of one SAT computation.

    ``report`` is ``None`` for the host path; for simulated runs it holds the
    per-kernel statistics from which Table I rows are measured.
    """

    sat: np.ndarray
    algorithm: str
    n: int
    params: dict[str, Any] = field(default_factory=dict)
    report: LaunchSummary | None = None

    @property
    def kernel_calls(self) -> int:
        if self.report is None:
            raise ConfigurationError("host-path results carry no launch report")
        return self.report.kernel_calls

    @property
    def max_threads(self) -> int:
        if self.report is None:
            raise ConfigurationError("host-path results carry no launch report")
        return self.report.max_threads

    def summary(self) -> str:
        """One-line human-readable summary of the run."""
        if self.report is None:
            return f"{self.algorithm}: n={self.n} (host path)"
        t = self.report.traffic
        return (f"{self.algorithm}: n={self.n}, kernels={self.report.kernel_calls}, "
                f"max_threads={self.report.max_threads}, "
                f"reads={t.global_read_requests}, writes={t.global_write_requests}")


class SATAlgorithm(ABC):
    """Base class: validation, buffer management, launch bookkeeping."""

    #: Paper name of the algorithm (e.g. ``"1R1W-SKSS-LB"``); set by subclasses.
    name: str = "?"
    #: Whether the algorithm partitions the matrix into W x W tiles.
    tile_based: bool = True

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None) -> None:
        self.tile_width = tile_width
        self.threads_per_block = threads_per_block

    # -- parameters ------------------------------------------------------------

    def block_threads(self, device_max: int = 1024) -> int:
        """Threads per CUDA block: the paper uses 1024 (``m = W²/1024``),
        capped at one thread per tile element for small tiles."""
        if self.threads_per_block is not None:
            return self.threads_per_block
        if not self.tile_based:
            return min(256, device_max)
        return min(device_max, max(32, self.tile_width * self.tile_width))

    def params(self) -> dict[str, Any]:
        p: dict[str, Any] = {"threads_per_block": self.block_threads()}
        if self.tile_based:
            p["tile_width"] = self.tile_width
        return p

    def _validate(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float64)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ConfigurationError(
                f"{self.name} expects a square matrix, got shape {a.shape}")
        n = a.shape[0]
        if self.tile_based:
            if n % self.tile_width:
                raise ConfigurationError(
                    f"matrix size {n} is not a multiple of tile width "
                    f"{self.tile_width}")
        return a

    def grid(self, n: int) -> TileGrid:
        return TileGrid(n=n, W=self.tile_width)

    # -- the two execution paths -------------------------------------------------

    def run(self, a: np.ndarray, gpu: GPU | None = None) -> SATResult:
        """Compute the SAT on the simulator; ``gpu`` may carry a custom device,
        scheduling policy, seed or consistency mode."""
        a = self._validate(a)
        n = a.shape[0]
        gpu = gpu or GPU()
        report = LaunchSummary()
        a_buf = gpu.alloc("_sat_a", (n, n), np.float64, fill=a)
        b_buf = gpu.alloc("_sat_b", (n, n), np.float64)
        try:
            self._run_device(gpu, a_buf, b_buf, n, report)
            sat = gpu.read(b_buf)
        finally:
            self._cleanup(gpu)
            gpu.free("_sat_a")
            gpu.free("_sat_b")
        return SATResult(sat=sat, algorithm=self.name, n=n,
                         params=self.params(), report=report)

    def run_host(self, a: np.ndarray, *, engine=None) -> np.ndarray:
        """Dataflow-equivalent host execution (same tile algebra, no simulator).

        ``engine`` selects the host executor: ``None``/``"serial"`` runs the
        algorithm's own serial tile loop (the default — deterministic and
        dependency-free); ``"wavefront"`` or a
        :class:`~repro.hostexec.WavefrontEngine` instance routes the same
        dataflow through the multi-core wavefront engine (tile-based
        algorithms only; results are bit-identical to the serial path).
        """
        a = self._validate(a)
        if engine is None or engine == "serial":
            return self._run_host(a)
        if not self.tile_based:
            raise ConfigurationError(
                f"{self.name} has no tile dataflow; only tile-based "
                "algorithms support engine='wavefront'")
        from repro.hostexec import resolve_engine
        return resolve_engine(engine).compute(
            a, algorithm=self.name, tile_width=self.tile_width)

    # -- subclass hooks ------------------------------------------------------------

    @abstractmethod
    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    n: int, report: LaunchSummary) -> None:
        """Launch the algorithm's kernels; append every launch's stats to ``report``."""

    @abstractmethod
    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Pure-NumPy execution of the same dataflow."""

    def _cleanup(self, gpu: GPU) -> None:
        """Free any scratch buffers the subclass allocated (prefix ``_sat_s_``)."""
        for buf in list(gpu.memory.buffers()):
            if buf.name.startswith("_sat_s_"):
                gpu.free(buf.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} W={self.tile_width}>"
