"""Dtype policies: how an input element type maps to an accumulator type.

The paper evaluates 32-bit elements; the integral-image workloads it
motivates (box filters, Haar cascades, NCC) run on uint8/uint16 images; and
both Zhang et al. (*Parallel Prefix Sum with SIMD*) and Liu & Aluru
(*LightScan*) treat the element width as a first-class tuning axis.  This
module makes the choice explicit: a :class:`DTypePolicy` maps the *input*
dtype of a matrix to the *accumulator* dtype its SAT is computed and returned
in.

Three named policies cover the useful points of the space:

``exact`` (the default)
    Integers (and bool) widen to ``int64`` — every SAT entry is computed in
    exact integer arithmetic, with no float rounding.  ``uint64`` stays
    ``uint64`` (wrap-around semantics; ``int64`` would truncate the domain).
    ``float16`` widens to ``float32``; ``float32``/``float64`` accumulate in
    their own precision.

``widen-float``
    Like ``exact``, but every float accumulates in ``float64`` — for
    workloads where ``float32`` row sums lose too many low bits.

``float64`` (the pre-policy legacy behavior)
    Everything is converted to ``float64``, reproducing the original
    behavior of this code base (exact for integer inputs whose SAT stays
    below 2**53).

:func:`resolve_policy` also accepts a dtype-like (``np.int32``, ``"f4"``,
...) and builds a fixed-accumulator policy from it, so call sites can say
``dtype_policy=np.float64`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


def _check_numeric(dtype: np.dtype) -> np.dtype:
    if not (np.issubdtype(dtype, np.integer)
            or np.issubdtype(dtype, np.floating)
            or np.issubdtype(dtype, np.bool_)):
        raise ConfigurationError(
            f"SAT input dtype {dtype} is not a real numeric type")
    return dtype


def _exact_rule(dtype: np.dtype) -> np.dtype:
    if np.issubdtype(dtype, np.bool_):
        return np.dtype(np.int64)
    if dtype == np.dtype(np.uint64):
        return np.dtype(np.uint64)
    if np.issubdtype(dtype, np.integer):
        return np.dtype(np.int64)
    if dtype == np.dtype(np.float16):
        return np.dtype(np.float32)
    if dtype == np.dtype(np.float32):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _widen_float_rule(dtype: np.dtype) -> np.dtype:
    acc = _exact_rule(dtype)
    if np.issubdtype(acc, np.floating):
        return np.dtype(np.float64)
    return acc


@dataclass(frozen=True)
class DTypePolicy:
    """A named mapping from input dtype to accumulator dtype."""

    name: str
    rule: Callable[[np.dtype], np.dtype]

    def accumulator(self, input_dtype) -> np.dtype:
        """The accumulator dtype SATs of ``input_dtype`` matrices use."""
        return self.rule(_check_numeric(np.dtype(input_dtype)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DTypePolicy {self.name}>"


#: Integer-exact accumulation (the default policy).
EXACT = DTypePolicy("exact", _exact_rule)
#: Integer-exact, but all floats accumulate in float64.
WIDEN_FLOAT = DTypePolicy("widen-float", _widen_float_rule)
#: The legacy behavior: everything converted to float64.
LEGACY_FLOAT64 = DTypePolicy("float64", lambda dtype: np.dtype(np.float64))

POLICIES: dict[str, DTypePolicy] = {
    EXACT.name: EXACT,
    WIDEN_FLOAT.name: WIDEN_FLOAT,
    LEGACY_FLOAT64.name: LEGACY_FLOAT64,
}


def fixed_policy(dtype) -> DTypePolicy:
    """A policy that accumulates in one fixed dtype regardless of the input."""
    acc = _check_numeric(np.dtype(dtype))
    return DTypePolicy(f"fixed:{acc.name}", lambda _d, _acc=acc: _acc)


def resolve_policy(policy=None) -> DTypePolicy:
    """Map a ``dtype_policy=`` argument to a :class:`DTypePolicy`.

    Accepts ``None`` (→ :data:`EXACT`), a policy instance, a policy name
    (``"exact"``, ``"widen-float"``, ``"float64"``), or a dtype-like
    (→ :func:`fixed_policy`).
    """
    if policy is None:
        return EXACT
    if isinstance(policy, DTypePolicy):
        return policy
    if isinstance(policy, str) and policy in POLICIES:
        return POLICIES[policy]
    try:
        return fixed_policy(policy)
    except (TypeError, ConfigurationError):
        raise ConfigurationError(
            f"unknown dtype policy {policy!r}; expected one of "
            f"{sorted(POLICIES)}, a DTypePolicy, or a NumPy dtype") from None


def accumulator_dtype(input_dtype, policy=None) -> np.dtype:
    """Convenience: the accumulator dtype for ``input_dtype`` under ``policy``."""
    return resolve_policy(policy).accumulator(input_dtype)
