"""(1+r)R1W: the hybrid of 2R1W and 1R1W (Kasagi et al. [14],
paper Section III.B, Figure 8).

The 1R1W wavefront is starved of parallelism on the short early and late
anti-diagonals.  The hybrid carves the tile grid into three bands by
``K = I + J``:

* **A** (``K < √r·t``): processed 2R1W-style — local sums, global prefixes,
  GSAT assembly (3 kernels, re-reading the band once);
* **B** (``√r·t ≤ K ≤ (2-√r)·t - 1``): the 1R1W wavefront, one kernel per
  diagonal, seeded by A's boundary values;
* **C** (``K > (2-√r)·t - 1``): 2R1W-style again, with the global prefixes
  *seeded* from the B band's GRS/GCS/GS at the band boundary.

Roughly ``r·(n/W)²`` tiles are read twice, so total reads are
``(1+r)n² + O(n²/W)``; kernel launches number ``2(1-√r)(n/W) + O(1)``.  The
parameter ``r`` trades extra traffic for fewer launches and fatter grids; the
paper picks the best ``r`` by experiment (our ``benchmarks/bench_r_sweep.py``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.tile import TileGrid, assemble_gsat_tile
from repro.sat.base import SATAlgorithm
from repro.sat.kasagi_1r1w import wavefront_kernel
from repro.sat.skss_lb import lane_vector_sum
from repro.sat.tilecommon import TileScratch, alloc_scratch, \
    assemble_gsat_in_shared


def band_limits(r: float, t: int, tc: int | None = None) -> tuple[int, int]:
    """Return ``(Ka, Kc)``: band A is ``K < Ka``, band C is ``K > Kc``.

    For the square grid, ``Ka = round(√r · t)`` and
    ``Kc = round((2-√r) · t) - 1``, clamped so the C band never touches the
    matrix edges (``Kc >= t-1``) and ``Ka <= t``.  For a rectangular
    ``t x tc`` grid the bands cover the short ramp-up/ramp-down diagonals
    (of length < min(t, tc)) scaled the same way, leaving the full-width
    plateau to the wavefront.
    """
    if not 0.0 <= r <= 1.0:
        raise ConfigurationError(f"hybrid parameter r must be in [0, 1], got {r}")
    sq = math.sqrt(r)
    if tc is None or tc == t:
        Ka = min(t, round(sq * t))
        Kc = min(2 * t - 2, max(t - 1, round((2.0 - sq) * t) - 1))
        return Ka, Kc
    m, M = min(t, tc), max(t, tc)
    D = t + tc - 1
    Ka = min(m, round(sq * m))
    Kc = min(D - 1, max(M - 1, round((2.0 - sq) * m) - 1 + (M - m)))
    return Ka, Kc


def band_tiles(grid: TileGrid, Ka: int, Kc: int) -> tuple[list, list, list]:
    """Tiles of bands A, B, C in diagonal-major order."""
    a_tiles, b_tiles, c_tiles = [], [], []
    for K in range(grid.num_diagonals):
        dest = a_tiles if K < Ka else (b_tiles if K <= Kc else c_tiles)
        dest.extend(grid.tiles_on_diagonal(K))
    return a_tiles, b_tiles, c_tiles


def band_local_sums_kernel(ctx: BlockContext, a: GlobalBuffer, sb: TileScratch,
                           stride: int, tiles: list, layout: str = "diagonal"):
    """2R1W kernel 1 restricted to a band: LRS/LCS/LS of the listed tiles."""
    if ctx.block_id >= len(tiles):
        return
    I, J = tiles[ctx.block_id]
    W = sb.W
    smem.alloc_tile(ctx, "tile", W)
    lcs = smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, "tile", layout)
    yield ctx.syncthreads()
    lrs = smem.tile_row_sums(ctx, "tile", W, layout)
    ctx.gstore(sb.lrs, sb.vec_idx(I, J), lrs)
    ctx.gstore(sb.lcs, sb.vec_idx(I, J), lcs)
    ctx.gstore_scalar(sb.ls, sb.scalar_idx(I, J), lane_vector_sum(ctx, lcs))


def band_global_sums_kernel(ctx: BlockContext, sb: TileScratch, band: str,
                            Ka: int, Kc: int, grs_blocks: int,
                            gcs_blocks: int):
    """2R1W kernel 2 restricted to band A or C.

    For band A the prefixes start from zero; for band C they are seeded from
    the boundary values the B wavefront (or band A) already committed.  The
    last block computes the band's GS values with the four-corner recurrence
    ``GS(I,J) = GS(I-1,J) + GS(I,J-1) - GS(I-1,J-1) + LS(I,J)``, whose
    neighbours are always in an earlier band or earlier in the iteration.
    """
    tr, tc, W = sb.tr, sb.tc, sb.W
    bid = ctx.block_id

    def row_range(I: int) -> range:
        if band == "A":
            return range(0, min(tc, Ka - I))
        return range(max(0, Kc - I + 1), tc)

    def col_range(J: int) -> range:
        if band == "A":
            return range(0, min(tr, Ka - J))
        return range(max(0, Kc - J + 1), tr)

    if bid < grs_blocks:
        lanes = bid * ctx.nthreads + ctx.tids
        lanes = lanes[lanes < tr * W]
        for base in np.unique(lanes // W):
            I = int(base)
            i = lanes[lanes // W == I] % W
            Js = row_range(I)
            if len(Js) == 0:
                continue
            if band == "C" and Js.start > 0:
                acc = ctx.gload(sb.grs, (I * tc + (Js.start - 1)) * W + i)
            else:
                acc = np.zeros(i.size)
            for J in Js:
                idx = (I * tc + J) * W + i
                acc = acc + ctx.gload(sb.lrs, idx)
                ctx.gstore(sb.grs, idx, acc)
                ctx.charge(ctx.costs.compute_step)
    elif bid < grs_blocks + gcs_blocks:
        lanes = (bid - grs_blocks) * ctx.nthreads + ctx.tids
        lanes = lanes[lanes < tc * W]
        for base in np.unique(lanes // W):
            J = int(base)
            j = lanes[lanes // W == J] % W
            Is = col_range(J)
            if len(Is) == 0:
                continue
            if band == "C" and Is.start > 0:
                acc = ctx.gload(sb.gcs, ((Is.start - 1) * tc + J) * W + j)
            else:
                acc = np.zeros(j.size)
            for I in Is:
                idx = (I * tc + J) * W + j
                acc = acc + ctx.gload(sb.lcs, idx)
                ctx.gstore(sb.gcs, idx, acc)
                ctx.charge(ctx.costs.compute_step)
    else:
        # GS block.
        for I in range(tr):
            for J in row_range(I):
                up = ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J)) if I else 0.0
                left = ctx.gload_scalar(sb.gs, sb.scalar_idx(I, J - 1)) if J else 0.0
                corner = (ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))
                          if I and J else 0.0)
                ls = ctx.gload_scalar(sb.ls, sb.scalar_idx(I, J))
                ctx.gstore_scalar(sb.gs, sb.scalar_idx(I, J),
                                  up + left - corner + ls)
                ctx.charge(3 * ctx.costs.compute_step)


def band_gsat_kernel(ctx: BlockContext, a: GlobalBuffer, b: GlobalBuffer,
                     sb: TileScratch, stride: int, tiles: list,
                     layout: str = "diagonal"):
    """2R1W kernel 3 restricted to a band: assemble GSAT of the listed tiles."""
    if ctx.block_id >= len(tiles):
        return
    I, J = tiles[ctx.block_id]
    W = sb.W
    smem.alloc_tile(ctx, "tile", W)
    smem.load_tile(ctx, a, stride, W, I, J, "tile", layout)
    yield ctx.syncthreads()
    grs_left = ctx.gload(sb.grs, sb.vec_idx(I, J - 1)) if J > 0 else np.zeros(W)
    gcs_above = ctx.gload(sb.gcs, sb.vec_idx(I - 1, J)) if I > 0 else np.zeros(W)
    gs_corner = (ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))
                 if I > 0 and J > 0 else 0.0)
    assemble_gsat_in_shared(ctx, W, "tile", grs_left, gcs_above, gs_corner,
                            layout)
    yield ctx.syncthreads()
    smem.store_tile(ctx, b, stride, W, I, J, "tile", layout)


class Hybrid1R1W(SATAlgorithm):
    """The (1+r)R1W algorithm: 2R1W bands around a 1R1W wavefront core."""

    name = "(1+r)R1W"

    def __init__(self, *, tile_width: int = 32, r: float = 0.25,
                 threads_per_block: int | None = None,
                 layout: str = "diagonal") -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.r = r
        self.layout = layout

    def params(self) -> dict:
        p = super().params()
        p["r"] = self.r
        return p

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        sb = alloc_scratch(gpu, grid)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        stride = grid.padded_cols
        Ka, Kc = band_limits(self.r, tr, tc)
        a_tiles, _, c_tiles = band_tiles(grid, Ka, Kc)
        threads = min(self.block_threads(gpu.device.max_threads_per_block),
                      W * W)
        threads = max(threads, gpu.device.warp_size)
        grs_blocks = (tr * W + threads - 1) // threads
        gcs_blocks = (tc * W + threads - 1) // threads

        def run_band(band: str, tiles: list) -> None:
            if not tiles:
                return
            report.add(gpu.launch(
                band_local_sums_kernel, grid_blocks=len(tiles),
                threads_per_block=threads,
                args=(a_buf, sb, stride, tiles, self.layout),
                name=f"hybrid_{band}_local", shared_bytes_hint=W * W * 4))
            report.add(gpu.launch(
                band_global_sums_kernel,
                grid_blocks=grs_blocks + gcs_blocks + 1,
                threads_per_block=threads,
                args=(sb, band, Ka, Kc, grs_blocks, gcs_blocks),
                name=f"hybrid_{band}_global"))
            report.add(gpu.launch(
                band_gsat_kernel, grid_blocks=len(tiles),
                threads_per_block=threads,
                args=(a_buf, b_buf, sb, stride, tiles, self.layout),
                name=f"hybrid_{band}_gsat", shared_bytes_hint=W * W * 4))

        run_band("A", a_tiles)
        for K in range(Ka, min(Kc, grid.num_diagonals - 1) + 1):
            report.add(gpu.launch(
                wavefront_kernel,
                grid_blocks=len(grid.tiles_on_diagonal(K)),
                threads_per_block=threads,
                args=(a_buf, b_buf, sb, stride, K, self.layout),
                name=f"hybrid_wave_{K}", shared_bytes_hint=W * W * 4))
        run_band("C", c_tiles)

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Host dataflow: the published values are schedule-independent, so
        band order collapses to a single diagonal sweep with the same algebra."""
        grid = TileGrid(rows=a.shape[0], cols=a.shape[1], W=self.tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        grs = np.zeros((tr, tc, W), dtype=a.dtype)
        gcs = np.zeros((tr, tc, W), dtype=a.dtype)
        gs = np.zeros((tr, tc), dtype=a.dtype)
        out = np.zeros_like(a)
        zeros = np.zeros(W, dtype=a.dtype)
        for K in range(grid.num_diagonals):
            for I, J in grid.tiles_on_diagonal(K):
                tile = a[grid.tile_slice(I, J)]
                grs_left = grs[I, J - 1] if J > 0 else zeros
                gcs_above = gcs[I - 1, J] if I > 0 else zeros
                gs_corner = (gs[I - 1, J - 1] if I > 0 and J > 0
                             else a.dtype.type(0))
                grs[I, J] = grs_left + tile.sum(axis=1)
                gcs[I, J] = gcs_above + tile.sum(axis=0)
                gsat = assemble_gsat_tile(tile, grs_left, gcs_above, gs_corner)
                gs[I, J] = gsat[-1, -1]
                out[grid.tile_slice(I, J)] = gsat
        return out


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: memory-access structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "band_local_sums_kernel": {"stores": ("lcs", "lrs", "ls"),
                               "loads": ("a",)},
    "band_global_sums_kernel": {"stores": ("gcs", "grs", "gs"),
                                "loads": ("gcs", "grs", "gs",
                                          "lcs", "lrs", "ls")},
    "band_gsat_kernel": {"stores": ("b",),
                         "loads": ("a", "gcs", "grs", "gs")},
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: naive_2r2w.py for the convention).  Counts are totals over BOTH band
#: launches (A and C): ``band`` tiles overall, ``band_left``/``band_up``/
#: ``band_corner`` of them with a left/up/corner neighbour, and
#: ``band_seed_row``/``band_seed_col`` rows/columns whose band-C segment is
#: seeded from an already-committed prefix.  The middle-band wavefront's
#: hints live with the shared kernel in kasagi_1r1w.py.
COST_HINTS = {
    "band_local_sums_kernel": {
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {
            "count": lambda g: g.band, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.gstore(sb.lrs, sb.vec_idx(I, J), lrs)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore(sb.lcs, sb.vec_idx(I, J), lcs)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore_scalar(sb.ls, sb.scalar_idx(I, J), lane_vector_sum(ctx, "
        "lcs))": {
            "count": lambda g: g.band},
    },
    "band_global_sums_kernel": {
        "ctx.gload(sb.grs, (I * tc + (Js.start - 1)) * W + i)": {
            "count": lambda g: g.band_seed_row, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.lrs, idx)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore(sb.grs, idx, acc)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.gcs, ((Is.start - 1) * tc + J) * W + j)": {
            "count": lambda g: g.band_seed_col, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.lcs, idx)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore(sb.gcs, idx, acc)": {
            "count": lambda g: g.band, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J))": {
            "count": lambda g: g.band_up},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I, J - 1))": {
            "count": lambda g: g.band_left},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))": {
            "count": lambda g: g.band_corner},
        "ctx.gload_scalar(sb.ls, sb.scalar_idx(I, J))": {
            "count": lambda g: g.band},
        "ctx.gstore_scalar(sb.gs, sb.scalar_idx(I, J), up + left - corner + "
        "ls)": {
            "count": lambda g: g.band},
    },
    "band_gsat_kernel": {
        "smem.load_tile(ctx, a, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.band, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.gload(sb.grs, sb.vec_idx(I, J - 1))": {
            "count": lambda g: g.band_left, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.gcs, sb.vec_idx(I - 1, J))": {
            "count": lambda g: g.band_up, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))": {
            "count": lambda g: g.band_corner},
        "smem.store_tile(ctx, b, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.band, "width": lambda g: g.W2,
            "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  Band locals mirror 2R1W's; the band
#: global pass's four-corner GS recurrence chains over <= 2t diagonal hops
#: at 3 adds per hop; the wavefront band inherits the kasagi kernel's
#: hints (assembly re-scans make the hybrid O(t*W) deep overall).
ERR_HINTS = {
    "band_local_sums_kernel": {
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {"depth": lambda g: g.W},
        "smem.tile_row_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.W},
        "lane_vector_sum(ctx, lcs)": {"depth": lambda g: g.W},
    },
    "band_global_sums_kernel": {
        "acc = acc + ctx.gload(sb.lrs, idx)": {"depth": lambda g: g.t},
        "acc = acc + ctx.gload(sb.lcs, idx)": {"depth": lambda g: g.t},
        "ctx.gstore_scalar(sb.gs, sb.scalar_idx(I, J), up + left - "
        "corner + ls)": {"depth": lambda g: 6 * g.t},
    },
    "band_gsat_kernel": {
        "assemble_gsat_in_shared(ctx, W, 'tile', grs_left, gcs_above, "
        "gs_corner, layout)": {"depth": lambda g: 2 * g.W + 1},
    },
}
