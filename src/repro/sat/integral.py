"""OpenCV-style integral images (padded and exclusive SAT variants).

Computer-vision libraries conventionally return an ``(n+1) x (m+1)`` integral
image with a zero first row and column (``cv2.integral``), which makes the
four-corner query branch-free.  This module provides that convention on top
of any of this repository's SAT engines, plus the exclusive SAT, tilted
(45°) integral image, and branch-free query helpers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.reference import sat_reference


def integral_image(a: np.ndarray, *, sat: np.ndarray | None = None) -> np.ndarray:
    """Padded integral image: ``ii[i][j] = sum(a[:i, :j])`` (zero row 0/col 0).

    Pass a precomputed ``sat`` (from any algorithm) to avoid recomputation.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError("integral_image expects a 2-D array")
    if sat is None:
        sat = sat_reference(a)
    out = np.zeros((a.shape[0] + 1, a.shape[1] + 1), dtype=sat.dtype)
    out[1:, 1:] = sat
    return out


def exclusive_sat(a: np.ndarray) -> np.ndarray:
    """Exclusive SAT: ``b[i][j] = sum(a[:i, :j])`` with the same shape as
    ``a`` (entry (0, *) and (*, 0) are zero)."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError("exclusive_sat expects a 2-D array")
    return integral_image(a)[:-1, :-1]


def rect_sum_ii(ii: np.ndarray, top: int, left: int, bottom: int,
                right: int):
    """Branch-free four-corner query on a padded integral image.

    Bounds are inclusive element indices of the original array.
    """
    if not (0 <= top <= bottom < ii.shape[0] - 1
            and 0 <= left <= right < ii.shape[1] - 1):
        raise ConfigurationError("query rectangle out of bounds")
    return (ii[bottom + 1, right + 1] - ii[top, right + 1]
            - ii[bottom + 1, left] + ii[top, left])


def tilted_integral(a: np.ndarray) -> np.ndarray:
    """45°-rotated integral image (the Viola–Jones tilted-feature substrate).

    Definition used here: ``tilt[i][j]`` is the sum of every ``a[y][x]`` with
    ``y < i`` and ``|x - j| <= i - 1 - y`` (a downward-pointing right-angled
    triangle with apex row just above ``i`` at column ``j``), clamped to the
    image.  Shape ``(rows+1, cols+1)``; row 0 is zero.

    Computed with the diagonal recurrence
    ``tilt[i] = shift_left(tilt[i-1]) + shift_right(tilt[i-1])
    - tilt[i-2] + row-term``, which the tests validate against a brute-force
    evaluation of the definition.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ConfigurationError("tilted_integral expects a 2-D array")
    rows, cols = a.shape
    # Clamping triangles at the image border equals extending the image with
    # zeros, so run the pure (clamp-free) recurrence
    #   T(i,j) = T(i-1,j-1) + T(i-1,j+1) - T(i-2,j) + a[i-1,j] + a[i-2,j]
    # on a zero-padded matrix wide enough (pad = rows) that border artefacts
    # can never propagate into the sliced-out central region.
    pad = rows
    widthp = cols + 2 * pad
    ap = np.zeros((rows, widthp))
    ap[:, pad:pad + cols] = a
    tilt = np.zeros((rows + 1, widthp + 1))

    def row_term(y: int) -> np.ndarray:
        term = np.zeros(widthp + 1)
        if 0 <= y < rows:
            term[:widthp] = ap[y]
        return term

    for i in range(1, rows + 1):
        prev = tilt[i - 1]
        left = np.concatenate(([0.0], prev[:-1]))
        right = np.concatenate((prev[1:], [0.0]))
        older = tilt[i - 2] if i >= 2 else np.zeros(widthp + 1)
        tilt[i] = left + right - older + row_term(i - 1) + row_term(i - 2)
    return tilt[:, pad:pad + cols + 1]


def _tilted_cell(a: np.ndarray, i: int, j: int) -> float:
    """Brute-force evaluation of one tilted-integral cell (definition)."""
    rows, cols = a.shape
    total = 0.0
    for y in range(min(i, rows)):
        reach = i - 1 - y
        lo = max(0, j - reach)
        hi = min(cols - 1, j + reach)
        if lo <= hi:
            total += float(a[y, lo:hi + 1].sum())
    return total


def tilted_integral_bruteforce(a: np.ndarray) -> np.ndarray:
    """Direct evaluation of the tilted-integral definition (test oracle)."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ConfigurationError("expected a 2-D array")
    rows, cols = a.shape
    out = np.zeros((rows + 1, cols + 1))
    for i in range(rows + 1):
        for j in range(cols + 1):
            out[i, j] = _tilted_cell(a, i, j)
    return out
