"""1R1W: the diagonal-wavefront SAT algorithm (Kasagi et al. [14],
paper Section III.B).

``2·(n/W) - 1`` kernel launches; kernel ``K`` computes ``GSAT(I, J)`` for all
tiles on anti-diagonal ``I + J = K``, whose boundary terms were produced by
kernels ``K-1`` and ``K-2``.  Kernel boundaries provide the synchronization,
so no flags are needed — but early and late kernels run very few blocks, and
the many launches carry overhead, which is why the paper's Table III shows it
losing badly at small sizes.

Each element is read and written once (plus ``O(n²/W)`` boundary vectors):
global-memory optimal, like the SKSS variants.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.tile import TileGrid, assemble_gsat_tile
from repro.sat.base import SATAlgorithm
from repro.sat.tilecommon import TileScratch, alloc_scratch, \
    assemble_gsat_in_shared


def wavefront_kernel(ctx: BlockContext, a: GlobalBuffer, b: GlobalBuffer,
                     sb: TileScratch, stride: int, K: int,
                     layout: str = "diagonal"):
    """Kernel ``K`` of the 1R1W algorithm: one block per tile on diagonal ``K``.

    The paper recovers ``GRS(I, J)``/``GCS(I, J)`` by differencing the
    rightmost column / bottom row of ``GSAT(I, J)``; we compute them
    equivalently as ``GRS(I, J-1) + LRS(I, J)`` from the tile still in shared
    memory before the prefix passes (same values, one less shared pass).
    ``stride`` is the buffer's row stride (its padded column count).
    """
    W = sb.W
    tiles = sb.grid.tiles_on_diagonal(K)
    if ctx.block_id >= len(tiles):
        return
    I, J = tiles[ctx.block_id]
    smem.alloc_tile(ctx, "tile", W)

    smem.load_tile(ctx, a, stride, W, I, J, "tile", layout)
    yield ctx.syncthreads()

    grs_left = ctx.gload(sb.grs, sb.vec_idx(I, J - 1)) if J > 0 else np.zeros(W)
    gcs_above = ctx.gload(sb.gcs, sb.vec_idx(I - 1, J)) if I > 0 else np.zeros(W)
    gs_corner = (ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))
                 if I > 0 and J > 0 else 0.0)

    lrs = smem.tile_row_sums(ctx, "tile", W, layout)
    lcs = smem.tile_col_sums(ctx, "tile", W, layout)
    ctx.gstore(sb.grs, sb.vec_idx(I, J), grs_left + lrs)
    ctx.gstore(sb.gcs, sb.vec_idx(I, J), gcs_above + lcs)
    yield ctx.syncthreads()

    assemble_gsat_in_shared(ctx, W, "tile", grs_left, gcs_above, gs_corner,
                            layout)
    yield ctx.syncthreads()
    # GS(I, J) is the bottom-right corner of the assembled GSAT.
    gs_now = float(ctx.sload("tile",
                             smem.full_tile_offsets(W, layout)[W - 1:W, W - 1])[0])
    ctx.gstore_scalar(sb.gs, sb.scalar_idx(I, J), gs_now)
    smem.store_tile(ctx, b, stride, W, I, J, "tile", layout)


class Kasagi1R1W(SATAlgorithm):
    """The 1R1W algorithm: one kernel launch per tile anti-diagonal."""

    name = "1R1W"

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 layout: str = "diagonal") -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.layout = layout

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        sb = alloc_scratch(gpu, grid)
        stride = grid.padded_cols
        threads = min(self.block_threads(gpu.device.max_threads_per_block),
                      grid.W * grid.W)
        threads = max(threads, gpu.device.warp_size)
        for K in range(grid.num_diagonals):
            report.add(gpu.launch(
                wavefront_kernel,
                grid_blocks=len(grid.tiles_on_diagonal(K)),
                threads_per_block=threads,
                args=(a_buf, b_buf, sb, stride, K, self.layout),
                name=f"1r1w_wave_{K}",
                shared_bytes_hint=grid.W * grid.W * 4))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Host dataflow: diagonals in order, boundary terms built incrementally."""
        grid = TileGrid(rows=a.shape[0], cols=a.shape[1], W=self.tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        grs = np.zeros((tr, tc, W), dtype=a.dtype)
        gcs = np.zeros((tr, tc, W), dtype=a.dtype)
        gs = np.zeros((tr, tc), dtype=a.dtype)
        out = np.zeros_like(a)
        zeros = np.zeros(W, dtype=a.dtype)
        for K in range(grid.num_diagonals):
            for I, J in grid.tiles_on_diagonal(K):
                tile = a[grid.tile_slice(I, J)]
                grs_left = grs[I, J - 1] if J > 0 else zeros
                gcs_above = gcs[I - 1, J] if I > 0 else zeros
                gs_corner = (gs[I - 1, J - 1] if I > 0 and J > 0
                             else a.dtype.type(0))
                grs[I, J] = grs_left + tile.sum(axis=1)
                gcs[I, J] = gcs_above + tile.sum(axis=0)
                gsat = assemble_gsat_tile(tile, grs_left, gcs_above, gs_corner)
                gs[I, J] = gsat[-1, -1]
                out[grid.tile_slice(I, J)] = gsat
        return out


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: memory-access structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "wavefront_kernel": {"stores": ("b", "gcs", "grs", "gs"),
                         "loads": ("a", "gcs", "grs", "gs")},
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: naive_2r2w.py for the convention).  The wavefront kernel is shared with
#: the hybrid's middle band, so its counts are phrased in the ``wave_*``
#: geometry: over the full grid (this algorithm) ``wave = t²`` and
#: ``wave_left = wave_above = t² - t``; over the hybrid's middle diagonals
#: they count only the tiles the wavefront actually visits.
COST_HINTS = {
    "wavefront_kernel": {
        "smem.load_tile(ctx, a, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.wave, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.gload(sb.grs, sb.vec_idx(I, J - 1))": {
            "count": lambda g: g.wave_left, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.gcs, sb.vec_idx(I - 1, J))": {
            "count": lambda g: g.wave_above, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))": {
            "count": lambda g: g.wave_corner},
        "ctx.gstore(sb.grs, sb.vec_idx(I, J), grs_left + lrs)": {
            "count": lambda g: g.wave, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore(sb.gcs, sb.vec_idx(I, J), gcs_above + lcs)": {
            "count": lambda g: g.wave, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore_scalar(sb.gs, sb.scalar_idx(I, J), gs_now)": {
            "count": lambda g: g.wave},
        "smem.store_tile(ctx, b, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.wave, "width": lambda g: g.W2,
            "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  The wavefront's GSAT corners feed the
#: next diagonal's carries, so a value's path runs through up to t
#: *assemblies* — each re-scanning it through the tile prefix passes
#: (2W + 1 adds).  That makes 1R1W O(t*W) = O(n) deep, unlike 2R1W or
#: SKSS-LB whose carries chain with one add per hop.
ERR_HINTS = {
    "wavefront_kernel": {
        "smem.tile_row_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.W},
        "smem.tile_col_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.W},
        "ctx.gstore(sb.grs, sb.vec_idx(I, J), grs_left + lrs)": {
            "depth": lambda g: g.t},
        "ctx.gstore(sb.gcs, sb.vec_idx(I, J), gcs_above + lcs)": {
            "depth": lambda g: g.t},
        "assemble_gsat_in_shared(ctx, W, 'tile', grs_left, gcs_above, "
        "gs_corner, layout)": {"depth": lambda g: g.t * (2 * g.W + 1)},
    },
}
