"""2R2W: the baseline SAT algorithm (paper Section I.B).

Two kernels with ``n`` threads each: thread ``j`` of the first kernel scans
column ``j`` downwards (coalesced: the ``n`` threads touch one row at a time);
thread ``i`` of the second scans row ``i`` rightwards (strided: the threads
touch one *column* at a time, so every element costs its own transaction).
Each element is read twice and written twice — hence the name — and the
strided second phase is why the paper measures overheads of 500–2600 % for it.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.tile import TileGrid
from repro.sat.base import SATAlgorithm


def column_scan_kernel(ctx: BlockContext, src: GlobalBuffer, dst: GlobalBuffer,
                       n_rows: int, n_cols: int) -> None:
    """Thread ``j`` computes the prefix sums of column ``j`` sequentially."""
    cols = ctx.block_id * ctx.nthreads + ctx.tids
    cols = cols[cols < n_cols]
    if cols.size == 0:
        return
    running = np.zeros(cols.size)
    for i in range(n_rows):
        running = running + ctx.gload(src, i * n_cols + cols)
        ctx.gstore(dst, i * n_cols + cols, running)
        ctx.charge(ctx.costs.compute_step)


def row_scan_kernel(ctx: BlockContext, buf: GlobalBuffer, n_rows: int,
                    n_cols: int) -> None:
    """Thread ``i`` computes the prefix sums of row ``i`` sequentially (strided)."""
    rows = ctx.block_id * ctx.nthreads + ctx.tids
    rows = rows[rows < n_rows]
    if rows.size == 0:
        return
    running = np.zeros(rows.size)
    for j in range(n_cols):
        running = running + ctx.gload(buf, rows * n_cols + j)
        ctx.gstore(buf, rows * n_cols + j, running)
        ctx.charge(ctx.costs.compute_step)


class Naive2R2W(SATAlgorithm):
    """The 2R2W algorithm: column-wise then row-wise sequential scans."""

    name = "2R2W"
    tile_based = False

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        rows, cols = grid.rows, grid.cols
        # One thread per column/row, rounded up to whole warps.
        w = gpu.device.warp_size
        threads = ((min(self.block_threads(), max(rows, cols)) + w - 1)
                   // w) * w
        report.add(gpu.launch(column_scan_kernel,
                              grid_blocks=(cols + threads - 1) // threads,
                              threads_per_block=threads,
                              args=(a_buf, b_buf, rows, cols),
                              name="2r2w_column_scan"))
        report.add(gpu.launch(row_scan_kernel,
                              grid_blocks=(rows + threads - 1) // threads,
                              threads_per_block=threads,
                              args=(b_buf, rows, cols),
                              name="2r2w_row_scan"))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        return a.cumsum(axis=0).cumsum(axis=1)


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: memory-access structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "column_scan_kernel": {"stores": ("dst",), "loads": ("src",)},
    "row_scan_kernel": {"stores": ("buf",), "loads": ("buf",)},
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck`: each
#: counted global access, keyed by its exact source expression, with its
#: per-run execution count, access width and coalescing pattern as functions
#: of the counting geometry.  ``repro costcheck`` re-extracts the sites from
#: the AST and fails on any drift between this table and the code.
COST_HINTS = {
    # n rows x an n-wide thread front, touching one row at a time: coalesced.
    "column_scan_kernel": {
        "ctx.gload(src, i * n_cols + cols)": {
            "count": lambda g: g.n, "width": lambda g: g.n,
            "pattern": "coalesced"},
        "ctx.gstore(dst, i * n_cols + cols, running)": {
            "count": lambda g: g.n, "width": lambda g: g.n,
            "pattern": "coalesced"},
    },
    # n cols x an n-tall thread front, touching one column at a time: every
    # element is its own 32-byte transaction.
    "row_scan_kernel": {
        "ctx.gload(buf, rows * n_cols + j)": {
            "count": lambda g: g.n, "width": lambda g: g.n,
            "pattern": "strided"},
        "ctx.gstore(buf, rows * n_cols + j, running)": {
            "count": lambda g: g.n, "width": lambda g: g.n,
            "pattern": "strided"},
    },
}


#: Worst-path serial float additions per error site over the whole run
#: (:mod:`repro.analysis.numcheck`).  Each scan folds one element at a time
#: into ``running`` across the full n-length axis.
ERR_HINTS = {
    "column_scan_kernel": {
        "running = running + ctx.gload(src, i * n_cols + cols)": {
            "depth": lambda g: g.n},
    },
    "row_scan_kernel": {
        "running = running + ctx.gload(buf, rows * n_cols + j)": {
            "depth": lambda g: g.n},
    },
}
