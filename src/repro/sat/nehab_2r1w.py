"""2R1W: the three-kernel tile SAT algorithm (Nehab et al. [13],
paper Section III.A).

* **Kernel 1** computes ``LRS``, ``LCS`` and ``LS`` of every tile (reading the
  whole matrix once and *discarding* the tiles);
* **Kernel 2** turns them into ``GRS``, ``GCS`` (prefix sums across tiles,
  one thread per vector lane, fully coalesced) and ``GS`` (the SAT of the
  ``(n/W)²`` tile-sum array, computed by one block);
* **Kernel 3** re-reads every tile and assembles ``GSAT(I, J)`` in shared
  memory from the three boundary terms.

The matrix is read twice and written once — ``2n² + O(n²/W)`` reads,
``n² + O(n²/W)`` writes — so its overhead over duplication cannot drop below
50 %, which Table III confirms (55–215 %).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.tile import TileGrid, assemble_gsat_tile
from repro.sat.base import SATAlgorithm
from repro.sat.skss_lb import lane_vector_sum
from repro.sat.tilecommon import TileScratch, alloc_scratch, \
    assemble_gsat_in_shared


def local_sums_kernel(ctx: BlockContext, a: GlobalBuffer, sb: TileScratch,
                      stride: int, layout: str = "diagonal"):
    """Kernel 1: one block per tile; writes LRS, LCS and LS.

    ``stride`` is the buffer's row stride (its padded column count).
    """
    W, tc = sb.W, sb.tc
    I, J = divmod(ctx.block_id, tc)
    if I >= sb.tr:
        return
    smem.alloc_tile(ctx, "tile", W)
    lcs = smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, "tile", layout)
    yield ctx.syncthreads()
    lrs = smem.tile_row_sums(ctx, "tile", W, layout)
    ls = lane_vector_sum(ctx, lcs)
    ctx.gstore(sb.lrs, sb.vec_idx(I, J), lrs)
    ctx.gstore(sb.lcs, sb.vec_idx(I, J), lcs)
    ctx.gstore_scalar(sb.ls, sb.scalar_idx(I, J), ls)


def global_sums_kernel(ctx: BlockContext, sb: TileScratch, grs_blocks: int,
                       gcs_blocks: int):
    """Kernel 2: prefix LRS→GRS and LCS→GCS across tiles; SAT of LS→GS.

    Blocks ``[0, grs_blocks)`` scan rows of tiles (one thread per ``(I, i)``
    lane, sequential over ``J`` — coalesced, exactly the paper's "column-wise
    prefix-sums of the (n/W) x n arrays using n threads").  The next
    ``gcs_blocks`` do the same for columns.  The final block computes the SAT
    of the ``tr x tc`` LS array (the paper's "recursive computation"; at tile
    granularity one block suffices for every size we simulate).
    """
    tr, tc, W = sb.tr, sb.tc, sb.W
    bid = ctx.block_id
    if bid < grs_blocks:
        lanes = bid * ctx.nthreads + ctx.tids
        lanes = lanes[lanes < tr * W]
        if lanes.size == 0:
            return
        I, i = lanes // W, lanes % W
        acc = np.zeros(lanes.size)
        for J in range(tc):
            idx = (I * tc + J) * W + i
            acc = acc + ctx.gload(sb.lrs, idx)
            ctx.gstore(sb.grs, idx, acc)
            ctx.charge(ctx.costs.compute_step)
    elif bid < grs_blocks + gcs_blocks:
        lanes = (bid - grs_blocks) * ctx.nthreads + ctx.tids
        lanes = lanes[lanes < tc * W]
        if lanes.size == 0:
            return
        J, j = lanes // W, lanes % W
        acc = np.zeros(lanes.size)
        for I in range(tr):
            idx = (I * tc + J) * W + j
            acc = acc + ctx.gload(sb.lcs, idx)
            ctx.gstore(sb.gcs, idx, acc)
            ctx.charge(ctx.costs.compute_step)
    else:
        # GS block: SAT of the tr x tc LS array.
        ls = ctx.gload(sb.ls, np.arange(tr * tc)).reshape(tr, tc)
        gs = ls.cumsum(axis=0).cumsum(axis=1)
        ctx.charge(2 * tr * tc * ctx.costs.compute_step / max(1, ctx.nthreads))
        ctx.gstore(sb.gs, np.arange(tr * tc), gs.ravel())


def gsat_kernel(ctx: BlockContext, a: GlobalBuffer, b: GlobalBuffer,
                sb: TileScratch, stride: int, layout: str = "diagonal"):
    """Kernel 3: one block per tile; assembles and writes GSAT(I, J)."""
    W, tc = sb.W, sb.tc
    I, J = divmod(ctx.block_id, tc)
    if I >= sb.tr:
        return
    smem.alloc_tile(ctx, "tile", W)
    smem.load_tile(ctx, a, stride, W, I, J, "tile", layout)
    yield ctx.syncthreads()
    grs_left = ctx.gload(sb.grs, sb.vec_idx(I, J - 1)) if J > 0 else np.zeros(W)
    gcs_above = ctx.gload(sb.gcs, sb.vec_idx(I - 1, J)) if I > 0 else np.zeros(W)
    gs_corner = (ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))
                 if I > 0 and J > 0 else 0.0)
    assemble_gsat_in_shared(ctx, W, "tile", grs_left, gcs_above, gs_corner,
                            layout)
    yield ctx.syncthreads()
    smem.store_tile(ctx, b, stride, W, I, J, "tile", layout)


class Nehab2R1W(SATAlgorithm):
    """The 2R1W algorithm: local sums, global prefixes, GSAT assembly."""

    name = "2R1W"

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 layout: str = "diagonal") -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.layout = layout

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        sb = alloc_scratch(gpu, grid)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        stride = grid.padded_cols
        threads = min(self.block_threads(gpu.device.max_threads_per_block),
                      W * W)
        threads = max(threads, gpu.device.warp_size)
        report.add(gpu.launch(
            local_sums_kernel, grid_blocks=grid.num_tiles,
            threads_per_block=threads, args=(a_buf, sb, stride, self.layout),
            name="2r1w_local_sums", shared_bytes_hint=W * W * 4))
        grs_blocks = (tr * W + threads - 1) // threads
        gcs_blocks = (tc * W + threads - 1) // threads
        report.add(gpu.launch(
            global_sums_kernel, grid_blocks=grs_blocks + gcs_blocks + 1,
            threads_per_block=threads,
            args=(sb, grs_blocks, gcs_blocks), name="2r1w_global_sums"))
        report.add(gpu.launch(
            gsat_kernel, grid_blocks=grid.num_tiles,
            threads_per_block=threads,
            args=(a_buf, b_buf, sb, stride, self.layout),
            name="2r1w_gsat", shared_bytes_hint=W * W * 4))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Host dataflow: the three phases as whole-array operations."""
        grid = TileGrid(rows=a.shape[0], cols=a.shape[1], W=self.tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        # Phase 1: local sums (a view — no copy, dtype preserved).
        tiles = a.reshape(tr, W, tc, W)
        lrs = tiles.sum(axis=3).transpose(0, 2, 1)   # (I, J, i)
        lcs = tiles.sum(axis=1)                       # (I, J, j)
        ls = lcs.sum(axis=2)                          # (I, J)
        # Phase 2: global prefixes.
        grs = lrs.cumsum(axis=1)
        gcs = lcs.cumsum(axis=0)
        gs = ls.cumsum(axis=0).cumsum(axis=1)
        # Phase 3: assembly.
        out = np.zeros_like(a)
        zeros = np.zeros(W, dtype=a.dtype)
        for I in range(tr):
            for J in range(tc):
                out[grid.tile_slice(I, J)] = assemble_gsat_tile(
                    a[grid.tile_slice(I, J)],
                    grs[I, J - 1] if J > 0 else zeros,
                    gcs[I - 1, J] if I > 0 else zeros,
                    gs[I - 1, J - 1] if I > 0 and J > 0 else a.dtype.type(0))
        return out


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: memory-access structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "local_sums_kernel": {"stores": ("lcs", "lrs", "ls"), "loads": ("a",)},
    "global_sums_kernel": {"stores": ("gcs", "grs", "gs"),
                           "loads": ("lcs", "lrs", "ls")},
    "gsat_kernel": {"stores": ("b",), "loads": ("a", "gcs", "grs", "gs")},
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: naive_2r2w.py for the convention).  Geometry: ``t`` tiles per side,
#: ``tiles = t²``, tile width ``W``, ``W2 = W²``, ``n = tW``.
COST_HINTS = {
    "local_sums_kernel": {
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.gstore(sb.lrs, sb.vec_idx(I, J), lrs)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore(sb.lcs, sb.vec_idx(I, J), lcs)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gstore_scalar(sb.ls, sb.scalar_idx(I, J), ls)": {
            "count": lambda g: g.tiles},
    },
    # Row/column lane fronts: tc (resp. tr) sequential steps over a full
    # n-lane front; the GS block reads/writes the t x t tile-sum array once.
    "global_sums_kernel": {
        "ctx.gload(sb.lrs, idx)": {
            "count": lambda g: g.t, "width": lambda g: g.n,
            "pattern": "coalesced"},
        "ctx.gstore(sb.grs, idx, acc)": {
            "count": lambda g: g.t, "width": lambda g: g.n,
            "pattern": "coalesced"},
        "ctx.gload(sb.lcs, idx)": {
            "count": lambda g: g.t, "width": lambda g: g.n,
            "pattern": "coalesced"},
        "ctx.gstore(sb.gcs, idx, acc)": {
            "count": lambda g: g.t, "width": lambda g: g.n,
            "pattern": "coalesced"},
        "ctx.gload(sb.ls, np.arange(tr * tc))": {
            "count": 1, "width": lambda g: g.tiles, "pattern": "coalesced"},
        "ctx.gstore(sb.gs, np.arange(tr * tc), gs.ravel())": {
            "count": 1, "width": lambda g: g.tiles, "pattern": "coalesced"},
    },
    # Boundary reads are guarded (J > 0 / I > 0 / both), hence the
    # tiles - t and (t-1)^2 execution counts.
    "gsat_kernel": {
        "smem.load_tile(ctx, a, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.gload(sb.grs, sb.vec_idx(I, J - 1))": {
            "count": lambda g: g.tiles - g.t, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload(sb.gcs, sb.vec_idx(I - 1, J))": {
            "count": lambda g: g.tiles - g.t, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "ctx.gload_scalar(sb.gs, sb.scalar_idx(I - 1, J - 1))": {
            "count": lambda g: (g.t - 1) * (g.t - 1)},
        "smem.store_tile(ctx, b, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  Tile-local sums are bounded by W per
#: value; the global pass folds t tile sums per axis and double-scans the
#: t x t grid; the final assembly adds the carries through one tile's
#: prefix passes (2W + 1).  Carries are applied with direct adds — never
#: re-scanned through tiles — so the whole algorithm is O(t + W) deep.
ERR_HINTS = {
    "local_sums_kernel": {
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {"depth": lambda g: g.W},
        "smem.tile_row_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.W},
        "lane_vector_sum(ctx, lcs)": {"depth": lambda g: g.W},
    },
    "global_sums_kernel": {
        "acc = acc + ctx.gload(sb.lrs, idx)": {"depth": lambda g: g.t},
        "acc = acc + ctx.gload(sb.lcs, idx)": {"depth": lambda g: g.t},
        "ls.cumsum(axis=0)": {"depth": lambda g: g.t - 1},
        "ls.cumsum(axis=0).cumsum(axis=1)": {"depth": lambda g: g.t - 1},
    },
    "gsat_kernel": {
        "assemble_gsat_in_shared(ctx, W, 'tile', grs_left, gcs_above, "
        "gs_corner, layout)": {"depth": lambda g: 2 * g.W + 1},
    },
}
