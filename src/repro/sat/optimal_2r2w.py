"""2R2W-optimal: coalesced column scan + single-pass row scan (Section I.B).

The SAT is still computed as column-wise prefix sums followed by row-wise
prefix sums, but both phases use high-parallelism, fully coalesced kernels:
the column phase is the Tokura et al. column-wise scan [12]
(:mod:`repro.primitives.colscan`) and the row phase is the Merrill–Garland
single-pass decoupled-look-back scan [10, 11] applied to every row
(:mod:`repro.primitives.scan1d`).  Each element is still read and written
twice, so the overhead over matrix duplication cannot drop below 100 % — the
paper calls this "optimal under the condition that the SAT must be computed by
the column-wise and row-wise prefix-sums computation".
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.colscan import run_col_scan
from repro.primitives.scan1d import run_row_scan
from repro.sat.base import SATAlgorithm


class Optimal2R2W(SATAlgorithm):
    """The 2R2W-optimal algorithm: Tokura column scan then Merrill–Garland row scan."""

    name = "2R2W-optimal"
    tile_based = False

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 panel_rows: int | None = None) -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.panel_rows = panel_rows

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    n: int, report: LaunchSummary) -> None:
        threads = min(self.block_threads(gpu.device.max_threads_per_block), 1024)
        threads = max(threads, gpu.device.warp_size)
        report.add(run_col_scan(gpu, a_buf, b_buf, n=n,
                                panel_rows=self.panel_rows,
                                strip_width=gpu.device.warp_size,
                                threads_per_block=threads,
                                name="2r2w_opt_col_scan"))
        # Row phase scans b in place: each partition's loads complete before
        # its stores, and look-back reads only the scratch aggregate arrays.
        w = gpu.device.warp_size
        row_threads = min(threads, ((max(w, n) + w - 1) // w) * w)
        report.add(run_row_scan(gpu, b_buf, b_buf, rows=n, n=n,
                                partition_size=min(row_threads, n),
                                threads_per_block=row_threads,
                                name="2r2w_opt_row_scan"))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        # Same dataflow at tile granularity collapses to the plain double scan.
        return a.cumsum(axis=0).cumsum(axis=1)
