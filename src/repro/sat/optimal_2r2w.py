"""2R2W-optimal: coalesced column scan + single-pass row scan (Section I.B).

The SAT is still computed as column-wise prefix sums followed by row-wise
prefix sums, but both phases use high-parallelism, fully coalesced kernels:
the column phase is the Tokura et al. column-wise scan [12]
(:mod:`repro.primitives.colscan`) and the row phase is the Merrill–Garland
single-pass decoupled-look-back scan [10, 11] applied to every row
(:mod:`repro.primitives.scan1d`).  Each element is still read and written
twice, so the overhead over matrix duplication cannot drop below 100 % — the
paper calls this "optimal under the condition that the SAT must be computed by
the column-wise and row-wise prefix-sums computation".
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives.colscan import run_col_scan
from repro.primitives.scan1d import run_row_scan
from repro.primitives.tile import TileGrid
from repro.sat.base import SATAlgorithm


class Optimal2R2W(SATAlgorithm):
    """The 2R2W-optimal algorithm: Tokura column scan then Merrill–Garland row scan."""

    name = "2R2W-optimal"
    tile_based = False

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 panel_rows: int | None = None) -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.panel_rows = panel_rows

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        rows, cols = grid.rows, grid.cols
        threads = min(self.block_threads(gpu.device.max_threads_per_block), 1024)
        threads = max(threads, gpu.device.warp_size)
        # Strips are warp-wide when the width allows; otherwise fall back to
        # the widest power-of-two divisor (rectangular widths need not be
        # warp multiples).
        strip = gpu.device.warp_size
        while cols % strip:
            strip //= 2
        report.add(run_col_scan(gpu, a_buf, b_buf, rows=rows, cols=cols,
                                panel_rows=self.panel_rows,
                                strip_width=strip,
                                threads_per_block=threads,
                                name="2r2w_opt_col_scan"))
        # Row phase scans b in place: each partition's loads complete before
        # its stores, and look-back reads only the scratch aggregate arrays.
        w = gpu.device.warp_size
        row_threads = min(threads, ((max(w, cols) + w - 1) // w) * w)
        report.add(run_row_scan(gpu, b_buf, b_buf, rows=rows, n=cols,
                                partition_size=min(row_threads, cols),
                                threads_per_block=row_threads,
                                name="2r2w_opt_row_scan"))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        # Same dataflow at tile granularity collapses to the plain double scan.
        return a.cumsum(axis=0).cumsum(axis=1)
