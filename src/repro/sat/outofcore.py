"""Out-of-core SAT: matrices larger than device memory (extension).

The paper's evaluation stops at 32K x 32K because a 4-byte 32K² matrix plus
its SAT fills the TITAN V's 12 GB.  This module removes that limit: the
matrix is processed in horizontal *bands* of rows; each band's SAT is
computed by any of the seven algorithms (on the simulator or the host path),
and a carry vector of accumulated column sums stitches bands together:

    full_sat[i][j]   = band_sat[i][j] + carry_prefix[j]
    carry_prefix[j]  = sum_{j' <= j} (column j' summed over all rows above)

which is exactly the tile algebra's GCP identity lifted to band granularity.
Only one band plus two length-``n`` vectors is ever resident.

``OutOfCoreSAT`` also exposes streaming rectangle queries: the per-band
bottom rows (``band_gcp``) are retained, so any rectangle sum can be answered
from at most two retained rows plus at most two recomputed bands — or, with
``keep_sat=True``, directly from the assembled result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.sat.dtypes import resolve_policy
from repro.sat.registry import get_algorithm


def band_bounds(n_rows: int, band_rows: int) -> list[tuple[int, int]]:
    """Half-open row ranges of each band."""
    if band_rows <= 0:
        raise ConfigurationError("band_rows must be positive")
    return [(lo, min(n_rows, lo + band_rows))
            for lo in range(0, n_rows, band_rows)]


def out_of_core_sat(a: np.ndarray, *, band_rows: int,
                    algorithm: str | None = None, tile_width: int = 32,
                    gpu_factory=None, engine=None,
                    dtype_policy=None) -> np.ndarray:
    """Compute the SAT of ``a`` band by band.

    ``algorithm`` selects the per-band SAT engine (``None`` = NumPy
    reference).  With an algorithm name, bands are computed via that
    algorithm's host path, or on fresh simulator instances produced by
    ``gpu_factory()`` when given.  Bands may be any rectangle — ragged tile
    edges follow the zero-padding convention of :mod:`repro.sat.base`.

    ``engine`` selects the *host* executor for the per-band computation
    (``"serial"``, ``"wavefront"``/a
    :class:`~repro.hostexec.WavefrontEngine`, ``"parallel"``, or
    ``"compiled"``/a :class:`~repro.hostexec.CompiledEngine` — with
    ``algorithm=None`` the compiled engine runs each band as its fused flat
    double scan, bit-identical to the NumPy reference); it is
    mutually exclusive with ``gpu_factory``.  ``dtype_policy`` resolves the
    accumulator dtype (:mod:`repro.sat.dtypes`; exact by default) — the carry
    vectors accumulate in that dtype too, so integer inputs stitch exactly.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError("out_of_core_sat expects a 2-D matrix")
    if engine is not None and gpu_factory is not None:
        raise ConfigurationError(
            "a host engine and gpu_factory are mutually exclusive")
    acc = resolve_policy(dtype_policy).accumulator(a.dtype)
    n_rows, n_cols = a.shape
    out = np.empty((n_rows, n_cols), dtype=acc)
    carry_cols = np.zeros(n_cols, dtype=acc)
    for lo, hi in band_bounds(n_rows, band_rows):
        band = a[lo:hi]
        band_sat = _band_engine(band, algorithm, tile_width, gpu_factory,
                                engine, acc)
        out[lo:hi] = band_sat + np.cumsum(carry_cols)[None, :]
        carry_cols = carry_cols + band.sum(axis=0, dtype=acc)
    return out


def _band_engine(band: np.ndarray, algorithm: str | None, tile_width: int,
                 gpu_factory, engine, acc: np.dtype) -> np.ndarray:
    if gpu_factory is not None:
        if algorithm is None:
            return band.astype(acc, copy=False).cumsum(axis=0).cumsum(axis=1)
        alg = get_algorithm(algorithm, tile_width=tile_width)
        return alg.run(band, gpu_factory(), dtype_policy=acc).sat
    from repro.backend.registry import resolve_backend
    return resolve_backend(engine).compute(band, algorithm=algorithm,
                                           tile_width=tile_width,
                                           dtype_policy=acc)


@dataclass
class OutOfCoreSAT:
    """Streaming SAT over row bands with O(1) rectangle queries.

    Feed bands top to bottom with :meth:`push_band`; query any rectangle
    whose bottom row has already been pushed with :meth:`rect_sum`.

    With ``keep_sat=True`` (default) the assembled SAT rows are retained and
    queries are four lookups.  With ``keep_sat=False`` only the per-band
    bottom SAT rows are retained (O(n) per band instead of O(n·band)), and
    queries must be row-aligned to band boundaries.
    """

    n_cols: int
    keep_sat: bool = True
    dtype: np.dtype = np.dtype(np.float64)
    _rows_done: int = 0
    _carry: np.ndarray = field(default=None)  # type: ignore[assignment]
    _sat_rows: list[np.ndarray] = field(default_factory=list)
    _band_edges: list[int] = field(default_factory=list)
    _edge_rows: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_cols <= 0:
            raise ConfigurationError("n_cols must be positive")
        self.dtype = np.dtype(self.dtype)
        self._carry = np.zeros(self.n_cols, dtype=self.dtype)

    @property
    def rows_done(self) -> int:
        return self._rows_done

    def push_band(self, band: np.ndarray, *,
                  row_start: int | None = None) -> np.ndarray:
        """Consume the next band of rows; returns that band's SAT rows.

        Bands must arrive top to bottom with no gap and no overlap — the
        carry vector is a running column sum, so any other order silently
        corrupts every later stitch.  Callers that track absolute row
        positions should pass ``row_start`` (the band's first image row):
        a band that does not continue exactly at ``rows_done`` is rejected
        with a :class:`~repro.errors.ConfigurationError` naming the overlap
        or the gap instead of producing wrong sums.
        """
        band = np.asarray(band)
        if band.ndim != 2 or band.shape[1] != self.n_cols:
            raise ConfigurationError(
                f"band must be 2-D with {self.n_cols} columns, "
                f"got shape {band.shape}")
        if band.shape[0] == 0:
            raise ConfigurationError("band must have at least one row")
        if row_start is not None and row_start != self._rows_done:
            if row_start < self._rows_done:
                raise ConfigurationError(
                    f"band starting at row {row_start} overlaps rows already "
                    f"pushed (next expected row is {self._rows_done}); bands "
                    "must be pushed top to bottom exactly once")
            raise ConfigurationError(
                f"band starting at row {row_start} leaves a gap: rows "
                f"{self._rows_done}..{row_start - 1} have not been pushed "
                "yet; bands must be pushed top to bottom with no gap")
        band = band.astype(self.dtype, copy=False)
        band_sat = band.cumsum(axis=0).cumsum(axis=1)
        full = band_sat + np.cumsum(self._carry)[None, :]
        self._carry = self._carry + band.sum(axis=0)
        self._rows_done += band.shape[0]
        self._band_edges.append(self._rows_done - 1)
        self._edge_rows.append(full[-1].copy())
        if self.keep_sat:
            self._sat_rows.append(full)
        return full

    def sat(self) -> np.ndarray:
        """The assembled SAT so far (requires ``keep_sat=True``)."""
        if not self.keep_sat:
            raise ConfigurationError("sat() requires keep_sat=True")
        if not self._sat_rows:
            return np.zeros((0, self.n_cols), dtype=self.dtype)
        return np.vstack(self._sat_rows)

    def _sat_row(self, i: int) -> np.ndarray:
        if i < 0 or i >= self._rows_done:
            raise ConfigurationError(f"row {i} not pushed yet")
        if self.keep_sat:
            return self.sat()[i]
        if i not in self._band_edges:
            raise ConfigurationError(
                f"keep_sat=False retains only band-edge rows {self._band_edges}; "
                f"row {i} is unavailable")
        return self._edge_rows[self._band_edges.index(i)]

    def rect_sum(self, top: int, left: int, bottom: int, right: int) -> float:
        """Four-corner rectangle sum over pushed rows."""
        if not (0 <= top <= bottom and 0 <= left <= right < self.n_cols):
            raise ConfigurationError(
                f"invalid rectangle ({top},{left})..({bottom},{right}): "
                f"corners must be ordered and within {self.n_cols} columns")
        if bottom >= self._rows_done:
            raise ConfigurationError(
                f"rectangle bottom row {bottom} has not been pushed yet "
                f"(rows pushed so far: {self._rows_done})")
        total = self._sat_row(bottom)[right]
        if left > 0:
            total -= self._sat_row(bottom)[left - 1]
        if top > 0:
            total -= self._sat_row(top - 1)[right]
            if left > 0:
                total += self._sat_row(top - 1)[left - 1]
        return float(total)
