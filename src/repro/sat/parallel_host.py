"""Fork/join parallel host SAT (multi-core CPU execution of the dataflow).

The banded decomposition used on the GPU (and by the out-of-core module) maps
directly onto CPU workers: split the matrix into row bands, cumsum each band's
columns concurrently, add the exclusive carry of the bands above, then do the
same over column bands for the row direction.  NumPy's cumsum releases the
GIL, so a thread pool gives real parallelism without copying.

This is exactly the paper's 2R2W structure executed by P workers instead of
n GPU threads — a useful fast path for hosts without a GPU, and a second,
independently-implemented engine the tests difference against the others.

The two phases each read and write every element once (2R2W on the CPU);
``parallel_sat`` is the simple fork/join version and
:class:`ParallelSATEngine` keeps a persistent pool for repeated use.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ConfigurationError
from repro.primitives.prefix_sum import partition_bounds


def _default_workers() -> int:
    return max(1, min(8, os.cpu_count() or 1))


def _band_edges(n: int, workers: int) -> list[tuple[int, int]]:
    size = (n + workers - 1) // workers
    return [partition_bounds(p, size, n)
            for p in range((n + size - 1) // size)]


def _parallel_cumsum_axis0(a: np.ndarray, pool: ThreadPoolExecutor,
                           workers: int) -> None:
    """In-place column-direction inclusive scan, parallel over row bands."""
    n = a.shape[0]
    bands = _band_edges(n, workers)

    def local(band):
        lo, hi = band
        np.cumsum(a[lo:hi], axis=0, out=a[lo:hi])
    list(pool.map(local, bands))
    # Exclusive carries: last row of each completed band, prefixed serially
    # (cheap: one row per band), then added to each later band in parallel.
    carries = np.zeros((len(bands), a.shape[1]), dtype=a.dtype)
    for k in range(1, len(bands)):
        lo_prev, hi_prev = bands[k - 1]
        carries[k] = carries[k - 1] + a[hi_prev - 1]

    def fix(item):
        k, (lo, hi) = item
        if k:
            a[lo:hi] += carries[k]
    list(pool.map(fix, enumerate(bands)))


def parallel_sat(a: np.ndarray, *, workers: int | None = None) -> np.ndarray:
    """Compute the SAT with a fork/join thread pool (CPU-parallel 2R2W)."""
    a = np.array(a, dtype=np.float64, copy=True)
    if a.ndim != 2:
        raise ConfigurationError("parallel_sat expects a 2-D matrix")
    if workers is not None and workers <= 0:
        raise ConfigurationError("workers must be positive")
    workers = workers or _default_workers()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        _parallel_cumsum_axis0(a, pool, workers)
        at = a.T  # the row phase is the column phase of the transpose (view)
        at_c = np.ascontiguousarray(at)
        _parallel_cumsum_axis0(at_c, pool, workers)
        return np.ascontiguousarray(at_c.T)


class ParallelSATEngine:
    """Reusable engine: persistent pool + preallocated transpose scratch.

    For repeated SATs of same-shaped matrices (video pipelines), keeping the
    pool alive and reusing scratch removes the per-call setup.
    """

    def __init__(self, *, workers: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("workers must be positive")
        self.workers = workers or _default_workers()
        self._pool = ThreadPoolExecutor(max_workers=self.workers)
        self._scratch: np.ndarray | None = None

    def compute(self, a: np.ndarray) -> np.ndarray:
        a = np.array(a, dtype=np.float64, copy=True)
        if a.ndim != 2:
            raise ConfigurationError("expected a 2-D matrix")
        _parallel_cumsum_axis0(a, self._pool, self.workers)
        if self._scratch is None or self._scratch.shape != a.T.shape:
            self._scratch = np.empty_like(np.ascontiguousarray(a.T))
        np.copyto(self._scratch, a.T)
        _parallel_cumsum_axis0(self._scratch, self._pool, self.workers)
        return np.ascontiguousarray(self._scratch.T)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelSATEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
