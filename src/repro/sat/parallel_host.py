"""Fork/join parallel host SAT (multi-core CPU execution of the dataflow).

The banded decomposition used on the GPU (and by the out-of-core module) maps
directly onto CPU workers: split the matrix into row bands, cumsum each band's
columns concurrently, add the exclusive carry of the bands above, then do the
same over column bands for the row direction.  NumPy's cumsum releases the
GIL, so a thread pool gives real parallelism without copying.

This is exactly the paper's 2R2W structure executed by P workers instead of
n GPU threads — a useful fast path for hosts without a GPU, and a second,
independently-implemented engine the tests difference against the others.

The two phases each read and write every element once (2R2W on the CPU);
``parallel_sat`` is the simple fork/join version and
:class:`ParallelSATEngine` keeps a persistent pool for repeated use.

The row phase needs no transpose (and no carry stitching at all): row-wise
prefix sums are independent per row, so each worker simply ``cumsum``\\ s its
band of rows along ``axis=1`` in place.  The whole computation therefore
makes exactly one copy — the defensive copy of the input.

The worker count defaults to the ``REPRO_WORKERS`` environment variable,
falling back to the full ``os.cpu_count()`` (shared with the wavefront
engine's :func:`repro.hostexec.default_workers`).

This engine is registered as ``"parallel"`` in the host-engine registry
(:mod:`repro.hostexec.registry`) with ``bit_identical=False``: banding the
column scan changes the float reduction order, so float results match the
serial reference only to within rounding (integer inputs are exact).  The
differential layer compares it against the proven rounding budget of
:mod:`repro.analysis.tolerances` accordingly, where the serial/wavefront/
compiled engines are held to exact equality.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.errors import ConfigurationError
from repro.hostexec.engine import default_workers as _default_workers
from repro.primitives.prefix_sum import partition_bounds
from repro.sat.dtypes import resolve_policy


def _band_edges(n: int, workers: int) -> list[tuple[int, int]]:
    size = (n + workers - 1) // workers
    return [partition_bounds(p, size, n)
            for p in range((n + size - 1) // size)]


def _parallel_cumsum_axis0(a: np.ndarray, pool: ThreadPoolExecutor,
                           workers: int) -> None:
    """In-place column-direction inclusive scan, parallel over row bands."""
    n = a.shape[0]
    bands = _band_edges(n, workers)

    def local(band):
        lo, hi = band
        np.cumsum(a[lo:hi], axis=0, out=a[lo:hi])
    list(pool.map(local, bands))
    # Exclusive carries: last row of each completed band, prefixed serially
    # (cheap: one row per band), then added to each later band in parallel.
    carries = np.zeros((len(bands), a.shape[1]), dtype=a.dtype)
    for k in range(1, len(bands)):
        lo_prev, hi_prev = bands[k - 1]
        carries[k] = carries[k - 1] + a[hi_prev - 1]

    def fix(item):
        k, (lo, hi) = item
        if k:
            a[lo:hi] += carries[k]
    list(pool.map(fix, enumerate(bands)))


def _parallel_cumsum_axis1(a: np.ndarray, pool: ThreadPoolExecutor,
                           workers: int) -> None:
    """In-place row-direction inclusive scan, parallel over row bands.

    Rows are independent, so no carries and no transpose copies are needed —
    each band is one contiguous in-place ``cumsum``.
    """
    bands = _band_edges(a.shape[0], workers)

    def local(band):
        lo, hi = band
        np.cumsum(a[lo:hi], axis=1, out=a[lo:hi])
    list(pool.map(local, bands))


def parallel_sat(a: np.ndarray, *, workers: int | None = None,
                 dtype_policy=None) -> np.ndarray:
    """Compute the SAT with a fork/join thread pool (CPU-parallel 2R2W).

    The defensive copy is made in the accumulator dtype the ``dtype_policy``
    resolves for the input (:mod:`repro.sat.dtypes`).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError("parallel_sat expects a 2-D matrix")
    acc = resolve_policy(dtype_policy).accumulator(a.dtype)
    a = np.array(a, dtype=acc, copy=True)
    if workers is not None and workers <= 0:
        raise ConfigurationError("workers must be positive")
    workers = workers or _default_workers()
    with ThreadPoolExecutor(max_workers=workers) as pool:
        _parallel_cumsum_axis0(a, pool, workers)
        _parallel_cumsum_axis1(a, pool, workers)
    return a


class ParallelSATEngine:
    """Reusable engine: persistent pool for repeated fork/join SATs.

    For repeated SATs (video pipelines), keeping the pool alive removes the
    per-call thread setup; both scan phases run in place on the single
    defensive input copy, which each call returns (no aliasing across calls).
    """

    def __init__(self, *, workers: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ConfigurationError("workers must be positive")
        self.workers = workers or _default_workers()
        self._pool = ThreadPoolExecutor(max_workers=self.workers)

    def compute(self, a: np.ndarray, *, dtype_policy=None) -> np.ndarray:
        a = np.asarray(a)
        if a.ndim != 2:
            raise ConfigurationError("expected a 2-D matrix")
        acc = resolve_policy(dtype_policy).accumulator(a.dtype)
        a = np.array(a, dtype=acc, copy=True)
        _parallel_cumsum_axis0(a, self._pool, self.workers)
        _parallel_cumsum_axis1(a, self._pool, self.workers)
        return a

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelSATEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
