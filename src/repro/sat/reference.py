"""Golden-model SAT and the O(1) rectangle-sum query it enables.

``sat_reference`` is the oracle every simulated algorithm is tested against:
column-wise prefix sums followed by row-wise prefix sums, exactly as the
paper's Figure 2 illustrates.  ``rect_sum`` implements the four-corner query
from Section I that motivates the data structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def sat_reference(a: np.ndarray) -> np.ndarray:
    """The summed area table of ``a``: ``b[i][j] = sum(a[:i+1, :j+1])``.

    Works for any 2-D array (the paper's matrices are square, but the
    definition is not).  The dtype is preserved; integer inputs stay exact.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError(f"SAT input must be 2-D, got shape {a.shape}")
    return a.cumsum(axis=0).cumsum(axis=1)


def sat_sequential(a: np.ndarray) -> np.ndarray:
    """Independent oracle: the O(n²) sequential recurrence, unvectorised.

    ``b[i][j] = a[i][j] + b[i-1][j] + b[i][j-1] - b[i-1][j-1]``.  Used only in
    tests to cross-check :func:`sat_reference`.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ConfigurationError(f"SAT input must be 2-D, got shape {a.shape}")
    b = np.zeros_like(a)
    rows, cols = a.shape
    for i in range(rows):
        for j in range(cols):
            b[i, j] = a[i, j]
            if i > 0:
                b[i, j] += b[i - 1, j]
            if j > 0:
                b[i, j] += b[i, j - 1]
            if i > 0 and j > 0:
                b[i, j] -= b[i - 1, j - 1]
    return b


def rect_sum(sat: np.ndarray, top: int, left: int, bottom: int, right: int):
    """Sum of ``a[top:bottom+1, left:right+1]`` from the SAT in O(1).

    Implements the paper's four-corner formula; all bounds are inclusive
    element indices.
    """
    sat = np.asarray(sat)
    if not (0 <= top <= bottom < sat.shape[0] and 0 <= left <= right < sat.shape[1]):
        raise ConfigurationError(
            f"rectangle ({top},{left})..({bottom},{right}) out of bounds for "
            f"shape {sat.shape}")
    total = sat[bottom, right]
    if top > 0:
        total = total - sat[top - 1, right]
    if left > 0:
        total = total - sat[bottom, left - 1]
    if top > 0 and left > 0:
        total = total + sat[top - 1, left - 1]
    return total


def rect_sums(sat: np.ndarray, tops, lefts, bottoms, rights) -> np.ndarray:
    """Vectorised :func:`rect_sum` for arrays of query rectangles."""
    sat = np.asarray(sat)
    tops = np.asarray(tops)
    lefts = np.asarray(lefts)
    bottoms = np.asarray(bottoms)
    rights = np.asarray(rights)
    if ((tops < 0) | (lefts < 0) | (tops > bottoms) | (lefts > rights)
            | (bottoms >= sat.shape[0]) | (rights >= sat.shape[1])).any():
        raise ConfigurationError("a query rectangle is out of bounds")
    total = sat[bottoms, rights].astype(np.result_type(sat.dtype, np.int64)
                                        if np.issubdtype(sat.dtype, np.integer)
                                        else sat.dtype, copy=True)
    mask = tops > 0
    total[mask] -= sat[tops[mask] - 1, rights[mask]]
    mask = lefts > 0
    total[mask] -= sat[bottoms[mask], lefts[mask] - 1]
    mask = (tops > 0) & (lefts > 0)
    total[mask] += sat[tops[mask] - 1, lefts[mask] - 1]
    return total
