"""Algorithm registry and the top-level :func:`compute_sat` convenience API."""

from __future__ import annotations

from typing import Any, Type

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.kernel import GPU
from repro.hostexec.registry import known_engines as _known_engines
from repro.sat.base import SATAlgorithm, SATResult
from repro.sat.hybrid_1r1w import Hybrid1R1W
from repro.sat.kasagi_1r1w import Kasagi1R1W
from repro.sat.naive_2r2w import Naive2R2W
from repro.sat.nehab_2r1w import Nehab2R1W
from repro.sat.optimal_2r2w import Optimal2R2W
from repro.sat.skss import SKSS1R1W
from repro.sat.skss_lb import SKSSLB1R1W

#: All seven algorithms of the paper, in Table I / Table III order.
ALGORITHMS: dict[str, Type[SATAlgorithm]] = {
    Naive2R2W.name: Naive2R2W,
    Optimal2R2W.name: Optimal2R2W,
    Nehab2R1W.name: Nehab2R1W,
    Kasagi1R1W.name: Kasagi1R1W,
    Hybrid1R1W.name: Hybrid1R1W,
    SKSS1R1W.name: SKSS1R1W,
    SKSSLB1R1W.name: SKSSLB1R1W,
}

#: Case/punctuation-insensitive aliases accepted by :func:`get_algorithm`.
_ALIASES = {
    "2r2w": "2R2W",
    "naive": "2R2W",
    "2r2w-optimal": "2R2W-optimal",
    "2r2woptimal": "2R2W-optimal",
    "2r1w": "2R1W",
    "nehab": "2R1W",
    "1r1w": "1R1W",
    "kasagi": "1R1W",
    "(1+r)r1w": "(1+r)R1W",
    "1+rr1w": "(1+r)R1W",
    "hybrid": "(1+r)R1W",
    "1r1w-skss": "1R1W-SKSS",
    "skss": "1R1W-SKSS",
    "1r1w-skss-lb": "1R1W-SKSS-LB",
    "skss-lb": "1R1W-SKSS-LB",
    "sksslb": "1R1W-SKSS-LB",
}


def get_algorithm(name: str, **params: Any) -> SATAlgorithm:
    """Instantiate an algorithm by (paper) name or common alias.

    >>> get_algorithm("skss-lb", tile_width=64).name
    '1R1W-SKSS-LB'
    """
    key = name.strip().lower()
    canonical = _ALIASES.get(key)
    if canonical is None:
        for full in ALGORITHMS:
            if full.lower() == key:
                canonical = full
                break
    if canonical is None:
        raise ConfigurationError(
            f"unknown SAT algorithm '{name}'; known: {sorted(ALGORITHMS)}")
    return ALGORITHMS[canonical](**params)


#: Host execution engines accepted by :func:`compute_sat` / the CLI.
#: ``serial`` runs each algorithm's own tile loop, ``wavefront`` the
#: dependency-driven multi-core engine (:mod:`repro.hostexec`; tile-based
#: algorithms only, bit-identical results), ``parallel`` the fork/join banded
#: 2R2W scan (:func:`repro.sat.parallel_host.parallel_sat`; any algorithm —
#: it computes the same SAT by plain double prefix sums), ``compiled`` the
#: Numba-jitted flat tile kernels (:mod:`repro.hostexec.compiled`; any
#: algorithm, bit-identical, degrades to wavefront/serial without Numba).
#: Derived from the unified backend registry (:mod:`repro.backend.registry`
#: via :mod:`repro.hostexec.registry`) so the CLI choices and error messages
#: can never drift from the registered set.
HOST_ENGINES = _known_engines()


def host_sat(a: np.ndarray, *, algorithm: str | None = None,
             tile_width: int = 32, engine=None,
             workers: int | None = None, dtype_policy=None) -> np.ndarray:
    """Route a host-path SAT computation through the chosen engine.

    The single entry point the applications layer uses: ``engine`` is
    ``None``/``"serial"`` (the algorithm's serial host loop, or the NumPy
    reference when ``algorithm`` is ``None``), ``"wavefront"`` (or a
    :class:`~repro.hostexec.WavefrontEngine` instance), ``"parallel"``, or
    ``"compiled"`` (or a :class:`~repro.hostexec.CompiledEngine` instance —
    Numba-jitted flat kernels, bit-identical, wavefront/serial fallback
    without Numba).  ``a`` may be any 2-D rectangle; ``dtype_policy``
    resolves the accumulator dtype (:mod:`repro.sat.dtypes`; exact by
    default).
    """
    from repro.backend.registry import resolve_backend
    return resolve_backend(engine).compute(
        np.asarray(a), algorithm=algorithm, tile_width=tile_width,
        workers=workers, dtype_policy=dtype_policy)


def incremental_sat(a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                    tile_width: int = 32, dtype_policy=None,
                    workers: int | None = None, strategy: str = "auto"):
    """Build a resident :class:`~repro.hostexec.IncrementalSAT` over ``a``.

    The stateful counterpart to :func:`compute_sat` for edit/streaming
    traffic: the returned engine keeps the tile grid's carry state between
    calls and repairs only dirty tiles plus their right/down frontier on
    ``update``/``update_tiles``/``delta``/``advance``.  Use as a context
    manager (or call ``close()``) to release the resident planes.

    >>> import numpy as np
    >>> with incremental_sat(np.ones((8, 8), dtype=np.int32)) as inc:
    ...     sat = inc.update(0, 0, np.full((2, 2), 5, dtype=np.int32))
    >>> int(sat[7, 7])
    80
    """
    from repro.hostexec.incremental import IncrementalSAT
    name = get_algorithm(algorithm).name
    return IncrementalSAT(a, algorithm=name, tile_width=tile_width,
                          dtype_policy=dtype_policy, workers=workers,
                          strategy=strategy)


def compute_sat(a: np.ndarray, *, algorithm: str = "1R1W-SKSS-LB",
                tile_width: int = 32, gpu: GPU | None = None,
                simulate: bool = True, engine=None,
                workers: int | None = None, dtype_policy=None,
                incremental=None, shards: int | None = None,
                **params: Any) -> SATResult:
    """Compute the summed area table of ``a``.

    Parameters
    ----------
    a:
        Any 2-D ``rows x cols`` matrix; ragged tile edges are zero-padded
        internally and the result is cropped back.
    algorithm:
        Paper name or alias; defaults to the paper's 1R1W-SKSS-LB.
    gpu:
        Optional pre-configured simulator (device, scheduling policy, seed,
        consistency mode).
    simulate:
        When ``False``, run the dataflow-equivalent host path instead of the
        simulator (no traffic report; much faster for large matrices).
    engine:
        Host executor for the non-simulated path (implies ``simulate=False``):
        one of :data:`HOST_ENGINES` or a
        :class:`~repro.hostexec.WavefrontEngine` /
        :class:`~repro.hostexec.CompiledEngine` instance.
    workers:
        Worker count for the ``wavefront``/``parallel``/``compiled``/
        ``distributed`` engines (for ``distributed``, ``workers > 1``
        switches from the in-process transport to real worker processes).
    shards:
        Band-shard count for the ``distributed`` engine; rejected by every
        other engine.
    dtype_policy:
        Input-to-accumulator dtype mapping (:mod:`repro.sat.dtypes`): a
        policy, a policy name (``"exact"``, ``"widen-float"``, ``"float64"``)
        or a fixed dtype.  Defaults to the exact policy.
    incremental:
        A resident :class:`~repro.hostexec.IncrementalSAT` (from
        :func:`incremental_sat`): ``a`` is treated as the next frame and the
        table is *repaired* via :meth:`~repro.hostexec.IncrementalSAT.advance`
        instead of recomputed — only the changed tiles' right/down frontier
        pays.  Mutually exclusive with ``gpu``/``engine``; the result is
        bit-identical to a from-scratch computation.

    Returns a :class:`~repro.sat.base.SATResult`.
    """
    if incremental is not None:
        from repro.hostexec.incremental import IncrementalSAT
        if not isinstance(incremental, IncrementalSAT):
            raise ConfigurationError(
                "incremental= expects an IncrementalSAT instance "
                "(see repro.sat.incremental_sat)")
        if gpu is not None or engine is not None:
            raise ConfigurationError(
                "incremental= is mutually exclusive with gpu=/engine=")
        sat = incremental.advance(np.asarray(a))
        stats = incremental.stats
        return SATResult(sat=sat, algorithm=incremental.algorithm,
                         n=sat.shape[0],
                         params={"tile_width": incremental.tile_width,
                                 "engine": "incremental",
                                 "strategy": stats.strategy,
                                 "dirty_tiles": stats.dirty_tiles,
                                 "repaired_tiles": stats.repaired_tiles,
                                 "total_tiles": stats.total_tiles},
                         report=None)
    if shards is not None and (engine is None or engine == "serial"):
        raise ConfigurationError(
            "shards is only meaningful for the distributed engine "
            "(pass engine='distributed')")
    alg = get_algorithm(algorithm, tile_width=tile_width, **params)
    if engine is not None and engine != "serial":
        if gpu is not None:
            raise ConfigurationError(
                "a host engine and a simulator GPU are mutually exclusive")
        simulate = False
    if simulate:
        return alg.run(a, gpu, dtype_policy=dtype_policy)
    engine_name = engine if isinstance(engine, str) or engine is None \
        else None
    if engine is None or engine == "serial":
        sat = alg.run_host(a, dtype_policy=dtype_policy)
    else:
        from repro.backend.registry import resolve_backend
        backend = resolve_backend(engine)
        engine_name = backend.spec.name
        sat = backend.compute(np.asarray(a), algorithm=alg.name,
                              tile_width=tile_width, workers=workers,
                              dtype_policy=dtype_policy, shards=shards)
    p = alg.params()
    if engine is not None:
        p["engine"] = engine_name
    return SATResult(sat=sat, algorithm=alg.name, n=sat.shape[0],
                     params=p, report=None)
