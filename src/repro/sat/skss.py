"""1R1W-SKSS: single-kernel soft synchronization, column-per-block (Funasaka
et al. [15], paper Section III.C).

One kernel; ``n/W`` CUDA blocks, each acquiring a *column* of tiles through an
``atomicAdd`` counter and processing it top to bottom.  A block computing
``GSAT(I, J)`` spin-waits on a per-tile flag until ``GRS(I, J-1)`` has been
published by the block owning column ``J-1``; it never reads ``GCP(I-1, J)``
from global memory because it computed ``GSAT(I-1, J)`` itself and kept the
bottom row in registers.

Global traffic is the 1R1W optimum, but the maximum thread count is only
``n·W/m`` (medium parallelism) and columns drain strictly left to right, which
is exactly the limitation the paper's look-back algorithm removes.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.lookback import publish
from repro.primitives.tile import TileGrid, assemble_gsat_tile_skss
from repro.sat.base import SATAlgorithm
from repro.sat.tilecommon import TileScratch, alloc_scratch

#: R-flag value meaning "GRS(I, J) is committed" (the only status SKSS needs).
GRS_READY = 1


def skss_kernel(ctx: BlockContext, a: GlobalBuffer, b: GlobalBuffer,
                sb: TileScratch, stride: int, layout: str = "diagonal"):
    """One CUDA block of the 1R1W-SKSS kernel: processes whole tile columns.

    ``stride`` is the buffer's row stride (its padded column count).
    """
    W, tr, tc = sb.W, sb.tr, sb.tc
    smem.alloc_tile(ctx, "tile", W)
    while True:
        J = ctx.atomic_add(sb.counter, 0, 1)
        if J >= tc:
            return
        gcp = np.zeros(W)  # bottom row of the GSAT above, kept in registers
        for I in range(tr):
            smem.load_tile(ctx, a, stride, W, I, J, "tile", layout)
            yield ctx.syncthreads()

            if J > 0:
                yield from ctx.wait_until(sb.R, sb.scalar_idx(I, J - 1),
                                          lambda v: v >= GRS_READY)
                grs_left = ctx.gload(sb.grs, sb.vec_idx(I, J - 1))
            else:
                grs_left = np.zeros(W)

            # Row-wise prefix sums with GRS(I, J-1) folded into column 0; the
            # rightmost column is then GRS(I, J) — publish it immediately so
            # the column to the right can proceed.
            smem.add_to_col(ctx, "tile", W, 0, grs_left, layout)
            smem.tile_row_prefix_sums(ctx, "tile", W, layout)
            grs_now = smem.read_col(ctx, "tile", W, W - 1, layout)
            publish(ctx, [(sb.grs, sb.vec_idx(I, J), grs_now)],
                    sb.R, sb.scalar_idx(I, J), GRS_READY)

            # Column-wise prefix sums with GCP(I-1, J) folded into the top row
            # complete GSAT(I, J).
            smem.add_to_row(ctx, "tile", W, 0, gcp, layout)
            smem.tile_col_prefix_sums(ctx, "tile", W, layout)
            yield ctx.syncthreads()
            smem.store_tile(ctx, b, stride, W, I, J, "tile", layout)
            gcp = smem.read_row(ctx, "tile", W, W - 1, layout)
            yield ctx.syncthreads()


class SKSS1R1W(SATAlgorithm):
    """The 1R1W-SKSS algorithm (single kernel, column-per-block soft sync)."""

    name = "1R1W-SKSS"

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 layout: str = "diagonal",
                 grid_blocks: int | None = None) -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.layout = layout
        self.grid_blocks = grid_blocks

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        sb = alloc_scratch(gpu, grid)
        blocks = self.grid_blocks or grid.tile_cols
        threads = min(self.block_threads(gpu.device.max_threads_per_block),
                      grid.W * grid.W)
        threads = max(threads, gpu.device.warp_size)
        report.add(gpu.launch(
            skss_kernel, grid_blocks=blocks, threads_per_block=threads,
            args=(a_buf, b_buf, sb, grid.padded_cols, self.layout),
            name="skss", shared_bytes_hint=grid.W * grid.W * 4))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Host dataflow: columns left to right, rows top to bottom, with the
        same GRS hand-off and register-carried GCP."""
        grid = TileGrid(rows=a.shape[0], cols=a.shape[1], W=self.tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        grs = np.zeros((tr, tc, W), dtype=a.dtype)
        out = np.zeros_like(a)
        zeros = np.zeros(W, dtype=a.dtype)
        for J in range(tc):
            gcp = zeros
            for I in range(tr):
                tile = a[grid.tile_slice(I, J)]
                grs_left = grs[I, J - 1] if J > 0 else zeros
                gsat = assemble_gsat_tile_skss(tile, grs_left, gcp)
                grs[I, J] = grs_left + tile.sum(axis=1)
                out[grid.tile_slice(I, J)] = gsat
                gcp = gsat[-1, :]
        return out


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: synchronization structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "skss_kernel": {
        "ticket": True,
        "publishes": (("grs", "R", GRS_READY),),
        "walks": (),
        "waits": (("R", GRS_READY),),
        "stores": ("b",),
        "loads": ("a", "grs"),
    },
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: naive_2r2w.py for the convention).  Every wait/GRS read is guarded by
#: ``J > 0``, hence the ``tiles - t`` counts; the ticket counter absorbs one
#: successful ``atomic_add`` per column plus one failing one per block
#: (``2t`` total at the default one-block-per-column launch).
COST_HINTS = {
    "skss_kernel": {
        "ctx.atomic_add(sb.counter, 0, 1)": {
            "count": lambda g: g.skss_atomics},
        "smem.load_tile(ctx, a, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "ctx.wait_until(sb.R, sb.scalar_idx(I, J - 1), lambda v: v >= "
        "GRS_READY)": {
            "count": lambda g: g.skss_waits},
        "ctx.gload(sb.grs, sb.vec_idx(I, J - 1))": {
            "count": lambda g: g.tiles - g.t, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "publish(ctx, [(sb.grs, sb.vec_idx(I, J), grs_now)], sb.R, "
        "sb.scalar_idx(I, J), GRS_READY)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "smem.store_tile(ctx, b, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
    },
}


#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  SKSS pushes each carry *through* the
#: tile prefix passes: a row's running prefix re-scans every tile it
#: crosses (W - 1 adds per tile plus the carry seed add), and likewise down
#: each column — O(t*W) = O(n) deep, the price of the elegant
#: add-then-rescan formulation.
ERR_HINTS = {
    "skss_kernel": {
        "smem.add_to_col(ctx, 'tile', W, 0, grs_left, layout)": {
            "depth": lambda g: g.t},
        "smem.tile_row_prefix_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.t * (g.W - 1)},
        "smem.add_to_row(ctx, 'tile', W, 0, gcp, layout)": {
            "depth": lambda g: g.t},
        "smem.tile_col_prefix_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.t * (g.W - 1)},
    },
}
